//! **affinity-vc** — affinity-aware virtual cluster optimization for
//! MapReduce applications.
//!
//! A from-scratch Rust reproduction of *Yan et al., "Affinity-aware
//! Virtual Cluster Optimization for MapReduce Applications", IEEE
//! CLUSTER 2012*. This umbrella crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`topology`] | `vc-topology` | clouds → racks → nodes, distance matrix `D` |
//! | [`model`] | `vc-model` | VM types (Table I), requests `R`, matrices `M`/`C`/`L` |
//! | [`ilp`] | `vc-ilp` | from-scratch simplex + branch-and-bound MILP solver |
//! | [`placement`] | `vc-placement` | `DC` metric, SD/GSD solvers, Algorithms 1–2, baselines |
//! | [`des`] | `vc-des` | deterministic discrete-event kernel |
//! | [`netsim`] | `vc-netsim` | max-min fair flow-level network |
//! | [`mapreduce`] | `vc-mapreduce` | HDFS + locality scheduler + shuffle simulator |
//! | [`cloudsim`] | `vc-cloudsim` | request-queue simulation (arrivals, FIFO, release) |
//!
//! # Quickstart
//!
//! ```
//! use affinity_vc::prelude::*;
//! use std::sync::Arc;
//!
//! // A cloud: 3 racks × 10 nodes, EC2 Table-I VM types, 2 slots per cell.
//! let topo = Arc::new(affinity_vc::topology::generate::paper_simulation());
//! let catalog = Arc::new(VmCatalog::ec2_table1());
//! let mut cloud = ClusterState::uniform_capacity(topo, catalog, 2);
//!
//! // Request 2 small + 4 medium + 1 large VM and place it with Algorithm 1.
//! let request = Request::from_counts(vec![2, 4, 1]);
//! let allocation = affinity_vc::placement::online::place(&request, &cloud).unwrap();
//! assert!(allocation.satisfies(&request));
//! cloud.allocate(&allocation).unwrap();
//!
//! // The affinity metric the whole paper optimises:
//! let (distance, center) = affinity_vc::placement::distance::cluster_distance(
//!     allocation.matrix(),
//!     cloud.topology(),
//! );
//! assert_eq!(center, allocation.center());
//! assert!(distance <= 14); // compact clusters stay close
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vc_cloudsim as cloudsim;
pub use vc_des as des;
pub use vc_ilp as ilp;
pub use vc_mapreduce as mapreduce;
pub use vc_model as model;
pub use vc_netsim as netsim;
pub use vc_placement as placement;
pub use vc_topology as topology;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use vc_des::SimTime;
    pub use vc_mapreduce::{simulate_job, JobConfig, VirtualCluster, Workload};
    pub use vc_model::{Allocation, ClusterState, Request, ResourceMatrix, VmCatalog, VmTypeId};
    pub use vc_netsim::NetworkParams;
    pub use vc_placement::{PlacementError, PlacementPolicy};
    pub use vc_topology::{DistanceTiers, NodeId, RackId, Topology, TopologyBuilder};
}
