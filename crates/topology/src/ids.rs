//! Dense index newtypes for nodes, racks, and clouds.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index as a `usize`, for matrix offsets.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a `usize` index.
            ///
            /// # Panics
            /// Panics if `i` exceeds `u32::MAX`.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self(u32::try_from(i).expect("index exceeds u32::MAX"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a physical node (`N_i` in the paper), a dense index
    /// into [`Topology::nodes`](crate::Topology::nodes).
    NodeId,
    "N"
);
id_type!(
    /// Identifier of a rack (`R_i` in the paper).
    RackId,
    "R"
);
id_type!(
    /// Identifier of a cloud / datacenter.
    CloudId,
    "C"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(NodeId(3).to_string(), "N3");
        assert_eq!(RackId(1).to_string(), "R1");
        assert_eq!(CloudId(0).to_string(), "C0");
    }

    #[test]
    fn index_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn ordering_by_raw_value() {
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    #[should_panic(expected = "index exceeds u32::MAX")]
    fn from_index_overflow_panics() {
        let _ = NodeId::from_index(usize::MAX);
    }
}
