//! Latency distance tiers `0 < d1 < d2 < d3` (paper §II, matrix `D`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The three latency classes used to derive the distance matrix.
///
/// The distance between two *VMs on the same node* is always `0`; the tiers
/// give the node-to-node distances:
///
/// * [`same_rack`](Self::same_rack) — `d1`, nodes behind one ToR switch;
/// * [`cross_rack`](Self::cross_rack) — `d2`, nodes in different racks of
///   the same cloud;
/// * [`cross_cloud`](Self::cross_cloud) — `d3`, nodes in different clouds.
///
/// The paper requires `0 < d1 < d2 < d3`; [`DistanceTiers::new`] enforces
/// this. The experiment section (§V-B) uses `d1 = 1`, `d2 = 2`, which is
/// the [`Default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DistanceTiers {
    /// `d1`: distance between two nodes in the same rack.
    pub same_rack: u32,
    /// `d2`: distance between two nodes in different racks.
    pub cross_rack: u32,
    /// `d3`: distance between two nodes in different clouds.
    pub cross_cloud: u32,
}

/// Error returned when tier values violate `0 < d1 < d2 < d3`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidTiers {
    /// The offending values `(d1, d2, d3)`.
    pub values: (u32, u32, u32),
}

impl fmt::Display for InvalidTiers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (d1, d2, d3) = self.values;
        write!(
            f,
            "distance tiers must satisfy 0 < d1 < d2 < d3, got d1={d1}, d2={d2}, d3={d3}"
        )
    }
}

impl std::error::Error for InvalidTiers {}

impl DistanceTiers {
    /// Create tiers, validating `0 < d1 < d2 < d3`.
    pub fn new(d1: u32, d2: u32, d3: u32) -> Result<Self, InvalidTiers> {
        if d1 == 0 || d1 >= d2 || d2 >= d3 {
            return Err(InvalidTiers {
                values: (d1, d2, d3),
            });
        }
        Ok(Self {
            same_rack: d1,
            cross_rack: d2,
            cross_cloud: d3,
        })
    }

    /// The affinity configuration of the paper's experiments (§V-B):
    /// same node `0`, same rack `1`, different racks `2` (cross-cloud `4`
    /// extrapolates the doubling and is unused in single-cloud setups).
    pub fn paper_experiment() -> Self {
        Self {
            same_rack: 1,
            cross_rack: 2,
            cross_cloud: 4,
        }
    }
}

impl Default for DistanceTiers {
    /// The paper's experimental configuration: `d1 = 1`, `d2 = 2`.
    fn default() -> Self {
        Self::paper_experiment()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_tiers_accepted() {
        let t = DistanceTiers::new(1, 2, 4).unwrap();
        assert_eq!(t.same_rack, 1);
        assert_eq!(t.cross_rack, 2);
        assert_eq!(t.cross_cloud, 4);
    }

    #[test]
    fn zero_d1_rejected() {
        assert!(DistanceTiers::new(0, 2, 3).is_err());
    }

    #[test]
    fn non_increasing_rejected() {
        assert!(DistanceTiers::new(2, 2, 3).is_err());
        assert!(DistanceTiers::new(1, 3, 3).is_err());
        assert!(DistanceTiers::new(3, 2, 5).is_err());
    }

    #[test]
    fn error_message_mentions_values() {
        let err = DistanceTiers::new(5, 2, 3).unwrap_err();
        assert!(err.to_string().contains("d1=5"));
    }

    #[test]
    fn default_is_paper_experiment() {
        assert_eq!(DistanceTiers::default(), DistanceTiers::paper_experiment());
    }
}
