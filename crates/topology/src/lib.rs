//! Physical datacenter topology model for affinity-aware virtual cluster
//! placement.
//!
//! The paper (Yan et al., CLUSTER 2012, §II) models the infrastructure as a
//! set of physical nodes grouped into racks (and racks into clouds), with a
//! symmetric distance matrix `D` derived from network latency tiers:
//!
//! * `0`  — two VMs on the **same node**,
//! * `d1` — two nodes in the **same rack**,
//! * `d2` — two nodes in **different racks**,
//! * `d3` — two nodes in **different clouds**, with `0 < d1 < d2 < d3`.
//!
//! This crate provides:
//!
//! * [`Topology`] — an immutable hierarchy of clouds → racks → nodes with a
//!   dense precomputed [`DistanceMatrix`];
//! * [`TopologyBuilder`] — incremental construction;
//! * [`generate`] — canned generators (uniform racks, heterogeneous racks,
//!   multi-cloud) including the paper's simulation configuration of
//!   3 racks × 10 nodes;
//! * [`DistanceTiers`] — the `d1 < d2 < d3` latency classes.
//!
//! All identifiers are dense indices (`NodeId`, `RackId`, `CloudId`) so they
//! can be used directly as matrix offsets in the optimisation crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod distance;
pub mod generate;
mod ids;
mod tiers;

pub use builder::TopologyBuilder;
pub use distance::DistanceMatrix;
pub use ids::{CloudId, NodeId, RackId};
pub use tiers::DistanceTiers;

use serde::{Deserialize, Serialize};

/// A physical machine that can host virtual machines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Dense index of this node.
    pub id: NodeId,
    /// Rack containing this node.
    pub rack: RackId,
    /// Cloud containing this node.
    pub cloud: CloudId,
    /// Human-readable name (e.g. `"r0n3"`).
    pub name: String,
}

/// A rack of physical nodes behind a shared top-of-rack switch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rack {
    /// Dense index of this rack.
    pub id: RackId,
    /// Cloud containing this rack.
    pub cloud: CloudId,
    /// Nodes in this rack, in id order.
    pub nodes: Vec<NodeId>,
    /// Human-readable name (e.g. `"rack0"`).
    pub name: String,
}

/// A cloud (datacenter / availability zone) containing racks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cloud {
    /// Dense index of this cloud.
    pub id: CloudId,
    /// Racks in this cloud, in id order.
    pub racks: Vec<RackId>,
    /// Human-readable name (e.g. `"cloud0"`).
    pub name: String,
}

/// An immutable physical topology: the node/rack/cloud hierarchy plus the
/// precomputed inter-node distance matrix.
///
/// Construct via [`TopologyBuilder`] or the helpers in [`generate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    racks: Vec<Rack>,
    clouds: Vec<Cloud>,
    tiers: DistanceTiers,
    distance: DistanceMatrix,
}

impl Topology {
    /// Number of physical nodes (`n` in the paper).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of racks.
    #[inline]
    pub fn num_racks(&self) -> usize {
        self.racks.len()
    }

    /// Number of clouds.
    #[inline]
    pub fn num_clouds(&self) -> usize {
        self.clouds.len()
    }

    /// The latency tiers this topology was built with.
    #[inline]
    pub fn tiers(&self) -> DistanceTiers {
        self.tiers
    }

    /// All nodes in id order.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All racks in id order.
    #[inline]
    pub fn racks(&self) -> &[Rack] {
        &self.racks
    }

    /// All clouds in id order.
    #[inline]
    pub fn clouds(&self) -> &[Cloud] {
        &self.clouds
    }

    /// Look up a node.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Look up a rack.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn rack(&self, id: RackId) -> &Rack {
        &self.racks[id.index()]
    }

    /// Rack containing `node`.
    #[inline]
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.nodes[node.index()].rack
    }

    /// Cloud containing `node`.
    #[inline]
    pub fn cloud_of(&self, node: NodeId) -> CloudId {
        self.nodes[node.index()].cloud
    }

    /// Whether two nodes share a rack.
    #[inline]
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// Whether two nodes share a cloud.
    #[inline]
    pub fn same_cloud(&self, a: NodeId, b: NodeId) -> bool {
        self.cloud_of(a) == self.cloud_of(b)
    }

    /// Distance `D[a][b]` between two nodes (latency units).
    ///
    /// `distance(a, a) == 0` for every node.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.distance.get(a, b)
    }

    /// The dense distance matrix.
    #[inline]
    pub fn distance_matrix(&self) -> &DistanceMatrix {
        &self.distance
    }

    /// Iterator over all node ids, `0..n`.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Node ids in the same rack as `x`, **excluding** `x` itself.
    ///
    /// This is `getList(D, x, 0)` from the paper (§IV-A), before the
    /// resource-based sort applied by the placement algorithm.
    pub fn rack_peers(&self, x: NodeId) -> Vec<NodeId> {
        let rack = self.rack_of(x);
        self.racks[rack.index()]
            .nodes
            .iter()
            .copied()
            .filter(|&n| n != x)
            .collect()
    }

    /// Node ids **not** in the same rack as `x`.
    ///
    /// This is `getList(D, x, 1)` from the paper, before the resource-based
    /// sort applied by the placement algorithm.
    pub fn non_rack_peers(&self, x: NodeId) -> Vec<NodeId> {
        let rack = self.rack_of(x);
        self.node_ids()
            .filter(|&n| self.rack_of(n) != rack)
            .collect()
    }

    /// All node ids sorted by distance from `k` (ascending, ties by id).
    ///
    /// The first element is always `k` itself (distance 0).
    pub fn nodes_by_distance(&self, k: NodeId) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.node_ids().collect();
        ids.sort_by_key(|&i| (self.distance(k, i), i.0));
        ids
    }

    /// Whether the distance matrix satisfies the triangle inequality.
    ///
    /// Theorem 2 of the paper assumes `D[x][y] + D[y][k] > D[x][k]` for the
    /// exchange step; a metric distance matrix guarantees the non-strict
    /// version. Tier-derived matrices are always metric (they are in fact
    /// ultrametric: the longest hop of any two-hop path is at least the
    /// direct tier), so this check only matters for explicit matrices
    /// supplied via [`TopologyBuilder::with_distance_matrix`].
    pub fn is_metric(&self) -> bool {
        let n = self.num_nodes();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let (x, y, z) = (NodeId(x as u32), NodeId(y as u32), NodeId(z as u32));
                    if u64::from(self.distance(x, y)) + u64::from(self.distance(y, z))
                        < u64::from(self.distance(x, z))
                    {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Topology {
        generate::uniform(2, 3, DistanceTiers::default())
    }

    #[test]
    fn uniform_counts() {
        let t = small();
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.num_racks(), 2);
        assert_eq!(t.num_clouds(), 1);
    }

    #[test]
    fn distance_tiers_applied() {
        let t = small();
        let tiers = t.tiers();
        // same node
        assert_eq!(t.distance(NodeId(0), NodeId(0)), 0);
        // same rack (nodes 0,1,2 are rack 0)
        assert_eq!(t.distance(NodeId(0), NodeId(1)), tiers.same_rack);
        // cross rack (node 3 is rack 1)
        assert_eq!(t.distance(NodeId(0), NodeId(3)), tiers.cross_rack);
    }

    #[test]
    fn distance_symmetric() {
        let t = small();
        for a in t.node_ids() {
            for b in t.node_ids() {
                assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    #[test]
    fn rack_peers_excludes_self() {
        let t = small();
        let peers = t.rack_peers(NodeId(1));
        assert_eq!(peers, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn non_rack_peers_other_rack() {
        let t = small();
        let peers = t.non_rack_peers(NodeId(0));
        assert_eq!(peers, vec![NodeId(3), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn nodes_by_distance_starts_with_self() {
        let t = small();
        let order = t.nodes_by_distance(NodeId(4));
        assert_eq!(order[0], NodeId(4));
        // then same-rack nodes, then cross-rack
        assert!(order[1..3].iter().all(|&n| t.same_rack(n, NodeId(4))));
        assert!(order[3..].iter().all(|&n| !t.same_rack(n, NodeId(4))));
    }

    #[test]
    fn tier_topologies_always_metric() {
        assert!(small().is_metric());
        let tiers = DistanceTiers::new(1, 10, 100).unwrap();
        assert!(generate::multi_cloud(2, 2, 2, tiers).is_metric());
    }

    #[test]
    fn non_metric_explicit_matrix_detected() {
        let mut b = TopologyBuilder::new(DistanceTiers::default());
        let c = b.add_cloud("c");
        let r = b.add_rack(c);
        for _ in 0..3 {
            b.add_node(r);
        }
        // d(0,2) = 10 > d(0,1) + d(1,2) = 2: violates the triangle inequality.
        b.with_distance_matrix(
            DistanceMatrix::from_rows(&[vec![0, 1, 10], vec![1, 0, 1], vec![10, 1, 0]]).unwrap(),
        );
        assert!(!b.build().is_metric());
    }

    #[test]
    fn multi_cloud_distance() {
        let tiers = DistanceTiers::new(1, 2, 8).unwrap();
        let t = generate::multi_cloud(2, 2, 2, tiers);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.num_clouds(), 2);
        // nodes 0..4 in cloud 0, 4..8 in cloud 1
        assert_eq!(t.distance(NodeId(0), NodeId(7)), 8);
        assert_eq!(t.distance(NodeId(0), NodeId(3)), 2);
        assert_eq!(t.distance(NodeId(0), NodeId(1)), 1);
    }

    #[test]
    fn clone_equality() {
        let t = small();
        assert_eq!(t, t.clone());
    }
}
