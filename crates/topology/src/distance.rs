//! Dense symmetric inter-node distance matrix (`D` in the paper).

// Index-based loops mirror the textbook matrix formulations here.
#![allow(clippy::needless_range_loop)]

use crate::NodeId;
use serde::{Deserialize, Serialize};

/// A dense `n × n` symmetric distance matrix with a zero diagonal.
///
/// Stored row-major in a single allocation. Distances are unsigned
/// integers (latency units); the optimisation crates accumulate into
/// `u64` so overflow is not a practical concern at datacenter scale.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<u32>,
}

/// Error returned by [`DistanceMatrix::from_rows`] on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistanceMatrixError {
    /// Row count or a row length differs from `n`.
    NotSquare {
        /// Expected dimension.
        expected: usize,
        /// Found dimension.
        found: usize,
    },
    /// `D[i][i] != 0` for some `i`.
    NonZeroDiagonal(usize),
    /// `D[i][j] != D[j][i]` for some pair.
    Asymmetric(usize, usize),
}

impl std::fmt::Display for DistanceMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotSquare { expected, found } => {
                write!(
                    f,
                    "distance matrix is not square: expected {expected}, found {found}"
                )
            }
            Self::NonZeroDiagonal(i) => write!(f, "D[{i}][{i}] must be 0"),
            Self::Asymmetric(i, j) => write!(f, "D[{i}][{j}] != D[{j}][{i}]"),
        }
    }
}

impl std::error::Error for DistanceMatrixError {}

impl DistanceMatrix {
    /// Build from explicit rows, validating squareness, zero diagonal, and
    /// symmetry.
    pub fn from_rows(rows: &[Vec<u32>]) -> Result<Self, DistanceMatrixError> {
        let n = rows.len();
        for row in rows {
            if row.len() != n {
                return Err(DistanceMatrixError::NotSquare {
                    expected: n,
                    found: row.len(),
                });
            }
        }
        for i in 0..n {
            if rows[i][i] != 0 {
                return Err(DistanceMatrixError::NonZeroDiagonal(i));
            }
            for j in (i + 1)..n {
                if rows[i][j] != rows[j][i] {
                    return Err(DistanceMatrixError::Asymmetric(i, j));
                }
            }
        }
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Ok(Self { n, data })
    }

    /// Build by evaluating `f(i, j)` for every ordered pair, symmetrised by
    /// construction: only `i ≤ j` is evaluated and mirrored.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> u32) -> Self {
        let mut data = vec![0u32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = f(i, j);
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        Self { n, data }
    }

    /// Matrix dimension (number of nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty (zero nodes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between nodes `a` and `b`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    #[inline]
    pub fn get(&self, a: NodeId, b: NodeId) -> u32 {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "node index out of range"
        );
        self.data[a.index() * self.n + b.index()]
    }

    /// The row of distances from node `a` to every node.
    #[inline]
    pub fn row(&self, a: NodeId) -> &[u32] {
        let i = a.index();
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Maximum distance in the matrix (0 for matrices of dimension ≤ 1).
    pub fn max_distance(&self) -> u32 {
        self.data.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_valid() {
        let m = DistanceMatrix::from_rows(&[vec![0, 1], vec![1, 0]]).unwrap();
        assert_eq!(m.get(NodeId(0), NodeId(1)), 1);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DistanceMatrix::from_rows(&[vec![0, 1], vec![1]]).unwrap_err();
        assert!(matches!(err, DistanceMatrixError::NotSquare { .. }));
    }

    #[test]
    fn from_rows_rejects_nonzero_diagonal() {
        let err = DistanceMatrix::from_rows(&[vec![1]]).unwrap_err();
        assert_eq!(err, DistanceMatrixError::NonZeroDiagonal(0));
    }

    #[test]
    fn from_rows_rejects_asymmetry() {
        let err = DistanceMatrix::from_rows(&[vec![0, 1], vec![2, 0]]).unwrap_err();
        assert_eq!(err, DistanceMatrixError::Asymmetric(0, 1));
    }

    #[test]
    fn from_fn_symmetric_zero_diagonal() {
        let m = DistanceMatrix::from_fn(4, |i, j| (i + j) as u32);
        for i in 0..4 {
            assert_eq!(m.get(NodeId(i), NodeId(i)), 0);
            for j in 0..4 {
                assert_eq!(m.get(NodeId(i), NodeId(j)), m.get(NodeId(j), NodeId(i)));
            }
        }
    }

    #[test]
    fn row_matches_get() {
        let m = DistanceMatrix::from_fn(3, |_, _| 7);
        assert_eq!(m.row(NodeId(1)), &[7, 0, 7]);
    }

    #[test]
    fn max_distance() {
        let m = DistanceMatrix::from_fn(3, |i, j| (i * 3 + j) as u32);
        assert_eq!(m.max_distance(), 5);
        assert_eq!(DistanceMatrix::from_fn(1, |_, _| 9).max_distance(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let m = DistanceMatrix::from_fn(2, |_, _| 1);
        let _ = m.get(NodeId(5), NodeId(0));
    }

    #[test]
    fn error_display() {
        let e = DistanceMatrixError::Asymmetric(1, 2);
        assert_eq!(e.to_string(), "D[1][2] != D[2][1]");
        let e = DistanceMatrixError::NonZeroDiagonal(3);
        assert!(e.to_string().contains("D[3][3]"));
        let e = DistanceMatrixError::NotSquare {
            expected: 2,
            found: 1,
        };
        assert!(e.to_string().contains("not square"));
    }
}
