//! Canned topology generators, including the paper's simulation setup.

use crate::{DistanceTiers, Topology, TopologyBuilder};

/// A single cloud with `racks` racks of `nodes_per_rack` nodes each.
///
/// # Panics
/// Panics if `racks == 0` or `nodes_per_rack == 0`.
pub fn uniform(racks: usize, nodes_per_rack: usize, tiers: DistanceTiers) -> Topology {
    assert!(
        racks > 0 && nodes_per_rack > 0,
        "topology must be non-empty"
    );
    heterogeneous(&vec![nodes_per_rack; racks], tiers)
}

/// A single cloud with racks of the given sizes.
///
/// # Panics
/// Panics if `rack_sizes` is empty or contains a zero.
pub fn heterogeneous(rack_sizes: &[usize], tiers: DistanceTiers) -> Topology {
    assert!(
        !rack_sizes.is_empty(),
        "topology must have at least one rack"
    );
    let mut b = TopologyBuilder::new(tiers);
    let cloud = b.add_cloud("cloud0");
    for &size in rack_sizes {
        assert!(size > 0, "racks must be non-empty");
        let rack = b.add_rack(cloud);
        for _ in 0..size {
            b.add_node(rack);
        }
    }
    b.build()
}

/// `clouds` clouds, each with `racks_per_cloud` racks of `nodes_per_rack`
/// nodes.
///
/// # Panics
/// Panics if any dimension is zero.
pub fn multi_cloud(
    clouds: usize,
    racks_per_cloud: usize,
    nodes_per_rack: usize,
    tiers: DistanceTiers,
) -> Topology {
    assert!(
        clouds > 0 && racks_per_cloud > 0 && nodes_per_rack > 0,
        "topology must be non-empty"
    );
    let mut b = TopologyBuilder::new(tiers);
    for c in 0..clouds {
        let cloud = b.add_cloud(format!("cloud{c}"));
        for _ in 0..racks_per_cloud {
            let rack = b.add_rack(cloud);
            for _ in 0..nodes_per_rack {
                b.add_node(rack);
            }
        }
    }
    b.build()
}

/// The configuration used for the paper's simulations (§V-A): **3 racks ×
/// 10 nodes**, equal intra-rack distances, equal inter-rack distances.
pub fn paper_simulation() -> Topology {
    uniform(3, 10, DistanceTiers::paper_experiment())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn paper_simulation_shape() {
        let t = paper_simulation();
        assert_eq!(t.num_racks(), 3);
        assert_eq!(t.num_nodes(), 30);
        for rack in t.racks() {
            assert_eq!(rack.nodes.len(), 10);
        }
    }

    #[test]
    fn heterogeneous_shape() {
        let t = heterogeneous(&[1, 4, 2], DistanceTiers::default());
        assert_eq!(t.num_nodes(), 7);
        assert_eq!(t.racks()[1].nodes.len(), 4);
        // node 0 alone in rack 0: cross-rack to everyone
        for other in 1..7 {
            assert_eq!(
                t.distance(NodeId(0), NodeId(other)),
                DistanceTiers::default().cross_rack
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_zero_rejected() {
        let _ = uniform(0, 5, DistanceTiers::default());
    }

    #[test]
    #[should_panic(expected = "racks must be non-empty")]
    fn heterogeneous_zero_rack_rejected() {
        let _ = heterogeneous(&[3, 0], DistanceTiers::default());
    }

    #[test]
    fn multi_cloud_shape() {
        let t = multi_cloud(3, 2, 4, DistanceTiers::new(1, 2, 6).unwrap());
        assert_eq!(t.num_clouds(), 3);
        assert_eq!(t.num_racks(), 6);
        assert_eq!(t.num_nodes(), 24);
        assert_eq!(t.distance(NodeId(0), NodeId(23)), 6);
    }
}
