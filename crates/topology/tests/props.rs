//! Property tests: distance-matrix invariants over random hierarchies.

use proptest::prelude::*;
use vc_topology::{generate, DistanceMatrix, DistanceTiers, NodeId};

fn tiers() -> impl Strategy<Value = DistanceTiers> {
    (1u32..10, 1u32..10, 1u32..10).prop_map(|(a, b, c)| {
        let d1 = a;
        let d2 = a + b;
        let d3 = a + b + c;
        DistanceTiers::new(d1, d2, d3).expect("strictly increasing by construction")
    })
}

proptest! {
    #[test]
    fn tier_matrices_symmetric_zero_diag_metric(
        t in tiers(),
        clouds in 1usize..3,
        racks in 1usize..3,
        nodes in 1usize..4,
    ) {
        let topo = generate::multi_cloud(clouds, racks, nodes, t);
        let n = topo.num_nodes();
        for i in 0..n {
            let a = NodeId(i as u32);
            prop_assert_eq!(topo.distance(a, a), 0);
            for j in 0..n {
                let b = NodeId(j as u32);
                prop_assert_eq!(topo.distance(a, b), topo.distance(b, a));
                // Values come from the tier set.
                if i != j {
                    let d = topo.distance(a, b);
                    prop_assert!(
                        d == t.same_rack || d == t.cross_rack || d == t.cross_cloud
                    );
                }
            }
        }
        prop_assert!(topo.is_metric());
    }

    #[test]
    fn nodes_by_distance_is_sorted(
        t in tiers(),
        racks in 1usize..4,
        nodes in 1usize..4,
        seed in 0usize..16,
    ) {
        let topo = generate::uniform(racks, nodes, t);
        let k = NodeId((seed % topo.num_nodes()) as u32);
        let order = topo.nodes_by_distance(k);
        prop_assert_eq!(order.len(), topo.num_nodes());
        prop_assert_eq!(order[0], k);
        for w in order.windows(2) {
            prop_assert!(topo.distance(k, w[0]) <= topo.distance(k, w[1]));
        }
    }

    #[test]
    fn rack_peer_partition(
        t in tiers(),
        racks in 1usize..4,
        nodes in 1usize..4,
        seed in 0usize..16,
    ) {
        let topo = generate::uniform(racks, nodes, t);
        let x = NodeId((seed % topo.num_nodes()) as u32);
        let same = topo.rack_peers(x);
        let other = topo.non_rack_peers(x);
        // Together with x itself they partition the node set.
        prop_assert_eq!(same.len() + other.len() + 1, topo.num_nodes());
        for &p in &same {
            prop_assert!(topo.same_rack(p, x) && p != x);
            prop_assert_eq!(topo.distance(p, x), t.same_rack);
        }
        for &q in &other {
            prop_assert!(!topo.same_rack(q, x));
        }
    }

    #[test]
    fn from_fn_matrix_valid(n in 1usize..8, base in 1u32..5) {
        let m = DistanceMatrix::from_fn(n, |i, j| base + (i + j) as u32);
        for i in 0..n {
            prop_assert_eq!(m.get(NodeId(i as u32), NodeId(i as u32)), 0);
            for j in 0..n {
                prop_assert_eq!(
                    m.get(NodeId(i as u32), NodeId(j as u32)),
                    m.get(NodeId(j as u32), NodeId(i as u32))
                );
            }
        }
        prop_assert!(m.max_distance() <= base + (2 * n) as u32);
    }
}
