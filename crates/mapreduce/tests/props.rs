//! Property tests: simulation invariants over random clusters and jobs.

use proptest::prelude::*;
use std::sync::Arc;
use vc_des::SimTime;
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::scheduler::SchedulerPolicy;
use vc_mapreduce::{simulate_job, JobConfig, VirtualCluster, Workload};
use vc_topology::{generate, DistanceTiers, NodeId};

fn cluster_strategy() -> impl Strategy<Value = VirtualCluster> {
    // 1–8 VMs on random nodes of the 2×4 topology.
    proptest::collection::vec(0u32..8, 1..=8).prop_map(|nodes| {
        let topo = Arc::new(generate::uniform(2, 4, DistanceTiers::paper_experiment()));
        let node_ids: Vec<NodeId> = nodes.into_iter().map(NodeId).collect();
        VirtualCluster::homogeneous(&node_ids, node_ids.len(), topo)
    })
}

fn job_strategy() -> impl Strategy<Value = JobConfig> {
    (1u32..12, 1u32..4, 0usize..4, 1u32..3).prop_map(|(maps, reducers, wl, replication)| {
        let workload = match wl {
            0 => Workload::wordcount(),
            1 => Workload::terasort(),
            2 => Workload::grep(),
            _ => Workload::wordcount_no_combiner(),
        };
        JobConfig {
            workload,
            input_mb: f64::from(maps) * 64.0,
            split_mb: 64.0,
            num_reducers: reducers,
            replication,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every job terminates; locality classes partition the maps; phase
    /// timestamps are ordered; shuffle volume matches the workload model.
    #[test]
    fn job_invariants(cluster in cluster_strategy(), job in job_strategy()) {
        let m = simulate_job(&cluster, &job, &SimParams::default());
        prop_assert_eq!(m.num_maps, job.num_maps());
        prop_assert_eq!(
            m.data_local_maps + m.rack_local_maps + m.remote_maps,
            m.num_maps
        );
        prop_assert!(m.runtime > SimTime::ZERO);
        prop_assert!(m.maps_finished_at <= m.shuffle_finished_at);
        prop_assert!(m.shuffle_finished_at <= m.runtime);
        // Shuffle bytes = input × selectivity (up to per-fetch rounding).
        let expect = job.input_mb * job.workload.map_selectivity * 1e6;
        let got = m.total_shuffle_bytes() as f64;
        prop_assert!(
            (got - expect).abs() <= f64::from(m.num_maps * m.num_reducers),
            "shuffle {got} vs expected {expect}"
        );
    }

    /// Determinism: same inputs, same metrics — including with stragglers
    /// and speculation enabled.
    #[test]
    fn deterministic(cluster in cluster_strategy(), job in job_strategy(), seed in 0u64..64) {
        let params = SimParams {
            seed,
            straggler_prob: 0.3,
            speculative_execution: true,
            ..SimParams::default()
        };
        let a = simulate_job(&cluster, &job, &params);
        let b = simulate_job(&cluster, &job, &params);
        prop_assert_eq!(a, b);
    }

    /// Profiling parity: a recorded run — phase timers, solver-effort
    /// counters, the whole `prof.*` namespace — returns bit-identical
    /// `JobMetrics` to the unrecorded run (the profiler only reads the
    /// host clock; it never touches simulation state), and the `prof.*`
    /// counters actually land in the snapshot.
    #[test]
    fn recorded_equals_unrecorded_including_prof(
        cluster in cluster_strategy(),
        job in job_strategy(),
        seed in 0u64..16,
    ) {
        let params = SimParams {
            seed,
            straggler_prob: 0.2,
            speculative_execution: true,
            ..SimParams::default()
        };
        let plain = simulate_job(&cluster, &job, &params);
        let rec = vc_obs::MemRecorder::new();
        let traced = vc_mapreduce::simulate_job_traced(&cluster, &job, &params, &rec, 0, 0);
        prop_assert_eq!(&plain, &traced);

        let m = rec.metrics();
        // The engine's own DES loop is timed as one mr_job phase call.
        prop_assert_eq!(m.counters.get("prof.phase.mr_job.calls").copied(), Some(1));
        prop_assert!(m.counters.contains_key("prof.phase.mr_job.wall_us"));
        // Solver effort exported from the FlowNet accumulators: at least
        // one rate recomputation happened (reducers always shuffle or
        // commit), with a consistent flows-per-solve accounting.
        let solves = m.counters.get("prof.solver.solves").copied().unwrap_or(0);
        prop_assert!(solves > 0, "no solver effort exported");
        prop_assert!(m.counters.contains_key("prof.solver.flows"));
        prop_assert!(m.counters.contains_key("prof.solver.links_touched"));
        prop_assert!(m.counters.contains_key("prof.solver.iterations"));
        let peak = m.gauges.get("prof.solver.peak_flows").copied().unwrap_or(0.0);
        let flows = m.counters["prof.solver.flows"];
        prop_assert!(peak as u64 <= flows, "peak {peak} exceeds total {flows}");
    }

    /// A faster network can reorder map completions and hence change
    /// which tasks the scheduler hands to which VM, so "uncontended is
    /// never slower" is false in the strictest sense — but it can only be
    /// slower by scheduling noise, never by bandwidth. Allow 5 %.
    #[test]
    fn contention_only_hurts_beyond_scheduling_noise(
        cluster in cluster_strategy(),
        job in job_strategy(),
    ) {
        let contended = simulate_job(&cluster, &job, &SimParams::default());
        let free = simulate_job(
            &cluster,
            &job,
            &SimParams { net: vc_netsim::NetworkParams::uncontended(), ..SimParams::default() },
        );
        prop_assert!(
            free.runtime.as_secs_f64() <= contended.runtime.as_secs_f64() * 1.05,
            "uncontended {} vs contended {}",
            free.runtime,
            contended.runtime
        );
    }
}

/// Greedy locality dispatch is not a maximum matching, so the blind
/// scheduler can win individual draws; in aggregate over many
/// configurations the locality-aware scheduler must dominate clearly.
#[test]
fn locality_aware_dominates_blind_in_aggregate() {
    let topo = Arc::new(generate::uniform(2, 4, DistanceTiers::paper_experiment()));
    let mut aware_total = 0u32;
    let mut blind_total = 0u32;
    for seed in 0..30u64 {
        let nodes: Vec<NodeId> = (0..6).map(|i| NodeId((seed as u32 + i) % 8)).collect();
        let cluster = VirtualCluster::homogeneous(&nodes, nodes.len(), Arc::clone(&topo));
        let job = JobConfig {
            workload: Workload::wordcount(),
            input_mb: 16.0 * 64.0,
            split_mb: 64.0,
            num_reducers: 1,
            replication: 2,
        };
        let aware = simulate_job(
            &cluster,
            &job,
            &SimParams {
                scheduler: SchedulerPolicy::LocalityAware,
                seed,
                ..SimParams::default()
            },
        );
        let blind = simulate_job(
            &cluster,
            &job,
            &SimParams {
                scheduler: SchedulerPolicy::FifoBlind,
                seed,
                ..SimParams::default()
            },
        );
        aware_total += aware.data_local_maps;
        blind_total += blind.data_local_maps;
    }
    assert!(
        aware_total > blind_total + blind_total / 4,
        "locality-aware ({aware_total}) must clearly beat blind ({blind_total})"
    );
}
