//! The virtual cluster a job runs on: VMs pinned to physical nodes.

use std::sync::Arc;
use vc_model::{Allocation, VmCatalog};
use vc_topology::{NodeId, Topology};

/// Identifier of a VM within one [`VirtualCluster`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u32);

impl VmId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One provisioned VM.
#[derive(Debug, Clone)]
pub struct Vm {
    /// Dense id within the cluster.
    pub id: VmId,
    /// Physical node hosting this VM.
    pub node: NodeId,
    /// Concurrent map slots.
    pub map_slots: u32,
    /// Concurrent reduce slots.
    pub reduce_slots: u32,
    /// Per-slot map/reduce processing rate, MB/s.
    pub slot_mb_per_s: f64,
    /// Local disk streaming rate, MB/s.
    pub disk_mb_per_s: f64,
}

/// A materialised virtual cluster: the VM list, the master node, and the
/// physical topology underneath.
#[derive(Debug, Clone)]
pub struct VirtualCluster {
    vms: Vec<Vm>,
    master: NodeId,
    topology: Arc<Topology>,
}

impl VirtualCluster {
    /// Instantiate the VMs of an [`Allocation`]: one [`Vm`] per allocated
    /// instance, with slots and rates taken from the catalogue. The
    /// allocation's central node becomes the master (the paper's
    /// MapReduce clusters are master/slave with the master on the central
    /// node).
    ///
    /// # Panics
    /// Panics if the allocation is empty.
    pub fn from_allocation(
        allocation: &Allocation,
        catalog: &VmCatalog,
        topology: Arc<Topology>,
    ) -> Self {
        let placements = allocation.placements();
        assert!(
            !placements.is_empty(),
            "cannot build a cluster from an empty allocation"
        );
        let vms = placements
            .iter()
            .enumerate()
            .map(|(i, &(node, ty))| {
                let t = catalog.get(ty);
                Vm {
                    id: VmId(i as u32),
                    node,
                    map_slots: t.map_slots,
                    reduce_slots: t.reduce_slots,
                    slot_mb_per_s: f64::from(t.cpu_mb_per_s) / f64::from(t.map_slots.max(1)),
                    disk_mb_per_s: f64::from(t.disk_mb_per_s),
                }
            })
            .collect();
        Self {
            vms,
            master: allocation.center(),
            topology,
        }
    }

    /// A homogeneous test cluster: `count` identical VMs on the given
    /// nodes (cycled), 1 map + 1 reduce slot, 25 MB/s CPU, 60 MB/s disk.
    ///
    /// # Panics
    /// Panics if `nodes` is empty or `count == 0`.
    pub fn homogeneous(nodes: &[NodeId], count: usize, topology: Arc<Topology>) -> Self {
        assert!(!nodes.is_empty() && count > 0, "cluster must be non-empty");
        let vms = (0..count)
            .map(|i| Vm {
                id: VmId(i as u32),
                node: nodes[i % nodes.len()],
                map_slots: 1,
                reduce_slots: 1,
                slot_mb_per_s: 25.0,
                disk_mb_per_s: 60.0,
            })
            .collect();
        Self {
            vms,
            master: nodes[0],
            topology,
        }
    }

    /// The VMs, in id order.
    #[inline]
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// Look up a VM.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn vm(&self, id: VmId) -> &Vm {
        &self.vms[id.index()]
    }

    /// Number of VMs.
    #[inline]
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// Whether the cluster has no VMs (never true after construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// The master's physical node (the allocation's central node).
    #[inline]
    pub fn master(&self) -> NodeId {
        self.master
    }

    /// The physical topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Shared handle to the topology.
    #[inline]
    pub fn topology_arc(&self) -> Arc<Topology> {
        Arc::clone(&self.topology)
    }

    /// Distinct physical nodes hosting VMs, in id order.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.vms.iter().map(|vm| vm.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Total map slots across the cluster.
    pub fn total_map_slots(&self) -> u32 {
        self.vms.iter().map(|v| v.map_slots).sum()
    }

    /// Total reduce slots across the cluster.
    pub fn total_reduce_slots(&self) -> u32 {
        self.vms.iter().map(|v| v.reduce_slots).sum()
    }

    /// The paper's **cluster affinity** metric for this cluster: the sum
    /// over VMs of their distance to the master node (distance is `0`
    /// within a node, `d1` within a rack, `d2` across racks — §V-B sets
    /// `0/1/2`).
    pub fn affinity_distance(&self) -> u64 {
        self.vms
            .iter()
            .map(|vm| u64::from(self.topology.distance(vm.node, self.master)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_model::{Request, ResourceMatrix};
    use vc_topology::{generate, DistanceTiers};

    fn topo() -> Arc<Topology> {
        Arc::new(generate::uniform(2, 3, DistanceTiers::paper_experiment()))
    }

    #[test]
    fn from_allocation_expands_vms() {
        let topo = topo();
        let catalog = VmCatalog::ec2_table1();
        let alloc = Allocation::new(
            ResourceMatrix::from_rows(&[
                vec![2, 1, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
                vec![0, 0, 0],
                vec![0, 0, 0],
                vec![0, 0, 0],
            ]),
            NodeId(0),
        );
        assert!(alloc.satisfies(&Request::from_counts(vec![2, 1, 1])));
        let vc = VirtualCluster::from_allocation(&alloc, &catalog, topo);
        assert_eq!(vc.len(), 4);
        assert_eq!(vc.master(), NodeId(0));
        assert_eq!(vc.nodes(), vec![NodeId(0), NodeId(1)]);
        // small: 1 slot @25; medium: 2 slots @25 each; large: 4 slots.
        assert_eq!(vc.total_map_slots(), 1 + 1 + 2 + 4);
        let large = vc.vms().iter().find(|v| v.map_slots == 4).unwrap();
        assert!((large.slot_mb_per_s - 25.0).abs() < 1e-9);
    }

    #[test]
    fn affinity_distance_matches_tiers() {
        let topo = topo();
        // master on node 0; VMs: 1 on node 0, 1 on node 1 (same rack), 1 on node 3 (cross)
        let vc = VirtualCluster::homogeneous(&[NodeId(0), NodeId(1), NodeId(3)], 3, topo);
        assert_eq!(vc.affinity_distance(), 1 + 2);
    }

    #[test]
    fn homogeneous_cycles_nodes() {
        let vc = VirtualCluster::homogeneous(&[NodeId(0), NodeId(1)], 5, topo());
        assert_eq!(vc.vm(VmId(4)).node, NodeId(0));
        assert_eq!(vc.total_reduce_slots(), 5);
        assert!(!vc.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_homogeneous_rejected() {
        let _ = VirtualCluster::homogeneous(&[], 1, topo());
    }

    #[test]
    #[should_panic(expected = "empty allocation")]
    fn empty_allocation_rejected() {
        let topo = topo();
        let catalog = VmCatalog::ec2_table1();
        let alloc = Allocation::new(ResourceMatrix::zeros(6, 3), NodeId(0));
        let _ = VirtualCluster::from_allocation(&alloc, &catalog, topo);
    }
}
