//! Locality-aware slot scheduling (Hadoop's FIFO scheduler with locality
//! preference).
//!
//! When a VM frees a map slot, the scheduler hands it the lowest-id
//! pending task whose input is **node-local**, falling back to
//! **rack-local**, then **remote** — the same preference order Hadoop's
//! JobTracker applies on a TaskTracker heartbeat. The paper's Fig. 8
//! hinges on this mechanism: how many tasks end up in each class depends
//! on where the cluster's VMs sit relative to the block replicas.

use crate::cluster::{VirtualCluster, Vm};
use crate::hdfs::{BlockId, HdfsLayout};
use crate::metrics::Locality;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How map tasks are matched to free slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Hadoop's behaviour: node-local first, then rack-local, then any
    /// (FIFO within a class).
    #[default]
    LocalityAware,
    /// Strict FIFO: always the lowest-id pending task, blind to where its
    /// data lives. The ablation baseline showing what locality-aware
    /// dispatch buys.
    FifoBlind,
}

/// Pending-map-task pool with locality-aware dispatch.
#[derive(Debug, Clone)]
pub struct MapScheduler {
    pending: BTreeSet<u32>,
}

impl MapScheduler {
    /// All `num_maps` tasks pending.
    pub fn new(num_maps: u32) -> Self {
        Self {
            pending: (0..num_maps).collect(),
        }
    }

    /// Number of tasks not yet dispatched.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Whether every task has been dispatched.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }

    /// Dispatch the next task for `vm` under `policy`, or `None` if
    /// drained. The returned [`Locality`] describes where the chosen
    /// task's data actually is relative to `vm` (for FIFO dispatch this
    /// is whatever the draw happened to be).
    pub fn pick_for_with(
        &mut self,
        policy: SchedulerPolicy,
        vm: &Vm,
        layout: &HdfsLayout,
        cluster: &VirtualCluster,
    ) -> Option<(u32, Locality)> {
        match policy {
            SchedulerPolicy::LocalityAware => self.pick_for(vm, layout, cluster),
            SchedulerPolicy::FifoBlind => {
                let task = *self.pending.iter().next()?;
                self.pending.remove(&task);
                let block = BlockId(task);
                let locality = if layout.is_local(block, vm.node) {
                    Locality::NodeLocal
                } else if layout.is_rack_local(block, vm.node, cluster) {
                    Locality::RackLocal
                } else {
                    Locality::Remote
                };
                Some((task, locality))
            }
        }
    }

    /// Dispatch the best pending task for `vm`, or `None` if drained.
    ///
    /// Preference: node-local < rack-local < remote; lowest task id
    /// within a class (FIFO).
    pub fn pick_for(
        &mut self,
        vm: &Vm,
        layout: &HdfsLayout,
        cluster: &VirtualCluster,
    ) -> Option<(u32, Locality)> {
        let mut rack_choice: Option<u32> = None;
        let mut remote_choice: Option<u32> = None;
        for &task in &self.pending {
            let block = BlockId(task);
            if layout.is_local(block, vm.node) {
                self.pending.remove(&task);
                return Some((task, Locality::NodeLocal));
            }
            if rack_choice.is_none() && layout.is_rack_local(block, vm.node, cluster) {
                rack_choice = Some(task);
            } else if remote_choice.is_none() && rack_choice.is_none() {
                remote_choice = Some(task);
            }
        }
        if let Some(task) = rack_choice {
            self.pending.remove(&task);
            return Some((task, Locality::RackLocal));
        }
        if let Some(task) = remote_choice {
            self.pending.remove(&task);
            return Some((task, Locality::Remote));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use vc_topology::{generate, DistanceTiers, NodeId};

    fn setup() -> (VirtualCluster, HdfsLayout) {
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::paper_experiment()));
        let cluster =
            VirtualCluster::homogeneous(&[NodeId(0), NodeId(1), NodeId(3), NodeId(4)], 4, topo);
        let mut rng = StdRng::seed_from_u64(1);
        let layout = HdfsLayout::place(&cluster, &[64.0; 8], 2, &mut rng);
        (cluster, layout)
    }

    #[test]
    fn prefers_node_local() {
        let (cluster, layout) = setup();
        let mut sched = MapScheduler::new(8);
        // For each VM, the first pick should be node-local when any of its
        // blocks live there.
        for vm in cluster.vms() {
            let has_local = (0..8).any(|t| layout.is_local(BlockId(t), vm.node));
            let mut s = sched.clone();
            if let Some((task, loc)) = s.pick_for(vm, &layout, &cluster) {
                if has_local {
                    assert_eq!(loc, Locality::NodeLocal, "vm on {} task {task}", vm.node);
                }
            }
        }
        // drain one vm completely: locality degrades monotonically per pick? not
        // guaranteed, but the pool must fully drain.
        let vm = &cluster.vms()[0];
        let mut count = 0;
        while sched.pick_for(vm, &layout, &cluster).is_some() {
            count += 1;
        }
        assert_eq!(count, 8);
        assert!(sched.is_drained());
    }

    #[test]
    fn lowest_id_within_class() {
        let (cluster, layout) = setup();
        let vm = &cluster.vms()[0];
        let mut sched = MapScheduler::new(8);
        let mut picked = vec![];
        while let Some((task, loc)) = sched.pick_for(vm, &layout, &cluster) {
            picked.push((task, loc));
        }
        // node-local ids ascend, then rack ids ascend, then remote ids ascend
        let locals: Vec<u32> = picked
            .iter()
            .filter(|(_, l)| *l == Locality::NodeLocal)
            .map(|&(t, _)| t)
            .collect();
        assert!(locals.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_pool_returns_none() {
        let (cluster, layout) = setup();
        let mut sched = MapScheduler::new(0);
        assert!(sched.is_drained());
        assert!(sched
            .pick_for(&cluster.vms()[0], &layout, &cluster)
            .is_none());
    }

    #[test]
    fn fifo_blind_ignores_locality() {
        let (cluster, layout) = setup();
        let vm = &cluster.vms()[0];
        let mut sched = MapScheduler::new(8);
        let mut picked = vec![];
        while let Some((task, _)) =
            sched.pick_for_with(SchedulerPolicy::FifoBlind, vm, &layout, &cluster)
        {
            picked.push(task);
        }
        assert_eq!(picked, (0..8).collect::<Vec<_>>(), "strict FIFO order");
    }

    #[test]
    fn locality_aware_never_worse_than_blind() {
        let (cluster, layout) = setup();
        let vm = &cluster.vms()[0];
        let count_local = |policy: SchedulerPolicy| {
            let mut sched = MapScheduler::new(8);
            let mut local = 0;
            while let Some((_, loc)) = sched.pick_for_with(policy, vm, &layout, &cluster) {
                if loc == Locality::NodeLocal {
                    local += 1;
                }
            }
            local
        };
        assert!(
            count_local(SchedulerPolicy::LocalityAware) >= count_local(SchedulerPolicy::FifoBlind)
        );
    }

    #[test]
    fn pending_counts_down() {
        let (cluster, layout) = setup();
        let mut sched = MapScheduler::new(3);
        assert_eq!(sched.pending(), 3);
        sched.pick_for(&cluster.vms()[0], &layout, &cluster);
        assert_eq!(sched.pending(), 2);
    }
}
