//! Workload models: how much data each phase produces and how expensive
//! the user code is.
//!
//! A workload is characterised by two data ratios and two CPU factors:
//!
//! * `map_selectivity` — map-output bytes per input byte *after the
//!   combiner* (WordCount with a combiner emits only per-split word
//!   frequencies, a small fraction of the text; TeraSort re-emits
//!   everything);
//! * `reduce_selectivity` — final-output bytes per reduce-input byte;
//! * `map_cpu_factor` / `reduce_cpu_factor` — CPU seconds relative to
//!   streaming the same bytes at the VM's slot rate (`1.0` = exactly the
//!   slot rate; `2.0` = twice as slow).

use serde::{Deserialize, Serialize};

/// A MapReduce application model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Human-readable name for reports.
    pub name: String,
    /// Map-output bytes per input byte (post-combiner).
    pub map_selectivity: f64,
    /// Final-output bytes per reduce-input byte.
    pub reduce_selectivity: f64,
    /// Map CPU cost multiplier (≥ 0).
    pub map_cpu_factor: f64,
    /// Reduce CPU cost multiplier (≥ 0).
    pub reduce_cpu_factor: f64,
}

impl Workload {
    /// The paper's benchmark: **WordCount** with the standard combiner.
    /// Per-split intermediate data is the distinct-word histogram — small
    /// relative to the text (≈ 5 %); the final counts shrink further.
    pub fn wordcount() -> Self {
        Self {
            name: "wordcount".into(),
            map_selectivity: 0.05,
            reduce_selectivity: 0.4,
            map_cpu_factor: 1.0,
            reduce_cpu_factor: 0.5,
        }
    }

    /// WordCount **without** the combiner: every word is shuffled, so the
    /// intermediate data slightly exceeds the input (keys + counts).
    /// Useful for shuffle-stress ablations.
    pub fn wordcount_no_combiner() -> Self {
        Self {
            name: "wordcount-nocombine".into(),
            map_selectivity: 1.1,
            reduce_selectivity: 0.02,
            map_cpu_factor: 1.0,
            reduce_cpu_factor: 1.0,
        }
    }

    /// **TeraSort**: shuffle-heavy identity — everything moves.
    pub fn terasort() -> Self {
        Self {
            name: "terasort".into(),
            map_selectivity: 1.0,
            reduce_selectivity: 1.0,
            map_cpu_factor: 0.5,
            reduce_cpu_factor: 1.0,
        }
    }

    /// **Grep** (selective filter): maps emit almost nothing.
    pub fn grep() -> Self {
        Self {
            name: "grep".into(),
            map_selectivity: 0.01,
            reduce_selectivity: 1.0,
            map_cpu_factor: 0.8,
            reduce_cpu_factor: 0.1,
        }
    }

    /// Validate ratios and factors.
    ///
    /// # Panics
    /// Panics on negative or non-finite parameters.
    pub fn validate(&self) {
        for (name, v) in [
            ("map_selectivity", self.map_selectivity),
            ("reduce_selectivity", self.reduce_selectivity),
            ("map_cpu_factor", self.map_cpu_factor),
            ("reduce_cpu_factor", self.reduce_cpu_factor),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be non-negative, got {v}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_workloads_valid() {
        for w in [
            Workload::wordcount(),
            Workload::wordcount_no_combiner(),
            Workload::terasort(),
            Workload::grep(),
        ] {
            w.validate();
        }
    }

    #[test]
    fn combiner_shrinks_shuffle() {
        assert!(
            Workload::wordcount().map_selectivity
                < Workload::wordcount_no_combiner().map_selectivity
        );
    }

    #[test]
    fn terasort_moves_everything() {
        let t = Workload::terasort();
        assert_eq!(t.map_selectivity, 1.0);
        assert_eq!(t.reduce_selectivity, 1.0);
    }

    #[test]
    #[should_panic(expected = "map_selectivity")]
    fn negative_ratio_rejected() {
        let w = Workload {
            map_selectivity: -1.0,
            ..Workload::grep()
        };
        w.validate();
    }
}
