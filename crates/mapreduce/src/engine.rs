//! The MapReduce discrete-event engine.
//!
//! Task lifecycle (all data sizes in MB, all times via [`vc_des::SimTime`]):
//!
//! ```text
//! map:    read input (local disk | network flow from nearest replica)
//!         → compute (split · cpu_factor / slot rate) + write map output locally
//!         → slot freed, shuffle fetches to every running reducer begin
//! reduce: occupy a reduce slot (waves if reducers > slots)
//!         → fetch one partition per map output as maps finish
//!         → once all fetched: sort/reduce compute
//!         → commit: local disk write + replication flows to other nodes
//! job:    done when every reducer has committed
//! ```
//!
//! All network transfers (remote reads, shuffle, output replication) share
//! one [`FlowNet`], so rack oversubscription and NIC contention shape the
//! schedule exactly as in the paper's testbed.

use crate::cluster::{VirtualCluster, VmId};
use crate::hdfs::{BlockId, HdfsLayout};
use crate::job::JobConfig;
use crate::metrics::{JobMetrics, Locality};
use crate::scheduler::{MapScheduler, SchedulerPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use vc_des::{Engine, EventKind, SimTime};
use vc_netsim::{Bottleneck, FlowClass, FlowNet, LinkClass, NetworkParams};
use vc_obs::health::{rules, AlertSink, Severity};
use vc_obs::{AttrValue, HealthPolicy, NoopRecorder, Recorder, SpanId, TrackId};
use vc_topology::NodeId;

/// Intern a dynamically built metric name (per-link names depend on the
/// topology) into the `&'static str` the [`Recorder`] API requires. Each
/// unique name leaks once; the set is bounded by topology size.
fn intern_metric_name(name: String) -> &'static str {
    static NAMES: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let mut map = NAMES
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .expect("metric-name interner poisoned");
    if let Some(&s) = map.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    map.insert(name, leaked);
    leaked
}

/// Simulation inputs beyond the job itself.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Network capacities/latencies.
    pub net: NetworkParams,
    /// RNG seed (HDFS placement and any tie-breaking randomness).
    pub seed: u64,
    /// Map-slot dispatch policy.
    pub scheduler: SchedulerPolicy,
    /// Probability that a map attempt is a straggler (Hadoop's motivation
    /// for speculative execution). Applies to first attempts only.
    pub straggler_prob: f64,
    /// Compute-time multiplier for straggling attempts.
    pub straggler_slowdown: f64,
    /// Launch backup copies of still-running maps once the pending pool
    /// drains (Hadoop's speculative execution); first copy to finish wins.
    pub speculative_execution: bool,
}

impl Default for SimParams {
    fn default() -> Self {
        Self {
            net: NetworkParams::default(),
            seed: 0,
            scheduler: SchedulerPolicy::default(),
            straggler_prob: 0.0,
            straggler_slowdown: 4.0,
            speculative_execution: false,
        }
    }
}

#[derive(Debug)]
enum Event {
    NetWake { epoch: u64 },
    MapReadDone { task: u32, attempt: u8 },
    MapCpuDone { task: u32, attempt: u8 },
    ReduceCpuDone { reducer: u32 },
    ReduceDiskDone { reducer: u32 },
}

impl EventKind for Event {
    fn kind(&self) -> &'static str {
        match self {
            Event::NetWake { .. } => "mr.event.net_wake",
            Event::MapReadDone { .. } => "mr.event.map_read_done",
            Event::MapCpuDone { .. } => "mr.event.map_cpu_done",
            Event::ReduceCpuDone { .. } => "mr.event.reduce_cpu_done",
            Event::ReduceDiskDone { .. } => "mr.event.reduce_disk_done",
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum FlowPurpose {
    MapRead {
        task: u32,
        attempt: u8,
    },
    Shuffle {
        reducer: u32,
        /// Contention-free transfer time of this fetch, µs (0 when the
        /// recorder is disabled). Feeds the critical-path split between
        /// shuffle wire time and network wait.
        ideal_us: u64,
    },
    OutputWrite {
        reducer: u32,
    },
}

/// One execution attempt of a map task (speculation may run two).
#[derive(Debug, Clone, Copy)]
struct MapAttempt {
    vm: VmId,
    locality: Locality,
    started: SimTime,
    span: SpanId,
}

#[derive(Debug)]
struct MapTask {
    size_mb: f64,
    output_mb: f64,
    /// Compute-time multiplier for the first attempt (stragglers > 1).
    slowdown: f64,
    attempts: Vec<MapAttempt>,
    /// Index into `attempts` of the attempt that finished first.
    winner: Option<u8>,
}

impl MapTask {
    fn is_done(&self) -> bool {
        self.winner.is_some()
    }

    fn winning_attempt(&self) -> &MapAttempt {
        &self.attempts[usize::from(self.winner.expect("task finished"))]
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ReduceState {
    Waiting,
    Fetching,
    Computing,
    Committing,
    Done,
}

#[derive(Debug)]
struct ReduceTask {
    vm: Option<VmId>,
    state: ReduceState,
    fetches_done: u32,
    input_mb: f64,
    /// Commit legs outstanding: local disk + replication flows.
    commit_legs: u32,
    /// Open span for the current phase (shuffle/reduce/commit).
    span: SpanId,
    /// Contention-free duration of the most recently completed fetch,
    /// µs; attached to the shuffle span for critical-path attribution.
    last_fetch_ideal_us: u64,
    /// Bottleneck link class of the most recently completed fetch
    /// (`rack-up`, `node-rx`, `rate-cap`, …); attached to the shuffle
    /// span so shuffle-network-wait can be decomposed by link class.
    last_fetch_bottleneck: &'static str,
}

struct Sim<'a, R: Recorder> {
    rec: &'a R,
    /// Timeline lane offset: VM `i` draws on track `track_base + 1 + i`,
    /// the job-level lane is `track_base`. Lets several jobs share one
    /// recorder without colliding (the cloud simulator offsets per request).
    track_base: u64,
    /// Added to every simulated timestamp, so a job embedded in a larger
    /// simulation lands at its real start time on the shared timeline.
    t0_us: u64,
    job_span: SpanId,
    cluster: &'a VirtualCluster,
    job: &'a JobConfig,
    layout: HdfsLayout,
    engine: Engine<Event>,
    net: FlowNet,
    net_epoch: u64,
    flow_purposes: Vec<FlowPurpose>,
    maps: Vec<MapTask>,
    reducers: Vec<ReduceTask>,
    map_sched: MapScheduler,
    scheduler_policy: SchedulerPolicy,
    speculative: bool,
    speculative_attempts: u32,
    speculative_wins: u32,
    reducer_queue: VecDeque<u32>,
    free_map_slots: Vec<u32>,
    free_reduce_slots: Vec<u32>,
    maps_done: u32,
    reducers_done: u32,
    // metrics accumulation
    local_shuffle_bytes: u64,
    rack_shuffle_bytes: u64,
    remote_shuffle_bytes: u64,
    maps_finished_at: SimTime,
    shuffle_finished_at: SimTime,
    outstanding_fetch_flows: u64,
    /// Completed shuffle bytes keyed by the bottleneck that bound the
    /// fetch (`rack-up`, `node-rx`, `rate-cap`, …) — the link-class
    /// decomposition of shuffle network time.
    shuffle_bottleneck_bytes: BTreeMap<&'static str, u64>,
    /// Run the health watchdog's job-end invariant audits (shuffle
    /// conservation, flow starvation). Read-only: never perturbs the sim.
    audit: bool,
    /// `alert.*` events fired by the audits, reported to the caller.
    alerts_fired: u64,
}

/// Run one job on one virtual cluster and return its metrics.
///
/// Deterministic for a given `(cluster, job, params)` triple.
///
/// ```
/// use std::sync::Arc;
/// use vc_mapreduce::{simulate_job, JobConfig, VirtualCluster};
/// use vc_mapreduce::engine::SimParams;
/// use vc_topology::{generate, DistanceTiers, NodeId};
///
/// let topo = Arc::new(generate::uniform(2, 4, DistanceTiers::paper_experiment()));
/// let cluster = VirtualCluster::homogeneous(
///     &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)], 4, topo);
/// let metrics = simulate_job(&cluster, &JobConfig::paper_wordcount(), &SimParams::default());
/// assert_eq!(metrics.num_maps, 32);
/// assert!(metrics.runtime.as_secs_f64() > 0.0);
/// ```
///
/// # Panics
/// Panics on invalid configuration (zero reducers, empty cluster, …).
pub fn simulate_job(cluster: &VirtualCluster, job: &JobConfig, params: &SimParams) -> JobMetrics {
    simulate_job_with(cluster, job, params, &NoopRecorder, 0, 0, None, None).0
}

/// [`simulate_job`] with observability: spans, events and metrics land on
/// `rec`. VM `i` draws on track `track_base + 1 + i` and every timestamp
/// is offset by `t0_us`, so multiple jobs can share one recorder (the
/// cloud simulator passes each request's start time and a disjoint track
/// range).
///
/// # Panics
/// Panics on invalid configuration (zero reducers, empty cluster, …).
pub fn simulate_job_traced(
    cluster: &VirtualCluster,
    job: &JobConfig,
    params: &SimParams,
    rec: &dyn Recorder,
    track_base: u64,
    t0_us: u64,
) -> JobMetrics {
    simulate_job_with(cluster, job, params, &rec, track_base, t0_us, None, None).0
}

/// [`simulate_job_traced`] plus a windowed cross-rack traffic rollup:
/// when `window_us` is set, the job's `FlowNet` apportions every RackUp
/// byte it drains over absolute sim-time windows (`t0_us` maps the
/// job-local clock onto the shared timeline), returned as sorted
/// `(window_index, bytes)` pairs for the `ts.net.*` time-series. The
/// rollup is pure observation — metrics are identical with it on or off.
///
/// # Panics
/// Panics on invalid configuration (zero reducers, empty cluster, …).
pub fn simulate_job_traced_windowed(
    cluster: &VirtualCluster,
    job: &JobConfig,
    params: &SimParams,
    rec: &dyn Recorder,
    track_base: u64,
    t0_us: u64,
    window_us: Option<u64>,
) -> (JobMetrics, Vec<(u64, f64)>) {
    let (metrics, rollup, _) = simulate_job_with(
        cluster, job, params, &rec, track_base, t0_us, window_us, None,
    );
    (metrics, rollup)
}

/// [`simulate_job_traced_windowed`] plus the health watchdog's per-job
/// invariant audits: at job end, the per-link shuffle-byte integrals are
/// checked against the engine's own shuffle accounting (exact integer
/// equality — the PR-5 spot check made continuous) and the flow network
/// must hold no starved flows. Violations emit `alert.*` events instead
/// of panicking; the third return is the number of alerts fired. Audits
/// are read-only, so metrics are bit-identical with auditing on or off.
///
/// # Panics
/// Panics on invalid configuration (zero reducers, empty cluster, …).
#[allow(clippy::too_many_arguments)]
pub fn simulate_job_audited(
    cluster: &VirtualCluster,
    job: &JobConfig,
    params: &SimParams,
    rec: &dyn Recorder,
    track_base: u64,
    t0_us: u64,
    window_us: Option<u64>,
    health: Option<&HealthPolicy>,
) -> (JobMetrics, Vec<(u64, f64)>, u64) {
    simulate_job_with(
        cluster, job, params, &rec, track_base, t0_us, window_us, health,
    )
}

#[allow(clippy::too_many_arguments)]
fn simulate_job_with<R: Recorder>(
    cluster: &VirtualCluster,
    job: &JobConfig,
    params: &SimParams,
    rec: &R,
    track_base: u64,
    t0_us: u64,
    window_us: Option<u64>,
    health: Option<&HealthPolicy>,
) -> (JobMetrics, Vec<(u64, f64)>, u64) {
    job.validate();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let num_maps = job.num_maps();
    let sizes: Vec<f64> = (0..num_maps).map(|i| job.split_size_mb(i)).collect();
    let layout = HdfsLayout::place(cluster, &sizes, job.replication, &mut rng);

    use rand::Rng as _;
    let maps = sizes
        .iter()
        .map(|&size_mb| MapTask {
            size_mb,
            output_mb: size_mb * job.workload.map_selectivity,
            slowdown: if rng.gen::<f64>() < params.straggler_prob {
                params.straggler_slowdown
            } else {
                1.0
            },
            attempts: Vec::new(),
            winner: None,
        })
        .collect();
    let total_map_output: f64 = sizes.iter().map(|s| s * job.workload.map_selectivity).sum();
    let reducers = (0..job.num_reducers)
        .map(|_| ReduceTask {
            vm: None,
            state: ReduceState::Waiting,
            fetches_done: 0,
            input_mb: total_map_output / f64::from(job.num_reducers),
            commit_legs: 0,
            span: SpanId::NULL,
            last_fetch_ideal_us: 0,
            last_fetch_bottleneck: "none",
        })
        .collect();

    if rec.enabled() {
        rec.track_name(TrackId(track_base), "job");
        for (i, vm) in cluster.vms().iter().enumerate() {
            rec.track_name(
                TrackId(track_base + 1 + i as u64),
                &format!("vm{i}@node{}", vm.node.0),
            );
        }
    }
    let job_span = rec.span_begin(
        TrackId(track_base),
        "job",
        t0_us,
        &[
            ("maps", AttrValue::from(num_maps as u64)),
            ("reducers", AttrValue::from(u64::from(job.num_reducers))),
            (
                "cluster_distance",
                AttrValue::from(cluster.affinity_distance()),
            ),
        ],
    );

    let mut net = FlowNet::new(cluster.topology_arc(), params.net);
    // Time-series link samples are trace-only; the byte/busy/peak
    // accumulators inside FlowNet run unconditionally, so recorded and
    // unrecorded runs stay bit-identical.
    net.set_sampling(rec.enabled());
    if let Some(w) = window_us {
        net.set_window_rollup(w, t0_us);
    }
    let mut sim = Sim {
        rec,
        track_base,
        t0_us,
        job_span,
        cluster,
        job,
        layout,
        engine: Engine::new(),
        net,
        net_epoch: 0,
        flow_purposes: Vec::new(),
        maps,
        reducers,
        map_sched: MapScheduler::new(num_maps),
        scheduler_policy: params.scheduler,
        speculative: params.speculative_execution,
        speculative_attempts: 0,
        speculative_wins: 0,
        reducer_queue: (0..job.num_reducers).collect(),
        free_map_slots: cluster.vms().iter().map(|v| v.map_slots).collect(),
        free_reduce_slots: cluster.vms().iter().map(|v| v.reduce_slots).collect(),
        maps_done: 0,
        reducers_done: 0,
        local_shuffle_bytes: 0,
        rack_shuffle_bytes: 0,
        remote_shuffle_bytes: 0,
        maps_finished_at: SimTime::ZERO,
        shuffle_finished_at: SimTime::ZERO,
        outstanding_fetch_flows: 0,
        shuffle_bottleneck_bytes: BTreeMap::new(),
        audit: health.is_some_and(|h| h.invariants) && rec.enabled(),
        alerts_fired: 0,
    };
    let metrics = sim.run();
    let rollup = sim.net.take_window_rollup();
    (metrics, rollup, sim.alerts_fired)
}

const MB: f64 = 1_000_000.0;

impl<R: Recorder> Sim<'_, R> {
    /// Simulated time as a shared-timeline timestamp.
    fn t(&self, now: SimTime) -> u64 {
        self.t0_us + now.as_micros()
    }

    /// Timeline lane of a VM.
    fn vm_track(&self, vm_index: usize) -> TrackId {
        TrackId(self.track_base + 1 + vm_index as u64)
    }

    fn run(&mut self) -> JobMetrics {
        let _job_timer = vc_obs::PhaseTimer::start(self.rec, vc_obs::prof::MR_JOB);
        self.schedule_reducers();
        self.fill_map_slots();
        self.resync_net();

        while self.reducers_done < self.job.num_reducers {
            let Some((now, event)) = self.engine.pop_traced(self.rec) else {
                panic!(
                    "simulation deadlock: {} of {} reducers done, {} flows active",
                    self.reducers_done,
                    self.job.num_reducers,
                    self.net.active_flows()
                );
            };
            match event {
                Event::NetWake { epoch } => {
                    if epoch != self.net_epoch {
                        continue; // stale wake-up; a newer one is scheduled
                    }
                    let completed = self.net.take_completed(now);
                    for done in completed {
                        let purpose = self.flow_purposes[done.token as usize];
                        if let FlowPurpose::Shuffle { reducer, .. } = purpose {
                            let label = self.bottleneck_label(done.bottleneck);
                            self.reducers[reducer as usize].last_fetch_bottleneck = label;
                            *self.shuffle_bottleneck_bytes.entry(label).or_insert(0) += done.bytes;
                        }
                        self.dispatch_flow(now, purpose);
                    }
                }
                Event::MapReadDone { task, attempt } => self.on_map_read_done(now, task, attempt),
                Event::MapCpuDone { task, attempt } => self.on_map_cpu_done(now, task, attempt),
                Event::ReduceCpuDone { reducer } => self.on_reduce_cpu_done(now, reducer),
                Event::ReduceDiskDone { reducer } => self.on_commit_leg_done(now, reducer),
            }
            self.resync_net();
        }

        let runtime = self.engine.now();
        self.rec.span_end(self.job_span, self.t(runtime));
        let (mut dl, mut rl, mut rm) = (0, 0, 0);
        for m in &self.maps {
            match m.winning_attempt().locality {
                Locality::NodeLocal => dl += 1,
                Locality::RackLocal => rl += 1,
                Locality::Remote => rm += 1,
            }
        }
        self.rec.counter_add("mr.maps.node_local", dl as u64);
        self.rec.counter_add("mr.maps.rack_local", rl as u64);
        self.rec.counter_add("mr.maps.remote", rm as u64);
        self.rec.counter_add(
            "mr.speculative_attempts",
            u64::from(self.speculative_attempts),
        );
        self.rec
            .counter_add("mr.speculative_wins", u64::from(self.speculative_wins));
        self.rec
            .histogram_record("mr.job_runtime_us", runtime.as_micros());

        // Link telemetry. The FlowNet accumulators are always on, so the
        // derived JobMetrics fields below are identical with or without a
        // recorder; only the metric export is skipped for Noop recorders
        // (every call is a no-op there anyway).
        let mut peak_rack_uplink_utilization = 0.0f64;
        let mut rack_uplink_bytes = 0u64;
        let mut node_rx_shuffle_bytes = 0u64;
        for (info, stats) in self.net.links().iter().zip(self.net.link_stats()) {
            if info.class == LinkClass::RackUp {
                if stats.peak_utilization > peak_rack_uplink_utilization {
                    peak_rack_uplink_utilization = stats.peak_utilization;
                }
                rack_uplink_bytes += stats.completed_bytes();
            }
            if info.class == LinkClass::NodeRx {
                node_rx_shuffle_bytes += stats.shuffle_bytes;
            }
            if stats.completed_bytes() == 0 && stats.bytes_total == 0.0 {
                continue; // idle link: keep the snapshot small
            }
            let base = format!("net.link.{}", info.name);
            self.rec.counter_add(
                intern_metric_name(format!("{base}.bytes")),
                stats.bytes_total.round() as u64,
            );
            self.rec.counter_add(
                intern_metric_name(format!("{base}.shuffle_bytes")),
                stats.shuffle_bytes,
            );
            self.rec.counter_add(
                intern_metric_name(format!("{base}.busy_us")),
                stats.busy_us.round() as u64,
            );
            self.rec.counter_add(
                intern_metric_name(format!("{base}.binding_events")),
                stats.binding_events,
            );
            self.rec.gauge_max(
                intern_metric_name(format!("{base}.peak_util")),
                stats.peak_utilization,
            );
            self.rec.histogram_record(
                intern_metric_name(format!("net.link.peak_util_pct.{}", info.class.label())),
                (stats.peak_utilization * 100.0).round() as u64,
            );
        }
        for (label, bytes) in &self.shuffle_bottleneck_bytes {
            self.rec.counter_add(
                intern_metric_name(format!("net.shuffle.bottleneck_bytes.{label}")),
                *bytes,
            );
        }

        // Health watchdog: job-end invariant audits. Both checks are
        // exact — the link integrals and shuffle accounting share every
        // byte — so any alert here is a simulator bug, not noise.
        if self.audit {
            let mut sink = AlertSink::new();
            let end_us = self.t(runtime);
            let track = Some(TrackId(self.track_base));
            let engine_shuffle = self.rack_shuffle_bytes + self.remote_shuffle_bytes;
            if node_rx_shuffle_bytes != engine_shuffle {
                sink.emit(
                    self.rec,
                    end_us,
                    track,
                    Severity::Critical,
                    "netsim",
                    rules::SHUFFLE_CONSERVATION,
                    &[
                        ("link_bytes", AttrValue::U64(node_rx_shuffle_bytes)),
                        ("engine_bytes", AttrValue::U64(engine_shuffle)),
                    ],
                );
            }
            let starved = self.net.starved_flows();
            if !starved.is_empty() {
                sink.emit(
                    self.rec,
                    end_us,
                    track,
                    Severity::Critical,
                    "netsim",
                    rules::FLOW_STARVATION,
                    &[("flows", AttrValue::U64(starved.len() as u64))],
                );
            }
            self.alerts_fired = sink.fired();
        }

        // Fair-share solver effort (always accumulated inside FlowNet;
        // export is a no-op for Noop recorders). Everything except
        // `wall_us` is deterministic for a given workload and seed, which
        // is what makes these usable as CI regression-gate inputs.
        let solver = self.net.solver_stats();
        self.rec.counter_add("prof.solver.solves", solver.solves);
        self.rec
            .counter_add("prof.solver.flows", solver.flows_total);
        self.rec
            .counter_add("prof.solver.links_touched", solver.links_touched_total);
        self.rec
            .counter_add("prof.solver.iterations", solver.iterations_total);
        self.rec
            .counter_add("prof.solver.completion_batches", solver.completion_batches);
        self.rec
            .counter_add("prof.solver.batch_flows", solver.completion_batch_flows);
        self.rec
            .counter_add("prof.solver.flows_skipped", solver.flows_skipped_total);
        self.rec.counter_add("prof.solver.wall_us", solver.wall_us);
        self.rec
            .gauge_max("prof.solver.peak_flows", solver.peak_flows as f64);
        self.rec
            .gauge_max("prof.solver.peak_iterations", solver.peak_iterations as f64);

        JobMetrics {
            runtime,
            cluster_distance: self.cluster.affinity_distance(),
            num_maps: self.maps.len() as u32,
            num_reducers: self.job.num_reducers,
            data_local_maps: dl,
            rack_local_maps: rl,
            remote_maps: rm,
            local_shuffle_bytes: self.local_shuffle_bytes,
            rack_shuffle_bytes: self.rack_shuffle_bytes,
            remote_shuffle_bytes: self.remote_shuffle_bytes,
            maps_finished_at: self.maps_finished_at,
            shuffle_finished_at: self.shuffle_finished_at,
            speculative_attempts: self.speculative_attempts,
            speculative_wins: self.speculative_wins,
            rack_uplink_bytes,
            peak_rack_uplink_utilization,
        }
    }

    /// After every event: bump the network epoch, schedule a wake-up at
    /// the next predicted flow completion, and forward any link
    /// utilization samples to the recorder's counter tracks.
    fn resync_net(&mut self) {
        self.net_epoch += 1;
        if let Some(t) = self.net.next_event_time() {
            let at = t.max(self.engine.now());
            self.engine.schedule(
                at,
                Event::NetWake {
                    epoch: self.net_epoch,
                },
            );
        }
        if self.rec.enabled() {
            let samples = self.net.drain_link_samples();
            for s in samples {
                let name =
                    intern_metric_name(format!("net.link.{}.util", self.net.links()[s.link].name));
                self.rec
                    .counter_sample(name, self.t0_us + s.t_us, s.utilization);
            }
        }
    }

    /// Human label for a completed flow's bottleneck attribution.
    fn bottleneck_label(&self, b: Bottleneck) -> &'static str {
        match b {
            Bottleneck::Link(r) => self.net.links()[r].class.label(),
            Bottleneck::RateCap => "rate-cap",
            Bottleneck::Unconstrained => "none",
        }
    }

    fn start_flow(&mut self, now: SimTime, src: NodeId, dst: NodeId, bytes: u64, p: FlowPurpose) {
        let token = self.flow_purposes.len() as u64;
        let class = match p {
            FlowPurpose::MapRead { .. } => FlowClass::MapRead,
            FlowPurpose::Shuffle { .. } => FlowClass::Shuffle,
            FlowPurpose::OutputWrite { .. } => FlowClass::OutputWrite,
        };
        self.flow_purposes.push(p);
        self.net
            .start_flow_classed(now, src, dst, bytes, token, class);
    }

    fn dispatch_flow(&mut self, now: SimTime, purpose: FlowPurpose) {
        match purpose {
            FlowPurpose::MapRead { task, attempt } => self.on_map_read_done(now, task, attempt),
            FlowPurpose::Shuffle { reducer, ideal_us } => {
                self.on_fetch_done(now, reducer, ideal_us)
            }
            FlowPurpose::OutputWrite { reducer } => self.on_commit_leg_done(now, reducer),
        }
    }

    // ---- reducers: slot assignment ----

    fn schedule_reducers(&mut self) {
        // Assign queued reducers to free reduce slots, FIFO over VM ids.
        while let Some(&r) = self.reducer_queue.front() {
            let slot = (0..self.cluster.len()).find(|&v| self.free_reduce_slots[v] > 0);
            let Some(vm_index) = slot else { return };
            self.reducer_queue.pop_front();
            self.free_reduce_slots[vm_index] -= 1;
            let span = self.rec.span_begin(
                self.vm_track(vm_index),
                "shuffle",
                self.t(self.engine.now()),
                &[("reducer", AttrValue::from(u64::from(r)))],
            );
            let reducer = &mut self.reducers[r as usize];
            reducer.vm = Some(VmId(vm_index as u32));
            reducer.state = ReduceState::Fetching;
            reducer.span = span;
            // Fetch every map output that is already done.
            let done_maps: Vec<(u32, f64, NodeId)> = self
                .maps
                .iter()
                .enumerate()
                .filter(|(_, m)| m.is_done())
                .map(|(i, m)| {
                    (
                        i as u32,
                        m.output_mb,
                        self.cluster.vm(m.winning_attempt().vm).node,
                    )
                })
                .collect();
            let now = self.engine.now();
            for (_map, output_mb, src) in done_maps {
                self.start_fetch(now, output_mb, src, r);
            }
            self.maybe_start_reduce_cpu(self.engine.now(), r);
        }
    }

    // ---- maps ----

    fn fill_map_slots(&mut self) {
        for vm_index in 0..self.cluster.len() {
            while self.free_map_slots[vm_index] > 0 {
                let vm = &self.cluster.vms()[vm_index];
                let Some((task, locality)) = self.map_sched.pick_for_with(
                    self.scheduler_policy,
                    vm,
                    &self.layout,
                    self.cluster,
                ) else {
                    break;
                };
                self.start_attempt(task, vm_index, locality);
            }
        }
        if self.speculative && self.map_sched.is_drained() {
            self.launch_speculative_attempts();
        }
    }

    /// Hadoop's speculative execution: once no fresh tasks remain, free
    /// slots re-run still-running maps; the first copy to finish wins.
    fn launch_speculative_attempts(&mut self) {
        for vm_index in 0..self.cluster.len() {
            while self.free_map_slots[vm_index] > 0 {
                // Slowest running task with a single attempt (Hadoop
                // backs up the worst-progressing task first); ties fall
                // back to the lowest id.
                let candidate = (0..self.maps.len())
                    .filter(|&t| {
                        let m = &self.maps[t];
                        !m.is_done()
                            && m.attempts.len() == 1
                            && m.attempts[0].vm.index() != vm_index
                    })
                    .max_by(|&a, &b| {
                        let (sa, sb) = (self.maps[a].slowdown, self.maps[b].slowdown);
                        sa.partial_cmp(&sb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(b.cmp(&a))
                    });
                let Some(task) = candidate else { return };
                let vm = &self.cluster.vms()[vm_index];
                let block = BlockId(task as u32);
                let locality = if self.layout.is_local(block, vm.node) {
                    Locality::NodeLocal
                } else if self.layout.is_rack_local(block, vm.node, self.cluster) {
                    Locality::RackLocal
                } else {
                    Locality::Remote
                };
                self.speculative_attempts += 1;
                self.start_attempt(task as u32, vm_index, locality);
            }
        }
    }

    /// Occupy a slot on `vm_index` and start the read phase of a new
    /// attempt of `task`.
    fn start_attempt(&mut self, task: u32, vm_index: usize, locality: Locality) {
        let now = self.engine.now();
        self.free_map_slots[vm_index] -= 1;
        let attempt = self.maps[task as usize].attempts.len() as u8;
        debug_assert!(attempt < 2, "at most one backup per task");
        let span = self.rec.span_begin(
            self.vm_track(vm_index),
            "map",
            self.t(now),
            &[
                ("task", AttrValue::from(u64::from(task))),
                ("attempt", AttrValue::from(u64::from(attempt))),
                ("locality", AttrValue::Str(locality.label())),
                ("speculative", AttrValue::Bool(attempt > 0)),
            ],
        );
        // Stragglers hit first attempts only; record the factor so the
        // critical-path analyzer can separate slack from useful map time.
        let slowdown = self.maps[task as usize].slowdown;
        if attempt == 0 && slowdown > 1.0 {
            self.rec
                .span_attr(span, "slowdown", AttrValue::from(slowdown));
        }
        if attempt > 0 {
            self.rec.event(
                "mr.speculative_launch",
                self.t(now),
                Some(self.vm_track(vm_index)),
                &[("task", AttrValue::from(u64::from(task)))],
            );
        }
        let vm = &self.cluster.vms()[vm_index];
        let m = &mut self.maps[task as usize];
        m.attempts.push(MapAttempt {
            vm: VmId(vm_index as u32),
            locality,
            started: now,
            span,
        });
        let size_mb = m.size_mb;
        if locality == Locality::NodeLocal {
            let read = SimTime::from_secs_f64(size_mb / vm.disk_mb_per_s);
            self.engine
                .schedule(now + read, Event::MapReadDone { task, attempt });
        } else {
            let src = self
                .layout
                .nearest_replica(BlockId(task), vm.node, self.cluster);
            let dst = vm.node;
            self.start_flow(
                now,
                src,
                dst,
                (size_mb * MB) as u64,
                FlowPurpose::MapRead { task, attempt },
            );
        }
    }

    fn on_map_read_done(&mut self, now: SimTime, task: u32, attempt: u8) {
        let m = &self.maps[task as usize];
        let att = m.attempts[usize::from(attempt)];
        if m.is_done() {
            // A sibling attempt already won; release this attempt's slot.
            self.rec.span_attr(att.span, "lost", AttrValue::Bool(true));
            self.rec.span_end(att.span, self.t(now));
            self.free_map_slots[att.vm.index()] += 1;
            self.fill_map_slots();
            return;
        }
        let vm = self.cluster.vm(att.vm);
        // Stragglers afflict first attempts; backups run clean.
        let slow = if attempt == 0 { m.slowdown } else { 1.0 };
        let compute_s = m.size_mb * self.job.workload.map_cpu_factor * slow / vm.slot_mb_per_s;
        let spill_s = m.output_mb / vm.disk_mb_per_s;
        self.engine.schedule(
            now + SimTime::from_secs_f64(compute_s + spill_s),
            Event::MapCpuDone { task, attempt },
        );
    }

    fn on_map_cpu_done(&mut self, now: SimTime, task: u32, attempt: u8) {
        let m = &self.maps[task as usize];
        let att = m.attempts[usize::from(attempt)];
        if m.is_done() {
            // Lost the race: discard output, release the slot.
            self.rec.span_attr(att.span, "lost", AttrValue::Bool(true));
            self.rec.span_end(att.span, self.t(now));
            self.free_map_slots[att.vm.index()] += 1;
            self.fill_map_slots();
            return;
        }
        self.rec.span_attr(att.span, "won", AttrValue::Bool(true));
        self.rec.span_end(att.span, self.t(now));
        self.rec.counter_add("mr.maps_done", 1);
        self.rec
            .histogram_record("mr.map_duration_us", (now - att.started).as_micros());
        self.maps[task as usize].winner = Some(attempt);
        if attempt > 0 {
            self.speculative_wins += 1;
            self.rec.event(
                "mr.speculative_win",
                self.t(now),
                Some(self.vm_track(att.vm.index())),
                &[("task", AttrValue::from(u64::from(task)))],
            );
        }
        self.maps_done += 1;
        if self.maps_done == self.maps.len() as u32 {
            self.maps_finished_at = now;
        }
        // Shuffle this output to every reducer already holding a slot.
        let src = self.cluster.vm(att.vm).node;
        let output_mb = self.maps[task as usize].output_mb;
        for r in 0..self.reducers.len() as u32 {
            if self.reducers[r as usize].vm.is_some()
                && self.reducers[r as usize].state != ReduceState::Done
            {
                self.start_fetch(now, output_mb, src, r);
            }
        }
        // Free the slot and pull more work.
        self.free_map_slots[att.vm.index()] += 1;
        self.fill_map_slots();
    }

    // ---- shuffle ----

    fn start_fetch(&mut self, now: SimTime, output_mb: f64, src: NodeId, reducer: u32) {
        let r_vm = self.reducers[reducer as usize]
            .vm
            .expect("fetching reducer has a vm");
        let dst = self.cluster.vm(r_vm).node;
        let bytes = (output_mb * MB / f64::from(self.job.num_reducers)) as u64;
        // Classify for Fig. 8.
        let shuffle_locality = if src == dst {
            self.local_shuffle_bytes += bytes;
            "node_local"
        } else if self.cluster.topology().same_rack(src, dst) {
            self.rack_shuffle_bytes += bytes;
            "rack_local"
        } else {
            self.remote_shuffle_bytes += bytes;
            "remote"
        };
        if self.rec.enabled() {
            self.rec.event(
                "mr.shuffle_fetch",
                self.t(now),
                Some(self.vm_track(r_vm.index())),
                &[
                    ("reducer", AttrValue::from(u64::from(reducer))),
                    ("bytes", AttrValue::from(bytes)),
                    ("locality", AttrValue::Str(shuffle_locality)),
                ],
            );
        }
        self.rec.counter_add(
            match shuffle_locality {
                "node_local" => "mr.shuffle.node_local_bytes",
                "rack_local" => "mr.shuffle.rack_local_bytes",
                _ => "mr.shuffle.remote_bytes",
            },
            bytes,
        );
        self.outstanding_fetch_flows += 1;
        let ideal_us = if self.rec.enabled() {
            self.net.isolated_transfer_time(src, dst, bytes).as_micros()
        } else {
            0
        };
        self.start_flow(
            now,
            src,
            dst,
            bytes,
            FlowPurpose::Shuffle { reducer, ideal_us },
        );
    }

    fn on_fetch_done(&mut self, now: SimTime, reducer: u32, ideal_us: u64) {
        self.outstanding_fetch_flows -= 1;
        self.reducers[reducer as usize].fetches_done += 1;
        self.reducers[reducer as usize].last_fetch_ideal_us = ideal_us;
        if self.outstanding_fetch_flows == 0 && self.maps_done == self.maps.len() as u32 {
            self.shuffle_finished_at = now;
        }
        self.maybe_start_reduce_cpu(now, reducer);
    }

    fn maybe_start_reduce_cpu(&mut self, now: SimTime, reducer: u32) {
        let all_maps_done = self.maps_done == self.maps.len() as u32;
        let r = &self.reducers[reducer as usize];
        if r.state == ReduceState::Fetching
            && all_maps_done
            && r.fetches_done == self.maps.len() as u32
        {
            if self.rec.enabled() {
                // Everything the critical-path analyzer needs to split the
                // shuffle tail: when the maps stopped producing, and the
                // contention-free duration of the gating (last) fetch.
                self.rec.span_attr(
                    r.span,
                    "maps_done_us",
                    AttrValue::from(self.t(self.maps_finished_at)),
                );
                self.rec.span_attr(
                    r.span,
                    "last_fetch_ideal_us",
                    AttrValue::from(r.last_fetch_ideal_us),
                );
                self.rec.span_attr(
                    r.span,
                    "last_fetch_bottleneck",
                    AttrValue::Str(r.last_fetch_bottleneck),
                );
            }
            self.rec.span_end(r.span, self.t(now));
            let vm_id = r.vm.expect("computing reducer has a vm");
            let span = self.rec.span_begin(
                self.vm_track(vm_id.index()),
                "reduce",
                self.t(now),
                &[("reducer", AttrValue::from(u64::from(reducer)))],
            );
            let r = &mut self.reducers[reducer as usize];
            r.state = ReduceState::Computing;
            r.span = span;
            let vm = self.cluster.vm(vm_id);
            let compute_s = r.input_mb * self.job.workload.reduce_cpu_factor / vm.slot_mb_per_s;
            self.engine.schedule(
                now + SimTime::from_secs_f64(compute_s),
                Event::ReduceCpuDone { reducer },
            );
        }
    }

    // ---- commit (reduce → DFS) ----

    fn on_reduce_cpu_done(&mut self, now: SimTime, reducer: u32) {
        let old_span = self.reducers[reducer as usize].span;
        self.rec.span_end(old_span, self.t(now));
        let vm_index = self.reducers[reducer as usize]
            .vm
            .expect("committing reducer has a vm")
            .index();
        let span = self.rec.span_begin(
            self.vm_track(vm_index),
            "commit",
            self.t(now),
            &[("reducer", AttrValue::from(u64::from(reducer)))],
        );
        let r = &mut self.reducers[reducer as usize];
        debug_assert_eq!(r.state, ReduceState::Computing);
        r.state = ReduceState::Committing;
        r.span = span;
        let vm_id = r.vm.expect("committing reducer has a vm");
        let vm = self.cluster.vm(vm_id);
        let output_mb = r.input_mb * self.job.workload.reduce_selectivity;
        // Leg 1: local disk write.
        r.commit_legs = 1;
        let disk = SimTime::from_secs_f64(output_mb / vm.disk_mb_per_s);
        self.engine
            .schedule(now + disk, Event::ReduceDiskDone { reducer });
        // Legs 2..replication: pipeline to other nodes (off-rack first, per
        // HDFS policy).
        let topo = self.cluster.topology();
        let mut targets: Vec<NodeId> = self
            .cluster
            .nodes()
            .into_iter()
            .filter(|&n| n != vm.node)
            .collect();
        // HDFS policy: prefer a *different* rack for fault tolerance, but
        // the nearest such (same cloud before WAN); remaining replicas fill
        // by distance.
        targets.sort_by_key(|&n| (topo.same_rack(n, vm.node), topo.distance(n, vm.node), n));
        targets.truncate(self.job.replication.saturating_sub(1) as usize);
        let bytes = (output_mb * MB) as u64;
        for dst in targets {
            self.reducers[reducer as usize].commit_legs += 1;
            self.start_flow(
                now,
                vm.node,
                dst,
                bytes,
                FlowPurpose::OutputWrite { reducer },
            );
        }
    }

    fn on_commit_leg_done(&mut self, now: SimTime, reducer: u32) {
        let r = &mut self.reducers[reducer as usize];
        debug_assert_eq!(r.state, ReduceState::Committing);
        r.commit_legs -= 1;
        if r.commit_legs == 0 {
            r.state = ReduceState::Done;
            let span = r.span;
            self.reducers_done += 1;
            let vm_id = r.vm.expect("done reducer has a vm");
            self.rec.span_end(span, self.t(now));
            self.rec.counter_add("mr.reducers_done", 1);
            self.free_reduce_slots[vm_id.index()] += 1;
            self.schedule_reducers();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use std::sync::Arc;
    use vc_topology::{generate, DistanceTiers};

    fn topo() -> Arc<vc_topology::Topology> {
        Arc::new(generate::uniform(2, 4, DistanceTiers::paper_experiment()))
    }

    fn compact_cluster() -> VirtualCluster {
        // 4 VMs on 4 nodes of one rack.
        VirtualCluster::homogeneous(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)], 4, topo())
    }

    fn spread_cluster() -> VirtualCluster {
        // 4 VMs across both racks.
        VirtualCluster::homogeneous(&[NodeId(0), NodeId(1), NodeId(4), NodeId(5)], 4, topo())
    }

    fn small_job() -> JobConfig {
        JobConfig {
            workload: Workload::wordcount(),
            input_mb: 8.0 * 64.0,
            split_mb: 64.0,
            num_reducers: 1,
            replication: 3,
        }
    }

    #[test]
    fn job_completes_with_sane_metrics() {
        let m = simulate_job(&compact_cluster(), &small_job(), &SimParams::default());
        assert_eq!(m.num_maps, 8);
        assert_eq!(m.num_reducers, 1);
        assert_eq!(m.data_local_maps + m.rack_local_maps + m.remote_maps, 8);
        assert!(m.runtime > SimTime::ZERO);
        assert!(m.maps_finished_at <= m.shuffle_finished_at);
        assert!(m.shuffle_finished_at <= m.runtime);
        assert!(m.total_shuffle_bytes() > 0);
    }

    #[test]
    fn deterministic() {
        let a = simulate_job(&compact_cluster(), &small_job(), &SimParams::default());
        let b = simulate_job(&compact_cluster(), &small_job(), &SimParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn compact_cluster_no_remote_maps() {
        // A single-rack cluster can never have worse than rack-local reads.
        let m = simulate_job(&compact_cluster(), &small_job(), &SimParams::default());
        assert_eq!(m.remote_maps, 0);
        assert_eq!(m.cluster_distance, 1 + 1 + 1);
    }

    #[test]
    fn spread_cluster_larger_distance_and_slower() {
        let compact = simulate_job(&compact_cluster(), &small_job(), &SimParams::default());
        let spread = simulate_job(&spread_cluster(), &small_job(), &SimParams::default());
        assert!(spread.cluster_distance > compact.cluster_distance);
        // With a shuffle-heavy workload the gap is guaranteed; WordCount's
        // combiner makes it small, so use TeraSort for the strict check.
        let ts_job = JobConfig {
            workload: Workload::terasort(),
            ..small_job()
        };
        let c = simulate_job(&compact_cluster(), &ts_job, &SimParams::default());
        let s = simulate_job(&spread_cluster(), &ts_job, &SimParams::default());
        assert!(
            s.runtime > c.runtime,
            "spread {} should be slower than compact {}",
            s.runtime,
            c.runtime
        );
    }

    #[test]
    fn single_vm_cluster_all_local() {
        let vc = VirtualCluster::homogeneous(&[NodeId(0)], 1, topo());
        let job = JobConfig {
            replication: 1,
            ..small_job()
        };
        let m = simulate_job(&vc, &job, &SimParams::default());
        assert_eq!(m.data_local_maps, m.num_maps);
        assert_eq!(m.remote_shuffle_bytes, 0);
        assert_eq!(m.rack_shuffle_bytes, 0);
        assert_eq!(m.non_local_shuffle_fraction(), 0.0);
        assert_eq!(m.cluster_distance, 0);
    }

    #[test]
    fn reducer_waves_when_fewer_slots() {
        // 1 VM with 1 reduce slot, 3 reducers: must run in waves and finish.
        let vc = VirtualCluster::homogeneous(&[NodeId(0), NodeId(1)], 2, topo());
        let job = JobConfig {
            num_reducers: 3,
            ..small_job()
        };
        let m = simulate_job(&vc, &job, &SimParams::default());
        assert_eq!(m.num_reducers, 3);
        assert!(m.runtime > SimTime::ZERO);
    }

    #[test]
    fn more_reducers_spread_shuffle() {
        let job1 = small_job();
        let job4 = JobConfig {
            num_reducers: 4,
            ..small_job()
        };
        let m1 = simulate_job(&compact_cluster(), &job1, &SimParams::default());
        let m4 = simulate_job(&compact_cluster(), &job4, &SimParams::default());
        // Same total shuffle volume (±rounding), different fan-out.
        let t1 = m1.total_shuffle_bytes() as f64;
        let t4 = m4.total_shuffle_bytes() as f64;
        assert!((t1 - t4).abs() / t1 < 0.01, "shuffle volumes {t1} vs {t4}");
    }

    #[test]
    fn shuffle_heavy_workload_moves_more() {
        let wc = simulate_job(&compact_cluster(), &small_job(), &SimParams::default());
        let ts = simulate_job(
            &compact_cluster(),
            &JobConfig {
                workload: Workload::terasort(),
                ..small_job()
            },
            &SimParams::default(),
        );
        assert!(ts.total_shuffle_bytes() > 10 * wc.total_shuffle_bytes());
        assert!(ts.runtime > wc.runtime);
    }

    #[test]
    fn speculation_beats_stragglers() {
        // Half the first attempts straggle 8x; backups rescue them.
        // Seed chosen so the straggler draws are mixed (some attempts
        // straggle, some run clean) — the scenario speculation targets.
        let straggly = SimParams {
            seed: 2,
            straggler_prob: 0.5,
            straggler_slowdown: 8.0,
            speculative_execution: false,
            ..SimParams::default()
        };
        let with_spec = SimParams {
            speculative_execution: true,
            ..straggly.clone()
        };
        // One slot per map: with no second wave competing for slots,
        // backups launch as soon as the first clean maps finish and beat
        // the 8x primaries by a wide margin. (On a slot-starved cluster
        // the backup and straggler finish on the same tick and FIFO event
        // order keeps the primary's win.)
        let cluster =
            VirtualCluster::homogeneous(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)], 8, topo());
        let job = small_job();
        let slow = simulate_job(&cluster, &job, &straggly);
        let fast = simulate_job(&cluster, &job, &with_spec);
        assert_eq!(slow.speculative_attempts, 0);
        assert!(
            fast.speculative_attempts > 0,
            "drained pool must trigger backups"
        );
        assert!(
            fast.speculative_wins > 0,
            "8x stragglers must lose the race"
        );
        assert!(
            fast.runtime < slow.runtime,
            "speculation {fast:?} should beat stragglers {slow:?}"
        );
        assert_eq!(fast.num_maps, slow.num_maps);
    }

    #[test]
    fn traced_run_records_spans_and_metrics() {
        use vc_obs::MemRecorder;
        let rec = MemRecorder::new();
        let m = simulate_job_traced(
            &compact_cluster(),
            &small_job(),
            &SimParams::default(),
            &rec,
            0,
            0,
        );
        // Tracing must not perturb the simulation.
        assert_eq!(
            m,
            simulate_job(&compact_cluster(), &small_job(), &SimParams::default())
        );
        let spans = rec.spans();
        let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
        assert_eq!(count("job"), 1);
        assert_eq!(count("map"), 8);
        assert_eq!(count("shuffle"), 1);
        assert_eq!(count("reduce"), 1);
        assert_eq!(count("commit"), 1);
        assert_eq!(rec.open_span_count(), 0, "all spans closed at job end");
        // Every map span carries a locality label.
        for s in spans.iter().filter(|s| s.name == "map") {
            let loc = s
                .attrs
                .iter()
                .find(|(k, _)| *k == "locality")
                .and_then(|(_, v)| v.as_str())
                .expect("map span has locality");
            assert!(["node_local", "rack_local", "remote"].contains(&loc));
        }
        let snap = rec.metrics();
        assert_eq!(snap.counters["mr.maps_done"], 8);
        assert_eq!(snap.counters["mr.reducers_done"], 1);
        assert!(snap.counters["des.events_processed"] > 0);
        assert!(snap.histograms["mr.map_duration_us"].count == 8);
        // Job span covers the whole runtime on the shared timeline.
        let job = spans.iter().find(|s| s.name == "job").unwrap();
        assert_eq!(job.end_us, Some(m.runtime.as_micros()));
        // Track offsets shift lanes and timestamps for embedded jobs.
        let rec2 = MemRecorder::new();
        let _ = simulate_job_traced(
            &compact_cluster(),
            &small_job(),
            &SimParams::default(),
            &rec2,
            100,
            5_000,
        );
        let job2 = rec2.spans().into_iter().find(|s| s.name == "job").unwrap();
        assert_eq!(job2.track.0, 100);
        assert_eq!(job2.start_us, 5_000);
        assert_eq!(job2.end_us, Some(5_000 + m.runtime.as_micros()));
    }

    #[test]
    fn speculation_noop_without_stragglers() {
        let params = SimParams {
            speculative_execution: true,
            ..SimParams::default()
        };
        let base = simulate_job(&compact_cluster(), &small_job(), &SimParams::default());
        let spec = simulate_job(&compact_cluster(), &small_job(), &params);
        // Backups may launch near the end but the job outcome is unchanged
        // in locality accounting and roughly on runtime.
        assert_eq!(
            spec.data_local_maps + spec.rack_local_maps + spec.remote_maps,
            8
        );
        // Late backups add a little read/disk contention, so allow a
        // small margin rather than strict equality.
        assert!(
            spec.runtime.as_micros() as f64 <= base.runtime.as_micros() as f64 * 1.05,
            "speculation without stragglers should not materially slow the job: \
             {spec:?} vs {base:?}"
        );
        assert!(spec.speculative_wins <= spec.speculative_attempts);
    }

    #[test]
    fn straggler_draws_deterministic() {
        let params = SimParams {
            straggler_prob: 0.3,
            speculative_execution: true,
            ..SimParams::default()
        };
        let a = simulate_job(&spread_cluster(), &small_job(), &params);
        let b = simulate_job(&spread_cluster(), &small_job(), &params);
        assert_eq!(a, b);
    }
}
