//! Discrete-event MapReduce simulator over a provisioned virtual cluster.
//!
//! Stands in for the paper's physical Hadoop testbed (§V-B): the paper
//! runs WordCount on virtual clusters of varying *distance* and measures
//! job runtime, data locality, and shuffle locality (Figs. 7–8). This
//! crate reproduces the three data-movement phases of §I on top of the
//! `vc-netsim` flow network:
//!
//! 1. **DFS → map** — input blocks live in a simulated HDFS
//!    ([`hdfs`]) with rack-aware replication across the cluster's VMs;
//!    map tasks read locally when the slot-scheduler ([`scheduler`])
//!    achieves data locality, otherwise over the network;
//! 2. **map → reduce** — the shuffle: every reducer fetches its partition
//!    of every map output, contending for NICs and rack uplinks;
//! 3. **reduce → DFS** — reducers write replicated output back.
//!
//! [`simulate_job`] returns [`JobMetrics`] with the
//! exact quantities plotted in Figs. 7–8 (runtime, non-data-local map
//! count, shuffle-locality byte fractions, cluster affinity).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod engine;
pub mod hdfs;
pub mod job;
pub mod metrics;
pub mod scheduler;
pub mod workloads;

pub use cluster::{VirtualCluster, Vm, VmId};
pub use engine::{
    simulate_job, simulate_job_audited, simulate_job_traced, simulate_job_traced_windowed,
};
pub use hdfs::{Block, BlockId, HdfsLayout};
pub use job::JobConfig;
pub use metrics::{JobMetrics, Locality};
pub use workloads::Workload;
