//! Job-level measurements — the quantities behind Figs. 7 and 8.

use serde::{Deserialize, Serialize};
use vc_des::SimTime;

/// How close a map task ran to its input data (Hadoop's locality levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// A replica of the input block lives on the task's node.
    NodeLocal,
    /// A replica lives in the task's rack (but not on its node).
    RackLocal,
    /// All replicas are in other racks.
    Remote,
}

impl Locality {
    /// Stable label used in traces and metrics.
    pub fn label(self) -> &'static str {
        match self {
            Locality::NodeLocal => "node_local",
            Locality::RackLocal => "rack_local",
            Locality::Remote => "remote",
        }
    }
}

/// Everything measured about one simulated job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Total job runtime (submission to last reducer commit).
    pub runtime: SimTime,
    /// The cluster-affinity distance of the virtual cluster the job ran
    /// on (the x-axis of Fig. 7).
    pub cluster_distance: u64,
    /// Number of map tasks.
    pub num_maps: u32,
    /// Number of reduce tasks.
    pub num_reducers: u32,
    /// Map tasks that read node-locally.
    pub data_local_maps: u32,
    /// Map tasks that read rack-locally.
    pub rack_local_maps: u32,
    /// Map tasks that read across racks.
    pub remote_maps: u32,
    /// Shuffle bytes moved within a node.
    pub local_shuffle_bytes: u64,
    /// Shuffle bytes moved within a rack.
    pub rack_shuffle_bytes: u64,
    /// Shuffle bytes moved across racks.
    pub remote_shuffle_bytes: u64,
    /// When the last map task finished.
    pub maps_finished_at: SimTime,
    /// When the last shuffle fetch finished.
    pub shuffle_finished_at: SimTime,
    /// Backup map attempts launched by speculative execution.
    pub speculative_attempts: u32,
    /// Backup attempts that finished before the original.
    pub speculative_wins: u32,
    /// Exact bytes (all traffic classes) the job pushed through rack
    /// uplinks — the oversubscribed links the paper's placement
    /// optimization tries to avoid.
    pub rack_uplink_bytes: u64,
    /// Peak instantaneous utilization observed on any rack uplink
    /// (Σ flow rate / capacity ∈ [0, 1]).
    pub peak_rack_uplink_utilization: f64,
}

impl JobMetrics {
    /// Map tasks that were **not** data-local (the first series of
    /// Fig. 8).
    pub fn non_data_local_maps(&self) -> u32 {
        self.rack_local_maps + self.remote_maps
    }

    /// Total shuffle traffic in bytes.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.local_shuffle_bytes + self.rack_shuffle_bytes + self.remote_shuffle_bytes
    }

    /// Fraction of shuffle bytes that did **not** stay on-node (the
    /// second series of Fig. 8); `0.0` when there was no shuffle at all.
    pub fn non_local_shuffle_fraction(&self) -> f64 {
        let total = self.total_shuffle_bytes();
        if total == 0 {
            0.0
        } else {
            (self.rack_shuffle_bytes + self.remote_shuffle_bytes) as f64 / total as f64
        }
    }

    /// Fraction of shuffle bytes that crossed racks; `0.0` when there was
    /// no shuffle at all. This is the component that rides the
    /// oversubscribed uplinks.
    pub fn cross_rack_shuffle_fraction(&self) -> f64 {
        let total = self.total_shuffle_bytes();
        if total == 0 {
            0.0
        } else {
            self.remote_shuffle_bytes as f64 / total as f64
        }
    }

    /// Fraction of map tasks that were data-local.
    pub fn data_locality_fraction(&self) -> f64 {
        if self.num_maps == 0 {
            0.0
        } else {
            f64::from(self.data_local_maps) / f64::from(self.num_maps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobMetrics {
        JobMetrics {
            runtime: SimTime::from_secs(100),
            cluster_distance: 14,
            num_maps: 32,
            num_reducers: 1,
            data_local_maps: 24,
            rack_local_maps: 6,
            remote_maps: 2,
            local_shuffle_bytes: 10,
            rack_shuffle_bytes: 30,
            remote_shuffle_bytes: 60,
            maps_finished_at: SimTime::from_secs(80),
            shuffle_finished_at: SimTime::from_secs(90),
            speculative_attempts: 0,
            speculative_wins: 0,
            rack_uplink_bytes: 70,
            peak_rack_uplink_utilization: 0.5,
        }
    }

    #[test]
    fn derived_quantities() {
        let m = sample();
        assert_eq!(m.non_data_local_maps(), 8);
        assert_eq!(m.total_shuffle_bytes(), 100);
        assert!((m.non_local_shuffle_fraction() - 0.9).abs() < 1e-12);
        assert!((m.data_locality_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_shuffle_fraction_defined() {
        let m = JobMetrics {
            local_shuffle_bytes: 0,
            rack_shuffle_bytes: 0,
            remote_shuffle_bytes: 0,
            ..sample()
        };
        assert_eq!(m.non_local_shuffle_fraction(), 0.0);
        assert_eq!(m.cross_rack_shuffle_fraction(), 0.0);
    }

    #[test]
    fn cross_rack_fraction() {
        let m = sample();
        assert!((m.cross_rack_shuffle_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn locality_counts_partition_maps() {
        let m = sample();
        assert_eq!(
            m.data_local_maps + m.rack_local_maps + m.remote_maps,
            m.num_maps
        );
    }
}
