//! Simulated HDFS block placement over the cluster's physical nodes.
//!
//! Rack-aware replication as in Hadoop: the first replica lands on the
//! "writer" node (input blocks are loaded round-robin across the cluster,
//! modelling a balanced pre-existing dataset), the second on a node in a
//! *different* rack, the third on a different node of the second
//! replica's rack; further replicas fill remaining nodes. Replicas are
//! always on distinct nodes; if the cluster spans a single rack (or has
//! fewer nodes than the replication factor), placement degrades
//! gracefully to whatever distinct nodes exist.

use crate::cluster::VirtualCluster;
use rand::seq::SliceRandom;
use rand::Rng;
use vc_topology::NodeId;

/// Identifier of an input block / split (dense index; block `i` feeds map
/// task `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// One HDFS block and the nodes holding its replicas.
#[derive(Debug, Clone)]
pub struct Block {
    /// Dense id (= map task index).
    pub id: BlockId,
    /// Block size, MB.
    pub size_mb: f64,
    /// Hosting nodes, primary first; distinct.
    pub replicas: Vec<NodeId>,
}

/// The block layout of one job's input.
#[derive(Debug, Clone)]
pub struct HdfsLayout {
    blocks: Vec<Block>,
}

impl HdfsLayout {
    /// Place `sizes.len()` blocks over the cluster with the given
    /// replication factor. Deterministic for a given RNG state.
    ///
    /// # Panics
    /// Panics if `replication == 0` or the cluster is empty.
    pub fn place(
        cluster: &VirtualCluster,
        sizes: &[f64],
        replication: u32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(replication > 0, "replication must be at least 1");
        let nodes = cluster.nodes();
        assert!(!nodes.is_empty(), "cluster has no nodes");
        let topo = cluster.topology();

        // Writers rotate through a shuffled node order: balanced but not
        // aligned with node ids, like a real pre-loaded dataset.
        let mut writers = nodes.clone();
        writers.shuffle(rng);

        let blocks = sizes
            .iter()
            .enumerate()
            .map(|(i, &size_mb)| {
                let primary = writers[i % writers.len()];
                let mut replicas = vec![primary];
                // Second replica: different rack if possible.
                let off_rack: Vec<NodeId> = nodes
                    .iter()
                    .copied()
                    .filter(|&n| !topo.same_rack(n, primary))
                    .collect();
                if let Some(&second) = off_rack.choose(rng) {
                    replicas.push(second);
                    // Third+: same rack as second, else anywhere distinct.
                    let mut third_pref: Vec<NodeId> = nodes
                        .iter()
                        .copied()
                        .filter(|&n| !replicas.contains(&n) && topo.same_rack(n, second))
                        .collect();
                    third_pref.shuffle(rng);
                    let mut rest: Vec<NodeId> = nodes
                        .iter()
                        .copied()
                        .filter(|&n| !replicas.contains(&n) && !third_pref.contains(&n))
                        .collect();
                    rest.shuffle(rng);
                    third_pref.extend(rest);
                    for n in third_pref {
                        if replicas.len() >= replication as usize {
                            break;
                        }
                        replicas.push(n);
                    }
                } else {
                    // Single-rack cluster: just pick distinct nodes.
                    let mut rest: Vec<NodeId> =
                        nodes.iter().copied().filter(|&n| n != primary).collect();
                    rest.shuffle(rng);
                    for n in rest {
                        if replicas.len() >= replication as usize {
                            break;
                        }
                        replicas.push(n);
                    }
                }
                Block {
                    id: BlockId(i as u32),
                    size_mb,
                    replicas,
                }
            })
            .collect();
        Self { blocks }
    }

    /// All blocks in id order.
    #[inline]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Look up one block.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Number of blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the layout is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether any replica of `block` lives on `node`.
    pub fn is_local(&self, block: BlockId, node: NodeId) -> bool {
        self.block(block).replicas.contains(&node)
    }

    /// Whether any replica of `block` shares a rack with `node`.
    pub fn is_rack_local(&self, block: BlockId, node: NodeId, cluster: &VirtualCluster) -> bool {
        self.block(block)
            .replicas
            .iter()
            .any(|&r| cluster.topology().same_rack(r, node))
    }

    /// The replica of `block` nearest to `node` (smallest distance, ties
    /// to the smaller node id).
    pub fn nearest_replica(
        &self,
        block: BlockId,
        node: NodeId,
        cluster: &VirtualCluster,
    ) -> NodeId {
        *self
            .block(block)
            .replicas
            .iter()
            .min_by_key(|&&r| (cluster.topology().distance(r, node), r))
            .expect("blocks always have at least one replica")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use vc_topology::{generate, DistanceTiers};

    fn cluster() -> VirtualCluster {
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::paper_experiment()));
        // VMs on nodes 0,1 (rack 0) and 3,4 (rack 1)
        VirtualCluster::homogeneous(&[NodeId(0), NodeId(1), NodeId(3), NodeId(4)], 4, topo)
    }

    #[test]
    fn replicas_distinct_and_count() {
        let c = cluster();
        let mut rng = StdRng::seed_from_u64(1);
        let layout = HdfsLayout::place(&c, &[64.0; 16], 3, &mut rng);
        assert_eq!(layout.len(), 16);
        for b in layout.blocks() {
            assert_eq!(b.replicas.len(), 3);
            let mut sorted = b.replicas.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn second_replica_off_rack() {
        let c = cluster();
        let mut rng = StdRng::seed_from_u64(2);
        let layout = HdfsLayout::place(&c, &[64.0; 8], 3, &mut rng);
        for b in layout.blocks() {
            assert!(
                !c.topology().same_rack(b.replicas[0], b.replicas[1]),
                "second replica must be off-rack when possible"
            );
        }
    }

    #[test]
    fn single_rack_cluster_degrades() {
        let topo = Arc::new(generate::uniform(1, 3, DistanceTiers::paper_experiment()));
        let c = VirtualCluster::homogeneous(&[NodeId(0), NodeId(1), NodeId(2)], 3, topo);
        let mut rng = StdRng::seed_from_u64(3);
        let layout = HdfsLayout::place(&c, &[64.0], 3, &mut rng);
        assert_eq!(layout.block(BlockId(0)).replicas.len(), 3);
    }

    #[test]
    fn replication_capped_by_node_count() {
        let topo = Arc::new(generate::uniform(1, 2, DistanceTiers::paper_experiment()));
        let c = VirtualCluster::homogeneous(&[NodeId(0), NodeId(1)], 2, topo);
        let mut rng = StdRng::seed_from_u64(4);
        let layout = HdfsLayout::place(&c, &[64.0], 3, &mut rng);
        assert_eq!(layout.block(BlockId(0)).replicas.len(), 2);
    }

    #[test]
    fn locality_queries() {
        let c = cluster();
        let mut rng = StdRng::seed_from_u64(5);
        let layout = HdfsLayout::place(&c, &[64.0], 1, &mut rng);
        let primary = layout.block(BlockId(0)).replicas[0];
        assert!(layout.is_local(BlockId(0), primary));
        assert!(layout.is_rack_local(BlockId(0), primary, &c));
        assert_eq!(layout.nearest_replica(BlockId(0), primary, &c), primary);
    }

    #[test]
    fn writers_balanced() {
        let c = cluster();
        let mut rng = StdRng::seed_from_u64(6);
        let layout = HdfsLayout::place(&c, &[64.0; 16], 1, &mut rng);
        // 16 blocks over 4 nodes round-robin -> exactly 4 primaries each.
        let mut counts = std::collections::HashMap::new();
        for b in layout.blocks() {
            *counts.entry(b.replicas[0]).or_insert(0u32) += 1;
        }
        for &c in counts.values() {
            assert_eq!(c, 4);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = cluster();
        let a = HdfsLayout::place(&c, &[64.0; 8], 3, &mut StdRng::seed_from_u64(7));
        let b = HdfsLayout::place(&c, &[64.0; 8], 3, &mut StdRng::seed_from_u64(7));
        for (x, y) in a.blocks().iter().zip(b.blocks()) {
            assert_eq!(x.replicas, y.replicas);
        }
    }
}
