//! Job configuration: input size, split size, reducer count, replication.

use crate::workloads::Workload;
use serde::{Deserialize, Serialize};

/// Configuration of one MapReduce job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobConfig {
    /// The application model.
    pub workload: Workload,
    /// Total input size in MB.
    pub input_mb: f64,
    /// HDFS block / input-split size in MB (Hadoop default: 64).
    pub split_mb: f64,
    /// Number of reduce tasks (the paper's experiment uses 1).
    pub num_reducers: u32,
    /// HDFS replication factor (Hadoop default: 3).
    pub replication: u32,
}

impl JobConfig {
    /// The paper's §V-B experiment: WordCount, **32 map tasks** and **one
    /// reduce task** — 32 × 64 MB = 2 GB of input.
    pub fn paper_wordcount() -> Self {
        Self {
            workload: Workload::wordcount(),
            input_mb: 32.0 * 64.0,
            split_mb: 64.0,
            num_reducers: 1,
            replication: 3,
        }
    }

    /// A job with the given workload and input, Hadoop-default split and
    /// replication.
    pub fn new(workload: Workload, input_mb: f64, num_reducers: u32) -> Self {
        Self {
            workload,
            input_mb,
            split_mb: 64.0,
            num_reducers,
            replication: 3,
        }
    }

    /// Number of map tasks: one per (possibly partial) split.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`validate`](Self::validate)).
    pub fn num_maps(&self) -> u32 {
        self.validate();
        (self.input_mb / self.split_mb).ceil() as u32
    }

    /// Input size of map task `index` (the last split may be partial).
    pub fn split_size_mb(&self, index: u32) -> f64 {
        let full = self.num_maps().saturating_sub(1);
        if index < full {
            self.split_mb
        } else {
            let rem = self.input_mb - f64::from(full) * self.split_mb;
            if rem > 0.0 {
                rem
            } else {
                self.split_mb
            }
        }
    }

    /// Validate the configuration.
    ///
    /// # Panics
    /// Panics if sizes are non-positive/non-finite, there are no
    /// reducers, or replication is zero.
    pub fn validate(&self) {
        self.workload.validate();
        assert!(
            self.input_mb.is_finite() && self.input_mb > 0.0,
            "input_mb must be positive"
        );
        assert!(
            self.split_mb.is_finite() && self.split_mb > 0.0,
            "split_mb must be positive"
        );
        assert!(self.num_reducers > 0, "need at least one reducer");
        assert!(self.replication > 0, "replication must be at least 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_job_has_32_maps_1_reducer() {
        let j = JobConfig::paper_wordcount();
        assert_eq!(j.num_maps(), 32);
        assert_eq!(j.num_reducers, 1);
        assert_eq!(j.split_size_mb(0), 64.0);
        assert_eq!(j.split_size_mb(31), 64.0);
    }

    #[test]
    fn partial_last_split() {
        let j = JobConfig {
            input_mb: 100.0,
            ..JobConfig::paper_wordcount()
        };
        assert_eq!(j.num_maps(), 2);
        assert_eq!(j.split_size_mb(0), 64.0);
        assert!((j.split_size_mb(1) - 36.0).abs() < 1e-9);
    }

    #[test]
    fn exact_multiple_splits() {
        let j = JobConfig {
            input_mb: 128.0,
            ..JobConfig::paper_wordcount()
        };
        assert_eq!(j.num_maps(), 2);
        assert_eq!(j.split_size_mb(1), 64.0);
    }

    #[test]
    #[should_panic(expected = "at least one reducer")]
    fn zero_reducers_rejected() {
        let j = JobConfig {
            num_reducers: 0,
            ..JobConfig::paper_wordcount()
        };
        j.validate();
    }

    #[test]
    #[should_panic(expected = "input_mb must be positive")]
    fn zero_input_rejected() {
        let j = JobConfig {
            input_mb: 0.0,
            ..JobConfig::paper_wordcount()
        };
        j.validate();
    }
}
