//! Paired run comparison: align two run documents and classify deltas.
//!
//! A *run document* is the metrics JSON a recorded `simulate*` run
//! writes: the [`crate::MetricsSnapshot`] object extended with a
//! [`crate::RunManifest`] under `"manifest"`, critical-path attribution
//! under `"attribution"`, and windowed time-series under
//! `"timeseries"`. [`diff`] checks the two manifests for comparability
//! (same schema, sampling window, and topology), aligns every section,
//! and classifies each delta as improved / regressed / neutral:
//!
//! * **Deterministic counters** (served, refused, shuffle bytes, solver
//!   effort, ...) are exact-match by default; a configurable relative
//!   tolerance widens the neutral band.
//! * **Directional metrics** carry a goodness direction (refusals down
//!   = improved, served up = improved); undirected metrics report as
//!   neutral changes.
//! * **Wall-clock metrics** (`prof.*.wall_us`, `prof.rss_peak_kb`) are
//!   *advisory*: reported, never counted as regressions — so a
//!   same-seed identity diff gates clean on a noisy machine.
//!
//! The [`DiffReport::explanation`] ranks attribution-category deltas,
//! uplink byte deltas, and gating-bottleneck shifts to *attribute* the
//! makespan delta, turning "candidate is 12% slower" into "12% slower,
//! 80% of it shuffle-network-wait behind rack1.up".

use crate::manifest::RunManifest;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Knobs for delta classification.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Relative tolerance in percent; deltas within it are neutral.
    /// 0 (the default) means deterministic exact-match.
    pub tolerance_pct: f64,
    /// How many entries each ranked explanation list keeps.
    pub top: usize,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tolerance_pct: 0.0,
            top: 5,
        }
    }
}

/// Goodness classification of one delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Moved in the metric's good direction.
    Improved,
    /// Moved in the metric's bad direction.
    Regressed,
    /// Unchanged, undirected, or within tolerance.
    Neutral,
}

impl Verdict {
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Regressed => "regressed",
            Verdict::Neutral => "neutral",
        }
    }
}

/// Which of a metric's two directions is "better".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerBetter,
    HigherBetter,
    /// No goodness direction — changes report as neutral.
    Undirected,
    /// Host wall-clock: reported but never gated on.
    Advisory,
}

/// Goodness direction for scalar metrics (counters, gauges, histogram
/// aggregates, and the synthetic `attribution.makespan_us`).
fn direction(name: &str) -> Direction {
    if name == "prof.rss_peak_kb" || (name.starts_with("prof.") && name.ends_with(".wall_us")) {
        return Direction::Advisory;
    }
    if name.starts_with("alert.total.") {
        return Direction::LowerBetter;
    }
    match name {
        "cloudsim.refused"
        | "cloudsim.batch_failed"
        | "mr.shuffle.remote_bytes"
        | "placement.dc.sum"
        | "cloudsim.wait_us.sum"
        | "mr.job_runtime_us.sum"
        | "mr.job_runtime_us.max"
        | "attribution.makespan_us" => Direction::LowerBetter,
        "cloudsim.served" | "mr.shuffle.node_local_bytes" => Direction::HigherBetter,
        _ => Direction::Undirected,
    }
}

/// Goodness direction for windowed `ts.*` series (judged on the mean
/// delta across aligned windows).
fn series_direction(name: &str) -> Direction {
    match name {
        "ts.queue.depth" | "ts.refused.delta" | "ts.cloud.frag" | "ts.net.rack_up_util" => {
            Direction::LowerBetter
        }
        "ts.served.delta" => Direction::HigherBetter,
        _ => Direction::Undirected,
    }
}

fn classify(baseline: f64, candidate: f64, dir: Direction, tolerance_pct: f64) -> Verdict {
    if baseline == candidate {
        return Verdict::Neutral;
    }
    if tolerance_pct > 0.0 {
        let scale = baseline.abs().max(f64::MIN_POSITIVE);
        if (candidate - baseline).abs() / scale * 100.0 <= tolerance_pct {
            return Verdict::Neutral;
        }
    }
    match dir {
        Direction::Undirected | Direction::Advisory => Verdict::Neutral,
        Direction::LowerBetter => {
            if candidate < baseline {
                Verdict::Improved
            } else {
                Verdict::Regressed
            }
        }
        Direction::HigherBetter => {
            if candidate > baseline {
                Verdict::Improved
            } else {
                Verdict::Regressed
            }
        }
    }
}

/// One changed scalar metric.
#[derive(Debug, Clone)]
pub struct Delta {
    pub name: String,
    pub baseline: f64,
    pub candidate: f64,
    pub verdict: Verdict,
    /// Wall-clock advisory metric: never counted as a regression.
    pub advisory: bool,
}

impl Delta {
    pub fn delta(&self) -> f64 {
        self.candidate - self.baseline
    }

    /// Candidate/baseline ratio (`None` when the baseline is zero).
    pub fn ratio(&self) -> Option<f64> {
        (self.baseline != 0.0).then(|| self.candidate / self.baseline)
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("baseline".to_string(), Value::F64(self.baseline)),
            ("candidate".to_string(), Value::F64(self.candidate)),
            ("delta".to_string(), Value::F64(self.delta())),
            (
                "verdict".to_string(),
                Value::Str(self.verdict.label().to_string()),
            ),
            ("advisory".to_string(), Value::Bool(self.advisory)),
        ])
    }
}

/// One changed `ts.*` series, judged over aligned window edges.
#[derive(Debug, Clone)]
pub struct SeriesDelta {
    pub name: String,
    /// Number of aligned windows compared (union of both runs' edges).
    pub windows: usize,
    /// Windows whose values differ.
    pub changed_windows: usize,
    pub mean_baseline: f64,
    pub mean_candidate: f64,
    pub max_abs_delta: f64,
    pub verdict: Verdict,
}

impl SeriesDelta {
    pub fn mean_delta(&self) -> f64 {
        self.mean_candidate - self.mean_baseline
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("windows".to_string(), Value::U64(self.windows as u64)),
            (
                "changed_windows".to_string(),
                Value::U64(self.changed_windows as u64),
            ),
            ("mean_baseline".to_string(), Value::F64(self.mean_baseline)),
            (
                "mean_candidate".to_string(),
                Value::F64(self.mean_candidate),
            ),
            ("mean_delta".to_string(), Value::F64(self.mean_delta())),
            ("max_abs_delta".to_string(), Value::F64(self.max_abs_delta)),
            (
                "verdict".to_string(),
                Value::Str(self.verdict.label().to_string()),
            ),
        ])
    }
}

/// One critical-path attribution category, summed across jobs.
#[derive(Debug, Clone)]
pub struct CategoryDelta {
    pub category: String,
    pub baseline_us: u64,
    pub candidate_us: u64,
}

impl CategoryDelta {
    pub fn delta_us(&self) -> i64 {
        self.candidate_us as i64 - self.baseline_us as i64
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("category".to_string(), Value::Str(self.category.clone())),
            ("baseline_us".to_string(), Value::U64(self.baseline_us)),
            ("candidate_us".to_string(), Value::U64(self.candidate_us)),
            ("delta_us".to_string(), Value::I64(self.delta_us())),
        ])
    }
}

/// One changed network link (rolled up from `net.link.*` telemetry).
#[derive(Debug, Clone)]
pub struct LinkDelta {
    pub link: String,
    pub bytes_baseline: u64,
    pub bytes_candidate: u64,
    pub busy_us_baseline: u64,
    pub busy_us_candidate: u64,
    pub peak_util_baseline: f64,
    pub peak_util_candidate: f64,
    pub verdict: Verdict,
}

impl LinkDelta {
    pub fn bytes_delta(&self) -> i64 {
        self.bytes_candidate as i64 - self.bytes_baseline as i64
    }

    /// Rack uplinks are the cross-rack bottleneck the paper optimises.
    pub fn is_uplink(&self) -> bool {
        self.link.ends_with(".up")
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("link".to_string(), Value::Str(self.link.clone())),
            (
                "bytes_baseline".to_string(),
                Value::U64(self.bytes_baseline),
            ),
            (
                "bytes_candidate".to_string(),
                Value::U64(self.bytes_candidate),
            ),
            ("bytes_delta".to_string(), Value::I64(self.bytes_delta())),
            (
                "busy_us_baseline".to_string(),
                Value::U64(self.busy_us_baseline),
            ),
            (
                "busy_us_candidate".to_string(),
                Value::U64(self.busy_us_candidate),
            ),
            (
                "peak_util_baseline".to_string(),
                Value::F64(self.peak_util_baseline),
            ),
            (
                "peak_util_candidate".to_string(),
                Value::F64(self.peak_util_candidate),
            ),
            (
                "verdict".to_string(),
                Value::Str(self.verdict.label().to_string()),
            ),
        ])
    }
}

/// Occurrence counts of one gating bottleneck across jobs.
#[derive(Debug, Clone)]
pub struct GatingDelta {
    pub name: String,
    pub baseline: u64,
    pub candidate: u64,
}

impl GatingDelta {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("baseline".to_string(), Value::U64(self.baseline)),
            ("candidate".to_string(), Value::U64(self.candidate)),
            (
                "delta".to_string(),
                Value::I64(self.candidate as i64 - self.baseline as i64),
            ),
        ])
    }
}

/// Which of the two inputs an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Baseline,
    Candidate,
}

impl Side {
    pub fn label(self) -> &'static str {
        match self {
            Side::Baseline => "baseline",
            Side::Candidate => "candidate",
        }
    }
}

/// Why two run documents cannot be diffed.
#[derive(Debug, Clone)]
pub enum DiffError {
    /// The document carries no `"manifest"` key at all.
    MissingManifest(Side),
    /// The manifest is present but corrupt (missing field, bad digest).
    Manifest(Side, String),
    /// The manifests disagree on an identity field that must match.
    Incomparable {
        /// Manifest field name (`schema_version`, `window_us`,
        /// `topology_digest`) — callers use it to point at the byte in
        /// the offending file.
        field: &'static str,
        baseline: String,
        candidate: String,
    },
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::MissingManifest(side) => write!(
                f,
                "{} run has no manifest (re-run with a manifest-emitting build, or pass a \
                 metrics JSON written by `vc simulate*`)",
                side.label()
            ),
            DiffError::Manifest(side, msg) => {
                write!(f, "{} run manifest is corrupt: {msg}", side.label())
            }
            DiffError::Incomparable {
                field,
                baseline,
                candidate,
            } => write!(
                f,
                "runs are not comparable: `{field}` differs (baseline {baseline}, candidate \
                 {candidate})"
            ),
        }
    }
}

/// Hard comparability gate: identity fields that must match before any
/// metric alignment is meaningful.
pub fn check_comparable(baseline: &RunManifest, candidate: &RunManifest) -> Result<(), DiffError> {
    let checks: [(&'static str, String, String); 3] = [
        (
            "schema_version",
            baseline.schema_version.to_string(),
            candidate.schema_version.to_string(),
        ),
        (
            "window_us",
            baseline.window_us.to_string(),
            candidate.window_us.to_string(),
        ),
        (
            "topology_digest",
            baseline.topology_digest.clone(),
            candidate.topology_digest.clone(),
        ),
    ];
    for (field, b, c) in checks {
        if b != c {
            return Err(DiffError::Incomparable {
                field,
                baseline: b,
                candidate: c,
            });
        }
    }
    Ok(())
}

/// Soft mismatches worth surfacing but not refusing over.
pub fn comparability_warnings(baseline: &RunManifest, candidate: &RunManifest) -> Vec<String> {
    let mut out = Vec::new();
    if baseline.command != candidate.command {
        out.push(format!(
            "comparing different commands: baseline `{}`, candidate `{}`",
            baseline.command, candidate.command
        ));
    }
    if baseline.workload_digest != candidate.workload_digest {
        out.push(format!(
            "workload digests differ (baseline {}, candidate {}): deltas mix workload and \
             policy effects",
            baseline.workload_digest, candidate.workload_digest
        ));
    }
    if baseline.seed != candidate.seed {
        out.push(format!(
            "seeds differ (baseline {}, candidate {}): this is not a seed-paired comparison",
            baseline.seed, candidate.seed
        ));
    }
    if baseline.crate_version != candidate.crate_version {
        out.push(format!(
            "crate versions differ (baseline {}, candidate {})",
            baseline.crate_version, candidate.crate_version
        ));
    }
    out
}

/// The aligned, classified comparison of two run documents.
#[derive(Debug, Clone)]
pub struct DiffReport {
    pub baseline: RunManifest,
    pub candidate: RunManifest,
    /// Changed counters (excluding `net.link.*` and `alert.total.*`,
    /// which roll up into `links` / `alerts`).
    pub counters: Vec<Delta>,
    /// Changed gauges (excluding `net.link.*` mirrors).
    pub gauges: Vec<Delta>,
    /// Changed histogram aggregates (`<name>.count/.sum/.max`).
    pub histograms: Vec<Delta>,
    /// Changed windowed series.
    pub series: Vec<SeriesDelta>,
    /// Critical-path attribution categories (all, changed or not —
    /// they contextualise the makespan delta).
    pub categories: Vec<CategoryDelta>,
    /// Changed network links.
    pub links: Vec<LinkDelta>,
    /// Changed `alert.total.<severity>.<rule>` counters.
    pub alerts: Vec<Delta>,
    /// Gating-bottleneck occurrence counts per job (changed only).
    pub gating: Vec<GatingDelta>,
    /// Total attributed makespan delta (present when both runs carry
    /// attribution).
    pub makespan: Option<Delta>,
    /// Total scalar/series comparisons performed (changed or not).
    pub compared: usize,
    /// Ranked-list length used by [`Self::explanation`] / `to_json`.
    pub top: usize,
}

/// Ranked attribution of the makespan delta.
#[derive(Debug, Clone)]
pub struct Explanation {
    pub makespan_delta_us: i64,
    /// Categories ranked by absolute contribution to the delta.
    pub top_categories: Vec<CategoryDelta>,
    /// Uplinks ranked by absolute byte delta (all links if no uplink
    /// changed).
    pub top_links: Vec<LinkDelta>,
    /// Gating-bottleneck shifts ranked by absolute occurrence delta.
    pub top_gating: Vec<GatingDelta>,
    /// Health-alert deltas ranked by absolute change.
    pub top_alerts: Vec<Delta>,
}

impl DiffReport {
    fn gated_deltas(&self) -> impl Iterator<Item = &Delta> {
        self.counters
            .iter()
            .chain(&self.gauges)
            .chain(&self.histograms)
            .chain(&self.alerts)
            .chain(&self.makespan)
    }

    /// Non-advisory deltas classified as regressions (including series
    /// and links).
    pub fn regressed(&self) -> usize {
        self.gated_deltas()
            .filter(|d| d.verdict == Verdict::Regressed)
            .count()
            + self
                .series
                .iter()
                .filter(|s| s.verdict == Verdict::Regressed)
                .count()
            + self
                .links
                .iter()
                .filter(|l| l.verdict == Verdict::Regressed)
                .count()
    }

    /// Non-advisory deltas classified as improvements.
    pub fn improved(&self) -> usize {
        self.gated_deltas()
            .filter(|d| d.verdict == Verdict::Improved)
            .count()
            + self
                .series
                .iter()
                .filter(|s| s.verdict == Verdict::Improved)
                .count()
            + self
                .links
                .iter()
                .filter(|l| l.verdict == Verdict::Improved)
                .count()
    }

    /// All reported changes, advisory included.
    pub fn changed(&self) -> usize {
        self.counters.len()
            + self.gauges.len()
            + self.histograms.len()
            + self.series.len()
            + self.links.len()
            + self.alerts.len()
            + usize::from(self.makespan.is_some())
    }

    /// Changes on non-advisory metrics (what an identity self-diff must
    /// report as zero).
    pub fn changed_deterministic(&self) -> usize {
        self.changed()
            - self
                .gated_deltas()
                .filter(|d| d.advisory && d.verdict == Verdict::Neutral)
                .count()
    }

    /// Names of regressed metrics, for gate messages.
    pub fn regressed_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .gated_deltas()
            .filter(|d| d.verdict == Verdict::Regressed)
            .map(|d| d.name.clone())
            .collect();
        names.extend(
            self.series
                .iter()
                .filter(|s| s.verdict == Verdict::Regressed)
                .map(|s| s.name.clone()),
        );
        names.extend(
            self.links
                .iter()
                .filter(|l| l.verdict == Verdict::Regressed)
                .map(|l| format!("net.link.{}", l.link)),
        );
        names
    }

    /// Rank what moved: attribution categories, uplink bytes, gating
    /// shifts, alert deltas.
    pub fn explanation(&self) -> Explanation {
        let top = self.top.max(1);
        let mut cats: Vec<CategoryDelta> = self
            .categories
            .iter()
            .filter(|c| c.delta_us() != 0)
            .cloned()
            .collect();
        cats.sort_by_key(|c| std::cmp::Reverse(c.delta_us().unsigned_abs()));
        cats.truncate(top);

        let mut links: Vec<LinkDelta> = self
            .links
            .iter()
            .filter(|l| l.is_uplink())
            .cloned()
            .collect();
        if links.is_empty() {
            links = self.links.clone();
        }
        links.sort_by_key(|l| std::cmp::Reverse(l.bytes_delta().unsigned_abs()));
        links.truncate(top);

        let mut gating = self.gating.clone();
        gating.sort_by_key(|g| {
            std::cmp::Reverse((g.candidate as i64 - g.baseline as i64).unsigned_abs())
        });
        gating.truncate(top);

        let mut alerts = self.alerts.clone();
        alerts.sort_by(|a, b| {
            b.delta()
                .abs()
                .partial_cmp(&a.delta().abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        alerts.truncate(top);

        let makespan_delta_us = self.makespan.as_ref().map_or(0, |m| m.delta() as i64);
        Explanation {
            makespan_delta_us,
            top_categories: cats,
            top_links: links,
            top_gating: gating,
            top_alerts: alerts,
        }
    }

    pub fn to_json(&self) -> Value {
        let expl = self.explanation();
        let arr = |v: Vec<Value>| Value::Array(v);
        Value::Object(vec![
            ("baseline".to_string(), self.baseline.to_json()),
            ("candidate".to_string(), self.candidate.to_json()),
            (
                "summary".to_string(),
                Value::Object(vec![
                    ("compared".to_string(), Value::U64(self.compared as u64)),
                    ("changed".to_string(), Value::U64(self.changed() as u64)),
                    ("improved".to_string(), Value::U64(self.improved() as u64)),
                    ("regressed".to_string(), Value::U64(self.regressed() as u64)),
                ]),
            ),
            (
                "counters".to_string(),
                arr(self.counters.iter().map(Delta::to_json).collect()),
            ),
            (
                "gauges".to_string(),
                arr(self.gauges.iter().map(Delta::to_json).collect()),
            ),
            (
                "histograms".to_string(),
                arr(self.histograms.iter().map(Delta::to_json).collect()),
            ),
            (
                "series".to_string(),
                arr(self.series.iter().map(SeriesDelta::to_json).collect()),
            ),
            (
                "links".to_string(),
                arr(self.links.iter().map(LinkDelta::to_json).collect()),
            ),
            (
                "alerts".to_string(),
                arr(self.alerts.iter().map(Delta::to_json).collect()),
            ),
            (
                "attribution".to_string(),
                Value::Object(vec![
                    (
                        "makespan".to_string(),
                        match &self.makespan {
                            Some(m) => m.to_json(),
                            None => Value::Null,
                        },
                    ),
                    (
                        "categories".to_string(),
                        arr(self.categories.iter().map(CategoryDelta::to_json).collect()),
                    ),
                    (
                        "gating".to_string(),
                        arr(self.gating.iter().map(GatingDelta::to_json).collect()),
                    ),
                ]),
            ),
            (
                "explanation".to_string(),
                Value::Object(vec![
                    (
                        "makespan_delta_us".to_string(),
                        Value::I64(expl.makespan_delta_us),
                    ),
                    (
                        "top_categories".to_string(),
                        arr(expl
                            .top_categories
                            .iter()
                            .map(CategoryDelta::to_json)
                            .collect()),
                    ),
                    (
                        "top_links".to_string(),
                        arr(expl.top_links.iter().map(LinkDelta::to_json).collect()),
                    ),
                    (
                        "top_gating".to_string(),
                        arr(expl.top_gating.iter().map(GatingDelta::to_json).collect()),
                    ),
                    (
                        "top_alerts".to_string(),
                        arr(expl.top_alerts.iter().map(Delta::to_json).collect()),
                    ),
                ]),
            ),
        ])
    }
}

fn num_entries(doc: &Value, key: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(entries) = doc.get(key).and_then(Value::as_object) {
        for (name, v) in entries {
            if let Some(x) = v.as_f64() {
                out.insert(name.clone(), x);
            }
        }
    }
    out
}

/// Histogram aggregates flattened to `<name>.count/.sum/.max` scalars.
fn histogram_entries(doc: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(entries) = doc.get("histograms").and_then(Value::as_object) {
        for (name, h) in entries {
            for field in ["count", "sum", "max"] {
                if let Some(x) = h.get(field).and_then(Value::as_f64) {
                    out.insert(format!("{name}.{field}"), x);
                }
            }
        }
    }
    out
}

fn union_keys<'a>(a: &'a BTreeMap<String, f64>, b: &'a BTreeMap<String, f64>) -> Vec<&'a String> {
    let mut keys: Vec<&String> = a.keys().chain(b.keys()).collect();
    keys.sort();
    keys.dedup();
    keys
}

struct ScalarDiff {
    deltas: Vec<Delta>,
    compared: usize,
}

fn diff_scalars(
    base: &BTreeMap<String, f64>,
    cand: &BTreeMap<String, f64>,
    skip: impl Fn(&str) -> bool,
    tolerance_pct: f64,
) -> ScalarDiff {
    let mut deltas = Vec::new();
    let mut compared = 0usize;
    for name in union_keys(base, cand) {
        if skip(name) {
            continue;
        }
        compared += 1;
        let b = base.get(name).copied().unwrap_or(0.0);
        let c = cand.get(name).copied().unwrap_or(0.0);
        if b == c {
            continue;
        }
        let dir = direction(name);
        deltas.push(Delta {
            name: name.clone(),
            baseline: b,
            candidate: c,
            verdict: classify(b, c, dir, tolerance_pct),
            advisory: dir == Direction::Advisory,
        });
    }
    ScalarDiff { deltas, compared }
}

/// Per-link rollup parsed from `net.link.<link>.<field>` counters and
/// `net.link.<link>.peak_util` gauges.
#[derive(Default, Clone)]
struct LinkSide {
    bytes: u64,
    busy_us: u64,
    peak_util: f64,
}

fn link_sides(
    counters: &BTreeMap<String, f64>,
    gauges: &BTreeMap<String, f64>,
) -> BTreeMap<String, LinkSide> {
    let mut out: BTreeMap<String, LinkSide> = BTreeMap::new();
    for (name, v) in counters {
        let Some(rest) = name.strip_prefix("net.link.") else {
            continue;
        };
        let Some((link, field)) = rest.rsplit_once('.') else {
            continue;
        };
        let entry = out.entry(link.to_string()).or_default();
        match field {
            "bytes" => entry.bytes = *v as u64,
            "busy_us" => entry.busy_us = *v as u64,
            _ => {}
        }
    }
    for (name, v) in gauges {
        if let Some(rest) = name.strip_prefix("net.link.") {
            if let Some(link) = rest.strip_suffix(".peak_util") {
                out.entry(link.to_string()).or_default().peak_util = *v;
            }
        }
    }
    out
}

fn series_map(doc: &Value) -> BTreeMap<String, BTreeMap<u64, f64>> {
    let mut out: BTreeMap<String, BTreeMap<u64, f64>> = BTreeMap::new();
    if let Some(series) = doc
        .get("timeseries")
        .and_then(|t| t.get("series"))
        .and_then(Value::as_object)
    {
        for (name, points) in series {
            let mut m = BTreeMap::new();
            if let Some(arr) = points.as_array() {
                for p in arr {
                    let (Some(t), Some(v)) = (p[0].as_u64(), p[1].as_f64()) else {
                        continue;
                    };
                    m.insert(t, v);
                }
            }
            out.insert(name.clone(), m);
        }
    }
    out
}

/// Attribution rollup: per-category µs sums, per-bottleneck gating
/// counts, and the total attributed makespan.
#[derive(Default)]
struct AttributionSide {
    present: bool,
    categories: BTreeMap<String, u64>,
    gating: BTreeMap<String, u64>,
    makespan_us: u64,
}

fn attribution_side(doc: &Value) -> AttributionSide {
    let mut out = AttributionSide::default();
    let Some(jobs) = doc
        .get("attribution")
        .and_then(|a| a.get("jobs"))
        .and_then(Value::as_array)
    else {
        return out;
    };
    out.present = true;
    for job in jobs {
        out.makespan_us += job.get("makespan_us").and_then(Value::as_u64).unwrap_or(0);
        if let Some(cats) = job.get("categories_us").and_then(Value::as_object) {
            for (cat, v) in cats {
                *out.categories.entry(cat.clone()).or_insert(0) += v.as_u64().unwrap_or(0);
            }
        }
        if let Some(g) = job.get("gating_bottleneck").and_then(Value::as_str) {
            *out.gating.entry(g.to_string()).or_insert(0) += 1;
        }
    }
    out
}

/// Align and classify two run documents. Refuses (via [`DiffError`])
/// on missing/corrupt manifests or identity-field mismatches.
pub fn diff(
    baseline: &Value,
    candidate: &Value,
    opts: &DiffOptions,
) -> Result<DiffReport, DiffError> {
    let manifest = |doc: &Value, side: Side| -> Result<RunManifest, DiffError> {
        match RunManifest::from_document(doc) {
            Ok(Some(m)) => Ok(m),
            Ok(None) => Err(DiffError::MissingManifest(side)),
            Err(msg) => Err(DiffError::Manifest(side, msg)),
        }
    };
    let base_manifest = manifest(baseline, Side::Baseline)?;
    let cand_manifest = manifest(candidate, Side::Candidate)?;
    check_comparable(&base_manifest, &cand_manifest)?;

    let tol = opts.tolerance_pct;
    let base_counters = num_entries(baseline, "counters");
    let cand_counters = num_entries(candidate, "counters");
    let base_gauges = num_entries(baseline, "gauges");
    let cand_gauges = num_entries(candidate, "gauges");

    let counters = diff_scalars(
        &base_counters,
        &cand_counters,
        |n| n.starts_with("net.link.") || n.starts_with("alert.total."),
        tol,
    );
    let gauges = diff_scalars(
        &base_gauges,
        &cand_gauges,
        |n| n.starts_with("net.link."),
        tol,
    );
    let histograms = diff_scalars(
        &histogram_entries(baseline),
        &histogram_entries(candidate),
        |_| false,
        tol,
    );
    let alerts = diff_scalars(
        &base_counters,
        &cand_counters,
        |n| !n.starts_with("alert.total."),
        tol,
    );

    // Links: union of both sides' rollups; report changed ones.
    let base_links = link_sides(&base_counters, &base_gauges);
    let cand_links = link_sides(&cand_counters, &cand_gauges);
    let mut link_names: Vec<&String> = base_links.keys().chain(cand_links.keys()).collect();
    link_names.sort();
    link_names.dedup();
    let links_compared = link_names.len();
    let mut links = Vec::new();
    for name in link_names {
        let b = base_links.get(name).cloned().unwrap_or_default();
        let c = cand_links.get(name).cloned().unwrap_or_default();
        if b.bytes == c.bytes && b.busy_us == c.busy_us && b.peak_util == c.peak_util {
            continue;
        }
        // Judge on bytes first (the integral the paper's objective
        // minimises cross-rack), then busy time.
        let verdict = if b.bytes != c.bytes {
            classify(b.bytes as f64, c.bytes as f64, Direction::LowerBetter, tol)
        } else if b.busy_us != c.busy_us {
            classify(
                b.busy_us as f64,
                c.busy_us as f64,
                Direction::LowerBetter,
                tol,
            )
        } else {
            classify(b.peak_util, c.peak_util, Direction::LowerBetter, tol)
        };
        links.push(LinkDelta {
            link: name.clone(),
            bytes_baseline: b.bytes,
            bytes_candidate: c.bytes,
            busy_us_baseline: b.busy_us,
            busy_us_candidate: c.busy_us,
            peak_util_baseline: b.peak_util,
            peak_util_candidate: c.peak_util,
            verdict,
        });
    }

    // Windowed series over the union of edges; a window absent on one
    // side compares against 0 (runs of different horizon lengths).
    let base_series = series_map(baseline);
    let cand_series = series_map(candidate);
    let mut series_names: Vec<&String> = base_series.keys().chain(cand_series.keys()).collect();
    series_names.sort();
    series_names.dedup();
    let series_compared = series_names.len();
    let mut series = Vec::new();
    for name in series_names {
        let empty = BTreeMap::new();
        let b = base_series.get(name).unwrap_or(&empty);
        let c = cand_series.get(name).unwrap_or(&empty);
        let mut edges: Vec<&u64> = b.keys().chain(c.keys()).collect();
        edges.sort();
        edges.dedup();
        if edges.is_empty() {
            continue;
        }
        let mut changed_windows = 0usize;
        let mut sum_b = 0.0;
        let mut sum_c = 0.0;
        let mut max_abs = 0.0f64;
        for e in &edges {
            let vb = b.get(e).copied().unwrap_or(0.0);
            let vc = c.get(e).copied().unwrap_or(0.0);
            if vb != vc {
                changed_windows += 1;
            }
            sum_b += vb;
            sum_c += vc;
            max_abs = max_abs.max((vc - vb).abs());
        }
        if changed_windows == 0 {
            continue;
        }
        let n = edges.len() as f64;
        let mean_b = sum_b / n;
        let mean_c = sum_c / n;
        series.push(SeriesDelta {
            name: name.clone(),
            windows: edges.len(),
            changed_windows,
            mean_baseline: mean_b,
            mean_candidate: mean_c,
            max_abs_delta: max_abs,
            verdict: classify(mean_b, mean_c, series_direction(name), tol),
        });
    }

    // Critical-path attribution rollup.
    let base_attr = attribution_side(baseline);
    let cand_attr = attribution_side(candidate);
    let mut categories = Vec::new();
    let mut gating = Vec::new();
    let mut makespan = None;
    if base_attr.present || cand_attr.present {
        let mut cat_names: Vec<&String> = base_attr
            .categories
            .keys()
            .chain(cand_attr.categories.keys())
            .collect();
        cat_names.sort();
        cat_names.dedup();
        for name in cat_names {
            categories.push(CategoryDelta {
                category: name.clone(),
                baseline_us: base_attr.categories.get(name).copied().unwrap_or(0),
                candidate_us: cand_attr.categories.get(name).copied().unwrap_or(0),
            });
        }
        let mut gate_names: Vec<&String> = base_attr
            .gating
            .keys()
            .chain(cand_attr.gating.keys())
            .collect();
        gate_names.sort();
        gate_names.dedup();
        for name in gate_names {
            let b = base_attr.gating.get(name).copied().unwrap_or(0);
            let c = cand_attr.gating.get(name).copied().unwrap_or(0);
            if b != c {
                gating.push(GatingDelta {
                    name: name.clone(),
                    baseline: b,
                    candidate: c,
                });
            }
        }
        let (b, c) = (base_attr.makespan_us as f64, cand_attr.makespan_us as f64);
        if b != c {
            makespan = Some(Delta {
                name: "attribution.makespan_us".to_string(),
                baseline: b,
                candidate: c,
                verdict: classify(b, c, Direction::LowerBetter, tol),
                advisory: false,
            });
        }
    }

    let compared = counters.compared
        + gauges.compared
        + histograms.compared
        + alerts.compared
        + links_compared
        + series_compared;
    Ok(DiffReport {
        baseline: base_manifest,
        candidate: cand_manifest,
        counters: counters.deltas,
        gauges: gauges.deltas,
        histograms: histograms.deltas,
        series,
        categories,
        links,
        alerts: alerts.deltas,
        gating,
        makespan,
        compared,
        top: opts.top,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn manifest(window_us: u64, topo: &str, policy: &str, seed: u64) -> Value {
        RunManifest::new(
            "0.1.0",
            "simulate",
            seed,
            policy,
            window_us,
            topo.to_string(),
            "wl".to_string(),
            vec![("racks".to_string(), "3".to_string())],
        )
        .to_json()
    }

    fn doc(policy: &str, extra_counters: &[(&str, u64)]) -> Value {
        let mut counters = vec![
            ("cloudsim.served".to_string(), Value::U64(10)),
            ("cloudsim.refused".to_string(), Value::U64(1)),
            ("prof.phase.place.wall_us".to_string(), Value::U64(123)),
            ("net.link.rack0.up.bytes".to_string(), Value::U64(1000)),
            ("net.link.rack0.up.busy_us".to_string(), Value::U64(50)),
            ("alert.total.warn.frag_growth".to_string(), Value::U64(0)),
        ];
        for (k, v) in extra_counters {
            if let Some(slot) = counters.iter_mut().find(|(name, _)| name == k) {
                slot.1 = Value::U64(*v);
            } else {
                counters.push((k.to_string(), Value::U64(*v)));
            }
        }
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            (
                "gauges".to_string(),
                json!({"net.link.rack0.up.peak_util": 0.5, "prof.rss_peak_kb": 100.0}),
            ),
            (
                "histograms".to_string(),
                json!({"mr.job_runtime_us": {"count": 2, "sum": 300, "min": 100, "max": 200}}),
            ),
            ("manifest".to_string(), manifest(0, "topo", policy, 7)),
            (
                "attribution".to_string(),
                json!({"jobs": [{"track": 0, "makespan_us": 500,
                    "gating_bottleneck": "rack0.up",
                    "categories_us": {"map": 300, "shuffle-network-wait": 200}}]}),
            ),
            (
                "timeseries".to_string(),
                json!({"window_us": 0, "series": {}}),
            ),
        ])
    }

    #[test]
    fn self_diff_reports_zero_changes() {
        let d = doc("affinity", &[]);
        let r = diff(&d, &d, &DiffOptions::default()).unwrap();
        assert_eq!(r.changed(), 0, "{r:?}");
        assert_eq!(r.regressed(), 0);
        assert_eq!(r.improved(), 0);
        assert!(r.compared > 0);
        assert!(r.makespan.is_none());
    }

    #[test]
    fn wall_clock_deltas_are_advisory_neutral() {
        let a = doc("affinity", &[("prof.phase.place.wall_us", 123)]);
        let b = doc("affinity", &[("prof.phase.place.wall_us", 999)]);
        let r = diff(&a, &b, &DiffOptions::default()).unwrap();
        assert_eq!(r.regressed(), 0, "{:?}", r.regressed_names());
        assert_eq!(r.improved(), 0);
        assert_eq!(r.changed(), 1);
        assert_eq!(r.changed_deterministic(), 0);
        assert!(r.counters[0].advisory);
    }

    #[test]
    fn directional_counters_classify() {
        let a = doc("affinity", &[]);
        let b = doc(
            "affinity",
            &[("cloudsim.refused", 5), ("cloudsim.served", 12)],
        );
        let r = diff(&a, &b, &DiffOptions::default()).unwrap();
        let refused = r
            .counters
            .iter()
            .find(|d| d.name == "cloudsim.refused")
            .unwrap();
        assert_eq!(refused.verdict, Verdict::Regressed);
        let served = r
            .counters
            .iter()
            .find(|d| d.name == "cloudsim.served")
            .unwrap();
        assert_eq!(served.verdict, Verdict::Improved);
        assert_eq!(r.regressed(), 1);
        assert_eq!(r.improved(), 1);
    }

    #[test]
    fn link_and_alert_deltas_split_out_of_counters() {
        let a = doc("affinity", &[]);
        let b = doc(
            "affinity",
            &[
                ("net.link.rack0.up.bytes", 2000),
                ("alert.total.warn.frag_growth", 3),
            ],
        );
        let r = diff(&a, &b, &DiffOptions::default()).unwrap();
        assert!(r.counters.is_empty(), "{:?}", r.counters);
        assert_eq!(r.links.len(), 1);
        assert_eq!(r.links[0].verdict, Verdict::Regressed);
        assert!(r.links[0].is_uplink());
        assert_eq!(r.alerts.len(), 1);
        assert_eq!(r.alerts[0].verdict, Verdict::Regressed);
        assert_eq!(r.regressed(), 2);
        let names = r.regressed_names();
        assert!(names.iter().any(|n| n == "net.link.rack0.up"), "{names:?}");
    }

    #[test]
    fn explanation_ranks_categories_and_uplinks() {
        let a = doc("affinity", &[]);
        let mut b = doc("spread", &[("net.link.rack0.up.bytes", 9000)]);
        // Bump the candidate's shuffle-network-wait tile and makespan.
        let Value::Object(entries) = &mut b else {
            unreachable!()
        };
        for (k, v) in entries.iter_mut() {
            if k == "attribution" {
                *v = json!({"jobs": [{"track": 0, "makespan_us": 900,
                    "gating_bottleneck": "rack0.up",
                    "categories_us": {"map": 300, "shuffle-network-wait": 600}}]});
            }
        }
        let r = diff(&a, &b, &DiffOptions::default()).unwrap();
        let expl = r.explanation();
        assert_eq!(expl.makespan_delta_us, 400);
        assert_eq!(expl.top_categories[0].category, "shuffle-network-wait");
        assert_eq!(expl.top_categories[0].delta_us(), 400);
        assert_eq!(expl.top_links[0].link, "rack0.up");
        let m = r.makespan.as_ref().unwrap();
        assert_eq!(m.verdict, Verdict::Regressed);
    }

    #[test]
    fn tolerance_widens_neutral_band() {
        let a = doc("affinity", &[("cloudsim.refused", 100)]);
        let b = doc("affinity", &[("cloudsim.refused", 101)]);
        let strict = diff(&a, &b, &DiffOptions::default()).unwrap();
        assert_eq!(strict.regressed(), 1);
        let loose = diff(
            &a,
            &b,
            &DiffOptions {
                tolerance_pct: 5.0,
                top: 5,
            },
        )
        .unwrap();
        assert_eq!(loose.regressed(), 0);
        assert_eq!(loose.changed(), 1, "still reported as changed");
    }

    #[test]
    fn missing_manifest_refused() {
        let a = doc("affinity", &[]);
        let b = json!({"counters": {}});
        let err = diff(&a, &b, &DiffOptions::default()).unwrap_err();
        assert!(matches!(err, DiffError::MissingManifest(Side::Candidate)));
        assert!(err.to_string().contains("candidate"), "{err}");
    }

    #[test]
    fn window_mismatch_refused() {
        let mut a = doc("affinity", &[]);
        let mut b = doc("affinity", &[]);
        let set_manifest = |d: &mut Value, w: u64| {
            let Value::Object(entries) = d else {
                unreachable!()
            };
            for (k, v) in entries.iter_mut() {
                if k == "manifest" {
                    *v = manifest(w, "topo", "affinity", 7);
                }
            }
        };
        set_manifest(&mut a, 1000);
        set_manifest(&mut b, 2000);
        let err = diff(&a, &b, &DiffOptions::default()).unwrap_err();
        match &err {
            DiffError::Incomparable { field, .. } => assert_eq!(*field, "window_us"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.to_string().contains("window_us"), "{err}");
    }

    #[test]
    fn topology_mismatch_refused() {
        let a = doc("affinity", &[]);
        let mut b = doc("affinity", &[]);
        let Value::Object(entries) = &mut b else {
            unreachable!()
        };
        for (k, v) in entries.iter_mut() {
            if k == "manifest" {
                *v = manifest(0, "other-topo", "affinity", 7);
            }
        }
        let err = diff(&a, &b, &DiffOptions::default()).unwrap_err();
        match &err {
            DiffError::Incomparable { field, .. } => assert_eq!(*field, "topology_digest"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn series_alignment_flags_changed_windows() {
        let mut a = doc("affinity", &[]);
        let mut b = doc("affinity", &[]);
        let set_series = |d: &mut Value, vals: Value| {
            let Value::Object(entries) = d else {
                unreachable!()
            };
            for (k, v) in entries.iter_mut() {
                if k == "timeseries" {
                    *v = vals.clone();
                }
            }
        };
        set_series(
            &mut a,
            json!({"window_us": 10, "series": {"ts.queue.depth": [[10, 1.0], [20, 2.0]]}}),
        );
        set_series(
            &mut b,
            json!({"window_us": 10, "series": {"ts.queue.depth": [[10, 1.0], [20, 5.0]]}}),
        );
        let r = diff(&a, &b, &DiffOptions::default()).unwrap();
        assert_eq!(r.series.len(), 1);
        let s = &r.series[0];
        assert_eq!(s.windows, 2);
        assert_eq!(s.changed_windows, 1);
        assert_eq!(s.verdict, Verdict::Regressed, "queue depth grew");
        assert_eq!(s.max_abs_delta, 3.0);
    }

    #[test]
    fn warnings_flag_seed_and_workload_mismatch() {
        let a = RunManifest::from_json(&manifest(0, "t", "affinity", 1)).unwrap();
        let mut b = RunManifest::from_json(&manifest(0, "t", "affinity", 2)).unwrap();
        b.workload_digest = "other".to_string();
        let warnings = comparability_warnings(&a, &b);
        assert!(
            warnings.iter().any(|w| w.contains("seeds differ")),
            "{warnings:?}"
        );
        assert!(
            warnings
                .iter()
                .any(|w| w.contains("workload digests differ")),
            "{warnings:?}"
        );
    }
}
