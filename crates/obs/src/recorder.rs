//! The [`Recorder`] sink trait plus the two standard implementations:
//! [`NoopRecorder`] (zero cost) and [`MemRecorder`] (in-memory buffers).

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// Timeline lane for spans — by convention one track per VM, with
/// reserved tracks for schedulers/queues registered via
/// [`Recorder::track_name`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub u64);

/// Handle pairing a `span_begin` with its `span_end`. Id 0 is the null
/// span returned by no-op recorders; ending it is a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NULL: SpanId = SpanId(0);

    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// Attribute value attached to events and spans. Kept to cheap variants
/// so no-op instrumentation compiles away; `Owned` strings should be
/// gated behind [`Recorder::enabled`].
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(&'static str),
    Owned(String),
}

impl AttrValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            AttrValue::Owned(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            AttrValue::U64(v) => Some(v),
            AttrValue::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Owned(v)
    }
}

/// Key/value attribute pair.
pub type Attr = (&'static str, AttrValue);

/// Observability sink. All methods take `&self` (implementations use
/// interior mutability) so a recorder can be shared by every layer of a
/// simulation without threading `&mut` through the call graph.
///
/// Every method has a no-op default, which is the entire implementation
/// of [`NoopRecorder`]: generic instrumentation monomorphized against it
/// inlines to nothing.
pub trait Recorder {
    /// `false` means callers should skip building expensive attributes
    /// (formatted strings, per-item loops) before calling in.
    fn enabled(&self) -> bool {
        false
    }

    /// Add to a monotonic counter.
    fn counter_add(&self, _name: &'static str, _delta: u64) {}

    /// Set an instantaneous gauge (last-write-wins in the snapshot).
    fn gauge_set(&self, _name: &'static str, _value: f64) {}

    /// Raise a gauge to `value` if it is the largest seen so far
    /// (running maximum — peak utilization, high-water marks).
    fn gauge_max(&self, _name: &'static str, _value: f64) {}

    /// Record a sample into a log-bucketed histogram.
    fn histogram_record(&self, _name: &'static str, _value: u64) {}

    /// Record a timestamped sample of a time-varying quantity (queue
    /// depth, heap size); exported as a counter track in the timeline.
    fn counter_sample(&self, _name: &'static str, _t_us: u64, _value: f64) {}

    /// Register a display name for a track (e.g. `vm3@node7`).
    fn track_name(&self, _track: TrackId, _name: &str) {}

    /// Record an instantaneous structured event.
    fn event(&self, _name: &'static str, _t_us: u64, _track: Option<TrackId>, _attrs: &[Attr]) {}

    /// Open a span on a track. The returned id must later be passed to
    /// [`Recorder::span_end`]; no-op recorders return [`SpanId::NULL`].
    fn span_begin(
        &self,
        _track: TrackId,
        _name: &'static str,
        _t_us: u64,
        _attrs: &[Attr],
    ) -> SpanId {
        SpanId::NULL
    }

    /// Close a span at `t_us`. Ending [`SpanId::NULL`] is a no-op.
    fn span_end(&self, _span: SpanId, _t_us: u64) {}

    /// Attach an attribute to an open span (outcomes discovered after
    /// the span began, e.g. which attempt won a speculative race).
    fn span_attr(&self, _span: SpanId, _key: &'static str, _value: AttrValue) {}

    /// A `Sync` view of this recorder, if it may be called from multiple
    /// threads concurrently. The default (`None`) marks single-threaded
    /// recorders such as [`MemRecorder`]; parallel code paths use this to
    /// decide whether worker threads may record directly or must fall
    /// back to aggregate recording on the calling thread.
    fn as_sync(&self) -> Option<&(dyn Recorder + Sync)> {
        None
    }
}

/// Forwarding impls so instrumented code generic over `R: Recorder` also
/// accepts `&R`, `&dyn Recorder`, and boxed recorders.
impl<R: Recorder + ?Sized> Recorder for &R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn counter_add(&self, name: &'static str, delta: u64) {
        (**self).counter_add(name, delta)
    }
    fn gauge_set(&self, name: &'static str, value: f64) {
        (**self).gauge_set(name, value)
    }
    fn gauge_max(&self, name: &'static str, value: f64) {
        (**self).gauge_max(name, value)
    }
    fn histogram_record(&self, name: &'static str, value: u64) {
        (**self).histogram_record(name, value)
    }
    fn counter_sample(&self, name: &'static str, t_us: u64, value: f64) {
        (**self).counter_sample(name, t_us, value)
    }
    fn track_name(&self, track: TrackId, name: &str) {
        (**self).track_name(track, name)
    }
    fn event(&self, name: &'static str, t_us: u64, track: Option<TrackId>, attrs: &[Attr]) {
        (**self).event(name, t_us, track, attrs)
    }
    fn span_begin(&self, track: TrackId, name: &'static str, t_us: u64, attrs: &[Attr]) -> SpanId {
        (**self).span_begin(track, name, t_us, attrs)
    }
    fn span_end(&self, span: SpanId, t_us: u64) {
        (**self).span_end(span, t_us)
    }
    fn span_attr(&self, span: SpanId, key: &'static str, value: AttrValue) {
        (**self).span_attr(span, key, value)
    }
    fn as_sync(&self) -> Option<&(dyn Recorder + Sync)> {
        (**self).as_sync()
    }
}

impl<R: Recorder + ?Sized> Recorder for std::rc::Rc<R> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn counter_add(&self, name: &'static str, delta: u64) {
        (**self).counter_add(name, delta)
    }
    fn gauge_set(&self, name: &'static str, value: f64) {
        (**self).gauge_set(name, value)
    }
    fn gauge_max(&self, name: &'static str, value: f64) {
        (**self).gauge_max(name, value)
    }
    fn histogram_record(&self, name: &'static str, value: u64) {
        (**self).histogram_record(name, value)
    }
    fn counter_sample(&self, name: &'static str, t_us: u64, value: f64) {
        (**self).counter_sample(name, t_us, value)
    }
    fn track_name(&self, track: TrackId, name: &str) {
        (**self).track_name(track, name)
    }
    fn event(&self, name: &'static str, t_us: u64, track: Option<TrackId>, attrs: &[Attr]) {
        (**self).event(name, t_us, track, attrs)
    }
    fn span_begin(&self, track: TrackId, name: &'static str, t_us: u64, attrs: &[Attr]) -> SpanId {
        (**self).span_begin(track, name, t_us, attrs)
    }
    fn span_end(&self, span: SpanId, t_us: u64) {
        (**self).span_end(span, t_us)
    }
    fn span_attr(&self, span: SpanId, key: &'static str, value: AttrValue) {
        (**self).span_attr(span, key, value)
    }
    fn as_sync(&self) -> Option<&(dyn Recorder + Sync)> {
        (**self).as_sync()
    }
}

impl<R: Recorder + ?Sized> Recorder for std::sync::Arc<R> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn counter_add(&self, name: &'static str, delta: u64) {
        (**self).counter_add(name, delta)
    }
    fn gauge_set(&self, name: &'static str, value: f64) {
        (**self).gauge_set(name, value)
    }
    fn gauge_max(&self, name: &'static str, value: f64) {
        (**self).gauge_max(name, value)
    }
    fn histogram_record(&self, name: &'static str, value: u64) {
        (**self).histogram_record(name, value)
    }
    fn counter_sample(&self, name: &'static str, t_us: u64, value: f64) {
        (**self).counter_sample(name, t_us, value)
    }
    fn track_name(&self, track: TrackId, name: &str) {
        (**self).track_name(track, name)
    }
    fn event(&self, name: &'static str, t_us: u64, track: Option<TrackId>, attrs: &[Attr]) {
        (**self).event(name, t_us, track, attrs)
    }
    fn span_begin(&self, track: TrackId, name: &'static str, t_us: u64, attrs: &[Attr]) -> SpanId {
        (**self).span_begin(track, name, t_us, attrs)
    }
    fn span_end(&self, span: SpanId, t_us: u64) {
        (**self).span_end(span, t_us)
    }
    fn span_attr(&self, span: SpanId, key: &'static str, value: AttrValue) {
        (**self).span_attr(span, key, value)
    }
    fn as_sync(&self) -> Option<&(dyn Recorder + Sync)> {
        (**self).as_sync()
    }
}

/// Recorder that records nothing. The canonical "observability off"
/// implementation: every hook is the trait's empty default.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn as_sync(&self) -> Option<&(dyn Recorder + Sync)> {
        Some(self)
    }
}

/// A recorded instantaneous event.
#[derive(Clone, Debug)]
pub struct EventRecord {
    pub name: &'static str,
    pub t_us: u64,
    pub track: Option<TrackId>,
    pub attrs: Vec<Attr>,
}

/// A recorded span; `end_us` is `None` while the span is open.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub id: SpanId,
    pub track: TrackId,
    pub name: &'static str,
    pub start_us: u64,
    pub end_us: Option<u64>,
    pub attrs: Vec<Attr>,
}

#[derive(Debug, Default)]
struct MemInner {
    events: Vec<EventRecord>,
    spans: Vec<SpanRecord>,
    /// Open span id → index into `spans`.
    open: BTreeMap<u64, usize>,
    track_names: BTreeMap<u64, String>,
    counter_series: BTreeMap<&'static str, Vec<(u64, f64)>>,
    metrics: MetricsRegistry,
    next_span: u64,
    /// Per-series high-water sample timestamp: the gauge mirror of
    /// [`Recorder::counter_sample`] only applies in-sim-time-order
    /// samples, so the final gauge value matches a `(t_us, seq)`-sorted
    /// replay of the same stream (`ShardedRecorder::merged`,
    /// `stream::replay_jsonl`) even when overlapping jobs emit the same
    /// series at out-of-order timestamps.
    sample_last_t: BTreeMap<&'static str, u64>,
    /// Soft cap on buffered trace items (events + spans + series
    /// points). `None` = unbounded.
    trace_cap: Option<usize>,
    trace_items: usize,
    overflowed: bool,
}

impl MemInner {
    /// Whether one more trace item may be buffered. On the first refusal
    /// records the one-time `obs.recorder.overflow` counter. Metrics are
    /// never dropped — only spans, events, and series points are.
    fn admit_trace_item(&mut self) -> bool {
        match self.trace_cap {
            Some(cap) if self.trace_items >= cap => {
                if !self.overflowed {
                    self.overflowed = true;
                    self.metrics.counter_add("obs.recorder.overflow", 1);
                }
                false
            }
            _ => {
                self.trace_items += 1;
                true
            }
        }
    }
}

/// Buffering recorder for single-threaded simulations. Interior
/// mutability via `RefCell`; not `Sync` by design — each parallel batch
/// run owns its own recorder.
#[derive(Debug, Default)]
pub struct MemRecorder {
    inner: RefCell<MemInner>,
}

impl MemRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder that buffers at most `cap` trace items (events, spans,
    /// and counter-series points combined). Past the cap, trace items
    /// are dropped — `span_begin` returns [`SpanId::NULL`] — and the
    /// one-time `obs.recorder.overflow` counter is set; metrics
    /// (counters/gauges/histograms) are always recorded in full.
    pub fn with_trace_cap(cap: usize) -> Self {
        let r = Self::default();
        r.inner.borrow_mut().trace_cap = Some(cap);
        r
    }

    /// True once the trace cap has dropped at least one item.
    pub fn overflowed(&self) -> bool {
        self.inner.borrow().overflowed
    }

    pub fn events(&self) -> Vec<EventRecord> {
        self.inner.borrow().events.clone()
    }

    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.borrow().spans.clone()
    }

    /// Number of spans begun but not yet ended.
    pub fn open_span_count(&self) -> usize {
        self.inner.borrow().open.len()
    }

    pub fn track_names(&self) -> BTreeMap<u64, String> {
        self.inner.borrow().track_names.clone()
    }

    pub fn counter_series(&self) -> BTreeMap<&'static str, Vec<(u64, f64)>> {
        self.inner.borrow().counter_series.clone()
    }

    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.borrow().metrics.snapshot()
    }
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.inner.borrow_mut().metrics.counter_add(name, delta);
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.inner.borrow_mut().metrics.gauge_set(name, value);
    }

    fn gauge_max(&self, name: &'static str, value: f64) {
        self.inner.borrow_mut().metrics.gauge_max(name, value);
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.inner
            .borrow_mut()
            .metrics
            .histogram_record(name, value);
    }

    fn counter_sample(&self, name: &'static str, t_us: u64, value: f64) {
        let mut inner = self.inner.borrow_mut();
        let apply = {
            let last = inner.sample_last_t.entry(name).or_insert(0);
            if t_us >= *last {
                *last = t_us;
                true
            } else {
                false
            }
        };
        if apply {
            inner.metrics.gauge_set(name, value);
        }
        if inner.admit_trace_item() {
            inner
                .counter_series
                .entry(name)
                .or_default()
                .push((t_us, value));
        }
    }

    fn track_name(&self, track: TrackId, name: &str) {
        self.inner
            .borrow_mut()
            .track_names
            .insert(track.0, name.to_string());
    }

    fn event(&self, name: &'static str, t_us: u64, track: Option<TrackId>, attrs: &[Attr]) {
        let mut inner = self.inner.borrow_mut();
        if !inner.admit_trace_item() {
            return;
        }
        inner.events.push(EventRecord {
            name,
            t_us,
            track,
            attrs: attrs.to_vec(),
        });
    }

    fn span_begin(&self, track: TrackId, name: &'static str, t_us: u64, attrs: &[Attr]) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        if !inner.admit_trace_item() {
            return SpanId::NULL;
        }
        inner.next_span += 1;
        let id = SpanId(inner.next_span);
        let index = inner.spans.len();
        inner.spans.push(SpanRecord {
            id,
            track,
            name,
            start_us: t_us,
            end_us: None,
            attrs: attrs.to_vec(),
        });
        inner.open.insert(id.0, index);
        id
    }

    fn span_end(&self, span: SpanId, t_us: u64) {
        if span.is_null() {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        if let Some(index) = inner.open.remove(&span.0) {
            inner.spans[index].end_us = Some(t_us);
        }
    }

    fn span_attr(&self, span: SpanId, key: &'static str, value: AttrValue) {
        if span.is_null() {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        if let Some(&index) = inner.open.get(&span.0) {
            inner.spans[index].attrs.push((key, value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_returns_null_span() {
        let r = NoopRecorder;
        let s = r.span_begin(TrackId(1), "x", 0, &[]);
        assert!(s.is_null());
        r.span_end(s, 10);
        r.counter_add("c", 1);
    }

    #[test]
    fn mem_records_spans_and_events() {
        let r = MemRecorder::new();
        r.track_name(TrackId(3), "vm3@node1");
        let s = r.span_begin(TrackId(3), "map", 100, &[("task", AttrValue::U64(0))]);
        assert!(!s.is_null());
        assert_eq!(r.open_span_count(), 1);
        r.span_attr(s, "locality", AttrValue::Str("node_local"));
        r.span_end(s, 250);
        assert_eq!(r.open_span_count(), 0);
        r.event("admit", 50, None, &[("id", AttrValue::U64(7))]);

        let spans = r.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_us, 100);
        assert_eq!(spans[0].end_us, Some(250));
        assert_eq!(spans[0].attrs.len(), 2);
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.track_names()[&3], "vm3@node1");
    }

    #[test]
    fn works_through_dyn_and_rc() {
        let mem = MemRecorder::new();
        let r: &dyn Recorder = &mem;
        let s = r.span_begin(TrackId(0), "x", 0, &[]);
        r.span_end(s, 5);
        r.counter_add("n", 2);
        assert_eq!(mem.spans().len(), 1);
        assert_eq!(mem.metrics().counters["n"], 2);

        let rc: std::rc::Rc<dyn Recorder> = std::rc::Rc::new(MemRecorder::new());
        rc.counter_add("k", 1);
    }

    #[test]
    fn counter_sample_builds_series() {
        let r = MemRecorder::new();
        r.counter_sample("queue.depth", 0, 1.0);
        r.counter_sample("queue.depth", 10, 2.0);
        let series = r.counter_series();
        assert_eq!(series["queue.depth"], vec![(0, 1.0), (10, 2.0)]);
    }

    #[test]
    fn counter_sample_gauge_is_last_in_sim_time() {
        // Overlapping jobs can emit the same series with out-of-order
        // timestamps; the gauge mirror must settle on the sample with
        // the largest t_us (program order breaking ties), matching a
        // (t_us, seq)-sorted replay of the same stream.
        let r = MemRecorder::new();
        r.counter_sample("util", 100, 0.9);
        r.counter_sample("util", 40, 0.1); // stale: earlier sim time
        assert_eq!(r.metrics().gauges["util"], 0.9);
        r.counter_sample("util", 100, 0.5); // same t: later wins
        assert_eq!(r.metrics().gauges["util"], 0.5);
        r.counter_sample("util", 200, 0.2);
        assert_eq!(r.metrics().gauges["util"], 0.2);
        // The series itself keeps every point in arrival order.
        assert_eq!(r.counter_series()["util"].len(), 4);
    }

    #[test]
    fn trace_cap_drops_trace_items_never_metrics() {
        let r = MemRecorder::with_trace_cap(2);
        r.event("a", 0, None, &[]);
        let s = r.span_begin(TrackId(0), "kept", 1, &[]);
        assert!(!s.is_null());
        r.span_end(s, 2);
        assert!(!r.overflowed());

        // Cap reached: trace items are dropped from here on.
        r.event("b", 3, None, &[]);
        let dropped = r.span_begin(TrackId(0), "dropped", 4, &[]);
        assert!(dropped.is_null());
        r.counter_sample("q", 5, 1.0);
        assert!(r.overflowed());
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.spans().len(), 1);
        assert!(r.counter_series().is_empty());

        // Metrics still record in full, plus the one-time overflow mark.
        r.counter_add("c", 7);
        r.histogram_record("h", 9);
        let m = r.metrics();
        assert_eq!(m.counters["c"], 7);
        assert_eq!(m.counters["obs.recorder.overflow"], 1);
        assert_eq!(m.histograms["h"].count, 1);
        // counter_sample past the cap still updates the gauge.
        assert_eq!(m.gauges["q"], 1.0);
    }
}
