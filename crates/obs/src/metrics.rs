//! Metrics registry: named counters, gauges, and log-bucketed histograms
//! with JSON and CSV snapshot export.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Power-of-two bucketed histogram for non-negative integer samples
/// (latencies in µs, byte counts, queue depths).
///
/// Bucket 0 holds the value 0; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. 65 buckets cover the full `u64` domain.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    /// Smallest sample, or 0 when empty — a never-sampled histogram must
    /// not serialize a `u64::MAX` sentinel in snapshots; [`Self::record`]
    /// seeds it from the first sample instead.
    pub min: u64,
    pub max: u64,
    /// Sparse non-empty buckets as `(index, count)` pairs.
    pub buckets: Vec<(u32, u64)>,
}

/// Number of distinct bucket indices (0 plus one per bit position).
pub const NUM_BUCKETS: u32 = 65;

/// Map a sample to its bucket index. Monotone non-decreasing in `v`.
pub fn bucket_index(v: u64) -> u32 {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros()
    }
}

/// Smallest value that lands in bucket `i`. Strictly increasing in `i`.
pub fn bucket_lower_bound(i: u32) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    pub fn record(&mut self, v: u64) {
        self.min = if self.count == 0 { v } else { self.min.min(v) };
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        let idx = bucket_index(v);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile from bucket lower bounds (`q` in `[0, 1]`).
    /// Exact for the min/max endpoints; within one power of two elsewhere.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(idx).max(self.min).min(self.max);
            }
        }
        self.max
    }
}

/// Mutable registry of named metrics. Owned by a recorder during a run.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Track the running maximum of a gauge (e.g. peak queue depth).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let slot = self.gauges.entry(name.to_string()).or_insert(f64::MIN);
        if value > *slot {
            *slot = value;
        }
    }

    pub fn histogram_record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// Immutable point-in-time copy of a [`MetricsRegistry`], exportable as
/// JSON (schema documented in `docs/metrics-schema.md`) or CSV.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Full-fidelity JSON document; round-trips through [`Self::from_json`].
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self)
    }

    pub fn from_json(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        <Self as serde::Deserialize>::from_value(v)
    }

    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    pub fn parse(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Flat CSV with one row per scalar:
    /// `kind,name,field,value`. Histograms expand to summary rows plus one
    /// `bucket_<lower_bound>` row per non-empty bucket.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("counter,{name},value,{v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge,{name},value,{v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("histogram,{name},count,{}\n", h.count));
            out.push_str(&format!("histogram,{name},sum,{}\n", h.sum));
            if h.count > 0 {
                out.push_str(&format!("histogram,{name},min,{}\n", h.min));
                out.push_str(&format!("histogram,{name},max,{}\n", h.max));
                out.push_str(&format!("histogram,{name},mean,{}\n", h.mean()));
                out.push_str(&format!("histogram,{name},p50,{}\n", h.quantile(0.5)));
                out.push_str(&format!("histogram,{name},p99,{}\n", h.quantile(0.99)));
            }
            for &(idx, n) in &h.buckets {
                out.push_str(&format!(
                    "histogram,{name},bucket_{},{n}\n",
                    bucket_lower_bound(idx)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
        }
    }

    #[test]
    fn histogram_aggregates() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 7, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1109);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!(h.quantile(0.0) >= h.min && h.quantile(1.0) <= h.max);
    }

    #[test]
    fn empty_histogram_snapshot_has_zero_min() {
        // Regression: a never-sampled histogram used to serialize
        // `min: u64::MAX` in JSON/CSV snapshots.
        let h = Histogram::default();
        assert_eq!(h.min, 0);
        let mut reg = MetricsRegistry::new();
        reg.histograms.insert("empty".to_string(), h);
        let snap = reg.snapshot();
        assert!(!snap.to_json_string().contains(&u64::MAX.to_string()));
        assert!(!snap.to_csv().contains(&u64::MAX.to_string()));
        // And a first sample still seeds the minimum correctly.
        let mut h = Histogram::default();
        h.record(7);
        assert_eq!(h.min, 7);
        h.record(3);
        assert_eq!(h.min, 3);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("des.events", 42);
        reg.gauge_set("queue.depth", 3.5);
        reg.histogram_record("latency_us", 1234);
        reg.histogram_record("latency_us", 9);
        let snap = reg.snapshot();
        let text = snap.to_json_string();
        let back = MetricsSnapshot::parse(&text).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn csv_has_all_rows() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("a", 1);
        reg.gauge_set("b", 2.0);
        reg.histogram_record("c", 3);
        let csv = reg.snapshot().to_csv();
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,a,value,1"));
        assert!(csv.contains("gauge,b,value,2"));
        assert!(csv.contains("histogram,c,count,1"));
        assert!(csv.contains("histogram,c,bucket_2,1"));
    }
}
