//! [`ShardedRecorder`]: a thread-safe buffering recorder.
//!
//! Each thread appends to its own shard (an op-log behind a short-lived
//! mutex that is never contended across threads), so parallel code —
//! notably the Algorithm-1 seed scan workers in `vc-placement` — can
//! record spans and counters without a global lock on the hot path.
//! Span ids and a global sequence number come from shared atomics, so
//! at flush time the per-thread logs merge into one deterministic
//! timeline ordered by `(t_us, seq)`: the sequence number is a total
//! order consistent with each thread's program order *and* with any
//! cross-thread happens-before edge, so a begin always replays before
//! its end.
//!
//! The merged view exposes the same accessors as [`MemRecorder`]
//! (`spans`, `events`, `metrics`, `counter_series`, `track_names`), so
//! trace export and tests treat the two interchangeably.
//!
//! [`MemRecorder`]: crate::recorder::MemRecorder

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::recorder::{Attr, AttrValue, EventRecord, Recorder, SpanId, SpanRecord, TrackId};

/// One logged recorder call. Ops that carry no timestamp of their own
/// (counters, span attributes) inherit the shard's most recent
/// timestamp so the `(t_us, seq)` merge keeps them adjacent to the
/// surrounding timeline activity.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    CounterAdd {
        name: &'static str,
        delta: u64,
    },
    GaugeSet {
        name: &'static str,
        value: f64,
    },
    GaugeMax {
        name: &'static str,
        value: f64,
    },
    HistRecord {
        name: &'static str,
        value: u64,
    },
    CounterSample {
        name: &'static str,
        value: f64,
    },
    TrackName {
        track: u64,
        name: String,
    },
    Event {
        name: &'static str,
        track: Option<TrackId>,
        attrs: Vec<Attr>,
    },
    SpanBegin {
        id: u64,
        track: TrackId,
        name: &'static str,
        attrs: Vec<Attr>,
    },
    SpanEnd {
        id: u64,
    },
    SpanAttr {
        id: u64,
        key: &'static str,
        value: AttrValue,
    },
}

#[derive(Clone, Debug)]
pub(crate) struct StampedOp {
    pub(crate) t_us: u64,
    pub(crate) seq: u64,
    pub(crate) op: Op,
}

/// Sort an op log by `(t_us, seq)` and replay it into a [`MergedTrace`].
/// Shared by [`ShardedRecorder::merged`] and the JSONL stream replay in
/// [`crate::stream`], so both views have identical merge semantics.
pub(crate) fn replay_ops(mut ops: Vec<StampedOp>) -> MergedTrace {
    // seq is globally unique, so this order is total and respects
    // both per-thread program order and cross-thread causality.
    ops.sort_by_key(|op| (op.t_us, op.seq));

    let mut out = MergedTrace::default();
    let mut metrics = MetricsRegistry::default();
    let mut open: HashMap<u64, usize> = HashMap::new();
    for StampedOp { t_us, op, .. } in ops {
        match op {
            Op::CounterAdd { name, delta } => metrics.counter_add(name, delta),
            Op::GaugeSet { name, value } => metrics.gauge_set(name, value),
            Op::GaugeMax { name, value } => metrics.gauge_max(name, value),
            Op::HistRecord { name, value } => metrics.histogram_record(name, value),
            Op::CounterSample { name, value } => {
                metrics.gauge_set(name, value);
                out.counter_series
                    .entry(name)
                    .or_default()
                    .push((t_us, value));
            }
            Op::TrackName { track, name } => {
                out.track_names.insert(track, name);
            }
            Op::Event { name, track, attrs } => out.events.push(EventRecord {
                name,
                t_us,
                track,
                attrs,
            }),
            Op::SpanBegin {
                id,
                track,
                name,
                attrs,
            } => {
                open.insert(id, out.spans.len());
                out.spans.push(SpanRecord {
                    id: SpanId(id),
                    track,
                    name,
                    start_us: t_us,
                    end_us: None,
                    attrs,
                });
            }
            Op::SpanEnd { id } => {
                if let Some(index) = open.remove(&id) {
                    out.spans[index].end_us = Some(t_us);
                }
            }
            Op::SpanAttr { id, key, value } => {
                if let Some(&index) = open.get(&id) {
                    out.spans[index].attrs.push((key, value));
                }
            }
        }
    }
    out.open_spans = open.len();
    out.metrics = metrics.snapshot();
    out
}

#[derive(Debug, Default)]
struct ShardBuf {
    ops: Vec<StampedOp>,
    /// High-water timestamp of this shard, inherited by untimestamped ops.
    last_t: u64,
}

#[derive(Debug, Default)]
struct Shard {
    buf: Mutex<ShardBuf>,
}

/// Identity counter so the thread-local shard cache can tell recorders
/// apart (a thread may touch several recorders over its lifetime).
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Fast path: the shard this thread last used, keyed by recorder id.
    static SHARD_CACHE: RefCell<Option<(u64, Arc<Shard>)>> = const { RefCell::new(None) };
}

/// Thread-safe buffering recorder; see the module docs.
#[derive(Debug)]
pub struct ShardedRecorder {
    id: u64,
    next_span: AtomicU64,
    next_seq: AtomicU64,
    shards: Mutex<HashMap<ThreadId, Arc<Shard>>>,
}

impl Default for ShardedRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// Deterministic merged view of every shard, shaped like the buffers of
/// a [`MemRecorder`](crate::recorder::MemRecorder).
#[derive(Debug, Default)]
pub struct MergedTrace {
    pub spans: Vec<SpanRecord>,
    pub events: Vec<EventRecord>,
    pub track_names: BTreeMap<u64, String>,
    pub counter_series: BTreeMap<&'static str, Vec<(u64, f64)>>,
    pub metrics: MetricsSnapshot,
    /// Spans begun but never ended at merge time.
    pub open_spans: usize,
}

impl ShardedRecorder {
    pub fn new() -> Self {
        Self {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            next_span: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            shards: Mutex::new(HashMap::new()),
        }
    }

    fn shard(&self) -> Arc<Shard> {
        SHARD_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((id, shard)) = cache.as_ref() {
                if *id == self.id {
                    return Arc::clone(shard);
                }
            }
            let shard = {
                let mut shards = self.shards.lock().expect("shard registry poisoned");
                Arc::clone(shards.entry(std::thread::current().id()).or_default())
            };
            *cache = Some((self.id, Arc::clone(&shard)));
            shard
        })
    }

    /// Append one op. `t` is the op's own timestamp, if it has one.
    fn push(&self, t: Option<u64>, op: Op) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard();
        let mut buf = shard.buf.lock().expect("shard poisoned");
        let t_us = match t {
            Some(t) => {
                buf.last_t = buf.last_t.max(t);
                t
            }
            None => buf.last_t,
        };
        buf.ops.push(StampedOp { t_us, seq, op });
    }

    /// Merge every shard into one deterministic trace. Non-destructive:
    /// the shards keep their logs, so repeated calls agree.
    pub fn merged(&self) -> MergedTrace {
        let mut ops: Vec<StampedOp> = Vec::new();
        {
            let shards = self.shards.lock().expect("shard registry poisoned");
            for shard in shards.values() {
                ops.extend(
                    shard
                        .buf
                        .lock()
                        .expect("shard poisoned")
                        .ops
                        .iter()
                        .cloned(),
                );
            }
        }
        replay_ops(ops)
    }

    pub fn spans(&self) -> Vec<SpanRecord> {
        self.merged().spans
    }

    pub fn events(&self) -> Vec<EventRecord> {
        self.merged().events
    }

    pub fn open_span_count(&self) -> usize {
        self.merged().open_spans
    }

    pub fn track_names(&self) -> BTreeMap<u64, String> {
        self.merged().track_names
    }

    pub fn counter_series(&self) -> BTreeMap<&'static str, Vec<(u64, f64)>> {
        self.merged().counter_series
    }

    pub fn metrics(&self) -> MetricsSnapshot {
        self.merged().metrics
    }
}

impl Recorder for ShardedRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.push(None, Op::CounterAdd { name, delta });
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.push(None, Op::GaugeSet { name, value });
    }

    fn gauge_max(&self, name: &'static str, value: f64) {
        self.push(None, Op::GaugeMax { name, value });
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.push(None, Op::HistRecord { name, value });
    }

    fn counter_sample(&self, name: &'static str, t_us: u64, value: f64) {
        self.push(Some(t_us), Op::CounterSample { name, value });
    }

    fn track_name(&self, track: TrackId, name: &str) {
        self.push(
            None,
            Op::TrackName {
                track: track.0,
                name: name.to_string(),
            },
        );
    }

    fn event(&self, name: &'static str, t_us: u64, track: Option<TrackId>, attrs: &[Attr]) {
        self.push(
            Some(t_us),
            Op::Event {
                name,
                track,
                attrs: attrs.to_vec(),
            },
        );
    }

    fn span_begin(&self, track: TrackId, name: &'static str, t_us: u64, attrs: &[Attr]) -> SpanId {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        self.push(
            Some(t_us),
            Op::SpanBegin {
                id,
                track,
                name,
                attrs: attrs.to_vec(),
            },
        );
        SpanId(id)
    }

    fn span_end(&self, span: SpanId, t_us: u64) {
        if span.is_null() {
            return;
        }
        self.push(Some(t_us), Op::SpanEnd { id: span.0 });
    }

    fn span_attr(&self, span: SpanId, key: &'static str, value: AttrValue) {
        if span.is_null() {
            return;
        }
        self.push(
            None,
            Op::SpanAttr {
                id: span.0,
                key,
                value,
            },
        );
    }

    fn as_sync(&self) -> Option<&(dyn Recorder + Sync)> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sync<T: Sync + Send>() {}

    #[test]
    fn sharded_is_sync() {
        assert_sync::<ShardedRecorder>();
    }

    #[test]
    fn single_thread_matches_mem_semantics() {
        let r = ShardedRecorder::new();
        r.track_name(TrackId(3), "vm3@node1");
        let s = r.span_begin(TrackId(3), "map", 100, &[("task", AttrValue::U64(0))]);
        assert!(!s.is_null());
        r.span_attr(s, "locality", AttrValue::Str("node_local"));
        r.span_end(s, 250);
        r.event("admit", 50, None, &[("id", AttrValue::U64(7))]);
        r.counter_add("c", 2);
        r.counter_sample("queue.depth", 10, 1.0);

        let m = r.merged();
        assert_eq!(m.spans.len(), 1);
        assert_eq!(m.spans[0].start_us, 100);
        assert_eq!(m.spans[0].end_us, Some(250));
        assert_eq!(m.spans[0].attrs.len(), 2);
        assert_eq!(m.open_spans, 0);
        assert_eq!(m.events.len(), 1);
        assert_eq!(m.track_names[&3], "vm3@node1");
        assert_eq!(m.metrics.counters["c"], 2);
        assert_eq!(m.counter_series["queue.depth"], vec![(10, 1.0)]);
    }

    #[test]
    fn records_from_scoped_threads() {
        let r = ShardedRecorder::new();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let r = &r;
                scope.spawn(move || {
                    let s = r.span_begin(TrackId(w), "scan", 10 * w, &[]);
                    r.counter_add("placement.seeds_scanned", w + 1);
                    r.span_end(s, 10 * w + 5);
                });
            }
        });
        let m = r.merged();
        assert_eq!(m.spans.len(), 4);
        assert_eq!(m.open_spans, 0);
        assert_eq!(m.metrics.counters["placement.seeds_scanned"], 1 + 2 + 3 + 4);
        // Deterministic order: sorted by start time.
        let starts: Vec<u64> = m.spans.iter().map(|s| s.start_us).collect();
        assert_eq!(starts, vec![0, 10, 20, 30]);
        // Span ids unique.
        let mut ids: Vec<u64> = m.spans.iter().map(|s| s.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn as_sync_views() {
        let sharded = ShardedRecorder::new();
        assert!(Recorder::as_sync(&sharded).is_some());
        let mem = crate::recorder::MemRecorder::new();
        assert!(Recorder::as_sync(&mem).is_none());
        let noop = crate::recorder::NoopRecorder;
        assert!(Recorder::as_sync(&noop).is_some());
        // Forwarding through &dyn and Arc.
        let dynrec: &dyn Recorder = &sharded;
        assert!(dynrec.as_sync().is_some());
        let arc: std::sync::Arc<dyn Recorder + Sync> = std::sync::Arc::new(ShardedRecorder::new());
        assert!(arc.as_sync().is_some());
    }
}
