//! Run manifests: the identity card every recorded run carries.
//!
//! A [`RunManifest`] pins down *what* produced an artifact — command,
//! seed, policy, configuration knobs, a digest of the topology the run
//! placed onto, and a digest of the workload it served — so any metrics
//! document, JSONL stream, or Prometheus exposition is self-describing.
//! Two artifacts can then be checked for *comparability* (same topology
//! and sampling cadence, differing policy) before `vc diff` aligns
//! their metrics; see [`crate::diff`].
//!
//! The manifest travels embedded under the [`MANIFEST_KEY`] key of the
//! metrics JSON document, as the first line of a streaming JSONL file
//! (`{"manifest": {...}}`, skipped by [`crate::replay_jsonl`]), and as a
//! `vc_run_info` info-metric in the Prometheus exposition.

use serde_json::Value;

/// JSON key under which a manifest embeds in run documents and stream
/// headers.
pub const MANIFEST_KEY: &str = "manifest";

/// Current manifest schema version. Bump on incompatible field changes;
/// [`crate::diff`] refuses to compare across versions.
pub const SCHEMA_VERSION: u64 = 1;

/// Incremental FNV-1a 64-bit hasher — the workspace's dependency-free
/// digest for topology, workload, and artifact fingerprints. Not
/// cryptographic; collisions only need to be unlikely, not infeasible.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    pub fn write_str(&mut self, s: &str) -> &mut Self {
        // Length-prefix so ("ab","c") and ("a","bc") digest differently.
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Final digest as a fixed-width hex string.
    pub fn finish(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Digest a whole string in one call.
pub fn digest_str(s: &str) -> String {
    Fnv64::new().write_str(s).finish()
}

/// The identity of one recorded `simulate*` run.
///
/// `config` carries the command-specific knobs as sorted key/value
/// string pairs (racks, nodes, capacity, requests, rate, workload,
/// maps, ...) so the manifest never needs a schema change when a
/// command grows a flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Manifest schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Workspace crate version that produced the run.
    pub crate_version: String,
    /// Producing subcommand: `simulate`, `simulate-queue`, `simulate-job`.
    pub command: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Placement policy name (or `-` where the command has none).
    pub policy: String,
    /// `ts.*` sampling cadence in µs; 0 when windowed sampling was off.
    pub window_us: u64,
    /// Digest of the topology the run placed onto (node/rack structure
    /// plus distance tiers). Two runs are only comparable when equal.
    pub topology_digest: String,
    /// Digest of the workload/request trace the run served.
    pub workload_digest: String,
    /// Command-specific configuration knobs, sorted by key.
    pub config: Vec<(String, String)>,
}

impl RunManifest {
    /// Build a manifest; `config` is sorted (and deduplicated by key,
    /// last write wins) so digests are order-independent.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        crate_version: &str,
        command: &str,
        seed: u64,
        policy: &str,
        window_us: u64,
        topology_digest: String,
        workload_digest: String,
        mut config: Vec<(String, String)>,
    ) -> Self {
        config.sort_by(|a, b| a.0.cmp(&b.0));
        config.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = std::mem::take(&mut later.1);
                true
            } else {
                false
            }
        });
        RunManifest {
            schema_version: SCHEMA_VERSION,
            crate_version: crate_version.to_string(),
            command: command.to_string(),
            seed,
            policy: policy.to_string(),
            window_us,
            topology_digest,
            workload_digest,
            config,
        }
    }

    /// One config knob by key.
    pub fn config_get(&self, key: &str) -> Option<&str> {
        self.config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Digest over every identifying field — stable across re-runs of
    /// the same configuration and seed.
    pub fn digest(&self) -> String {
        let mut h = Fnv64::new();
        h.write_u64(self.schema_version)
            .write_str(&self.crate_version)
            .write_str(&self.command)
            .write_u64(self.seed)
            .write_str(&self.policy)
            .write_u64(self.window_us)
            .write_str(&self.topology_digest)
            .write_str(&self.workload_digest);
        for (k, v) in &self.config {
            h.write_str(k).write_str(v);
        }
        h.finish()
    }

    /// Whether two manifests describe the *same* run configuration
    /// (everything but the seed).
    pub fn same_config(&self, other: &Self) -> bool {
        self.command == other.command
            && self.policy == other.policy
            && self.window_us == other.window_us
            && self.topology_digest == other.topology_digest
            && self.config == other.config
    }

    /// JSON form (includes the computed `digest` field).
    pub fn to_json(&self) -> Value {
        let config: Vec<(String, Value)> = self
            .config
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect();
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::U64(self.schema_version),
            ),
            (
                "crate_version".to_string(),
                Value::Str(self.crate_version.clone()),
            ),
            ("command".to_string(), Value::Str(self.command.clone())),
            ("seed".to_string(), Value::U64(self.seed)),
            ("policy".to_string(), Value::Str(self.policy.clone())),
            ("window_us".to_string(), Value::U64(self.window_us)),
            (
                "topology_digest".to_string(),
                Value::Str(self.topology_digest.clone()),
            ),
            (
                "workload_digest".to_string(),
                Value::Str(self.workload_digest.clone()),
            ),
            ("config".to_string(), Value::Object(config)),
            ("digest".to_string(), Value::Str(self.digest())),
        ])
    }

    /// Parse a manifest back out of its JSON form. Errors name the
    /// missing or malformed field so callers can point at it.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest field `{name}` missing or not a string"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("manifest field `{name}` missing or not an integer"))
        };
        let schema_version = u64_field("schema_version")?;
        let mut config = Vec::new();
        if let Some(entries) = v.get("config").and_then(Value::as_object) {
            for (k, val) in entries {
                let s = val
                    .as_str()
                    .ok_or_else(|| format!("manifest config `{k}` is not a string"))?;
                config.push((k.clone(), s.to_string()));
            }
        }
        let m = RunManifest {
            schema_version,
            crate_version: str_field("crate_version")?,
            command: str_field("command")?,
            seed: u64_field("seed")?,
            policy: str_field("policy")?,
            window_us: u64_field("window_us")?,
            topology_digest: str_field("topology_digest")?,
            workload_digest: str_field("workload_digest")?,
            config,
        };
        if let Some(recorded) = v.get("digest").and_then(Value::as_str) {
            if recorded != m.digest() {
                return Err(format!(
                    "manifest field `digest` is corrupt: recorded {recorded}, recomputed {}",
                    m.digest()
                ));
            }
        }
        Ok(m)
    }

    /// Extract and parse the manifest embedded in a run document (the
    /// [`MANIFEST_KEY`] key of a metrics JSON). `Ok(None)` when the
    /// document has no manifest at all.
    pub fn from_document(doc: &Value) -> Result<Option<Self>, String> {
        match doc.get(MANIFEST_KEY) {
            None => Ok(None),
            Some(v) => Self::from_json(v).map(Some),
        }
    }

    /// The `vc_run_info` Prometheus info-metric: constant value 1 with
    /// the manifest fields as labels, the standard pattern for exposing
    /// build/run identity to dashboards.
    pub fn to_prom_info(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        format!(
            "# TYPE vc_run_info gauge\nvc_run_info{{command=\"{}\",policy=\"{}\",seed=\"{}\",\
             window_us=\"{}\",topology=\"{}\",workload=\"{}\",version=\"{}\",digest=\"{}\"}} 1\n",
            esc(&self.command),
            esc(&self.policy),
            self.seed,
            self.window_us,
            esc(&self.topology_digest),
            esc(&self.workload_digest),
            esc(&self.crate_version),
            esc(&self.digest()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest::new(
            "0.1.0",
            "simulate",
            7,
            "global",
            5_000_000,
            "aaaa".to_string(),
            "bbbb".to_string(),
            vec![
                ("racks".to_string(), "3".to_string()),
                ("nodes".to_string(), "10".to_string()),
            ],
        )
    }

    #[test]
    fn fnv_is_stable_and_length_prefixed() {
        assert_eq!(digest_str("abc"), digest_str("abc"));
        assert_ne!(digest_str("abc"), digest_str("abd"));
        let mut a = Fnv64::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let m = sample();
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
        assert_eq!(m.digest(), back.digest());
    }

    #[test]
    fn config_is_sorted_and_digest_order_independent() {
        let a = RunManifest::new(
            "0.1.0",
            "simulate",
            0,
            "global",
            0,
            "t".into(),
            "w".into(),
            vec![
                ("b".to_string(), "2".to_string()),
                ("a".to_string(), "1".to_string()),
            ],
        );
        let b = RunManifest::new(
            "0.1.0",
            "simulate",
            0,
            "global",
            0,
            "t".into(),
            "w".into(),
            vec![
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "2".to_string()),
            ],
        );
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.config_get("a"), Some("1"));
    }

    #[test]
    fn digest_changes_with_any_field() {
        let base = sample();
        let mut m = base.clone();
        m.seed = 8;
        assert_ne!(base.digest(), m.digest());
        let mut m = base.clone();
        m.policy = "spread".to_string();
        assert_ne!(base.digest(), m.digest());
        let mut m = base.clone();
        m.topology_digest = "cccc".to_string();
        assert_ne!(base.digest(), m.digest());
    }

    #[test]
    fn corrupt_digest_is_rejected() {
        let mut v = sample().to_json();
        let Value::Object(entries) = &mut v else {
            unreachable!()
        };
        for (k, val) in entries.iter_mut() {
            if k == "digest" {
                *val = Value::Str("deadbeef".to_string());
            }
        }
        let err = RunManifest::from_json(&v).unwrap_err();
        assert!(err.contains("digest"), "{err}");
    }

    #[test]
    fn missing_field_is_named() {
        let err = RunManifest::from_json(&serde_json::json!({"schema_version": 1})).unwrap_err();
        assert!(err.contains("crate_version"), "{err}");
    }

    #[test]
    fn same_config_ignores_seed() {
        let a = sample();
        let mut b = a.clone();
        b.seed = 99;
        assert!(a.same_config(&b));
        b.policy = "spread".to_string();
        assert!(!a.same_config(&b));
    }

    #[test]
    fn prom_info_is_one_labelled_sample() {
        let text = sample().to_prom_info();
        assert!(text.starts_with("# TYPE vc_run_info gauge\n"), "{text}");
        assert!(text.contains("command=\"simulate\""), "{text}");
        assert!(text.contains("policy=\"global\""), "{text}");
        assert!(text.trim_end().ends_with("} 1"), "{text}");
    }
}
