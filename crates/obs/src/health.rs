//! Cloud-health watchdog: severity taxonomy, [`HealthPolicy`], structured
//! `alert.*` emission, and online anomaly detectors over windowed `ts.*`
//! samples.
//!
//! The watchdog has two halves:
//!
//! - **Invariant auditors** live next to the state they audit (cloudsim's
//!   DES loop, the mapreduce engine's link flush, `PlacementIndex`) and
//!   call [`AlertSink::emit`] when a conservation law is violated. They
//!   are read-only: they inspect state and talk to the [`Recorder`], so
//!   traced/untraced bit-parity holds by the same argument as windowed
//!   sampling.
//! - **Anomaly detectors** ([`HealthMonitor`]) are pure state machines fed
//!   one [`WindowHealthSample`] per closed sim-time window. Rules fire
//!   once per episode (a streak of qualifying windows) and re-arm when
//!   the streak breaks.
//!
//! Alerts travel as ordinary recorder events named `alert.<rule>` with
//! `severity`/`subsystem`/`rule` attributes plus rule-specific context
//! (window edge, observed value), and as monotonic counters named
//! `alert.total.<severity>.<rule>` which the Prometheus exporter rewrites
//! into `alert_total{severity,rule}`. Both ride the existing machinery —
//! Mem/Sharded/Streaming recorders, Chrome traces, JSONL replay — so
//! `vc report --stream` replays alerts with no format change.

use crate::recorder::{Attr, AttrValue, Recorder, TrackId};

/// Name prefix shared by every alert event (`alert.<rule>`).
pub const ALERT_PREFIX: &str = "alert.";
/// Name prefix for per-(severity, rule) alert counters.
pub const ALERT_TOTAL_PREFIX: &str = "alert.total.";
/// Windowed series counting alerts fired per closed window.
pub const TS_ALERTS_DELTA: &str = "ts.health.alerts.delta";

/// Alert severity, ordered so `Info < Warn < Critical`. The
/// `--fail-on-alert <severity>` gate trips on any alert at or above the
/// named level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: worth a look, expected under some workloads.
    Info,
    /// Anomaly: the cloud is drifting toward a bad regime (saturation,
    /// stagnation, plateau-with-refusals).
    Warn,
    /// Invariant violation: a conservation law the simulator must uphold
    /// failed — always a bug, never workload-dependent.
    Critical,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }

    /// Parse a CLI-provided severity name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad`, not `write_str`, so table columns can width-format it.
        f.pad(self.as_str())
    }
}

/// Generates the rule-name constants plus the static name tables for
/// `alert.<rule>` events and `alert.total.<severity>.<rule>` counters, so
/// the hot path never allocates or leaks.
macro_rules! alert_rules {
    ($(($const_name:ident, $rule:literal)),* $(,)?) => {
        /// Canonical rule names. Invariant rules are `Critical`;
        /// detector rules are `Warn`.
        pub mod rules {
            $(pub const $const_name: &str = $rule;)*
        }

        /// Every known rule name, for docs and exhaustive tests.
        pub const ALL_RULES: &[&str] = &[$($rule),*];

        /// Static `alert.<rule>` event name for a known rule.
        pub fn alert_event_name(rule: &str) -> &'static str {
            match rule {
                $($rule => concat!("alert.", $rule),)*
                _ => "alert.unknown",
            }
        }

        fn alert_total_name(severity: Severity, rule: &str) -> &'static str {
            match (severity, rule) {
                $(
                    (Severity::Info, $rule) => concat!("alert.total.info.", $rule),
                    (Severity::Warn, $rule) => concat!("alert.total.warn.", $rule),
                    (Severity::Critical, $rule) => concat!("alert.total.critical.", $rule),
                )*
                _ => "alert.total.critical.unknown",
            }
        }
    };
}

alert_rules!(
    // Invariant auditors (Critical on violation).
    (CAPACITY_ACCOUNTING, "capacity_accounting"),
    (INDEX_DRIFT, "index_drift"),
    (QUEUE_ACCOUNTING, "queue_accounting"),
    (SHUFFLE_CONSERVATION, "shuffle_conservation"),
    (FLOW_STARVATION, "flow_starvation"),
    (ATTRIBUTION_TILING, "attribution_tiling"),
    // Window anomaly detectors (Warn).
    (FRAG_GROWTH, "frag_growth"),
    (UPLINK_SATURATION, "uplink_saturation"),
    (QUEUE_STAGNATION, "queue_stagnation"),
    (FILL_PLATEAU_REFUSALS, "fill_plateau_refusals"),
);

/// Thresholds, window counts, and enable flags for the watchdog,
/// threaded through `SimConfig` and the CLI `--health-*` flags.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthPolicy {
    /// Run invariant auditors (capacity/index/queue/shuffle accounting).
    pub invariants: bool,
    /// Run window anomaly detectors over `ts.*` samples.
    pub detectors: bool,
    /// DES-loop auditor cadence: audit after every N processed events
    /// (0 disables the cadenced audits; the end-of-run audit still runs).
    pub audit_every_events: u64,
    /// `frag_growth`: fragmentation index must end at or above this.
    pub frag_min: f64,
    /// `frag_growth`: consecutive strictly-rising windows required.
    pub frag_windows: usize,
    /// `uplink_saturation`: utilization threshold in `[0, 1]`.
    pub uplink_util: f64,
    /// `uplink_saturation`: consecutive windows at/above threshold.
    pub uplink_windows: usize,
    /// `queue_stagnation`: consecutive windows with rising queue depth
    /// and zero served requests.
    pub queue_windows: usize,
    /// `fill_plateau_refusals`: |fill delta| at or below this counts as
    /// a plateau.
    pub plateau_delta: f64,
    /// `fill_plateau_refusals`: consecutive plateau windows with
    /// refusals required.
    pub plateau_windows: usize,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            invariants: true,
            detectors: true,
            audit_every_events: 64,
            frag_min: 0.5,
            frag_windows: 3,
            uplink_util: 0.9,
            uplink_windows: 2,
            queue_windows: 3,
            plateau_delta: 0.005,
            plateau_windows: 2,
        }
    }
}

/// Counts alerts and routes them to a [`Recorder`] as an `alert.<rule>`
/// event plus an `alert.total.<severity>.<rule>` counter increment.
/// Deliberately dumb: all detection logic lives in the caller or in
/// [`HealthMonitor`], so emission order is deterministic.
#[derive(Debug, Default)]
pub struct AlertSink {
    fired: u64,
}

impl AlertSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total alerts emitted through this sink so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Emit one alert. `extra` carries rule-specific context (window
    /// edge, observed vs expected values); callers gate on
    /// [`Recorder::enabled`] before building anything expensive.
    #[allow(clippy::too_many_arguments)]
    pub fn emit<R: Recorder>(
        &mut self,
        rec: &R,
        t_us: u64,
        track: Option<TrackId>,
        severity: Severity,
        subsystem: &'static str,
        rule: &'static str,
        extra: &[Attr],
    ) {
        self.fired += 1;
        if !rec.enabled() {
            return;
        }
        let mut attrs: Vec<Attr> = Vec::with_capacity(3 + extra.len());
        attrs.push(("severity", AttrValue::Str(severity.as_str())));
        attrs.push(("subsystem", AttrValue::Str(subsystem)));
        attrs.push(("rule", AttrValue::Str(rule)));
        attrs.extend_from_slice(extra);
        rec.event(alert_event_name(rule), t_us, track, &attrs);
        rec.counter_add(alert_total_name(severity, rule), 1);
    }
}

/// One closed sim-time window's health-relevant readings, as sampled by
/// the cloudsim DES loop alongside the `ts.*` series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowHealthSample {
    /// Window edge in sim microseconds (same edge the `ts.*` samples
    /// carry).
    pub edge_us: u64,
    /// Cloud fill fraction in `[0, 1]`.
    pub fill: f64,
    /// Fragmentation index in `[0, 1]`.
    pub frag: f64,
    /// Admission queue depth at the window edge.
    pub queue_depth: f64,
    /// Requests served during the window.
    pub served_delta: f64,
    /// Requests refused during the window.
    pub refused_delta: f64,
    /// Mean cross-rack uplink utilization over the window, when the
    /// service simulates the network (`None` otherwise).
    pub uplink_util: Option<f64>,
}

/// Streak state for one rule: fires once when the streak reaches the
/// required length, then stays quiet until the streak breaks (one alert
/// per episode).
#[derive(Debug, Default)]
struct Streak {
    run: usize,
    fired: bool,
}

impl Streak {
    /// Advance with this window's qualification; returns true exactly
    /// when the rule should fire.
    fn step(&mut self, qualifies: bool, need: usize) -> bool {
        if !qualifies {
            self.run = 0;
            self.fired = false;
            return false;
        }
        self.run += 1;
        if self.run >= need.max(1) && !self.fired {
            self.fired = true;
            return true;
        }
        false
    }
}

/// Online anomaly detector bank over windowed health samples. Pure
/// function of the sample sequence and policy — no clocks, no
/// randomness — so two replays of the same run fire identical alerts.
#[derive(Debug)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    frag: Streak,
    last_frag: Option<f64>,
    uplink: Streak,
    queue: Streak,
    last_queue: Option<f64>,
    plateau: Streak,
    last_fill: Option<f64>,
}

impl HealthMonitor {
    pub fn new(policy: HealthPolicy) -> Self {
        Self {
            policy,
            frag: Streak::default(),
            last_frag: None,
            uplink: Streak::default(),
            queue: Streak::default(),
            last_queue: None,
            plateau: Streak::default(),
            last_fill: None,
        }
    }

    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Feed one closed window; fires any due detector alerts through
    /// `sink`.
    pub fn observe<R: Recorder>(&mut self, sink: &mut AlertSink, rec: &R, w: &WindowHealthSample) {
        if !self.policy.detectors {
            return;
        }
        let p = &self.policy;

        // Fragmentation growth: strictly rising for N windows, ending
        // at or above the floor. NaN comparisons are false, so a NaN
        // sample breaks the streak instead of firing.
        let frag_rising = self.last_frag.is_some_and(|prev| w.frag > prev) && w.frag >= p.frag_min;
        if self.frag.step(frag_rising, p.frag_windows) {
            sink.emit(
                rec,
                w.edge_us,
                None,
                Severity::Warn,
                "cloudsim",
                rules::FRAG_GROWTH,
                &[
                    ("window_edge_us", AttrValue::U64(w.edge_us)),
                    ("value", AttrValue::F64(w.frag)),
                    ("windows", AttrValue::U64(self.frag.run as u64)),
                ],
            );
        }
        self.last_frag = Some(w.frag);

        // Sustained cross-rack uplink saturation.
        let uplink_hot = w.uplink_util.is_some_and(|u| u >= p.uplink_util);
        if self.uplink.step(uplink_hot, p.uplink_windows) {
            sink.emit(
                rec,
                w.edge_us,
                None,
                Severity::Warn,
                "netsim",
                rules::UPLINK_SATURATION,
                &[
                    ("window_edge_us", AttrValue::U64(w.edge_us)),
                    ("value", AttrValue::F64(w.uplink_util.unwrap_or(0.0))),
                    ("threshold", AttrValue::F64(p.uplink_util)),
                    ("windows", AttrValue::U64(self.uplink.run as u64)),
                ],
            );
        }

        // Queue depth trending up with nothing served: the queue grows
        // but the cloud is not draining it.
        let stagnating =
            self.last_queue.is_some_and(|prev| w.queue_depth > prev) && w.served_delta == 0.0;
        if self.queue.step(stagnating, p.queue_windows) {
            sink.emit(
                rec,
                w.edge_us,
                None,
                Severity::Warn,
                "cloudsim",
                rules::QUEUE_STAGNATION,
                &[
                    ("window_edge_us", AttrValue::U64(w.edge_us)),
                    ("value", AttrValue::F64(w.queue_depth)),
                    ("windows", AttrValue::U64(self.queue.run as u64)),
                ],
            );
        }
        self.last_queue = Some(w.queue_depth);

        // Fill plateau with refusals: capacity stopped moving while
        // requests bounce — the fragmentation/packing signature.
        let plateaued = self
            .last_fill
            .is_some_and(|prev| (w.fill - prev).abs() <= p.plateau_delta)
            && w.refused_delta > 0.0;
        if self.plateau.step(plateaued, p.plateau_windows) {
            sink.emit(
                rec,
                w.edge_us,
                None,
                Severity::Warn,
                "cloudsim",
                rules::FILL_PLATEAU_REFUSALS,
                &[
                    ("window_edge_us", AttrValue::U64(w.edge_us)),
                    ("value", AttrValue::F64(w.refused_delta)),
                    ("fill", AttrValue::F64(w.fill)),
                    ("windows", AttrValue::U64(self.plateau.run as u64)),
                ],
            );
        }
        self.last_fill = Some(w.fill);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemRecorder;

    fn window(edge_us: u64) -> WindowHealthSample {
        WindowHealthSample {
            edge_us,
            fill: 0.5,
            frag: 0.0,
            queue_depth: 0.0,
            served_delta: 1.0,
            refused_delta: 0.0,
            uplink_util: None,
        }
    }

    #[test]
    fn severity_orders_and_parses() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Critical);
        for sev in [Severity::Info, Severity::Warn, Severity::Critical] {
            assert_eq!(Severity::parse(sev.as_str()), Some(sev));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn alert_names_are_static_and_known() {
        for &rule in ALL_RULES {
            let ev = alert_event_name(rule);
            assert_eq!(ev, format!("alert.{rule}"));
            assert_eq!(
                alert_total_name(Severity::Warn, rule),
                format!("alert.total.warn.{rule}")
            );
        }
        assert_eq!(alert_event_name("no_such_rule"), "alert.unknown");
    }

    #[test]
    fn sink_emits_event_and_counter() {
        let rec = MemRecorder::new();
        let mut sink = AlertSink::new();
        sink.emit(
            &rec,
            42,
            None,
            Severity::Critical,
            "cloudsim",
            rules::QUEUE_ACCOUNTING,
            &[("expected", AttrValue::U64(3)), ("got", AttrValue::U64(4))],
        );
        assert_eq!(sink.fired(), 1);
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "alert.queue_accounting");
        assert_eq!(events[0].t_us, 42);
        let snap = rec.metrics();
        assert_eq!(
            snap.counters.get("alert.total.critical.queue_accounting"),
            Some(&1)
        );
    }

    #[test]
    fn uplink_saturation_fires_once_per_episode() {
        let rec = MemRecorder::new();
        let mut sink = AlertSink::new();
        let mut mon = HealthMonitor::new(HealthPolicy::default());
        let mut hot = window(0);
        hot.uplink_util = Some(0.95);
        let mut cold = window(0);
        cold.uplink_util = Some(0.2);
        // Two hot windows → one alert; staying hot stays quiet.
        for (i, w) in [hot, hot, hot].iter().enumerate() {
            let mut w = *w;
            w.edge_us = (i as u64 + 1) * 100;
            mon.observe(&mut sink, &rec, &w);
        }
        assert_eq!(sink.fired(), 1);
        // Break the streak, then re-qualify → a second episode.
        cold.edge_us = 400;
        mon.observe(&mut sink, &rec, &cold);
        for e in 0..2u64 {
            let mut w = hot;
            w.edge_us = 500 + e * 100;
            mon.observe(&mut sink, &rec, &w);
        }
        assert_eq!(sink.fired(), 2);
        let events = rec.events();
        assert!(events.iter().all(|e| e.name == "alert.uplink_saturation"));
        assert_eq!(events[0].t_us, 200, "fires at the Nth hot window edge");
    }

    #[test]
    fn frag_growth_requires_floor_and_streak() {
        let rec = MemRecorder::new();
        let mut sink = AlertSink::new();
        let mut mon = HealthMonitor::new(HealthPolicy::default());
        // Rising but below the 0.5 floor: never fires.
        for (i, f) in [0.1, 0.2, 0.3, 0.4].iter().enumerate() {
            let mut w = window((i as u64 + 1) * 100);
            w.frag = *f;
            mon.observe(&mut sink, &rec, &w);
        }
        assert_eq!(sink.fired(), 0);
        // Keep rising through the floor for three more windows.
        for (i, f) in [0.6, 0.7, 0.8].iter().enumerate() {
            let mut w = window(500 + i as u64 * 100);
            w.frag = *f;
            mon.observe(&mut sink, &rec, &w);
        }
        assert_eq!(sink.fired(), 1);
    }

    #[test]
    fn nan_frag_breaks_streak_instead_of_firing() {
        let rec = MemRecorder::new();
        let mut sink = AlertSink::new();
        let mut mon = HealthMonitor::new(HealthPolicy::default());
        for (i, f) in [0.6, 0.7, f64::NAN, 0.8, 0.9].iter().enumerate() {
            let mut w = window((i as u64 + 1) * 100);
            w.frag = *f;
            mon.observe(&mut sink, &rec, &w);
        }
        assert_eq!(sink.fired(), 0);
    }

    #[test]
    fn queue_stagnation_needs_growth_without_serves() {
        let rec = MemRecorder::new();
        let mut sink = AlertSink::new();
        let mut mon = HealthMonitor::new(HealthPolicy::default());
        for i in 0..4u64 {
            let mut w = window((i + 1) * 100);
            w.queue_depth = i as f64;
            w.served_delta = 0.0;
            mon.observe(&mut sink, &rec, &w);
        }
        // Windows 2..4 each grow with zero serves → streak of 3 fires.
        assert_eq!(sink.fired(), 1);
        // Serving even one request resets the episode.
        let mut w = window(500);
        w.queue_depth = 10.0;
        w.served_delta = 2.0;
        mon.observe(&mut sink, &rec, &w);
        assert_eq!(sink.fired(), 1);
    }

    #[test]
    fn plateau_with_refusals_fires() {
        let rec = MemRecorder::new();
        let mut sink = AlertSink::new();
        let mut mon = HealthMonitor::new(HealthPolicy::default());
        for i in 0..3u64 {
            let mut w = window((i + 1) * 100);
            w.fill = 0.95;
            w.refused_delta = 2.0;
            mon.observe(&mut sink, &rec, &w);
        }
        // First window has no previous fill; the next two plateau.
        assert_eq!(sink.fired(), 1);
    }

    #[test]
    fn detectors_disabled_stay_silent() {
        let rec = MemRecorder::new();
        let mut sink = AlertSink::new();
        let mut mon = HealthMonitor::new(HealthPolicy {
            detectors: false,
            ..HealthPolicy::default()
        });
        for i in 0..5u64 {
            let mut w = window((i + 1) * 100);
            w.uplink_util = Some(1.0);
            w.queue_depth = i as f64;
            w.served_delta = 0.0;
            mon.observe(&mut sink, &rec, &w);
        }
        assert_eq!(sink.fired(), 0);
    }

    #[test]
    fn replay_is_deterministic() {
        let samples: Vec<WindowHealthSample> = (0..20u64)
            .map(|i| {
                let mut w = window((i + 1) * 50);
                w.uplink_util = Some(if i % 3 == 0 { 0.95 } else { 0.5 });
                w.frag = 0.04 * i as f64;
                w.queue_depth = (i / 2) as f64;
                w.served_delta = f64::from(u32::from(i % 4 != 0));
                w.refused_delta = f64::from(u32::from(i > 10));
                w.fill = if i > 10 { 0.9 } else { 0.05 * i as f64 };
                w
            })
            .collect();
        let run = |samples: &[WindowHealthSample]| {
            let rec = MemRecorder::new();
            let mut sink = AlertSink::new();
            let mut mon = HealthMonitor::new(HealthPolicy::default());
            for w in samples {
                mon.observe(&mut sink, &rec, w);
            }
            let names: Vec<(String, u64)> = rec
                .events()
                .iter()
                .map(|e| (e.name.to_string(), e.t_us))
                .collect();
            (sink.fired(), names)
        };
        assert_eq!(run(&samples), run(&samples));
    }
}
