//! Critical-path analysis over a recorded simulation trace.
//!
//! Rebuilds the span DAG of each MapReduce job (job → map attempts →
//! shuffle → reduce → commit, linked by the track layout and span
//! attributes `vc-mapreduce` emits), walks the chain that actually
//! gated job completion backwards from the last commit, and attributes
//! every microsecond of the job's makespan to exactly one of six
//! categories:
//!
//! * `map` — useful map compute/read time on the gating chain;
//! * `straggler-slack` — the *extra* time the gating map attempts spent
//!   because of their straggler slowdown factor (the part speculation
//!   is supposed to recover);
//! * `shuffle-serialisation` — the unavoidable wire time of the gating
//!   reducer's final fetch at its isolated (uncontended) rate;
//! * `shuffle-network-wait` — the rest of the shuffle tail: contention,
//!   shared-link queueing and fetch scheduling. This is the
//!   affinity-attributable component — it shrinks as cluster distance
//!   DC(C) shrinks;
//! * `reduce` — reduce compute plus output commit on the gating chain;
//! * `scheduler-wait` — time the gating chain spent waiting for a slot
//!   (reducer waves, gaps between chained spans).
//!
//! The walk produces contiguous segments tiling `[job start, job end]`,
//! so the category sums equal the end-to-end makespan *exactly* — the
//! property the acceptance test asserts.

use std::collections::BTreeMap;

use serde_json::{json, Value};

use crate::recorder::{AttrValue, EventRecord, SpanRecord};

/// Owned, analysis-friendly copy of one recorded span. Unlike
/// [`SpanRecord`] the name is a `String`, so dumps parsed back from
/// Chrome-trace JSON and dumps taken live from a recorder are the same
/// type.
#[derive(Clone, Debug)]
pub struct DumpSpan {
    pub track: u64,
    pub name: String,
    pub start_us: u64,
    pub end_us: u64,
    pub attrs: Vec<(String, Value)>,
    /// Span was still open when the trace was taken.
    pub unterminated: bool,
}

impl DumpSpan {
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attr(key).and_then(Value::as_u64)
    }

    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        self.attr(key).and_then(Value::as_f64)
    }

    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Owned copy of one instant event.
#[derive(Clone, Debug)]
pub struct DumpEvent {
    pub name: String,
    pub t_us: u64,
    pub track: Option<u64>,
    pub attrs: Vec<(String, Value)>,
}

impl DumpEvent {
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A recorder dump decoupled from the recorder: buildable from a live
/// [`MemRecorder`]/[`ShardedRecorder`] or parsed back from a
/// `--trace-out` Chrome trace file.
///
/// [`MemRecorder`]: crate::recorder::MemRecorder
/// [`ShardedRecorder`]: crate::sharded::ShardedRecorder
#[derive(Clone, Debug, Default)]
pub struct TraceDump {
    pub spans: Vec<DumpSpan>,
    pub events: Vec<DumpEvent>,
}

fn attr_to_value(v: &AttrValue) -> Value {
    match v {
        AttrValue::U64(x) => json!(*x),
        AttrValue::I64(x) => json!(*x),
        AttrValue::F64(x) => json!(*x),
        AttrValue::Bool(x) => json!(*x),
        AttrValue::Str(s) => json!(*s),
        AttrValue::Owned(s) => json!(s.as_str()),
    }
}

impl TraceDump {
    /// Build a dump from recorder buffers.
    pub fn from_records(spans: &[SpanRecord], events: &[EventRecord]) -> Self {
        let spans = spans
            .iter()
            .map(|s| DumpSpan {
                track: s.track.0,
                name: s.name.to_string(),
                start_us: s.start_us,
                end_us: s.end_us.unwrap_or(s.start_us),
                attrs: s
                    .attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), attr_to_value(v)))
                    .collect(),
                unterminated: s.end_us.is_none(),
            })
            .collect();
        let events = events
            .iter()
            .map(|e| DumpEvent {
                name: e.name.to_string(),
                t_us: e.t_us,
                track: e.track.map(|t| t.0),
                attrs: e
                    .attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), attr_to_value(v)))
                    .collect(),
            })
            .collect();
        Self { spans, events }
    }

    pub fn from_mem(rec: &crate::recorder::MemRecorder) -> Self {
        Self::from_records(&rec.spans(), &rec.events())
    }

    pub fn from_sharded(rec: &crate::sharded::ShardedRecorder) -> Self {
        let merged = rec.merged();
        Self::from_records(&merged.spans, &merged.events)
    }

    /// Parse a Chrome trace-event document (the `--trace-out` format)
    /// back into a dump. Only `"X"` (span) and `"i"` (instant) records
    /// matter for analysis; metadata and counter records are skipped.
    pub fn from_chrome_value(doc: &Value) -> Result<Self, String> {
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or_else(|| "trace file has no traceEvents array".to_string())?;
        let mut dump = TraceDump::default();
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
            let name = e
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            let tid = e.get("tid").and_then(Value::as_u64).unwrap_or(0);
            let ts = e.get("ts").and_then(Value::as_u64).unwrap_or(0);
            let attrs: Vec<(String, Value)> = match e.get("args") {
                Some(Value::Object(entries)) => entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
                _ => Vec::new(),
            };
            match ph {
                "X" => {
                    let dur = e.get("dur").and_then(Value::as_u64).unwrap_or(0);
                    let unterminated = attrs
                        .iter()
                        .any(|(k, v)| k == "unterminated" && matches!(v, Value::Bool(true)));
                    dump.spans.push(DumpSpan {
                        track: tid,
                        name,
                        start_us: ts,
                        end_us: ts + dur,
                        attrs,
                        unterminated,
                    });
                }
                "i" => {
                    let scoped = e.get("s").and_then(Value::as_str) == Some("t");
                    dump.events.push(DumpEvent {
                        name,
                        t_us: ts,
                        track: scoped.then_some(tid),
                        attrs,
                    });
                }
                _ => {}
            }
        }
        Ok(dump)
    }
}

/// The six attribution buckets. Order is the canonical reporting order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    Map,
    StragglerSlack,
    ShuffleSerialisation,
    ShuffleNetworkWait,
    Reduce,
    SchedulerWait,
}

/// All categories in reporting order.
pub const CATEGORIES: [Category; 6] = [
    Category::Map,
    Category::StragglerSlack,
    Category::ShuffleSerialisation,
    Category::ShuffleNetworkWait,
    Category::Reduce,
    Category::SchedulerWait,
];

impl Category {
    pub fn label(self) -> &'static str {
        match self {
            Category::Map => "map",
            Category::StragglerSlack => "straggler-slack",
            Category::ShuffleSerialisation => "shuffle-serialisation",
            Category::ShuffleNetworkWait => "shuffle-network-wait",
            Category::Reduce => "reduce",
            Category::SchedulerWait => "scheduler-wait",
        }
    }
}

/// One attributed slice of a job's critical path. Segments are emitted
/// in reverse-chronological discovery order but [`analyze`] returns
/// them sorted by start time; consecutive segments abut exactly.
#[derive(Clone, Debug)]
pub struct Segment {
    pub category: Category,
    pub start_us: u64,
    pub end_us: u64,
    /// Human-readable description of the gating span ("map 3 attempt 0",
    /// "reduce 1", …).
    pub what: String,
}

/// Critical-path attribution for one job.
#[derive(Clone, Debug)]
pub struct JobAttribution {
    /// Track the job span lives on (the request's block base + 1 lane
    /// in queue runs, 0 in standalone runs).
    pub track: u64,
    pub start_us: u64,
    pub end_us: u64,
    /// Cluster distance DC(C) of the placement, if recorded on the job span.
    pub distance: Option<u64>,
    /// Link class (`"rack-up"`, `"node-rx"`, …), `"rate-cap"`, or
    /// `"none"` that bottlenecked the gating reducer's *last* shuffle
    /// fetch, if the engine recorded it. Decomposes
    /// `shuffle-network-wait` by where the contention actually was:
    /// `"rack-up"`/`"cloud-up"` tails are the affinity-attributable
    /// ones, `"node-rx"` tails are incast at the reducer.
    pub gating_bottleneck: Option<String>,
    pub segments: Vec<Segment>,
}

impl JobAttribution {
    pub fn makespan_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Total time attributed to `cat` (sums segment lengths).
    pub fn total_us(&self, cat: Category) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.category == cat)
            .map(|s| s.end_us.saturating_sub(s.start_us))
            .sum()
    }

    /// Sum over all categories; equals [`Self::makespan_us`] by
    /// construction.
    pub fn attributed_us(&self) -> u64 {
        CATEGORIES.iter().map(|&c| self.total_us(c)).sum()
    }

    /// JSON object for `vc report --json` and the bench harness.
    pub fn to_json(&self) -> Value {
        let cats: Vec<(String, Value)> = CATEGORIES
            .iter()
            .map(|&c| (c.label().to_string(), json!(self.total_us(c))))
            .collect();
        json!({
            "track": self.track,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "makespan_us": self.makespan_us(),
            "distance": self.distance,
            "gating_bottleneck": self.gating_bottleneck,
            "categories_us": Value::Object(cats),
        })
    }
}

/// Internal: push a segment unless it is empty.
fn push_seg(segs: &mut Vec<Segment>, category: Category, start: u64, end: u64, what: &str) {
    if end > start {
        segs.push(Segment {
            category,
            start_us: start,
            end_us: end,
            what: what.to_string(),
        });
    }
}

/// Split a map attempt `[start, end]` into useful map time and
/// straggler slack, using the `slowdown` attribute the engine records
/// on straggling attempts: a factor `f > 1` means the attempt took
/// `f×` its clean duration, so `dur·(1 − 1/f)` of it is slack.
fn push_map_segments(segs: &mut Vec<Segment>, span: &DumpSpan) {
    let dur = span.duration_us();
    let slack = match span.attr_f64("slowdown") {
        Some(f) if f > 1.0 => ((dur as f64) * (1.0 - 1.0 / f)).round() as u64,
        _ => 0,
    };
    let slack = slack.min(dur);
    let what = format!(
        "map {} attempt {}",
        span.attr_u64("task").unwrap_or(0),
        span.attr_u64("attempt").unwrap_or(0)
    );
    push_seg(
        segs,
        Category::StragglerSlack,
        span.end_us - slack,
        span.end_us,
        &what,
    );
    push_seg(
        segs,
        Category::Map,
        span.start_us,
        span.end_us - slack,
        &what,
    );
}

/// Walk the map phase backwards from `from_t` down to the job start,
/// chaining through the latest-finishing map attempt at each point and
/// attributing inter-attempt gaps to the scheduler.
fn walk_map_chain(segs: &mut Vec<Segment>, maps: &[&DumpSpan], job_start: u64, from_t: u64) {
    let mut cur = from_t;
    loop {
        if cur <= job_start {
            return;
        }
        // The latest map attempt that finished at or before `cur` and
        // started strictly before it (so the walk always progresses).
        let gating = maps
            .iter()
            .filter(|m| m.end_us <= cur && m.start_us < cur)
            .max_by_key(|m| (m.end_us, m.start_us));
        match gating {
            None => {
                push_seg(
                    segs,
                    Category::SchedulerWait,
                    job_start,
                    cur,
                    "map wave wait",
                );
                return;
            }
            Some(m) => {
                push_seg(
                    segs,
                    Category::SchedulerWait,
                    m.end_us,
                    cur,
                    "map slot wait",
                );
                push_map_segments(segs, m);
                cur = m.start_us;
            }
        }
    }
}

/// Attribute one job. `members` are the spans inside the job's track
/// block (map/shuffle/reduce/commit lanes).
fn analyze_job(job: &DumpSpan, members: &[&DumpSpan]) -> JobAttribution {
    let (j0, j1) = (job.start_us, job.end_us);
    let mut segs: Vec<Segment> = Vec::new();
    let mut gating_bottleneck: Option<String> = None;

    let maps: Vec<&DumpSpan> = members
        .iter()
        .copied()
        .filter(|s| s.name == "map" && !s.unterminated)
        .collect();
    let by_reducer = |name: &str, r: u64| {
        members
            .iter()
            .copied()
            .find(|s| s.name == name && !s.unterminated && s.attr_u64("reducer") == Some(r))
    };

    // The gating reducer is the one whose commit finished last.
    let last_commit = members
        .iter()
        .copied()
        .filter(|s| s.name == "commit" && !s.unterminated)
        .max_by_key(|s| (s.end_us, s.attr_u64("reducer").unwrap_or(0)));

    match last_commit {
        None => {
            // No reducers committed (degenerate/partial trace): attribute
            // through the map phase only.
            walk_map_chain(&mut segs, &maps, j0, j1);
        }
        Some(commit) => {
            let r = commit.attr_u64("reducer").unwrap_or(0);
            // Anything after the last commit (should be empty).
            push_seg(
                &mut segs,
                Category::SchedulerWait,
                commit.end_us,
                j1,
                "job teardown",
            );
            push_seg(
                &mut segs,
                Category::Reduce,
                commit.start_us,
                commit.end_us,
                &format!("commit {r}"),
            );
            let mut cur = commit.start_us;

            if let Some(reduce) = by_reducer("reduce", r) {
                push_seg(
                    &mut segs,
                    Category::SchedulerWait,
                    reduce.end_us,
                    cur,
                    "commit wait",
                );
                push_seg(
                    &mut segs,
                    Category::Reduce,
                    reduce.start_us,
                    reduce.end_us,
                    &format!("reduce {r}"),
                );
                cur = reduce.start_us;
            }

            match by_reducer("shuffle", r) {
                Some(shuffle) => {
                    gating_bottleneck = shuffle
                        .attr("last_fetch_bottleneck")
                        .and_then(Value::as_str)
                        .map(str::to_string);
                    push_seg(
                        &mut segs,
                        Category::SchedulerWait,
                        shuffle.end_us,
                        cur,
                        "reduce slot wait",
                    );
                    let (s0, s1) = (shuffle.start_us, shuffle.end_us.min(cur));
                    // All-maps-done time bounds the shuffle tail: before it
                    // the shuffle overlaps the map phase for free.
                    let gate = shuffle.attr_u64("maps_done_us").unwrap_or(s0).clamp(s0, s1);
                    let tail = s1 - gate;
                    let ser = shuffle
                        .attr_u64("last_fetch_ideal_us")
                        .unwrap_or(0)
                        .min(tail);
                    push_seg(
                        &mut segs,
                        Category::ShuffleSerialisation,
                        s1 - ser,
                        s1,
                        &format!("shuffle {r} wire time"),
                    );
                    push_seg(
                        &mut segs,
                        Category::ShuffleNetworkWait,
                        gate,
                        s1 - ser,
                        &format!("shuffle {r} contention"),
                    );
                    if gate > s0 {
                        // Maps gated the shuffle: chain through the map phase.
                        walk_map_chain(&mut segs, &maps, j0, gate);
                    } else {
                        // Reducer itself started late (later wave).
                        push_seg(
                            &mut segs,
                            Category::SchedulerWait,
                            j0,
                            s0,
                            "reduce wave wait",
                        );
                    }
                }
                None => {
                    walk_map_chain(&mut segs, &maps, j0, cur);
                }
            }
        }
    }

    segs.sort_by_key(|s| (s.start_us, s.end_us));
    JobAttribution {
        track: job.track,
        start_us: j0,
        end_us: j1,
        distance: job.attr_u64("cluster_distance"),
        gating_bottleneck,
        segments: segs,
    }
}

/// Analyze every job in the dump. Jobs are identified by their `job`
/// spans; member spans are assigned to the job with the greatest track
/// base at or below their own track (the per-request track blocks are
/// disjoint, so this is exact for both queue and standalone traces).
pub fn analyze(dump: &TraceDump) -> Vec<JobAttribution> {
    let mut jobs: Vec<&DumpSpan> = dump
        .spans
        .iter()
        .filter(|s| s.name == "job" && !s.unterminated)
        .collect();
    jobs.sort_by_key(|s| s.track);
    if jobs.is_empty() {
        return Vec::new();
    }

    let mut members: BTreeMap<u64, Vec<&DumpSpan>> = BTreeMap::new();
    for span in &dump.spans {
        if matches!(span.name.as_str(), "map" | "shuffle" | "reduce" | "commit") {
            // Greatest job track <= span track.
            let owner = match jobs.binary_search_by_key(&span.track, |j| j.track) {
                Ok(i) => Some(i),
                Err(0) => None,
                Err(i) => Some(i - 1),
            };
            if let Some(i) = owner {
                members.entry(jobs[i].track).or_default().push(span);
            }
        }
    }

    jobs.iter()
        .map(|job| analyze_job(job, members.get(&job.track).map_or(&[][..], Vec::as_slice)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: u64, name: &str, start: u64, end: u64, attrs: &[(&str, Value)]) -> DumpSpan {
        DumpSpan {
            track,
            name: name.to_string(),
            start_us: start,
            end_us: end,
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            unterminated: false,
        }
    }

    /// Hand-built DAG with a known critical path through a straggling
    /// reduce-side chain: two maps (one straggler), a shuffle whose tail
    /// is partly wire time, a reduce, and a commit.
    #[test]
    fn straggler_fixture_exact_attribution() {
        // Timeline (µs):
        //   job [0, 1000]
        //   map0 [0, 100] clean; map1 [0, 400] with slowdown 2.0
        //   shuffle r0 [0, 600]: maps_done=400, last fetch ideal 50
        //   reduce r0 [600, 900]; commit r0 [900, 1000]
        let dump = TraceDump {
            spans: vec![
                span(0, "job", 0, 1000, &[("cluster_distance", json!(7))]),
                span(
                    2,
                    "map",
                    0,
                    100,
                    &[("task", json!(0)), ("attempt", json!(0))],
                ),
                span(
                    3,
                    "map",
                    0,
                    400,
                    &[
                        ("task", json!(1)),
                        ("attempt", json!(0)),
                        ("slowdown", json!(2.0)),
                    ],
                ),
                span(
                    2,
                    "shuffle",
                    0,
                    600,
                    &[
                        ("reducer", json!(0)),
                        ("maps_done_us", json!(400)),
                        ("last_fetch_ideal_us", json!(50)),
                        ("last_fetch_bottleneck", json!("rack-up")),
                    ],
                ),
                span(2, "reduce", 600, 900, &[("reducer", json!(0))]),
                span(2, "commit", 900, 1000, &[("reducer", json!(0))]),
            ],
            events: vec![],
        };

        let jobs = analyze(&dump);
        assert_eq!(jobs.len(), 1);
        let job = &jobs[0];
        assert_eq!(job.makespan_us(), 1000);
        assert_eq!(job.distance, Some(7));
        assert_eq!(job.gating_bottleneck.as_deref(), Some("rack-up"));

        // Chain: map1 [0,400] (200 map + 200 slack, f=2), shuffle tail
        // [400,600] (150 network-wait + 50 wire), reduce [600,900],
        // commit [900,1000].
        assert_eq!(job.total_us(Category::Map), 200);
        assert_eq!(job.total_us(Category::StragglerSlack), 200);
        assert_eq!(job.total_us(Category::ShuffleNetworkWait), 150);
        assert_eq!(job.total_us(Category::ShuffleSerialisation), 50);
        assert_eq!(job.total_us(Category::Reduce), 400);
        assert_eq!(job.total_us(Category::SchedulerWait), 0);
        assert_eq!(job.attributed_us(), job.makespan_us());

        // Segments tile the job interval contiguously.
        let segs = &job.segments;
        assert_eq!(segs.first().unwrap().start_us, 0);
        assert_eq!(segs.last().unwrap().end_us, 1000);
        for w in segs.windows(2) {
            assert_eq!(w[0].end_us, w[1].start_us);
        }
    }

    /// A second-wave reducer (shuffle starts after all maps are done)
    /// charges its pre-shuffle delay to the scheduler.
    #[test]
    fn second_wave_reducer_counts_scheduler_wait() {
        let dump = TraceDump {
            spans: vec![
                span(0, "job", 0, 500, &[]),
                span(
                    2,
                    "map",
                    0,
                    100,
                    &[("task", json!(0)), ("attempt", json!(0))],
                ),
                span(
                    2,
                    "shuffle",
                    200,
                    300,
                    &[("reducer", json!(1)), ("maps_done_us", json!(100))],
                ),
                span(2, "reduce", 300, 450, &[("reducer", json!(1))]),
                span(2, "commit", 450, 500, &[("reducer", json!(1))]),
            ],
            events: vec![],
        };
        let jobs = analyze(&dump);
        let job = &jobs[0];
        assert_eq!(job.attributed_us(), 500);
        // [0,200] wave wait, [200,300] network wait (no ideal attr),
        // [300,450] reduce, [450,500] commit.
        assert_eq!(job.total_us(Category::SchedulerWait), 200);
        assert_eq!(job.total_us(Category::ShuffleNetworkWait), 100);
        assert_eq!(job.total_us(Category::Reduce), 200);
    }

    #[test]
    fn chrome_roundtrip_preserves_analysis() {
        let rec = crate::recorder::MemRecorder::new();
        use crate::recorder::{Recorder, TrackId};
        let j = rec.span_begin(TrackId(0), "job", 0, &[]);
        let m = rec.span_begin(
            TrackId(2),
            "map",
            0,
            &[("task", AttrValue::U64(0)), ("attempt", AttrValue::U64(0))],
        );
        rec.span_end(m, 50);
        let s = rec.span_begin(TrackId(2), "shuffle", 0, &[("reducer", AttrValue::U64(0))]);
        rec.span_attr(s, "maps_done_us", AttrValue::U64(50));
        rec.span_end(s, 80);
        let rd = rec.span_begin(TrackId(2), "reduce", 80, &[("reducer", AttrValue::U64(0))]);
        rec.span_end(rd, 90);
        let c = rec.span_begin(TrackId(2), "commit", 90, &[("reducer", AttrValue::U64(0))]);
        rec.span_end(c, 100);
        rec.span_end(j, 100);

        let direct = analyze(&TraceDump::from_mem(&rec));
        let doc = crate::trace::chrome_trace(&rec);
        let parsed = analyze(&TraceDump::from_chrome_value(&doc).unwrap());
        assert_eq!(direct.len(), parsed.len());
        for (a, b) in direct.iter().zip(&parsed) {
            assert_eq!(a.makespan_us(), b.makespan_us());
            for &cat in &CATEGORIES {
                assert_eq!(a.total_us(cat), b.total_us(cat), "{}", cat.label());
            }
            assert_eq!(a.attributed_us(), a.makespan_us());
        }
    }
}
