//! # vc-obs — unified simulation observability
//!
//! Tracing and metrics layer shared by every simulation crate in the
//! workspace. The design goals, in order:
//!
//! 1. **Zero overhead when off.** Instrumented code is generic over
//!    [`Recorder`]; with [`NoopRecorder`] every hook monomorphizes to an
//!    empty inlined function and the optimizer deletes the call and its
//!    argument construction. Hot paths must only pass cheap values
//!    (integers, `&'static str`) — see [`Recorder::enabled`] for gating
//!    anything that allocates.
//! 2. **No dependency cycles.** `vc-des` is itself instrumented, so this
//!    crate cannot depend on it; timestamps cross the API as raw
//!    microsecond `u64`s (the same unit `vc_des::SimTime` uses
//!    internally).
//! 3. **Standard output formats.** [`MemRecorder`] buffers everything and
//!    exports a Chrome trace-event JSON (loadable in Perfetto /
//!    `chrome://tracing`) via [`trace::chrome_trace`], and a metrics
//!    snapshot as JSON or CSV via [`metrics::MetricsSnapshot`].
//!
//! Spans model task attempts (map, shuffle fetch, reduce) on a
//! [`TrackId`] — one track per VM, so the Perfetto timeline reads like a
//! Gantt chart of the virtual cluster. Events model instants (admission,
//! rejection, speculative launch). Counters/gauges/histograms aggregate
//! into the metrics registry; time-varying counters (queue depth) can
//! additionally be sampled with [`Recorder::counter_sample`] to appear as
//! counter tracks in the timeline.

pub mod critical_path;
pub mod diff;
pub mod health;
pub mod manifest;
pub mod metrics;
pub mod prof;
pub mod prom;
pub mod recorder;
pub mod sharded;
pub mod stream;
pub mod timeseries;
pub mod trace;

pub use critical_path::{analyze, Category, JobAttribution, Segment, TraceDump, CATEGORIES};
pub use diff::{diff, DiffError, DiffOptions, DiffReport, Verdict};
pub use health::{
    AlertSink, HealthMonitor, HealthPolicy, Severity, WindowHealthSample, ALERT_PREFIX,
};
pub use manifest::{Fnv64, RunManifest, MANIFEST_KEY};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use prof::{Phase, PhaseTimer};
pub use prom::{to_prometheus, to_prometheus_windowed};
pub use recorder::{
    AttrValue, EventRecord, MemRecorder, NoopRecorder, Recorder, SpanId, SpanRecord, TrackId,
};
pub use sharded::{MergedTrace, ShardedRecorder};
pub use stream::{manifest_from_jsonl, replay_jsonl, StreamingRecorder};
pub use timeseries::{TimeSeriesSet, WindowSampler, TS_PREFIX};
pub use trace::{chrome_trace, chrome_trace_sharded};
