//! [`StreamingRecorder`]: a bounded-memory recorder that streams its op
//! log to a JSONL sink instead of buffering it.
//!
//! Million-event runs cannot hold a [`MemRecorder`] — its buffers grow
//! with the trace. The streaming recorder keeps only small per-thread
//! text buffers (flushed to the shared sink past a threshold), so RSS
//! stays flat no matter how long the run is. The op log it writes has
//! exactly the [`ShardedRecorder`] merge semantics: every line carries
//! the op's resolved timestamp (untimestamped ops inherit the writing
//! thread's high-water mark, as in a shard) and a globally unique
//! sequence number, so [`replay_jsonl`] can sort by `(t_us, seq)` and
//! replay through the same code path as [`ShardedRecorder::merged`] —
//! the replayed [`MergedTrace`] equals the `MemRecorder` view of the
//! same run bit for bit (see `crates/obs/tests/props.rs`).
//!
//! Format: one JSON object per line. `t`/`q` are the stamp; `o` tags
//! the op (`c` counter_add, `g` gauge_set, `m` gauge_max, `h`
//! histogram_record, `s` counter_sample, `tn` track_name, `e` event,
//! `sb`/`se`/`sa` span begin/end/attr). Floats are written with Rust's
//! shortest-round-trip `{}` formatting; non-finite values fall back to
//! a `<key>b` bit-pattern field so replay is exact for every `f64`.
//!
//! [`MemRecorder`]: crate::recorder::MemRecorder
//! [`ShardedRecorder`]: crate::sharded::ShardedRecorder
//! [`ShardedRecorder::merged`]: crate::sharded::ShardedRecorder::merged

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::ThreadId;

use crate::recorder::{Attr, AttrValue, Recorder, SpanId, TrackId};
use crate::sharded::{replay_ops, MergedTrace, Op, StampedOp};

/// Default per-thread buffer size before a flush to the sink.
pub const DEFAULT_FLUSH_BYTES: usize = 64 * 1024;

#[derive(Debug, Default)]
struct StreamBuf {
    text: String,
    /// High-water timestamp of this thread, inherited by untimestamped
    /// ops — identical to `ShardBuf::last_t` in the sharded recorder.
    last_t: u64,
}

#[derive(Debug, Default)]
struct StreamShard {
    buf: Mutex<StreamBuf>,
}

#[derive(Debug)]
struct Sink<W> {
    writer: W,
    /// First I/O error, surfaced by [`StreamingRecorder::finish`];
    /// later writes are dropped once set.
    error: Option<io::Error>,
}

/// Identity counter for the thread-local shard cache (a thread may
/// touch several streaming recorders over its lifetime).
static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STREAM_CACHE: RefCell<Option<(u64, Arc<StreamShard>)>> = const { RefCell::new(None) };
}

/// Bounded-memory streaming recorder; see the module docs.
#[derive(Debug)]
pub struct StreamingRecorder<W> {
    id: u64,
    flush_bytes: usize,
    next_span: AtomicU64,
    next_seq: AtomicU64,
    shards: Mutex<HashMap<ThreadId, Arc<StreamShard>>>,
    sink: Mutex<Sink<W>>,
}

impl<W: Write + Send> StreamingRecorder<W> {
    pub fn new(writer: W) -> Self {
        Self::with_flush_bytes(writer, DEFAULT_FLUSH_BYTES)
    }

    /// A recorder flushing each per-thread buffer once it exceeds
    /// `flush_bytes` (small values force frequent flushes in tests).
    pub fn with_flush_bytes(writer: W, flush_bytes: usize) -> Self {
        Self {
            id: NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed),
            flush_bytes: flush_bytes.max(1),
            next_span: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            shards: Mutex::new(HashMap::new()),
            sink: Mutex::new(Sink {
                writer,
                error: None,
            }),
        }
    }

    fn shard(&self) -> Arc<StreamShard> {
        STREAM_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((id, shard)) = cache.as_ref() {
                if *id == self.id {
                    return Arc::clone(shard);
                }
            }
            let shard = {
                let mut shards = self.shards.lock().expect("stream registry poisoned");
                Arc::clone(shards.entry(std::thread::current().id()).or_default())
            };
            *cache = Some((self.id, Arc::clone(&shard)));
            shard
        })
    }

    /// Append one op line. `t` is the op's own timestamp, if it has
    /// one; `body` writes the op fields after the `t`/`q` stamp.
    fn push(&self, t: Option<u64>, body: impl FnOnce(&mut String)) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard();
        let mut buf = shard.buf.lock().expect("stream shard poisoned");
        let t_us = match t {
            Some(t) => {
                buf.last_t = buf.last_t.max(t);
                t
            }
            None => buf.last_t,
        };
        let _ = write!(buf.text, "{{\"t\":{t_us},\"q\":{seq}");
        body(&mut buf.text);
        buf.text.push_str("}\n");
        if buf.text.len() >= self.flush_bytes {
            let text = std::mem::take(&mut buf.text);
            drop(buf);
            self.write_out(&text);
        }
    }

    fn write_out(&self, text: &str) {
        let mut sink = self.sink.lock().expect("stream sink poisoned");
        if sink.error.is_some() {
            return;
        }
        if let Err(e) = sink.writer.write_all(text.as_bytes()) {
            sink.error = Some(e);
        }
    }

    /// Flush every remaining buffer and return the sink writer, or the
    /// first I/O error hit at any point during recording.
    pub fn finish(self) -> io::Result<W> {
        let shards = self.shards.into_inner().expect("stream registry poisoned");
        let mut sink = self.sink.into_inner().expect("stream sink poisoned");
        if let Some(e) = sink.error.take() {
            return Err(e);
        }
        for shard in shards.values() {
            let mut buf = shard.buf.lock().expect("stream shard poisoned");
            if !buf.text.is_empty() {
                sink.writer.write_all(buf.text.as_bytes())?;
                buf.text.clear();
            }
        }
        sink.writer.flush()?;
        Ok(sink.writer)
    }
}

/// JSON-escape `s` into `out`, quotes included.
fn esc(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write `"<key>":<value>` for an `f64`: shortest-round-trip decimal
/// when finite, `"<key>b":<bits>` otherwise.
fn push_f64(out: &mut String, key: &str, v: f64) {
    if v.is_finite() {
        let _ = write!(out, ",\"{key}\":{v}");
    } else {
        let _ = write!(out, ",\"{key}b\":{}", v.to_bits());
    }
}

fn push_attrs(out: &mut String, attrs: &[Attr]) {
    out.push_str(",\"a\":[");
    for (i, (key, value)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        esc(out, key);
        out.push(',');
        out.push('{');
        match value {
            AttrValue::U64(n) => {
                let _ = write!(out, "\"u\":{n}");
            }
            AttrValue::I64(n) => {
                let _ = write!(out, "\"i\":{n}");
            }
            AttrValue::F64(f) => {
                if f.is_finite() {
                    let _ = write!(out, "\"f\":{f}");
                } else {
                    let _ = write!(out, "\"fb\":{}", f.to_bits());
                }
            }
            AttrValue::Bool(b) => {
                let _ = write!(out, "\"b\":{b}");
            }
            AttrValue::Str(s) => {
                out.push_str("\"s\":");
                esc(out, s);
            }
            AttrValue::Owned(s) => {
                out.push_str("\"w\":");
                esc(out, s);
            }
        }
        out.push('}');
        out.push(']');
    }
    out.push(']');
}

impl<W: Write + Send> Recorder for StreamingRecorder<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.push(None, |out| {
            out.push_str(",\"o\":\"c\",\"n\":");
            esc(out, name);
            let _ = write!(out, ",\"d\":{delta}");
        });
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.push(None, |out| {
            out.push_str(",\"o\":\"g\",\"n\":");
            esc(out, name);
            push_f64(out, "v", value);
        });
    }

    fn gauge_max(&self, name: &'static str, value: f64) {
        self.push(None, |out| {
            out.push_str(",\"o\":\"m\",\"n\":");
            esc(out, name);
            push_f64(out, "v", value);
        });
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.push(None, |out| {
            out.push_str(",\"o\":\"h\",\"n\":");
            esc(out, name);
            let _ = write!(out, ",\"d\":{value}");
        });
    }

    fn counter_sample(&self, name: &'static str, t_us: u64, value: f64) {
        self.push(Some(t_us), |out| {
            out.push_str(",\"o\":\"s\",\"n\":");
            esc(out, name);
            push_f64(out, "v", value);
        });
    }

    fn track_name(&self, track: TrackId, name: &str) {
        self.push(None, |out| {
            let _ = write!(out, ",\"o\":\"tn\",\"k\":{}", track.0);
            out.push_str(",\"s\":");
            esc(out, name);
        });
    }

    fn event(&self, name: &'static str, t_us: u64, track: Option<TrackId>, attrs: &[Attr]) {
        self.push(Some(t_us), |out| {
            out.push_str(",\"o\":\"e\",\"n\":");
            esc(out, name);
            if let Some(track) = track {
                let _ = write!(out, ",\"k\":{}", track.0);
            }
            push_attrs(out, attrs);
        });
    }

    fn span_begin(&self, track: TrackId, name: &'static str, t_us: u64, attrs: &[Attr]) -> SpanId {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        self.push(Some(t_us), |out| {
            let _ = write!(out, ",\"o\":\"sb\",\"i\":{id},\"k\":{}", track.0);
            out.push_str(",\"n\":");
            esc(out, name);
            push_attrs(out, attrs);
        });
        SpanId(id)
    }

    fn span_end(&self, span: SpanId, t_us: u64) {
        if span.is_null() {
            return;
        }
        self.push(Some(t_us), |out| {
            let _ = write!(out, ",\"o\":\"se\",\"i\":{}", span.0);
        });
    }

    fn span_attr(&self, span: SpanId, key: &'static str, value: AttrValue) {
        if span.is_null() {
            return;
        }
        self.push(None, |out| {
            let _ = write!(out, ",\"o\":\"sa\",\"i\":{}", span.0);
            out.push_str(",\"n\":");
            esc(out, key);
            push_attrs(out, &[("v", value)]);
        });
    }

    fn as_sync(&self) -> Option<&(dyn Recorder + Sync)> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// replay
// ---------------------------------------------------------------------------

/// Intern a replayed name so it can live in the `&'static str` slots of
/// the op log. Leaks once per distinct string — bounded by the metric /
/// span-name vocabulary, not the stream length.
fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut pool = pool.lock().expect("intern pool poisoned");
    if let Some(&interned) = pool.get(s) {
        return interned;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(s.to_string(), leaked);
    leaked
}

use serde_json::Value;

fn get_u64(obj: &Value, key: &str, line: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("line {line}: missing integer field `{key}`"))
}

fn get_str<'a>(obj: &'a Value, key: &str, line: usize) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("line {line}: missing string field `{key}`"))
}

/// Read an `f64` written by [`push_f64`]: `<key>` or `<key>b` bits.
fn get_f64(obj: &Value, key: &str, line: usize) -> Result<f64, String> {
    if let Some(v) = obj.get(key).and_then(|v| v.as_f64()) {
        return Ok(v);
    }
    let bits_key = format!("{key}b");
    obj.get(bits_key.as_str())
        .and_then(|v| v.as_u64())
        .map(f64::from_bits)
        .ok_or_else(|| format!("line {line}: missing float field `{key}`"))
}

fn parse_attr_value(v: &Value, line: usize) -> Result<AttrValue, String> {
    if let Some(n) = v.get("u").and_then(|v| v.as_u64()) {
        Ok(AttrValue::U64(n))
    } else if let Some(n) = v.get("i").and_then(|v| v.as_i64()) {
        Ok(AttrValue::I64(n))
    } else if let Some(f) = v.get("f").and_then(|v| v.as_f64()) {
        Ok(AttrValue::F64(f))
    } else if let Some(bits) = v.get("fb").and_then(|v| v.as_u64()) {
        Ok(AttrValue::F64(f64::from_bits(bits)))
    } else if let Some(Value::Bool(b)) = v.get("b") {
        Ok(AttrValue::Bool(*b))
    } else if let Some(s) = v.get("s").and_then(|v| v.as_str()) {
        Ok(AttrValue::Str(intern(s)))
    } else if let Some(s) = v.get("w").and_then(|v| v.as_str()) {
        Ok(AttrValue::Owned(s.to_string()))
    } else {
        Err(format!("line {line}: unknown attr value shape"))
    }
}

fn parse_attrs(obj: &Value, line: usize) -> Result<Vec<Attr>, String> {
    let Some(list) = obj.get("a").and_then(|v| v.as_array()) else {
        return Err(format!("line {line}: missing attrs array `a`"));
    };
    let mut attrs = Vec::with_capacity(list.len());
    for entry in list {
        let pair = entry
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("line {line}: attr is not a [key, value] pair"))?;
        let key = pair[0]
            .as_str()
            .ok_or_else(|| format!("line {line}: attr key is not a string"))?;
        attrs.push((intern(key), parse_attr_value(&pair[1], line)?));
    }
    Ok(attrs)
}

/// Replay a JSONL op stream written by [`StreamingRecorder`] into the
/// same deterministic [`MergedTrace`] that [`ShardedRecorder::merged`]
/// produces: ops sorted by `(t_us, seq)` and applied through the shared
/// replay path. Any malformed, truncated, or unrecognized line is an
/// error carrying its 1-based line number.
///
/// [`ShardedRecorder::merged`]: crate::sharded::ShardedRecorder::merged
pub fn replay_jsonl(text: &str) -> Result<MergedTrace, String> {
    let mut ops: Vec<StampedOp> = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let line = index + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let obj: Value =
            serde_json::from_str(raw).map_err(|e| format!("line {line}: invalid JSON: {e}"))?;
        // A stream may open with a `{"manifest": {...}}` header line
        // (see `crate::manifest`); it carries no op and is skipped here.
        // `manifest_from_jsonl` reads it.
        if obj.get("o").is_none() && obj.get(crate::manifest::MANIFEST_KEY).is_some() {
            continue;
        }
        let t_us = get_u64(&obj, "t", line)?;
        let seq = get_u64(&obj, "q", line)?;
        let op = match get_str(&obj, "o", line)? {
            "c" => Op::CounterAdd {
                name: intern(get_str(&obj, "n", line)?),
                delta: get_u64(&obj, "d", line)?,
            },
            "g" => Op::GaugeSet {
                name: intern(get_str(&obj, "n", line)?),
                value: get_f64(&obj, "v", line)?,
            },
            "m" => Op::GaugeMax {
                name: intern(get_str(&obj, "n", line)?),
                value: get_f64(&obj, "v", line)?,
            },
            "h" => Op::HistRecord {
                name: intern(get_str(&obj, "n", line)?),
                value: get_u64(&obj, "d", line)?,
            },
            "s" => Op::CounterSample {
                name: intern(get_str(&obj, "n", line)?),
                value: get_f64(&obj, "v", line)?,
            },
            "tn" => Op::TrackName {
                track: get_u64(&obj, "k", line)?,
                name: get_str(&obj, "s", line)?.to_string(),
            },
            "e" => Op::Event {
                name: intern(get_str(&obj, "n", line)?),
                track: obj.get("k").and_then(|v| v.as_u64()).map(TrackId),
                attrs: parse_attrs(&obj, line)?,
            },
            "sb" => Op::SpanBegin {
                id: get_u64(&obj, "i", line)?,
                track: TrackId(get_u64(&obj, "k", line)?),
                name: intern(get_str(&obj, "n", line)?),
                attrs: parse_attrs(&obj, line)?,
            },
            "se" => Op::SpanEnd {
                id: get_u64(&obj, "i", line)?,
            },
            "sa" => {
                let id = get_u64(&obj, "i", line)?;
                let key = intern(get_str(&obj, "n", line)?);
                let attrs = parse_attrs(&obj, line)?;
                let (_, value) = attrs
                    .into_iter()
                    .next()
                    .ok_or_else(|| format!("line {line}: span attr has no value"))?;
                Op::SpanAttr { id, key, value }
            }
            other => return Err(format!("line {line}: unknown op tag `{other}`")),
        };
        ops.push(StampedOp { t_us, seq, op });
    }
    Ok(replay_ops(ops))
}

/// Extract the manifest JSON from a stream's header line, if the first
/// non-empty line is a `{"manifest": {...}}` header written by the CLI.
pub fn manifest_from_jsonl(text: &str) -> Option<Value> {
    let first = text.lines().find(|l| !l.trim().is_empty())?;
    let obj: Value = serde_json::from_str(first).ok()?;
    if obj.get("o").is_some() {
        return None;
    }
    obj.get(crate::manifest::MANIFEST_KEY).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemRecorder;

    /// Drive the same call sequence into any recorder.
    fn drive<R: Recorder>(r: &R) {
        r.track_name(TrackId(3), "vm3@node1");
        let s = r.span_begin(TrackId(3), "map", 100, &[("task", AttrValue::U64(0))]);
        r.span_attr(s, "locality", AttrValue::Str("node_local"));
        r.counter_add("mr.maps", 1);
        r.gauge_set("util", 0.25);
        r.gauge_max("peak", 7.5);
        r.histogram_record("lat_us", 150);
        r.span_end(s, 250);
        r.event(
            "admit",
            300,
            Some(TrackId(1)),
            &[
                ("id", AttrValue::U64(7)),
                ("why", AttrValue::Owned("fits \"rack\"\n".to_string())),
                ("neg", AttrValue::I64(-4)),
                ("frac", AttrValue::F64(0.1)),
                ("ok", AttrValue::Bool(true)),
            ],
        );
        r.counter_sample("ts.q", 310, 2.0);
        r.counter_sample("ts.q", 400, 1.0);
    }

    fn record_stream() -> String {
        let rec = StreamingRecorder::new(Vec::new());
        drive(&rec);
        String::from_utf8(rec.finish().unwrap()).unwrap()
    }

    #[test]
    fn replay_matches_mem_recorder() {
        let mem = MemRecorder::new();
        drive(&mem);
        let merged = replay_jsonl(&record_stream()).unwrap();
        assert_eq!(merged.metrics, mem.metrics());
        assert_eq!(merged.track_names, mem.track_names());
        assert_eq!(merged.counter_series, mem.counter_series());
        assert_eq!(merged.open_spans, 0);
        assert_eq!(format!("{:?}", merged.spans), format!("{:?}", mem.spans()));
        assert_eq!(
            format!("{:?}", merged.events),
            format!("{:?}", mem.events())
        );
    }

    #[test]
    fn tiny_flush_threshold_same_replay() {
        // Force a flush on nearly every op: the file contents must be
        // identical to the buffered-to-the-end recording.
        let rec = StreamingRecorder::with_flush_bytes(Vec::new(), 8);
        drive(&rec);
        let text = String::from_utf8(rec.finish().unwrap()).unwrap();
        assert_eq!(text, record_stream());
    }

    #[test]
    fn nonfinite_floats_roundtrip_as_bits() {
        let rec = StreamingRecorder::new(Vec::new());
        rec.gauge_set("inf", f64::INFINITY);
        rec.gauge_set("ninf", f64::NEG_INFINITY);
        let text = String::from_utf8(rec.finish().unwrap()).unwrap();
        assert!(text.contains("\"vb\":"), "{text}");
        let merged = replay_jsonl(&text).unwrap();
        assert_eq!(merged.metrics.gauges["inf"], f64::INFINITY);
        assert_eq!(merged.metrics.gauges["ninf"], f64::NEG_INFINITY);
    }

    #[test]
    fn corrupt_and_truncated_lines_error_with_line_number() {
        let good = record_stream();
        // Truncate the final line mid-object.
        let truncated = &good[..good.len() - 4];
        let err = replay_jsonl(truncated).unwrap_err();
        assert!(err.contains("line"), "{err}");

        let corrupt = format!("{good}this is not json\n");
        let err = replay_jsonl(&corrupt).unwrap_err();
        assert!(err.contains("invalid JSON"), "{err}");

        let unknown = "{\"t\":0,\"q\":0,\"o\":\"zz\"}\n";
        let err = replay_jsonl(unknown).unwrap_err();
        assert!(err.contains("unknown op tag"), "{err}");
    }

    #[test]
    fn manifest_header_is_skipped_and_extractable() {
        let body = record_stream();
        let header = "{\"manifest\":{\"seed\":7,\"policy\":\"affinity\"}}\n";
        let with_header = format!("{header}{body}");

        // Replay ignores the header: identical merged trace.
        let plain = replay_jsonl(&body).unwrap();
        let headed = replay_jsonl(&with_header).unwrap();
        assert_eq!(plain.metrics, headed.metrics);
        assert_eq!(
            format!("{:?}", plain.events),
            format!("{:?}", headed.events)
        );

        // The header is extractable; a headerless stream yields None.
        let m = manifest_from_jsonl(&with_header).unwrap();
        assert_eq!(m.get("seed").and_then(|v| v.as_u64()), Some(7));
        assert!(manifest_from_jsonl(&body).is_none());
    }

    #[test]
    fn streaming_is_sync_and_reports_io_errors() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<StreamingRecorder<Vec<u8>>>();

        #[derive(Debug)]
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let rec = StreamingRecorder::with_flush_bytes(FailingWriter, 1);
        rec.counter_add("c", 1);
        let err = rec.finish().unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }
}
