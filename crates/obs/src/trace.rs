//! Chrome trace-event export: turn a [`MemRecorder`]'s buffers into the
//! JSON object format understood by Perfetto (<https://ui.perfetto.dev>)
//! and `chrome://tracing`.
//!
//! Mapping:
//! * span           → `"X"` complete event (`ts`/`dur` in µs) on `tid` =
//!   track id, with attributes under `args`
//! * event          → `"i"` instant event (thread- or global-scoped)
//! * counter sample → `"C"` counter event, rendered as a filled area chart
//! * track name     → `"M"` `thread_name` metadata event
//!
//! Everything lives in a single process (`pid` 0, named after the
//! simulation) so the timeline reads as one VM per lane.

use std::collections::BTreeMap;

use serde_json::{json, Value};

use crate::recorder::{AttrValue, EventRecord, MemRecorder, SpanRecord};
use crate::sharded::ShardedRecorder;

fn attr_value_json(v: &AttrValue) -> Value {
    match v {
        AttrValue::U64(x) => json!(*x),
        AttrValue::I64(x) => json!(*x),
        AttrValue::F64(x) => json!(*x),
        AttrValue::Bool(x) => json!(*x),
        AttrValue::Str(s) => json!(*s),
        AttrValue::Owned(s) => json!(s.as_str()),
    }
}

fn args_json(attrs: &[(&'static str, AttrValue)]) -> Value {
    Value::Object(
        attrs
            .iter()
            .map(|(k, v)| (k.to_string(), attr_value_json(v)))
            .collect(),
    )
}

/// Build the full trace document for one recorded run.
///
/// Open spans (missing `span_end`, e.g. after a panic) are emitted as
/// zero-duration events flagged with `"unterminated": true` rather than
/// dropped, so partial traces remain inspectable.
pub fn chrome_trace(rec: &MemRecorder) -> Value {
    chrome_trace_parts(
        &rec.spans(),
        &rec.events(),
        &rec.track_names(),
        &rec.counter_series(),
    )
}

/// Same as [`chrome_trace`] for a thread-safe [`ShardedRecorder`]: the
/// shards are merged deterministically first.
pub fn chrome_trace_sharded(rec: &ShardedRecorder) -> Value {
    let merged = rec.merged();
    chrome_trace_parts(
        &merged.spans,
        &merged.events,
        &merged.track_names,
        &merged.counter_series,
    )
}

/// Build the trace document from raw recorder buffers.
pub fn chrome_trace_parts(
    spans: &[SpanRecord],
    instants: &[EventRecord],
    track_names: &BTreeMap<u64, String>,
    counter_series: &BTreeMap<&'static str, Vec<(u64, f64)>>,
) -> Value {
    let mut events: Vec<Value> = Vec::new();

    events.push(json!({
        "ph": "M",
        "name": "process_name",
        "pid": 0,
        "tid": 0,
        "args": {"name": "affinity-vc simulation"},
    }));

    for (tid, name) in track_names {
        events.push(json!({
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": tid,
            "args": {"name": name.as_str()},
        }));
    }

    for span in spans {
        let (dur, unterminated) = match span.end_us {
            Some(end) => (end.saturating_sub(span.start_us), false),
            None => (0, true),
        };
        let mut args = args_json(&span.attrs);
        if unterminated {
            if let Value::Object(entries) = &mut args {
                entries.push(("unterminated".to_string(), json!(true)));
            }
        }
        events.push(json!({
            "ph": "X",
            "name": span.name,
            "pid": 0,
            "tid": span.track.0,
            "ts": span.start_us,
            "dur": dur,
            "args": args,
        }));
    }

    for event in instants {
        let tid = event.track.map(|t| t.0).unwrap_or(0);
        let scope = if event.track.is_some() { "t" } else { "g" };
        events.push(json!({
            "ph": "i",
            "name": event.name,
            "pid": 0,
            "tid": tid,
            "ts": event.t_us,
            "s": scope,
            "args": args_json(&event.attrs),
        }));
    }

    for (name, series) in counter_series {
        for &(t_us, value) in series {
            events.push(json!({
                "ph": "C",
                "name": name,
                "pid": 0,
                "tid": 0,
                "ts": t_us,
                "args": {"value": value},
            }));
        }
    }

    json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    })
}

/// Serialise the trace and write it to `path`.
pub fn save_chrome_trace(rec: &MemRecorder, path: &str) -> std::io::Result<()> {
    save_trace_value(&chrome_trace(rec), path)
}

/// Write an already-built trace document to `path`.
///
/// Serialisation failures are surfaced as `InvalidData` I/O errors
/// rather than panics, so callers (the CLI in particular) can report
/// them with context instead of aborting.
pub fn save_trace_value(doc: &Value, path: &str) -> std::io::Result<()> {
    let text = serde_json::to_string_pretty(doc).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("trace does not serialize: {e}"),
        )
    })?;
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TrackId};

    #[test]
    fn trace_shape() {
        let rec = MemRecorder::new();
        rec.track_name(TrackId(1), "vm1@node0");
        let s = rec.span_begin(TrackId(1), "map", 10, &[("task", AttrValue::U64(4))]);
        rec.span_end(s, 60);
        let open = rec.span_begin(TrackId(1), "reduce", 70, &[]);
        let _ = open; // deliberately left unterminated
        rec.event("speculative_launch", 30, Some(TrackId(1)), &[]);
        rec.counter_sample("queue.depth", 5, 2.0);

        let doc = chrome_trace(&rec);
        let events = doc["traceEvents"].as_array().unwrap();
        // process_name + thread_name + 2 spans + 1 instant + 1 counter
        assert_eq!(events.len(), 6);

        let map_span = events
            .iter()
            .find(|e| e["ph"] == json!("X") && e["name"] == json!("map"))
            .unwrap();
        assert_eq!(map_span["ts"], json!(10));
        assert_eq!(map_span["dur"], json!(50));
        assert_eq!(map_span["args"]["task"], json!(4));

        let reduce_span = events
            .iter()
            .find(|e| e["ph"] == json!("X") && e["name"] == json!("reduce"))
            .unwrap();
        assert_eq!(reduce_span["args"]["unterminated"], json!(true));

        let counter = events.iter().find(|e| e["ph"] == json!("C")).unwrap();
        assert_eq!(counter["args"]["value"], json!(2.0));

        // The whole document survives a print/parse cycle.
        let text = serde_json::to_string(&doc).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["traceEvents"].as_array().unwrap().len(), 6);
    }
}
