//! Sim-time windowed time-series.
//!
//! The simulator samples registered health gauges and per-window deltas
//! into fixed sim-time windows: window `k` covers `[k·w, (k+1)·w)` in
//! microseconds and is closed — all `ts.*` samples for it emitted — at
//! the first DES event whose timestamp reaches `(k+1)·w`, *before* that
//! event is processed. A final partial window is closed at the last
//! event time of the run so short tails are never silently dropped.
//! Window edges are pure functions of sim time, so sampling never
//! perturbs the simulation (traced/untraced bit-parity holds).
//!
//! Samples travel as ordinary [`Recorder::counter_sample`] series under
//! the `ts.` name prefix; [`TimeSeriesSet`] regroups them — from a live
//! recorder, a saved Chrome trace, or a replayed JSONL stream — into a
//! window-major table ready for CSV/JSONL export and the
//! `vc report --timeline` view.
//!
//! [`Recorder::counter_sample`]: crate::recorder::Recorder::counter_sample

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Name prefix that marks a counter series as a windowed time-series.
pub const TS_PREFIX: &str = "ts.";

/// Deterministic fixed-width window clock over sim time.
///
/// `pop_due(now)` yields every window edge `<= now` that has not been
/// yielded yet, one per call — drive it to exhaustion before processing
/// the event at `now`. Edges are multiples of the window size, so two
/// runs over the same event stream close identical windows.
#[derive(Clone, Debug)]
pub struct WindowSampler {
    window_us: u64,
    next_edge: u64,
}

impl WindowSampler {
    /// A sampler with `window_us`-wide windows. Panics if zero.
    pub fn new(window_us: u64) -> Self {
        assert!(window_us > 0, "window width must be positive");
        Self {
            window_us,
            next_edge: window_us,
        }
    }

    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// The next full-window edge that is due at `now_us`, if any.
    /// Returns edges in increasing order; call repeatedly until `None`.
    pub fn pop_due(&mut self, now_us: u64) -> Option<u64> {
        if now_us >= self.next_edge {
            let edge = self.next_edge;
            self.next_edge += self.window_us;
            Some(edge)
        } else {
            None
        }
    }

    /// The final, partial window edge for a run ending at `last_us`:
    /// `Some(last_us)` when the tail past the last closed edge is
    /// non-empty, `None` when `last_us` sits exactly on a closed edge
    /// (or nothing happened at all).
    pub fn partial_edge(&self, last_us: u64) -> Option<u64> {
        let closed = self.next_edge - self.window_us;
        (last_us > closed).then_some(last_us)
    }

    /// Index of the window closed at `edge_us`: full edges map to
    /// `edge_us / w - 1`, a partial edge to the window it truncates.
    pub fn window_index(window_us: u64, edge_us: u64) -> u64 {
        debug_assert!(window_us > 0);
        edge_us.saturating_sub(1) / window_us
    }
}

/// A window-major view over `ts.*` counter series: per-name samples
/// `(edge_us, value)`, one sample per closed window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeriesSet {
    /// Series name (including the `ts.` prefix) → `(edge_us, value)`
    /// samples in emission order.
    pub series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl TimeSeriesSet {
    /// Extract every `ts.*` series from a recorder's counter series.
    pub fn from_counter_series(series: &BTreeMap<&'static str, Vec<(u64, f64)>>) -> Self {
        let series = series
            .iter()
            .filter(|(name, _)| name.starts_with(TS_PREFIX))
            .map(|(name, points)| (name.to_string(), points.clone()))
            .collect();
        Self { series }
    }

    /// Extract every `ts.*` counter track from a Chrome trace-event
    /// document (the shape written by `--trace-out`).
    pub fn from_chrome_value(doc: &serde_json::Value) -> Result<Self, String> {
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .ok_or_else(|| "trace document has no traceEvents array".to_string())?;
        let mut series: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
        for ev in events {
            if ev.get("ph").and_then(|v| v.as_str()) != Some("C") {
                continue;
            }
            let Some(name) = ev.get("name").and_then(|v| v.as_str()) else {
                continue;
            };
            if !name.starts_with(TS_PREFIX) {
                continue;
            }
            let t = ev
                .get("ts")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("counter event {name} has no integer ts"))?;
            let value = ev
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("counter event {name} has no numeric args.value"))?;
            series.entry(name.to_string()).or_default().push((t, value));
        }
        Ok(Self { series })
    }

    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Sorted distinct window edges across every series.
    pub fn edges(&self) -> Vec<u64> {
        let mut edges: Vec<u64> = self
            .series
            .values()
            .flat_map(|points| points.iter().map(|&(t, _)| t))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Number of distinct closed windows.
    pub fn window_count(&self) -> usize {
        self.edges().len()
    }

    /// True when every series' timestamps are strictly increasing —
    /// the invariant for windowed samples (one sample per window, and
    /// windows close in sim-time order).
    pub fn is_monotone(&self) -> bool {
        self.series
            .values()
            .all(|points| points.windows(2).all(|w| w[0].0 < w[1].0))
    }

    /// Wide CSV: `t_us,<name>,...` header, one row per window edge,
    /// blank cells where a series has no sample at that edge.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_us");
        for name in self.series.keys() {
            let _ = write!(out, ",{name}");
        }
        out.push('\n');
        let edges = self.edges();
        // Per-series cursor: samples are in emission order, which is
        // sim-time order for windowed series.
        let mut cursors: Vec<(usize, &Vec<(u64, f64)>)> = self
            .series
            .values()
            .map(|points| (0usize, points))
            .collect();
        for edge in edges {
            let _ = write!(out, "{edge}");
            for (cursor, points) in cursors.iter_mut() {
                while *cursor < points.len() && points[*cursor].0 < edge {
                    *cursor += 1;
                }
                if *cursor < points.len() && points[*cursor].0 == edge {
                    let _ = write!(out, ",{}", points[*cursor].1);
                    *cursor += 1;
                } else {
                    out.push(',');
                }
            }
            out.push('\n');
        }
        out
    }

    /// JSONL: one object per window edge, `{"t_us":E,"<name>":V,...}`,
    /// omitting series with no sample at that edge.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for edge in self.edges() {
            let _ = write!(out, "{{\"t_us\":{edge}");
            for (name, points) in &self.series {
                if let Ok(pos) = points.binary_search_by_key(&edge, |&(t, _)| t) {
                    let _ = write!(out, ",\"{name}\":{}", points[pos].1);
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_pops_every_due_edge_once() {
        let mut s = WindowSampler::new(100);
        assert_eq!(s.pop_due(99), None);
        assert_eq!(s.pop_due(100), Some(100));
        assert_eq!(s.pop_due(100), None);
        // A jump over several windows drains them one by one.
        assert_eq!(s.pop_due(350), Some(200));
        assert_eq!(s.pop_due(350), Some(300));
        assert_eq!(s.pop_due(350), None);
        // Partial tail beyond the last closed edge.
        assert_eq!(s.partial_edge(350), Some(350));
        let mut aligned = WindowSampler::new(100);
        while aligned.pop_due(300).is_some() {}
        assert_eq!(aligned.partial_edge(300), None, "aligned end: no tail");
        assert_eq!(aligned.partial_edge(301), Some(301));
    }

    #[test]
    fn window_index_maps_full_and_partial_edges() {
        assert_eq!(WindowSampler::window_index(100, 100), 0);
        assert_eq!(WindowSampler::window_index(100, 200), 1);
        // Partial edges land in the window they truncate.
        assert_eq!(WindowSampler::window_index(100, 150), 1);
        assert_eq!(WindowSampler::window_index(100, 101), 1);
        assert_eq!(WindowSampler::window_index(100, 99), 0);
    }

    fn sample_set() -> TimeSeriesSet {
        let mut series = BTreeMap::new();
        series.insert("ts.a".to_string(), vec![(100, 1.0), (200, 2.0)]);
        series.insert("ts.b".to_string(), vec![(200, 0.5)]);
        TimeSeriesSet { series }
    }

    #[test]
    fn filters_non_ts_series() {
        let mut raw: BTreeMap<&'static str, Vec<(u64, f64)>> = BTreeMap::new();
        raw.insert("ts.cloud.fill", vec![(100, 0.25)]);
        raw.insert("cloudsim.queue_depth", vec![(5, 1.0)]);
        let set = TimeSeriesSet::from_counter_series(&raw);
        assert_eq!(set.series.len(), 1);
        assert!(set.series.contains_key("ts.cloud.fill"));
    }

    #[test]
    fn csv_is_wide_with_blank_gaps() {
        let csv = sample_set().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_us,ts.a,ts.b");
        assert_eq!(lines[1], "100,1,");
        assert_eq!(lines[2], "200,2,0.5");
    }

    #[test]
    fn jsonl_one_object_per_edge() {
        let jsonl = sample_set().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.get("t_us").and_then(|v| v.as_u64()), Some(100));
        assert_eq!(first.get("ts.a").and_then(|v| v.as_f64()), Some(1.0));
        assert!(first.get("ts.b").is_none());
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second.get("ts.b").and_then(|v| v.as_f64()), Some(0.5));
    }

    #[test]
    fn monotonicity_and_counts() {
        let set = sample_set();
        assert_eq!(set.window_count(), 2);
        assert_eq!(set.edges(), vec![100, 200]);
        assert!(set.is_monotone());
        let mut bad = set;
        bad.series.get_mut("ts.a").unwrap().push((150, 9.0));
        assert!(!bad.is_monotone());
    }

    #[test]
    fn chrome_roundtrip_extracts_ts_counters() {
        let doc: serde_json::Value = serde_json::from_str(
            r#"{"traceEvents":[
                {"ph":"C","name":"ts.cloud.fill","pid":0,"tid":0,"ts":100,"args":{"value":0.25}},
                {"ph":"C","name":"cloudsim.queue_depth","pid":0,"tid":0,"ts":7,"args":{"value":1}},
                {"ph":"X","name":"map","pid":0,"tid":1,"ts":0,"dur":10,"args":{}}
            ]}"#,
        )
        .unwrap();
        let set = TimeSeriesSet::from_chrome_value(&doc).unwrap();
        assert_eq!(set.series.len(), 1);
        assert_eq!(set.series["ts.cloud.fill"], vec![(100, 0.25)]);
        let err = TimeSeriesSet::from_chrome_value(&serde_json::from_str("{}").unwrap());
        assert!(err.is_err());
    }
}
