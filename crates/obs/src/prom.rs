//! Prometheus text-exposition encoding of a [`MetricsSnapshot`].
//!
//! The simulator's dotted metric names are sanitized to the Prometheus
//! grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`) by mapping every other byte to
//! `_`, so `prof.phase.seed_scan.wall_us` becomes
//! `prof_phase_seed_scan_wall_us`. Counters and gauges export verbatim;
//! the power-of-two histograms export in the standard cumulative form —
//! one `_bucket{le="…"}` series per non-empty bucket (the `le` label is
//! the bucket's inclusive upper bound `2^i − 1`), a closing
//! `le="+Inf"`, plus `_sum` and `_count`.
//!
//! Output follows the text exposition format version 0.0.4: one
//! `# TYPE` line per family, `\n` separators, trailing newline.

use crate::metrics::MetricsSnapshot;

/// Sanitize a dotted metric name to a legal Prometheus metric name.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Inclusive upper bound of histogram bucket `i` (pairs with
/// [`bucket_lower_bound`]): bucket 0 holds only 0, bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i − 1]`.
fn bucket_upper_bound(i: u32) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Encode a snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    to_prometheus_windowed(snap, 0, &crate::timeseries::TimeSeriesSet::default())
}

/// Encode a snapshot plus windowed `ts.*` time-series. Each windowed
/// sample exports as `name{window="K",t_us="E"} v`, where `K` is the
/// window index for the edge `E` (see
/// [`WindowSampler::window_index`](crate::timeseries::WindowSampler::window_index)).
/// A plain gauge whose name also has a windowed series is skipped —
/// `counter_sample` mirrors every sample into a gauge, and exporting
/// both would collide on the same family with inconsistent labels.
pub fn to_prometheus_windowed(
    snap: &MetricsSnapshot,
    window_us: u64,
    series: &crate::timeseries::TimeSeriesSet,
) -> String {
    let mut out = String::new();
    // The watchdog's `alert.total.<severity>.<rule>` counters export as
    // one labelled `alert_total` family so dashboards can aggregate and
    // slice by either dimension; everything else exports verbatim.
    let mut alert_total_typed = false;
    for (name, v) in &snap.counters {
        if let Some(rest) = name.strip_prefix(crate::health::ALERT_TOTAL_PREFIX) {
            if let Some((severity, rule)) = rest.split_once('.') {
                if !alert_total_typed {
                    out.push_str("# TYPE alert_total counter\n");
                    alert_total_typed = true;
                }
                out.push_str(&format!(
                    "alert_total{{severity=\"{}\",rule=\"{}\"}} {v}\n",
                    sanitize_name(severity),
                    sanitize_name(rule)
                ));
                continue;
            }
        }
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        if series.series.contains_key(name.as_str()) {
            continue;
        }
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, points) in &series.series {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n"));
        for &(edge_us, value) in points {
            let window = if window_us > 0 {
                crate::timeseries::WindowSampler::window_index(window_us, edge_us)
            } else {
                0
            };
            out.push_str(&format!(
                "{n}{{window=\"{window}\",t_us=\"{edge_us}\"}} {value}\n"
            ));
        }
    }
    for (name, h) in &snap.histograms {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cum = 0u64;
        for &(idx, count) in &h.buckets {
            cum += count;
            out.push_str(&format!(
                "{n}_bucket{{le=\"{}\"}} {cum}\n",
                bucket_upper_bound(idx)
            ));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n", h.sum));
        out.push_str(&format!("{n}_count {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{bucket_lower_bound, MetricsRegistry};

    #[test]
    fn sanitizes_names() {
        assert_eq!(
            sanitize_name("prof.phase.seed_scan.calls"),
            "prof_phase_seed_scan_calls"
        );
        assert_eq!(
            sanitize_name("net.link.node0.rx.bytes"),
            "net_link_node0_rx_bytes"
        );
        assert_eq!(sanitize_name("9lives"), "_lives");
        assert_eq!(sanitize_name("a:b_c"), "a:b_c");
    }

    #[test]
    fn bucket_bounds_pair_up() {
        for i in 0..65u32 {
            assert!(bucket_upper_bound(i) >= bucket_lower_bound(i));
            if i > 0 && i < 64 {
                assert_eq!(bucket_upper_bound(i) + 1, bucket_lower_bound(i + 1));
            }
        }
    }

    #[test]
    fn encodes_all_kinds() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("des.events_processed", 42);
        reg.gauge_set("prof.rss_peak_kb", 1024.0);
        reg.histogram_record("mr.job_runtime_us", 0);
        reg.histogram_record("mr.job_runtime_us", 5);
        reg.histogram_record("mr.job_runtime_us", 5);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE des_events_processed counter\ndes_events_processed 42\n"));
        assert!(text.contains("# TYPE prof_rss_peak_kb gauge\nprof_rss_peak_kb 1024\n"));
        assert!(text.contains("# TYPE mr_job_runtime_us histogram\n"));
        // value 0 → bucket 0 (le="0"), values 5 → bucket 3 ([4,7], le="7");
        // cumulative counts: 1 then 3.
        assert!(text.contains("mr_job_runtime_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("mr_job_runtime_us_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("mr_job_runtime_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("mr_job_runtime_us_sum 10\n"));
        assert!(text.contains("mr_job_runtime_us_count 3\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn alert_total_counters_export_as_labelled_family() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("alert.total.critical.capacity_accounting", 1);
        reg.counter_add("alert.total.warn.uplink_saturation", 3);
        reg.counter_add("des.events_processed", 7);
        let text = to_prometheus(&reg.snapshot());
        assert_eq!(
            text.matches("# TYPE alert_total counter\n").count(),
            1,
            "{text}"
        );
        assert!(
            text.contains("alert_total{severity=\"critical\",rule=\"capacity_accounting\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("alert_total{severity=\"warn\",rule=\"uplink_saturation\"} 3\n"),
            "{text}"
        );
        // The dotted spellings must not also export as plain families.
        assert!(!text.contains("alert_total_"), "{text}");
        assert!(text.contains("des_events_processed 7\n"), "{text}");
    }

    #[test]
    fn empty_snapshot_encodes_empty() {
        let reg = MetricsRegistry::new();
        assert_eq!(to_prometheus(&reg.snapshot()), "");
    }

    #[test]
    fn windowed_series_export_with_labels() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("des.events_processed", 7);
        // counter_sample mirrors the last ts.* value into a plain gauge;
        // the windowed exporter must skip that gauge in favor of the
        // labeled series.
        reg.gauge_set("ts.cloud.fill", 0.5);
        reg.gauge_set("prof.rss_peak_kb", 64.0);
        let mut series = crate::timeseries::TimeSeriesSet::default();
        series
            .series
            .insert("ts.cloud.fill".to_string(), vec![(100, 0.25), (150, 0.5)]);
        let text = to_prometheus_windowed(&reg.snapshot(), 100, &series);
        assert!(text.contains("# TYPE ts_cloud_fill gauge\n"), "{text}");
        assert!(
            text.contains("ts_cloud_fill{window=\"0\",t_us=\"100\"} 0.25\n"),
            "{text}"
        );
        // Partial final edge 150 lands in window 1.
        assert!(
            text.contains("ts_cloud_fill{window=\"1\",t_us=\"150\"} 0.5\n"),
            "{text}"
        );
        // The colliding plain gauge is suppressed; others survive.
        assert!(!text.contains("ts_cloud_fill 0.5\n"), "{text}");
        assert!(text.contains("prof_rss_peak_kb 64\n"), "{text}");
        assert!(text.contains("des_events_processed 7\n"), "{text}");
    }
}
