//! Self-profiling: scoped wall-clock phase timers for the *simulator
//! itself* (as opposed to the simulated cluster, which the rest of this
//! crate observes).
//!
//! Every hot layer wraps its work in a [`PhaseTimer`] guard tied to a
//! static [`Phase`]. When the recorder is disabled the guard holds no
//! clock and drops without recording anything, preserving the invariant
//! that profiled and unprofiled runs are bit-identical — the timers only
//! read the host monotonic clock and never touch simulation state.
//!
//! Per phase the guard maintains two always-on counters and one opt-in
//! histogram, all in the `prof.phase.*` namespace:
//!
//! * `prof.phase.<name>.calls` — number of times the phase ran;
//! * `prof.phase.<name>.wall_us` — total host wall-clock microseconds;
//! * `prof.phase.<name>.hist_us` — per-call latency histogram, recorded
//!   only when detailed mode is on (`VC_PROF_DETAIL=1` or
//!   [`set_detailed`]), because histogram inserts are ~3× the cost of a
//!   counter bump and the totals already tile the run.
//!
//! The phase taxonomy is chosen so `vc report --perf` can tile total
//! simulator wall-clock exactly: `cloudsim_run` is the whole run,
//! `serve` / `des_pop` are disjoint slices of it, and `mr_service` is
//! the slice of `serve` spent inside the MapReduce engine. The remaining
//! phases (`seed_scan`, `bound_precompute`, `exchange`, `index_commit`,
//! `mr_job`) are informational sub-slices.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

use crate::recorder::Recorder;

/// Static identity of a profiled phase: the three metric names derived
/// from its base name. Built with [`phase!`]-style `concat!` so the
/// names are `&'static str` and flow through [`Recorder`] for free.
#[derive(Clone, Copy, Debug)]
pub struct Phase {
    /// Base name, e.g. `"seed_scan"`.
    pub name: &'static str,
    /// Counter: invocations.
    pub calls: &'static str,
    /// Counter: total wall-clock µs.
    pub wall_us: &'static str,
    /// Histogram: per-call µs (detailed mode only).
    pub hist_us: &'static str,
}

macro_rules! phase {
    ($base:literal) => {
        Phase {
            name: $base,
            calls: concat!("prof.phase.", $base, ".calls"),
            wall_us: concat!("prof.phase.", $base, ".wall_us"),
            hist_us: concat!("prof.phase.", $base, ".hist_us"),
        }
    };
}

/// Whole `cloudsim::run_recorded` invocation — the tiling total.
pub const CLOUDSIM_RUN: Phase = phase!("cloudsim_run");
/// One arrival served: placement decision + service-model evaluation.
pub const SERVE: Phase = phase!("serve");
/// MapReduce engine invocation inside `serve` (hold-time evaluation).
pub const MR_SERVICE: Phase = phase!("mr_service");
/// Queue-level DES pop + dispatch (excludes `serve` work).
pub const DES_POP: Phase = phase!("des_pop");
/// Algorithm-1 seed scan (sequential or parallel) per placement solve.
pub const SEED_SCAN: Phase = phase!("seed_scan");
/// Admissible lower-bound precompute before a pruned scan.
pub const BOUND_PRECOMPUTE: Phase = phase!("bound_precompute");
/// Algorithm-2 (Theorem-2) exchange suboptimization per batch.
pub const EXCHANGE: Phase = phase!("exchange");
/// Cluster-state index maintenance: allocation commit + release.
pub const INDEX_COMMIT: Phase = phase!("index_commit");
/// One standalone MapReduce job simulation (`simulate_job_traced`).
pub const MR_JOB: Phase = phase!("mr_job");

/// All phases, for docs/tests and the report surface.
pub const PHASES: &[Phase] = &[
    CLOUDSIM_RUN,
    SERVE,
    MR_SERVICE,
    DES_POP,
    SEED_SCAN,
    BOUND_PRECOMPUTE,
    EXCHANGE,
    INDEX_COMMIT,
    MR_JOB,
];

/// Gauge name for peak resident set size (kB), exported once per run.
pub const RSS_PEAK_KB: &str = "prof.rss_peak_kb";

// Detailed-mode flag: 0 = unset (read env on first use), 1 = off, 2 = on.
static DETAILED: AtomicU8 = AtomicU8::new(0);

/// Force detailed (per-call histogram) mode on or off, overriding the
/// `VC_PROF_DETAIL` environment variable. Mainly for tests.
pub fn set_detailed(on: bool) {
    DETAILED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Whether per-call latency histograms are recorded. Defaults to the
/// `VC_PROF_DETAIL` environment variable (`1`/`true` enables), read once.
pub fn detailed() -> bool {
    match DETAILED.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("VC_PROF_DETAIL")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            DETAILED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        2 => true,
        _ => false,
    }
}

/// RAII wall-clock guard for one phase invocation.
///
/// Construction reads the monotonic clock only when the recorder is
/// enabled; with a [`NoopRecorder`](crate::NoopRecorder) the guard is a
/// `None` and both construction and drop compile down to nothing.
#[must_use = "a phase timer records on drop; binding to _ drops immediately"]
pub struct PhaseTimer<'a, R: Recorder + ?Sized> {
    rec: &'a R,
    phase: Phase,
    start: Option<Instant>,
}

impl<'a, R: Recorder + ?Sized> PhaseTimer<'a, R> {
    #[inline]
    pub fn start(rec: &'a R, phase: Phase) -> Self {
        let start = if rec.enabled() {
            Some(Instant::now())
        } else {
            None
        };
        Self { rec, phase, start }
    }
}

impl<R: Recorder + ?Sized> Drop for PhaseTimer<'_, R> {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            self.rec.counter_add(self.phase.calls, 1);
            self.rec.counter_add(self.phase.wall_us, us);
            if detailed() {
                self.rec.histogram_record(self.phase.hist_us, us);
            }
        }
    }
}

/// Parse the `VmHWM` (peak RSS, kB) field out of a `/proc/<pid>/status`
/// document. `None` when the field is absent or malformed — callers
/// must skip the gauge rather than record 0.
pub fn parse_vm_hwm(status: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok();
        }
    }
    None
}

/// Peak resident set size of this process in kilobytes, from
/// `VmHWM` in `/proc/self/status`. `None` off Linux or if the field is
/// missing — callers should skip the gauge rather than record 0.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Record the process peak RSS as the `prof.rss_peak_kb` gauge if the
/// recorder is enabled and the platform exposes it.
pub fn record_peak_rss<R: Recorder + ?Sized>(rec: &R) {
    if rec.enabled() {
        if let Some(kb) = peak_rss_kb() {
            rec.gauge_max(RSS_PEAK_KB, kb as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MemRecorder, NoopRecorder};

    #[test]
    fn phase_names_are_derived() {
        for p in PHASES {
            assert_eq!(p.calls, format!("prof.phase.{}.calls", p.name));
            assert_eq!(p.wall_us, format!("prof.phase.{}.wall_us", p.name));
            assert_eq!(p.hist_us, format!("prof.phase.{}.hist_us", p.name));
        }
    }

    #[test]
    fn timer_records_calls_and_wall() {
        set_detailed(false);
        let rec = MemRecorder::new();
        {
            let _t = PhaseTimer::start(&rec, SEED_SCAN);
        }
        {
            let _t = PhaseTimer::start(&rec, SEED_SCAN);
        }
        let snap = rec.metrics();
        assert_eq!(snap.counters.get(SEED_SCAN.calls), Some(&2));
        assert!(snap.counters.contains_key(SEED_SCAN.wall_us));
        assert!(!snap.histograms.contains_key(SEED_SCAN.hist_us));
    }

    #[test]
    fn detailed_mode_adds_histogram() {
        set_detailed(true);
        let rec = MemRecorder::new();
        {
            let _t = PhaseTimer::start(&rec, EXCHANGE);
        }
        set_detailed(false);
        let snap = rec.metrics();
        let h = snap.histograms.get(EXCHANGE.hist_us).expect("histogram");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn noop_recorder_records_nothing() {
        // With a disabled recorder the guard must not even read the clock;
        // here we can only observe that nothing is recorded.
        let rec = NoopRecorder;
        let t = PhaseTimer::start(&rec, SERVE);
        assert!(t.start.is_none());
        drop(t);
    }

    #[test]
    fn vm_hwm_parse_path() {
        assert_eq!(
            parse_vm_hwm("Name:\tvc\nVmPeak:\t  999 kB\nVmHWM:\t    1234 kB\n"),
            Some(1234)
        );
        // Tolerates missing unit suffix and extra whitespace.
        assert_eq!(parse_vm_hwm("VmHWM:   42\n"), Some(42));
        // Missing field: degrade to None, never 0.
        assert_eq!(parse_vm_hwm("Name:\tvc\nVmPeak:\t999 kB\n"), None);
        assert_eq!(parse_vm_hwm(""), None);
        // Garbage value: None, not a panic or 0.
        assert_eq!(parse_vm_hwm("VmHWM:\tlots kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\n"), None);
    }

    #[test]
    fn peak_rss_parses_on_linux() {
        if cfg!(target_os = "linux") {
            let kb = peak_rss_kb().expect("VmHWM available on Linux");
            assert!(kb > 0);
        }
        let rec = MemRecorder::new();
        record_peak_rss(&rec);
        if cfg!(target_os = "linux") {
            assert!(
                rec.metrics()
                    .gauges
                    .get(RSS_PEAK_KB)
                    .copied()
                    .unwrap_or(0.0)
                    > 0.0
            );
        }
    }
}
