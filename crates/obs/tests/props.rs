//! Property tests for the observability layer: histogram bucketing
//! invariants, snapshot round-trips, and span bookkeeping.

use proptest::prelude::*;
use vc_obs::metrics::{bucket_index, bucket_lower_bound, Histogram, NUM_BUCKETS};
use vc_obs::{MemRecorder, MetricsSnapshot, Recorder, TrackId};

proptest! {
    /// Bucket assignment is monotone non-decreasing in the sample value,
    /// and every sample lands in the bucket whose range contains it.
    #[test]
    fn bucket_index_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        let i = bucket_index(hi);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= hi);
        if i + 1 < NUM_BUCKETS {
            prop_assert!(hi < bucket_lower_bound(i + 1));
        }
    }

    /// Histogram aggregates are exact and bucket counts conserve samples;
    /// quantiles stay inside [min, max] and are monotone in `q`.
    #[test]
    fn histogram_conserves_samples(values in proptest::collection::vec(any::<u64>(), 1..128)) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count, values.len() as u64);
        prop_assert_eq!(h.min, *values.iter().min().unwrap());
        prop_assert_eq!(h.max, *values.iter().max().unwrap());
        let bucket_total: u64 = h.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, h.count);
        // Sparse representation is sorted and has no empty buckets.
        for w in h.buckets.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        prop_assert!(h.buckets.iter().all(|&(_, n)| n > 0));
        let mut last = 0;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= h.min && v <= h.max);
            prop_assert!(v >= last, "quantile not monotone in q");
            last = v;
        }
    }

    /// A snapshot survives the JSON text round-trip bit-for-bit.
    #[test]
    fn snapshot_json_roundtrip(
        counters in proptest::collection::vec((0usize..8, 1u64..1000), 0..16),
        samples in proptest::collection::vec((0usize..4, any::<u64>()), 0..64),
    ) {
        let rec = MemRecorder::new();
        let names = ["a.one", "b.two", "c.three", "d.four", "e", "f", "g", "h"];
        for (i, delta) in counters {
            rec.counter_add(names[i], delta);
        }
        for (i, v) in samples {
            rec.histogram_record(names[i], v);
        }
        let snap = rec.metrics();
        let back = MetricsSnapshot::parse(&snap.to_json_string()).unwrap();
        prop_assert_eq!(snap, back);
    }

    /// Every span that is begun and ended balances out: no span leaks
    /// open, ends never precede starts, and span count matches begins.
    #[test]
    fn spans_balance(durations in proptest::collection::vec((0u64..10_000, 0u64..10_000), 0..64)) {
        let rec = MemRecorder::new();
        let mut open = Vec::new();
        for (i, &(start, len)) in durations.iter().enumerate() {
            let track = TrackId((i % 5) as u64);
            open.push((rec.span_begin(track, "work", start, &[]), start, start + len));
        }
        prop_assert_eq!(rec.open_span_count(), durations.len());
        // Close in reverse order to exercise non-LIFO-independence.
        for &(id, _, end) in open.iter().rev() {
            rec.span_end(id, end);
        }
        prop_assert_eq!(rec.open_span_count(), 0);
        let spans = rec.spans();
        prop_assert_eq!(spans.len(), durations.len());
        for s in &spans {
            let end = s.end_us.expect("all spans closed");
            prop_assert!(end >= s.start_us);
        }
    }
}
