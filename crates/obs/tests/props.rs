//! Property tests for the observability layer: histogram bucketing
//! invariants, snapshot round-trips, and span bookkeeping.

use proptest::prelude::*;
use vc_obs::metrics::{bucket_index, bucket_lower_bound, Histogram, NUM_BUCKETS};
use vc_obs::{
    replay_jsonl, AttrValue, EventRecord, MemRecorder, MetricsSnapshot, Recorder, ShardedRecorder,
    SpanRecord, StreamingRecorder, TrackId,
};

const CTR_NAMES: [&str; 4] = ["m.a", "m.b", "m.c", "m.d"];
const EVT_NAMES: [&str; 3] = ["ev.x", "ev.y", "ev.z"];

/// One recorder operation: `(worker, kind, a, b)`. The worker index picks
/// which thread replays the op on the sharded side; `kind` selects among
/// counter / histogram / event / span / track-name; `a` and `b` feed
/// names, timestamps and attribute payloads.
type RecOp = (usize, usize, u64, u64);

/// Sequential op applier covering the full recorder surface, including
/// the gauge and windowed-sample paths the thread-partitioned
/// [`apply_ops`] must avoid (their merge result is order-sensitive).
/// Timestamps advance monotonically, as the DES clock guarantees for a
/// real single-threaded run — replay merges by (time, sequence), so a
/// well-formed stream replays in emission order.
fn apply_ops_seq(rec: &dyn Recorder, ops: &[RecOp]) {
    let mut now = 0u64;
    for &(_, kind, a, b) in ops {
        now += b % 1000;
        let track = TrackId(a % 3);
        match kind {
            0 => rec.counter_add(CTR_NAMES[(a % 4) as usize], b % 1000 + 1),
            1 => rec.histogram_record(CTR_NAMES[(a % 4) as usize], b),
            2 => rec.event(
                EVT_NAMES[(a % 3) as usize],
                now,
                Some(track),
                &[("v", AttrValue::from(a))],
            ),
            3 => {
                let id = rec.span_begin(track, "work", now, &[("v", AttrValue::from(a))]);
                rec.span_attr(id, "extra", AttrValue::from(b));
                rec.span_end(id, now + a % 100);
            }
            4 => rec.track_name(track, &format!("track-{}", a % 3)),
            5 => rec.gauge_set(CTR_NAMES[(a % 4) as usize], b as f64 / 7.0),
            6 => rec.gauge_max(CTR_NAMES[(a % 4) as usize], b as f64 / 3.0),
            _ => rec.counter_sample("ts.prop.series", now, a as f64 / 11.0),
        }
    }
}

fn apply_ops(rec: &dyn Recorder, ops: &[RecOp]) {
    for &(_, kind, a, b) in ops {
        let track = TrackId(a % 3);
        match kind {
            0 => rec.counter_add(CTR_NAMES[(a % 4) as usize], b % 1000 + 1),
            1 => rec.histogram_record(CTR_NAMES[(a % 4) as usize], b),
            2 => rec.event(
                EVT_NAMES[(a % 3) as usize],
                b,
                Some(track),
                &[("v", AttrValue::from(a))],
            ),
            3 => {
                let id = rec.span_begin(track, "work", b, &[("v", AttrValue::from(a))]);
                rec.span_end(id, b + a % 100);
            }
            _ => rec.track_name(track, &format!("track-{}", a % 3)),
        }
    }
}

/// Identity-free span key: everything but the recorder-assigned `SpanId`.
fn span_key(s: &SpanRecord) -> (u64, &'static str, u64, Option<u64>, String) {
    (
        s.track.0,
        s.name,
        s.start_us,
        s.end_us,
        format!("{:?}", s.attrs),
    )
}

fn event_key(e: &EventRecord) -> (&'static str, u64, Option<u64>, String) {
    (
        e.name,
        e.t_us,
        e.track.map(|t| t.0),
        format!("{:?}", e.attrs),
    )
}

proptest! {
    /// Bucket assignment is monotone non-decreasing in the sample value,
    /// and every sample lands in the bucket whose range contains it.
    #[test]
    fn bucket_index_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        let i = bucket_index(hi);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= hi);
        if i + 1 < NUM_BUCKETS {
            prop_assert!(hi < bucket_lower_bound(i + 1));
        }
    }

    /// Histogram aggregates are exact and bucket counts conserve samples;
    /// quantiles stay inside [min, max] and are monotone in `q`.
    #[test]
    fn histogram_conserves_samples(values in proptest::collection::vec(any::<u64>(), 1..128)) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count, values.len() as u64);
        prop_assert_eq!(h.min, *values.iter().min().unwrap());
        prop_assert_eq!(h.max, *values.iter().max().unwrap());
        let bucket_total: u64 = h.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, h.count);
        // Sparse representation is sorted and has no empty buckets.
        for w in h.buckets.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        prop_assert!(h.buckets.iter().all(|&(_, n)| n > 0));
        let mut last = 0;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= h.min && v <= h.max);
            prop_assert!(v >= last, "quantile not monotone in q");
            last = v;
        }
    }

    /// A snapshot survives the JSON text round-trip bit-for-bit.
    #[test]
    fn snapshot_json_roundtrip(
        counters in proptest::collection::vec((0usize..8, 1u64..1000), 0..16),
        samples in proptest::collection::vec((0usize..4, any::<u64>()), 0..64),
    ) {
        let rec = MemRecorder::new();
        let names = ["a.one", "b.two", "c.three", "d.four", "e", "f", "g", "h"];
        for (i, delta) in counters {
            rec.counter_add(names[i], delta);
        }
        for (i, v) in samples {
            rec.histogram_record(names[i], v);
        }
        let snap = rec.metrics();
        let back = MetricsSnapshot::parse(&snap.to_json_string()).unwrap();
        prop_assert_eq!(snap, back);
    }

    /// Every span that is begun and ended balances out: no span leaks
    /// open, ends never precede starts, and span count matches begins.
    #[test]
    fn spans_balance(durations in proptest::collection::vec((0u64..10_000, 0u64..10_000), 0..64)) {
        let rec = MemRecorder::new();
        let mut open = Vec::new();
        for (i, &(start, len)) in durations.iter().enumerate() {
            let track = TrackId((i % 5) as u64);
            open.push((rec.span_begin(track, "work", start, &[]), start, start + len));
        }
        prop_assert_eq!(rec.open_span_count(), durations.len());
        // Close in reverse order to exercise non-LIFO-independence.
        for &(id, _, end) in open.iter().rev() {
            rec.span_end(id, end);
        }
        prop_assert_eq!(rec.open_span_count(), 0);
        let spans = rec.spans();
        prop_assert_eq!(spans.len(), durations.len());
        for s in &spans {
            let end = s.end_us.expect("all spans closed");
            prop_assert!(end >= s.start_us);
        }
    }

    /// A [`ShardedRecorder`] flushed from four worker threads records the
    /// same trace as a single-threaded [`MemRecorder`] replaying the same
    /// operations, modulo ordering: identical metrics snapshot, track
    /// names, and span/event multisets (span ids excluded — they are
    /// allocation order, not content).
    #[test]
    fn sharded_matches_mem_modulo_order(
        ops in proptest::collection::vec(
            (0usize..4, 0usize..5, any::<u64>(), 0u64..10_000),
            0..80,
        )
    ) {
        let mem = MemRecorder::new();
        apply_ops(&mem, &ops);

        let sharded = ShardedRecorder::new();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let chunk: Vec<RecOp> =
                    ops.iter().filter(|op| op.0 == worker).copied().collect();
                let rec = &sharded;
                scope.spawn(move || apply_ops(rec, &chunk));
            }
        });
        let merged = sharded.merged();

        prop_assert_eq!(merged.open_spans, 0);
        prop_assert_eq!(mem.open_span_count(), 0);
        prop_assert_eq!(mem.metrics(), merged.metrics);
        prop_assert_eq!(mem.track_names(), merged.track_names);

        let mut mem_spans: Vec<_> = mem.spans().iter().map(span_key).collect();
        let mut sh_spans: Vec<_> = merged.spans.iter().map(span_key).collect();
        mem_spans.sort();
        sh_spans.sort();
        prop_assert_eq!(mem_spans, sh_spans);

        let mut mem_events: Vec<_> = mem.events().iter().map(event_key).collect();
        let mut sh_events: Vec<_> = merged.events.iter().map(event_key).collect();
        mem_events.sort();
        sh_events.sort();
        prop_assert_eq!(mem_events, sh_events);
    }

    /// A [`StreamingRecorder`]'s flushed JSONL, replayed, reproduces the
    /// [`MemRecorder`] view of the same op sequence bit-for-bit: same
    /// metrics snapshot (gauges included — last-write and running-max
    /// semantics survive the stream), same track names, same counter
    /// series, and the same spans and events *in order* (single-threaded
    /// emission order is preserved through flush and replay).
    #[test]
    fn streaming_replay_matches_mem_bitwise(
        ops in proptest::collection::vec(
            (0usize..1, 0usize..8, any::<u64>(), 0u64..10_000),
            0..100,
        )
    ) {
        let mem = MemRecorder::new();
        apply_ops_seq(&mem, &ops);

        let stream = StreamingRecorder::new(Vec::new());
        apply_ops_seq(&stream, &ops);
        let bytes = stream.finish().expect("Vec sink cannot fail");
        let text = String::from_utf8(bytes).expect("stream is UTF-8 JSONL");
        let merged = replay_jsonl(&text).expect("own stream replays");

        prop_assert_eq!(merged.open_spans, 0);
        prop_assert_eq!(mem.metrics(), merged.metrics);
        prop_assert_eq!(mem.track_names(), merged.track_names);
        prop_assert_eq!(mem.counter_series(), merged.counter_series);
        let mem_spans: Vec<_> = mem.spans().iter().map(span_key).collect();
        let st_spans: Vec<_> = merged.spans.iter().map(span_key).collect();
        prop_assert_eq!(mem_spans, st_spans, "span order must survive the stream");
        let mem_events: Vec<_> = mem.events().iter().map(event_key).collect();
        let st_events: Vec<_> = merged.events.iter().map(event_key).collect();
        prop_assert_eq!(mem_events, st_events, "event order must survive the stream");
    }
}
