//! Criterion benches for the placement algorithms: Algorithm 1 scaling
//! with cloud size, exact-SD and baseline costs, and the Theorem-2
//! exchange pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use vc_model::workload::{random_capacity, RequestProfile};
use vc_model::Request;
use vc_model::{ClusterState, VmCatalog};
use vc_placement::global::{self, Admission};
use vc_placement::online::ScanConfig;
use vc_placement::{baselines, exact, online, PlacementPolicy};
use vc_topology::{generate, DistanceTiers};

fn cloud(racks: usize, nodes_per_rack: usize, seed: u64) -> ClusterState {
    let topo = Arc::new(generate::uniform(
        racks,
        nodes_per_rack,
        DistanceTiers::paper_experiment(),
    ));
    let catalog = Arc::new(VmCatalog::ec2_table1());
    let mut rng = StdRng::seed_from_u64(seed);
    let capacity = random_capacity(&topo, &catalog, 3, &mut rng);
    ClusterState::new(topo, catalog, capacity)
}

fn bench_online_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_heuristic_scaling");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));
    for &(racks, nodes) in &[(3usize, 10usize), (6, 10), (6, 20), (12, 20)] {
        let state = cloud(racks, nodes, 7);
        let mut rng = StdRng::seed_from_u64(7);
        let request = RequestProfile::standard().sample(3, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}nodes", racks * nodes)),
            &state,
            |b, state| {
                b.iter(|| online::place(black_box(&request), black_box(state)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_solvers_paper_size(c: &mut Criterion) {
    let state = cloud(3, 10, 11);
    let mut rng = StdRng::seed_from_u64(11);
    let request = RequestProfile::standard().sample(3, &mut rng);
    let mut group = c.benchmark_group("sd_solvers_30nodes");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("online", |b| {
        b.iter(|| online::place(black_box(&request), black_box(&state)).unwrap())
    });
    group.bench_function("exact", |b| {
        b.iter(|| exact::solve(black_box(&request), black_box(&state)).unwrap())
    });
    group.bench_function("first_fit", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            baselines::FirstFit
                .place(black_box(&request), black_box(&state), &mut rng)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_global_queue(c: &mut Criterion) {
    let state = cloud(3, 10, 13);
    let mut rng = StdRng::seed_from_u64(13);
    let queue = RequestProfile::small().sample_many(3, 20, &mut rng);
    let mut group = c.benchmark_group("global");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("algorithm2_queue20", |b| {
        b.iter(|| {
            global::place_queue(
                black_box(&queue),
                black_box(&state),
                Admission::FifoBlocking,
            )
            .unwrap()
        })
    });
    group.finish();
}

/// The tentpole measurement: the Algorithm-1 seed scan as a function of
/// cloud size, sequential-exhaustive vs pruned vs pruned+parallel. All
/// three return bit-identical allocations (proptest-enforced), so this is
/// pure throughput. The request spans several nodes (20 VMs against ≤3
/// instances per cell) so the single-node fast path never triggers.
fn bench_scan_modes(c: &mut Criterion) {
    let sizes: &[(usize, usize)] = &[(3, 10), (6, 20), (12, 40), (48, 40)];
    let modes: &[(&str, ScanConfig)] = &[
        ("sequential", ScanConfig::sequential_baseline()),
        ("pruned", ScanConfig::pruned()),
        ("pruned_parallel", ScanConfig::pruned_parallel(0)),
    ];
    let request = Request::from_counts(vec![8, 8, 4]);
    for &(racks, nodes) in sizes {
        let n = racks * nodes;
        let state = cloud(racks, nodes, 7);
        assert!(state.can_satisfy(&request), "bench request must fit");
        let mut group = c.benchmark_group(format!("scan_modes_{n}nodes"));
        group
            .sample_size(10)
            .measurement_time(std::time::Duration::from_secs(3));
        for &(name, scan) in modes {
            group.bench_function(name, |b| {
                b.iter(|| {
                    online::place_with(black_box(&request), black_box(&state), scan).unwrap()
                });
            });
        }
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_online_scaling,
    bench_solvers_paper_size,
    bench_global_queue,
    bench_scan_modes
);
criterion_main!(benches);
