// Index-based loops mirror the ILP formulation.
#![allow(clippy::needless_range_loop)]
//! Criterion benches for the from-scratch MILP solver.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vc_ilp::{Cmp, Problem};

fn knapsack(n: usize) -> Problem {
    let mut p = Problem::maximize();
    let mut terms = Vec::new();
    for i in 0..n {
        let value = 10.0 + ((i * 37) % 50) as f64;
        let weight = 5.0 + ((i * 17) % 30) as f64;
        let x = p.add_int_var(0.0, 1.0, value);
        terms.push((x, weight));
    }
    let cap: f64 = terms.iter().map(|&(_, w)| w).sum::<f64>() * 0.4;
    p.add_constraint(terms, Cmp::Le, cap);
    p
}

fn sd_like(n_nodes: usize, m_types: usize) -> Problem {
    // The §III-B SD ILP for one fixed centre: transportation structure.
    let mut p = Problem::minimize();
    let mut vars = vec![vec![]; n_nodes];
    for (i, row) in vars.iter_mut().enumerate() {
        let dist = if i == 0 {
            0.0
        } else if i < n_nodes / 3 {
            1.0
        } else {
            2.0
        };
        for _ in 0..m_types {
            row.push(p.add_int_var(0.0, 3.0, dist));
        }
    }
    for j in 0..m_types {
        let terms: Vec<_> = (0..n_nodes).map(|i| (vars[i][j], 1.0)).collect();
        p.add_constraint(terms, Cmp::Eq, 5.0);
    }
    p
}

fn bench_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));
    let k = knapsack(20);
    group.bench_function("knapsack20", |b| b.iter(|| black_box(&k).solve().unwrap()));
    let sd = sd_like(30, 3);
    group.bench_function("sd_fixed_center_30x3", |b| {
        b.iter(|| black_box(&sd).solve().unwrap())
    });
    let lp = sd_like(30, 3);
    group.bench_function("sd_lp_relaxation_30x3", |b| {
        b.iter(|| black_box(&lp).solve_relaxation().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ilp);
criterion_main!(benches);
