//! Criterion benches for the cloud request-queue simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vc_bench::scenarios;
use vc_cloudsim::sim::{self, PolicyMode, SimConfig};
use vc_cloudsim::ArrivalProcess;
use vc_placement::global::Admission;
use vc_placement::online::{OnlineHeuristic, ScanConfig};

fn bench_queue_sim(c: &mut Criterion) {
    let state = scenarios::paper_cloud(3);
    let trace = ArrivalProcess::paper_standard().generate(50, 3, &mut StdRng::seed_from_u64(3));

    let mut group = c.benchmark_group("cloudsim_50req");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("individual_online", |b| {
        b.iter(|| {
            sim::run(
                black_box(&state),
                SimConfig::new(
                    trace.clone(),
                    PolicyMode::Individual(Box::new(OnlineHeuristic)),
                    3,
                ),
            )
        })
    });
    group.bench_function("global_batch", |b| {
        b.iter(|| {
            sim::run(
                black_box(&state),
                SimConfig::new(
                    trace.clone(),
                    PolicyMode::GlobalBatch(Admission::FifoBlocking, ScanConfig::default()),
                    3,
                ),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queue_sim);
criterion_main!(benches);
