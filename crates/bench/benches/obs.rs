//! Criterion benches for the `vc-obs` observability layer.
//!
//! The claim under test: threading a [`NoopRecorder`] through the
//! simulators is free. `simulate_job` is the uninstrumented baseline
//! (it monomorphises the recorder away), `noop_recorder` goes through
//! the `&dyn Recorder` entry point with the no-op sink, and
//! `mem_recorder` pays for real buffering — the upper bound.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vc_bench::scenarios;
use vc_des::{Engine, SimTime};
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{simulate_job, simulate_job_traced, JobConfig};
use vc_obs::{MemRecorder, NoopRecorder};

fn bench_job_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_job");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));
    let clusters = scenarios::fig7_clusters();
    let (_, compact) = &clusters[0];
    let job = JobConfig::paper_wordcount();
    let params = SimParams::default();

    group.bench_function("baseline", |b| {
        b.iter(|| simulate_job(black_box(compact), black_box(&job), &params))
    });
    group.bench_function("noop_recorder", |b| {
        b.iter(|| {
            simulate_job_traced(
                black_box(compact),
                black_box(&job),
                &params,
                &NoopRecorder,
                0,
                0,
            )
        })
    });
    group.bench_function("mem_recorder", |b| {
        b.iter(|| {
            let rec = MemRecorder::new();
            simulate_job_traced(black_box(compact), black_box(&job), &params, &rec, 0, 0)
        })
    });
    group.finish();
}

#[derive(Clone, Copy)]
struct Tick(u64);

impl vc_des::EventKind for Tick {
    fn kind(&self) -> &'static str {
        "bench.tick"
    }
}

fn bench_des_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_des_pop");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));
    let fill = |engine: &mut Engine<Tick>| {
        for i in 0..4096u64 {
            engine.schedule(SimTime::from_micros(i * 7 % 911), Tick(i));
        }
    };

    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut engine = Engine::new();
            fill(&mut engine);
            while let Some((at, Tick(v))) = engine.pop() {
                black_box((at, v));
            }
        })
    });
    group.bench_function("traced_noop", |b| {
        b.iter(|| {
            let mut engine = Engine::new();
            fill(&mut engine);
            while let Some((at, Tick(v))) = engine.pop_traced(&NoopRecorder) {
                black_box((at, v));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_job_overhead, bench_des_pop);
criterion_main!(benches);
