//! Paired-overhead benches for the `vc-obs` observability layer.
//!
//! The claim under test: threading a [`NoopRecorder`] through the
//! simulators is free. `simulate_job` is the uninstrumented baseline
//! (it monomorphises the recorder away), `noop_recorder` goes through
//! the `&dyn Recorder` entry point with the no-op sink, and
//! `mem_recorder` pays for real buffering — the upper bound.
//!
//! Measurement design: the old version timed baseline and variant as
//! independent criterion groups, so clock drift and allocator warm-up
//! between the two windows dominated the ~1% effect being measured and
//! the reported overhead came out *negative*. This version times both
//! sides inside the SAME iteration, alternating which runs first, and
//! reports the **median of per-pair ratios** — pairing cancels the
//! drift, alternation cancels ordering bias.

use std::hint::black_box;
use std::time::Instant;

use vc_bench::scenarios;
use vc_des::{Engine, SimTime};
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{simulate_job, simulate_job_traced, JobConfig};
use vc_obs::{MemRecorder, NoopRecorder, StreamingRecorder};

/// Result of one paired comparison.
struct Paired {
    base_us: Vec<f64>,
    variant_us: Vec<f64>,
    ratios: Vec<f64>,
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn summarize(mut xs: Vec<f64>) -> (f64, f64, f64) {
    xs.sort_by(f64::total_cmp);
    (xs[0], median(&xs), xs[xs.len() - 1])
}

/// Time `base` and `variant` back-to-back in every pair, alternating
/// which side runs first, and collect per-pair variant/base ratios.
fn run_paired(
    pairs: usize,
    batch: u32,
    mut base: impl FnMut(),
    mut variant: impl FnMut(),
) -> Paired {
    let time_batch = |f: &mut dyn FnMut()| -> f64 {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        start.elapsed().as_secs_f64() * 1e6 / f64::from(batch)
    };
    // Warm-up: touch both sides so first-call effects (page faults,
    // lazy allocator arenas) land outside the measurement.
    for _ in 0..2 {
        base();
        variant();
    }
    let mut out = Paired {
        base_us: Vec::with_capacity(pairs),
        variant_us: Vec::with_capacity(pairs),
        ratios: Vec::with_capacity(pairs),
    };
    for i in 0..pairs {
        let (b_us, v_us) = if i % 2 == 0 {
            let b = time_batch(&mut base);
            let v = time_batch(&mut variant);
            (b, v)
        } else {
            let v = time_batch(&mut variant);
            let b = time_batch(&mut base);
            (b, v)
        };
        out.base_us.push(b_us);
        out.variant_us.push(v_us);
        out.ratios.push(v_us / b_us);
    }
    out
}

fn report(group: &str, variant: &str, p: &Paired) {
    let (b_lo, b_med, b_hi) = summarize(p.base_us.clone());
    let (v_lo, v_med, v_hi) = summarize(p.variant_us.clone());
    let (_, r_med, _) = summarize(p.ratios.clone());
    let overhead_pct = (r_med - 1.0) * 100.0;
    println!(
        "{group}/baseline{:<width$} time: [{b_lo:.2} {b_med:.2} {b_hi:.2}] µs",
        "",
        width = 30usize.saturating_sub(group.len())
    );
    println!(
        "{group}/{variant:<w$} time: [{v_lo:.2} {v_med:.2} {v_hi:.2}] µs   \
         paired overhead: {overhead_pct:+.1}% (median of {} per-pair ratios)",
        p.ratios.len(),
        w = 38usize.saturating_sub(group.len()),
    );
}

fn bench_job_overhead(pairs: usize, batch: u32) {
    let clusters = scenarios::fig7_clusters();
    let (_, compact) = &clusters[0];
    let job = JobConfig::paper_wordcount();
    let params = SimParams::default();

    let noop = run_paired(
        pairs,
        batch,
        || {
            black_box(simulate_job(black_box(compact), black_box(&job), &params));
        },
        || {
            black_box(simulate_job_traced(
                black_box(compact),
                black_box(&job),
                &params,
                &NoopRecorder,
                0,
                0,
            ));
        },
    );
    report("obs_job", "noop_recorder", &noop);

    let mem = run_paired(
        pairs,
        batch,
        || {
            black_box(simulate_job(black_box(compact), black_box(&job), &params));
        },
        || {
            let rec = MemRecorder::new();
            black_box(simulate_job_traced(
                black_box(compact),
                black_box(&job),
                &params,
                &rec,
                0,
                0,
            ));
        },
    );
    report("obs_job", "mem_recorder", &mem);

    // Streaming to `io::sink()` isolates the serialization cost of the
    // bounded-memory recorder: every op is JSON-encoded and buffered,
    // but no bytes hit a real device — the steady-state CPU price of
    // `--stream-out` with a fast disk.
    let stream = run_paired(
        pairs,
        batch,
        || {
            black_box(simulate_job(black_box(compact), black_box(&job), &params));
        },
        || {
            let rec = StreamingRecorder::new(std::io::sink());
            black_box(simulate_job_traced(
                black_box(compact),
                black_box(&job),
                &params,
                &rec,
                0,
                0,
            ));
            rec.finish().expect("sink cannot fail");
        },
    );
    report("obs_job", "stream_recorder", &stream);
}

#[derive(Clone, Copy)]
struct Tick(u64);

impl vc_des::EventKind for Tick {
    fn kind(&self) -> &'static str {
        "bench.tick"
    }
}

fn bench_des_pop(pairs: usize, batch: u32) {
    let fill = |engine: &mut Engine<Tick>| {
        for i in 0..4096u64 {
            engine.schedule(SimTime::from_micros(i * 7 % 911), Tick(i));
        }
    };
    let paired = run_paired(
        pairs,
        batch,
        || {
            let mut engine = Engine::new();
            fill(&mut engine);
            while let Some((at, Tick(v))) = engine.pop() {
                black_box((at, v));
            }
        },
        || {
            let mut engine = Engine::new();
            fill(&mut engine);
            while let Some((at, Tick(v))) = engine.pop_traced(&NoopRecorder) {
                black_box((at, v));
            }
        },
    );
    report("obs_des_pop", "traced_noop", &paired);
}

fn main() {
    // `cargo test`/CI smoke passes `--test`: run one tiny pair per
    // bench so the code paths execute without burning bench time.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (pairs, batch) = if test_mode { (1, 1) } else { (31, 16) };
    bench_job_overhead(pairs, batch);
    bench_des_pop(pairs, if test_mode { 1 } else { 8 });
    if test_mode {
        println!("test obs paired benches ... ok");
    }
}
