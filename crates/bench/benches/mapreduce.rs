//! Criterion benches for the MapReduce discrete-event simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vc_bench::scenarios;
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{simulate_job, JobConfig, Workload};

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_job");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    let clusters = scenarios::fig7_clusters();
    let (_, compact) = &clusters[0];
    let (_, spread) = &clusters[3];

    let paper = JobConfig::paper_wordcount();
    group.bench_function("wordcount_32maps_compact", |b| {
        b.iter(|| simulate_job(black_box(compact), black_box(&paper), &SimParams::default()))
    });
    group.bench_function("wordcount_32maps_spread", |b| {
        b.iter(|| simulate_job(black_box(spread), black_box(&paper), &SimParams::default()))
    });

    for maps in [32u32, 128, 512] {
        let job = JobConfig {
            input_mb: f64::from(maps) * 64.0,
            num_reducers: 4,
            workload: Workload::terasort(),
            ..JobConfig::paper_wordcount()
        };
        group.bench_with_input(
            BenchmarkId::new("terasort_scaling", maps),
            &job,
            |b, job| {
                b.iter(|| simulate_job(black_box(compact), black_box(job), &SimParams::default()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
