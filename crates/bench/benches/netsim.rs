//! Criterion benches for the `vc-netsim` fluid network model.
//!
//! Two layers, measured separately:
//!
//! * `fairshare_solve/N` — one progressive-filling max-min solve over a
//!   synthetic 2-resource-per-flow system, the inner kernel that every
//!   rate recomputation pays.
//! * `flownet_drain/N` — the full event-driven life of N simultaneous
//!   cross-rack flows on the paper topology: start, repeated
//!   advance/recompute as flows complete, drain. Per-iteration time ÷ N
//!   is the sustained flows/sec figure recorded in `BENCH_netsim.json`.
//!   Runs the default incremental solver at 64/256/1024 concurrent
//!   flows (1024 probes the scaling regime), plus a
//!   `flownet_drain_batch/256` group that pins the reference full-set
//!   solver for a like-for-like before/after comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use vc_des::SimTime;
use vc_netsim::{max_min_fair_share, FlowNet, NetworkParams, SolverMode};
use vc_topology::{generate, DistanceTiers, NodeId, Topology};

/// A synthetic solve instance: `n` flows, each crossing its source
/// uplink and a shared core link, with staggered capacities so the
/// progressive filling runs several freezing rounds.
fn solve_instance(n: usize) -> (Vec<f64>, Vec<Vec<usize>>) {
    let nr = n / 4 + 2;
    let capacities: Vec<f64> = (0..nr)
        .map(|r| 1000.0 + 250.0 * ((r * 37 % 11) as f64))
        .collect();
    let flows: Vec<Vec<usize>> = (0..n)
        .map(|f| vec![f % (nr - 1), nr - 1]) // own uplink + shared core
        .collect();
    (capacities, flows)
}

fn bench_fairshare(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairshare_solve");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    for n in [16usize, 64, 256] {
        let (caps, flows) = solve_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(max_min_fair_share(black_box(&caps), black_box(&flows))))
        });
    }
    group.finish();
}

fn paper_topo() -> Arc<Topology> {
    Arc::new(generate::uniform(4, 8, DistanceTiers::paper_experiment()))
}

/// Start `n` flows spread across the topology and run the fluid model
/// until all complete, exercising the advance → recompute → complete
/// loop that dominates shuffle simulation.
fn drain(topo: &Arc<Topology>, n: u64, mode: SolverMode) -> usize {
    let mut net = FlowNet::with_solver(Arc::clone(topo), NetworkParams::default(), mode);
    let nodes = 4 * 8;
    for i in 0..n {
        let src = NodeId((i * 7 % nodes) as u32);
        let dst = NodeId(((i * 13 + 5) % nodes) as u32);
        // 1 MiB ± stagger so completions interleave instead of batching.
        net.start_flow(SimTime::ZERO, src, dst, (1 << 20) + i * 4096, i);
    }
    let mut done = 0;
    while let Some(next) = net.next_event_time() {
        net.advance(next);
        done += net.take_completed(next).len();
    }
    done
}

fn bench_flownet_drain(c: &mut Criterion) {
    let topo = paper_topo();
    let mut group = c.benchmark_group("flownet_drain");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));
    for n in [64u64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let completed = drain(&topo, n, SolverMode::Incremental);
                assert_eq!(completed as u64, n, "every flow must complete");
                black_box(completed)
            })
        });
    }
    group.finish();

    // Reference full-set solver at the headline concurrency, so the
    // incremental speedup is measurable from one bench run.
    let mut group = c.benchmark_group("flownet_drain_batch");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    let n = 256u64;
    group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
        b.iter(|| {
            let completed = drain(&topo, n, SolverMode::Batch);
            assert_eq!(completed as u64, n, "every flow must complete");
            black_box(completed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fairshare, bench_flownet_drain);
criterion_main!(benches);
