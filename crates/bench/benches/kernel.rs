//! Criterion benches for the simulation substrates: the event kernel and
//! the max-min fair-share computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use vc_des::{Engine, SimTime};
use vc_netsim::{max_min_fair_share, FlowNet, NetworkParams};
use vc_topology::{generate, NodeId};

fn bench_event_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_engine");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));
    for n in [1_000u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("schedule_drain", n), &n, |b, &n| {
            b.iter(|| {
                let mut e = Engine::new();
                for i in 0..n {
                    e.schedule(SimTime::from_micros((i * 7919) % 1_000_000), i);
                }
                let mut count = 0u64;
                while e.pop().is_some() {
                    count += 1;
                }
                black_box(count)
            })
        });
    }
    group.finish();
}

fn bench_fair_share(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_min_fair_share");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));
    for flows in [16usize, 64, 256] {
        // 70 resources ≈ the paper topology's NICs + uplinks.
        let caps = vec![119.0f64; 70];
        let paths: Vec<Vec<usize>> = (0..flows)
            .map(|f| vec![f % 70, (f * 13 + 7) % 70, (f * 29 + 3) % 70])
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(flows), &paths, |b, paths| {
            b.iter(|| max_min_fair_share(black_box(&caps), black_box(paths)))
        });
    }
    group.finish();
}

fn bench_flownet_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("flownet");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    let topo = Arc::new(generate::paper_simulation());
    group.bench_function("churn_200_flows", |b| {
        b.iter(|| {
            let mut net = FlowNet::new(Arc::clone(&topo), NetworkParams::default());
            for i in 0..200u64 {
                net.start_flow(
                    SimTime::from_micros(i * 97),
                    NodeId((i % 30) as u32),
                    NodeId(((i * 7 + 1) % 30) as u32),
                    1_000_000 + i * 10_000,
                    i,
                );
            }
            let mut done = 0usize;
            while let Some(t) = net.next_event_time() {
                done += net.take_completed(t).len();
            }
            black_box(done)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_kernel,
    bench_fair_share,
    bench_flownet_churn
);
criterion_main!(benches);
