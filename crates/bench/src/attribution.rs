//! Critical-path attribution helpers for the experiment binaries: re-run
//! a job (or read back a recorded cloud run) through `vc_obs::analyze`
//! and render compact per-category columns for the result tables.

use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{simulate_job_traced, JobConfig, VirtualCluster};
use vc_obs::{analyze, Category, JobAttribution, MemRecorder, TraceDump};

/// Run `job` on `cluster` with recording enabled and return its
/// critical-path attribution. Deterministic, so re-running alongside an
/// unrecorded measurement reproduces the same job.
pub fn job_attribution(
    cluster: &VirtualCluster,
    job: &JobConfig,
    params: &SimParams,
) -> JobAttribution {
    let rec = MemRecorder::new();
    let _ = simulate_job_traced(cluster, job, params, &rec, 0, 0);
    analyze(&TraceDump::from_mem(&rec))
        .into_iter()
        .next()
        .expect("job run records exactly one job span")
}

/// Attribution of every job in a recorded cloud-simulation run.
pub fn trace_attributions(rec: &MemRecorder) -> Vec<JobAttribution> {
    analyze(&TraceDump::from_mem(rec))
}

/// Percentage of the job's makespan attributed to `cat`.
pub fn pct(a: &JobAttribution, cat: Category) -> f64 {
    100.0 * a.total_us(cat) as f64 / a.makespan_us().max(1) as f64
}

/// Compact `map/shuffle/reduce/wait` percentage cell for result tables.
/// Straggler slack counts toward map, serialisation + network wait toward
/// shuffle, so the four numbers sum to ~100.
pub fn summary_cell(a: &JobAttribution) -> String {
    format!(
        "{:.0}/{:.0}/{:.0}/{:.0}%",
        pct(a, Category::Map) + pct(a, Category::StragglerSlack),
        pct(a, Category::ShuffleSerialisation) + pct(a, Category::ShuffleNetworkWait),
        pct(a, Category::Reduce),
        pct(a, Category::SchedulerWait),
    )
}

/// [`summary_cell`] over many jobs, weighted by makespan (total µs per
/// category over total makespan).
pub fn aggregate_cell(jobs: &[JobAttribution]) -> String {
    let total = jobs
        .iter()
        .map(JobAttribution::makespan_us)
        .sum::<u64>()
        .max(1) as f64;
    let sum = |cats: &[Category]| -> f64 {
        100.0
            * cats
                .iter()
                .map(|&c| jobs.iter().map(|j| j.total_us(c)).sum::<u64>())
                .sum::<u64>() as f64
            / total
    };
    format!(
        "{:.0}/{:.0}/{:.0}/{:.0}%",
        sum(&[Category::Map, Category::StragglerSlack]),
        sum(&[Category::ShuffleSerialisation, Category::ShuffleNetworkWait]),
        sum(&[Category::Reduce]),
        sum(&[Category::SchedulerWait]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn wordcount_attribution_tiles_makespan() {
        let job = JobConfig::paper_wordcount();
        let (_, cluster) = scenarios::fig7_clusters().remove(0);
        let a = job_attribution(&cluster, &job, &SimParams::default());
        assert_eq!(a.attributed_us(), a.makespan_us());
        let cell = summary_cell(&a);
        assert!(cell.ends_with('%'), "{cell}");
        assert_eq!(aggregate_cell(std::slice::from_ref(&a)), cell);
    }
}
