//! Tiny ASCII bar charts for figure binaries — the terminal rendition of
//! the paper's plots.

/// Render labelled horizontal bars scaled to `width` columns, each line
/// `label | ███… value`. Values must be non-negative and finite.
///
/// # Panics
/// Panics on negative/NaN values or `width == 0`.
pub fn bars(items: &[(String, f64)], width: usize) -> String {
    assert!(width > 0, "chart width must be positive");
    for (label, v) in items {
        assert!(v.is_finite() && *v >= 0.0, "bad value {v} for {label}");
    }
    let max = items.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let filled = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {}{} {v:.1}\n",
            "█".repeat(filled),
            " ".repeat(width - filled.min(width)),
        ));
    }
    out
}

/// Print a titled bar chart to stdout (broken-pipe tolerant).
pub fn print(title: &str, items: &[(String, f64)], width: usize) {
    crate::print_line(&format!("\n-- {title} --"));
    for line in bars(items, width).lines() {
        crate::print_line(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_to_max() {
        let out = bars(
            &[("a".into(), 10.0), ("bb".into(), 5.0), ("c".into(), 0.0)],
            10,
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(&"█".repeat(10)));
        assert!(lines[1].contains(&"█".repeat(5)));
        assert!(!lines[2].contains('█'));
        // labels padded to equal width
        assert!(lines[0].starts_with("a  |"));
        assert!(lines[1].starts_with("bb |"));
    }

    #[test]
    fn all_zero_renders_empty_bars() {
        let out = bars(&[("x".into(), 0.0)], 8);
        assert!(out.contains("x |"));
        assert!(!out.contains('█'));
    }

    #[test]
    #[should_panic(expected = "bad value")]
    fn negative_rejected() {
        let _ = bars(&[("x".into(), -1.0)], 8);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = bars(&[("x".into(), 1.0)], 0);
    }
}
