//! Canonical experiment scenarios shared by figure binaries, benches, and
//! integration tests.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use vc_mapreduce::VirtualCluster;
use vc_model::workload::{self, RequestProfile};
use vc_model::{ClusterState, Request, VmCatalog};
use vc_topology::{generate, DistanceTiers, NodeId, Topology};

/// Default seed for every figure: fixed so published numbers regenerate.
pub const FIG_SEED: u64 = 2012;

/// The paper's simulated cloud (§V-A): 3 racks × 10 nodes, Table-I VM
/// types, random capacities of up to 3 instances per `(node, type)` cell.
pub fn paper_cloud(seed: u64) -> ClusterState {
    let mut rng = StdRng::seed_from_u64(seed);
    workload::paper_simulation_cloud(3, &mut rng)
}

/// The paper's twenty random requests under the given profile.
pub fn paper_requests(seed: u64, profile: RequestProfile, count: usize) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    profile.sample_many(3, count, &mut rng)
}

/// A virtual cluster of `total` single-slot VMs on the paper topology with
/// a prescribed affinity distance, built from `(on_master, same_rack,
/// cross_rack)` VM counts: `distance = same_rack·d1 + cross_rack·d2`
/// (with the paper's `d1 = 1`, `d2 = 2`).
///
/// # Panics
/// Panics if the counts exceed the topology (10 nodes/rack — same-rack VMs
/// beyond 9 nodes stack on the same nodes, which is allowed).
pub fn cluster_with_spread(
    topo: Arc<Topology>,
    on_master: usize,
    same_rack: usize,
    cross_rack: usize,
) -> VirtualCluster {
    let master = NodeId(0);
    let mut nodes: Vec<NodeId> = Vec::new();
    for _ in 0..on_master {
        nodes.push(master);
    }
    // Same-rack VMs on nodes 1..9, cycling.
    for i in 0..same_rack {
        nodes.push(NodeId(1 + (i % 9) as u32));
    }
    // Cross-rack VMs on racks 1 and 2 (nodes 10..29), cycling.
    for i in 0..cross_rack {
        nodes.push(NodeId(10 + (i % 20) as u32));
    }
    VirtualCluster::homogeneous(&nodes, nodes.len(), topo)
}

/// The four equal-capability virtual clusters of Figs. 7–8, ordered by
/// increasing distance. Each has 12 identical VMs; only the placement
/// differs, giving affinity distances 10, 14, 16, and 20 (the paper's
/// testbed drew 10–22 depending on MyHadoop's random topology).
pub fn fig7_clusters() -> Vec<(&'static str, VirtualCluster)> {
    let topo = Arc::new(generate::paper_simulation());
    vec![
        (
            "compact(d=10)",
            cluster_with_spread(Arc::clone(&topo), 2, 10, 0),
        ),
        (
            "mixed(d=14)",
            cluster_with_spread(Arc::clone(&topo), 2, 6, 4),
        ),
        (
            "loose(d=16)",
            cluster_with_spread(Arc::clone(&topo), 2, 4, 6),
        ),
        ("spread(d=20)", cluster_with_spread(topo, 2, 0, 10)),
    ]
}

/// The Table II example inventory: racks R1–R2, nodes N1–N3, VM counts as
/// printed in the paper.
pub fn table2_state() -> ClusterState {
    let topo = Arc::new(generate::heterogeneous(
        &[2, 1],
        DistanceTiers::paper_experiment(),
    ));
    let catalog = Arc::new(VmCatalog::ec2_table1());
    let capacity = vc_model::ResourceMatrix::from_rows(&[
        vec![2, 3, 0], // N1: 2×V1 + 3×V2 (paper lists per-row entries)
        vec![3, 0, 0], // N2: 3×V1
        vec![0, 2, 0], // N3: 2×V2
    ]);
    ClusterState::new(topo, catalog, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cloud_deterministic() {
        let a = paper_cloud(1);
        let b = paper_cloud(1);
        assert_eq!(a.capacity(), b.capacity());
        assert_eq!(a.num_nodes(), 30);
    }

    #[test]
    fn fig7_distances_ascend_as_labelled() {
        let clusters = fig7_clusters();
        let distances: Vec<u64> = clusters
            .iter()
            .map(|(_, c)| c.affinity_distance())
            .collect();
        assert_eq!(distances, vec![10, 14, 16, 20]);
        // equal capability: same VM count everywhere
        for (_, c) in &clusters {
            assert_eq!(c.len(), 12);
        }
    }

    #[test]
    fn requests_deterministic() {
        let a = paper_requests(5, RequestProfile::standard(), 20);
        let b = paper_requests(5, RequestProfile::standard(), 20);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn table2_shape() {
        let s = table2_state();
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.availability().counts(), &[5, 5, 0]);
    }
}
