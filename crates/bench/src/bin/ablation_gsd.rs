//! Ablation: how close Algorithm 2 gets to the *true* GSD optimum
//! (§III-C), on instances small enough to solve exactly. The paper never
//! measures this — it argues the optimum is impractical and stops at the
//! heuristic; here we quantify the gap it accepted.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use vc_model::workload::RequestProfile;
use vc_model::{ClusterState, VmCatalog};
use vc_placement::global::{self, Admission};
use vc_placement::gsd;
use vc_topology::{generate, DistanceTiers};

fn main() {
    // Asymmetric racks (1 + 2 + 3 nodes), 2 VM types, ONE instance per
    // (node, type) cell: compact placements compete for the big rack, so
    // serving order matters. Batches of 3 requests: 6^3 = 216 centre
    // tuples per instance.
    let mut rows = Vec::new();
    let mut series = Vec::new();
    let (mut sum_opt, mut sum_a2, mut sum_online) = (0u64, 0u64, 0u64);
    let mut exact_hits = 0u32;
    let instances = 40u64;
    for seed in 0..instances {
        let topo = Arc::new(generate::heterogeneous(
            &[1, 2, 3],
            DistanceTiers::paper_experiment(),
        ));
        let mut types = VmCatalog::ec2_table1().types().to_vec();
        types.truncate(2);
        let catalog = Arc::new(VmCatalog::new(types));
        let mut rng = StdRng::seed_from_u64(seed);
        let state = ClusterState::uniform_capacity(topo, catalog, 1);

        let profile = RequestProfile {
            min_per_type: 1,
            max_per_type: 2,
            type_presence_pct: 100,
        };
        let queue = profile.sample_many(2, 3, &mut rng);
        // Only evaluate batches the cloud can admit in full.
        let admitted = global::get_requests(&queue, &state, Admission::FifoBlocking).admitted;
        if admitted.len() != queue.len() {
            continue;
        }
        let Ok(optimum) = gsd::solve(&queue, &state) else {
            continue;
        };
        let heuristic = global::place_queue(&queue, &state, Admission::FifoBlocking)
            .expect("admitted batch placement succeeds");

        sum_opt += optimum.total_distance;
        sum_a2 += heuristic.optimized_distance;
        sum_online += heuristic.online_distance;
        if heuristic.optimized_distance == optimum.total_distance {
            exact_hits += 1;
        }
        series.push((
            seed,
            heuristic.online_distance,
            heuristic.optimized_distance,
            optimum.total_distance,
        ));
        rows.push(vec![
            seed.to_string(),
            heuristic.online_distance.to_string(),
            heuristic.optimized_distance.to_string(),
            optimum.total_distance.to_string(),
        ]);
    }
    vc_bench::table::print(
        "Ablation — Algorithm 2 vs the exact GSD optimum (3-request batches)",
        &["instance", "online Σ", "Algorithm 2 Σ", "GSD optimum Σ"],
        &rows,
    );
    println!(
        "\naggregate: online {sum_online}, Algorithm 2 {sum_a2}, optimum {sum_opt} \
         ({exact_hits}/{} instances solved to optimality)",
        rows.len()
    );
    vc_bench::emit_json(
        "ablation_gsd",
        &serde_json::json!({
            "series": series,
            "online_total": sum_online,
            "algorithm2_total": sum_a2,
            "gsd_total": sum_opt,
            "exact_hits": exact_hits,
            "instances": rows.len(),
        }),
    );
}
