//! Ablation: optimality gap of Algorithm 1 against the exact SD solver
//! (and the ILP cross-check) over many random clouds and requests.
//!
//! DESIGN.md calls out the fixed-centre decomposition as provably optimal;
//! this harness quantifies how far the `O(n²m)` heuristic lands from it.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_bench::scenarios;
use vc_model::workload::RequestProfile;
use vc_placement::distance::distance_with_center;
use vc_placement::{exact, ilp, online};

fn main() {
    let seeds: Vec<u64> = (0..20).collect();
    let mut total_cases = 0u32;
    let mut optimal_cases = 0u32;
    let mut gap_sum = 0.0f64;
    let mut gap_max = 0.0f64;
    let mut ilp_checked = 0u32;

    for &seed in &seeds {
        let state = scenarios::paper_cloud(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let requests = RequestProfile::standard().sample_many(3, 10, &mut rng);
        for request in &requests {
            if !state.can_satisfy(request) {
                continue;
            }
            let h = online::place(request, &state).expect("satisfiable");
            let e = exact::solve(request, &state).expect("satisfiable");
            let topo = state.topology();
            let dh = distance_with_center(h.matrix(), topo, h.center());
            let de = distance_with_center(e.matrix(), topo, e.center());
            assert!(dh >= de, "heuristic beat the exact solver: {dh} < {de}");
            total_cases += 1;
            if dh == de {
                optimal_cases += 1;
            }
            if de > 0 {
                let gap = (dh - de) as f64 / de as f64;
                gap_sum += gap;
                gap_max = gap_max.max(gap);
            }
            // ILP cross-check on a sample (it is the slow path).
            if total_cases.is_multiple_of(25) {
                let i = ilp::solve(request, &state).expect("satisfiable");
                let di = distance_with_center(i.matrix(), topo, i.center());
                assert_eq!(di, de, "ILP disagrees with exact solver");
                ilp_checked += 1;
            }
        }
    }

    let rows = vec![vec![
        total_cases.to_string(),
        format!(
            "{:.1}%",
            100.0 * f64::from(optimal_cases) / f64::from(total_cases)
        ),
        format!("{:.2}%", 100.0 * gap_sum / f64::from(total_cases)),
        format!("{:.2}%", 100.0 * gap_max),
        ilp_checked.to_string(),
    ]];
    vc_bench::table::print(
        "Ablation — Algorithm 1 optimality gap vs exact SD",
        &[
            "cases",
            "optimal",
            "mean gap",
            "max gap",
            "ILP cross-checks",
        ],
        &rows,
    );
    vc_bench::emit_json(
        "ablation_gap",
        &serde_json::json!({
            "cases": total_cases,
            "optimal_fraction": f64::from(optimal_cases) / f64::from(total_cases),
            "mean_gap": gap_sum / f64::from(total_cases),
            "max_gap": gap_max,
        }),
    );
}
