//! Regenerates the **Fig. 1 worked example** (paper §III-A): four
//! candidate allocations for the request `2·V1 + 4·V2 + 1·V3` on a
//! two-rack cloud, with their cluster distances, plus what the exact
//! solver and Algorithm 1 actually pick.

use std::sync::Arc;
use vc_model::{ClusterState, Request, ResourceMatrix, VmCatalog};
use vc_placement::distance::cluster_distance;
use vc_placement::{exact, online};
use vc_topology::{generate, DistanceTiers};

fn main() {
    let tiers = DistanceTiers::paper_experiment();
    let (d1, d2) = (u64::from(tiers.same_rack), u64::from(tiers.cross_rack));
    // Rack 0: N1, N2 — rack 1: N3, N4 (0-indexed: 0,1 | 2,3).
    let topo = Arc::new(generate::heterogeneous(&[2, 2], tiers));
    let request = Request::from_counts(vec![2, 4, 1]);

    // The paper's four example allocations (rows = nodes, cols = V1..V3).
    let candidates: Vec<(&str, ResourceMatrix, String)> = vec![
        (
            "DC1",
            ResourceMatrix::from_rows(&[
                vec![2, 2, 0],
                vec![0, 2, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
            ]),
            format!("2·d1 + d2 = {}", 2 * d1 + d2),
        ),
        (
            "DC2",
            ResourceMatrix::from_rows(&[
                vec![0, 2, 0],
                vec![2, 2, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
            ]),
            format!("2·d1 + d2 = {}", 2 * d1 + d2),
        ),
        (
            "DC3",
            ResourceMatrix::from_rows(&[
                vec![2, 3, 0],
                vec![0, 0, 0],
                vec![0, 1, 1],
                vec![0, 0, 0],
            ]),
            format!("2·d2 = {}", 2 * d2),
        ),
        (
            "DC4",
            ResourceMatrix::from_rows(&[
                vec![2, 2, 0],
                vec![0, 1, 0],
                vec![0, 1, 1],
                vec![0, 0, 0],
            ]),
            format!("d1 + 2·d2 = {}", d1 + 2 * d2),
        ),
    ];

    let mut rows = Vec::new();
    for (name, matrix, formula) in &candidates {
        let (d, center) = cluster_distance(matrix, &topo);
        rows.push(vec![
            name.to_string(),
            formula.clone(),
            d.to_string(),
            center.to_string(),
        ]);
    }
    vc_bench::table::print(
        "Fig. 1 — candidate allocations for R = (2·V1, 4·V2, 1·V3)",
        &["allocation", "formula", "DC", "central node"],
        &rows,
    );

    // What the solvers choose, on a cloud whose capacities admit all four.
    let capacity =
        ResourceMatrix::from_rows(&[vec![2, 4, 0], vec![2, 2, 0], vec![1, 2, 1], vec![1, 1, 0]]);
    let state = ClusterState::new(topo, Arc::new(VmCatalog::ec2_table1()), capacity);
    let best = exact::solve(&request, &state).expect("request satisfiable");
    let heur = online::place(&request, &state).expect("request satisfiable");
    let (bd, _) = cluster_distance(best.matrix(), state.topology());
    let (hd, _) = cluster_distance(heur.matrix(), state.topology());
    println!("\nexact SD(R) = {bd} (centre {})", best.center());
    println!("Algorithm 1  = {hd} (centre {})", heur.center());
    vc_bench::emit_json(
        "fig1",
        &serde_json::json!({
            "candidates": rows,
            "exact_distance": bd,
            "heuristic_distance": hd,
        }),
    );
}
