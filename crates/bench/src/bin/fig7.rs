//! Regenerates **Fig. 7**: WordCount runtime on four equal-capability
//! virtual clusters whose only difference is affinity distance (paper:
//! shorter distance → shorter runtime, with one anomaly explained by a
//! worse data-locality draw — see Fig. 8).

use vc_bench::scenarios;
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{simulate_job, JobConfig};

fn main() {
    let job = JobConfig::paper_wordcount();
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (name, cluster) in scenarios::fig7_clusters() {
        let metrics = simulate_job(&cluster, &job, &SimParams::default());
        series.push((metrics.cluster_distance, metrics.runtime.as_secs_f64()));
        rows.push(vec![
            name.to_string(),
            metrics.cluster_distance.to_string(),
            format!("{:.1}", metrics.runtime.as_secs_f64()),
            format!("{:.1}", metrics.maps_finished_at.as_secs_f64()),
            format!("{:.1}", metrics.shuffle_finished_at.as_secs_f64()),
        ]);
    }
    vc_bench::table::print(
        "Fig. 7 — WordCount runtime vs cluster distance (32 maps, 1 reduce)",
        &[
            "cluster",
            "distance",
            "runtime (s)",
            "maps done (s)",
            "shuffle done (s)",
        ],
        &rows,
    );
    let bars: Vec<(String, f64)> = series
        .iter()
        .map(|&(d, runtime)| (format!("distance {d:>2}"), runtime))
        .collect();
    vc_bench::chart::print("runtime (s)", &bars, 48);
    vc_bench::emit_json("fig7", &serde_json::json!({ "series": series }));
}
