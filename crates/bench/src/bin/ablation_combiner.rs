//! Ablation: the combiner's effect on affinity sensitivity. With the
//! combiner the shuffle is small and runtimes barely depend on cluster
//! distance; without it (or with TeraSort) the shuffle dominates and
//! affinity-aware placement pays off — quantifying the paper's motivation
//! that "network traffic becomes the bottleneck".

use vc_bench::scenarios;
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{simulate_job, JobConfig, Workload};

fn main() {
    let workloads = [
        Workload::wordcount(),
        Workload::wordcount_no_combiner(),
        Workload::terasort(),
        Workload::grep(),
    ];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for w in &workloads {
        let job = JobConfig {
            workload: w.clone(),
            ..JobConfig::paper_wordcount()
        };
        let clusters = scenarios::fig7_clusters();
        let runtimes: Vec<f64> = clusters
            .iter()
            .map(|(_, c)| {
                simulate_job(c, &job, &SimParams::default())
                    .runtime
                    .as_secs_f64()
            })
            .collect();
        let slowdown = runtimes.last().unwrap() / runtimes.first().unwrap();
        series.push((w.name.clone(), runtimes.clone(), slowdown));
        rows.push(vec![
            w.name.clone(),
            format!("{:.1}", runtimes[0]),
            format!("{:.1}", runtimes[1]),
            format!("{:.1}", runtimes[2]),
            format!("{:.1}", runtimes[3]),
            format!("{slowdown:.2}x"),
        ]);
    }
    vc_bench::table::print(
        "Ablation — runtime (s) per workload across the Fig. 7 clusters",
        &["workload", "d=10", "d=14", "d=16", "d=20", "spread/compact"],
        &rows,
    );
    vc_bench::emit_json(
        "ablation_combiner",
        &serde_json::json!({ "series": series }),
    );
}
