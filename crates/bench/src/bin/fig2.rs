//! Regenerates **Fig. 2**: per-request cluster distance with the
//! heuristic's central node vs. the *same* cluster with a randomly chosen
//! central node — showing that centre selection alone matters.
//!
//! Setup follows §V-A: 3 racks × 10 nodes, random instance capacities,
//! twenty random requests served sequentially by Algorithm 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_bench::scenarios::{self, FIG_SEED};
use vc_model::workload::RequestProfile;
use vc_placement::baselines::random_center;
use vc_placement::distance::distance_with_center;
use vc_placement::online;

fn main() {
    let mut state = scenarios::paper_cloud(FIG_SEED);
    let requests = scenarios::paper_requests(FIG_SEED, RequestProfile::standard(), 20);
    let mut rng = StdRng::seed_from_u64(FIG_SEED);

    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut live: Vec<vc_model::Allocation> = Vec::new();
    let (mut total_h, mut total_r) = (0u64, 0u64);
    for (i, request) in requests.iter().enumerate() {
        // "The simulated requests will arrive and their job will finish
        // randomly" (§V-A): each arrival, ~half of the running clusters
        // complete and release their VMs.
        live.retain(|alloc| {
            if rng.gen_bool(0.5) {
                state.release(alloc).expect("release succeeds");
                false
            } else {
                true
            }
        });
        if !state.can_satisfy(request) {
            rows.push(vec![
                i.to_string(),
                request.to_string(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let alloc = online::place(request, &state).expect("satisfiable");
        state.allocate(&alloc).expect("valid allocation");
        live.push(alloc.clone());
        let topo = state.topology();
        let heuristic = distance_with_center(alloc.matrix(), topo, alloc.center());
        let rand_c = random_center(&alloc, &mut rng);
        let random = distance_with_center(alloc.matrix(), topo, rand_c);
        total_h += heuristic;
        total_r += random;
        series.push((i, heuristic, random));
        rows.push(vec![
            i.to_string(),
            request.to_string(),
            heuristic.to_string(),
            random.to_string(),
        ]);
    }
    vc_bench::table::print(
        "Fig. 2 — heuristic centre vs random centre (same clusters)",
        &[
            "request",
            "R",
            "heuristic distance",
            "random-centre distance",
        ],
        &rows,
    );
    println!(
        "\ntotals: heuristic = {total_h}, random-centre = {total_r} ({:.1}% larger)",
        100.0 * (total_r as f64 - total_h as f64) / total_h.max(1) as f64
    );
    vc_bench::emit_json(
        "fig2",
        &serde_json::json!({
            "series": series,
            "total_heuristic": total_h,
            "total_random_center": total_r,
        }),
    );
}
