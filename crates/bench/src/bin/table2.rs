//! Regenerates **Table II**: the example rack/node/VM-type inventory
//! (paper §II) — which node of which rack can provide how many instances
//! of each type.

use vc_bench::scenarios;

fn main() {
    let state = scenarios::table2_state();
    let topo = state.topology();
    let mut rows = Vec::new();
    for node in topo.nodes() {
        for ty in state.catalog().types() {
            let count = state.capacity().get(node.id, ty.id);
            if count > 0 {
                rows.push(vec![
                    format!("R{}", node.rack.0 + 1),
                    format!("N{}", node.id.0 + 1),
                    format!("V{}", ty.id.0 + 1),
                    count.to_string(),
                ]);
            }
        }
    }
    vc_bench::table::print(
        "Table II — example inventory (rack, node, VM type, count)",
        &["Rack", "Node", "VM type", "Number"],
        &rows,
    );
    vc_bench::emit_json("table2", &rows);
}
