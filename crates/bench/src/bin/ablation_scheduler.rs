//! Ablation: what Hadoop's locality-aware slot dispatch buys over a
//! data-blind FIFO scheduler, across the Fig. 7 clusters. The paper's
//! Fig. 8 effects (and the 14-vs-16 anomaly) exist *because* of this
//! mechanism; turning it off shows the counterfactual.

use vc_bench::{attribution, scenarios};
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::scheduler::SchedulerPolicy;
use vc_mapreduce::{simulate_job, JobConfig};

fn main() {
    let job = JobConfig::paper_wordcount();
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (name, cluster) in scenarios::fig7_clusters() {
        let aware_params = SimParams {
            scheduler: SchedulerPolicy::LocalityAware,
            ..SimParams::default()
        };
        let blind_params = SimParams {
            scheduler: SchedulerPolicy::FifoBlind,
            ..SimParams::default()
        };
        let aware = simulate_job(&cluster, &job, &aware_params);
        let blind = simulate_job(&cluster, &job, &blind_params);
        // Critical-path split per scheduler: blind dispatch shifts time
        // from map compute into shuffle/network categories.
        let attr_aware = attribution::job_attribution(&cluster, &job, &aware_params);
        let attr_blind = attribution::job_attribution(&cluster, &job, &blind_params);
        series.push((
            aware.cluster_distance,
            aware.runtime.as_secs_f64(),
            blind.runtime.as_secs_f64(),
            aware.data_local_maps,
            blind.data_local_maps,
        ));
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", aware.runtime.as_secs_f64()),
            format!("{:.1}", blind.runtime.as_secs_f64()),
            format!("{}/{}", aware.data_local_maps, aware.num_maps),
            format!("{}/{}", blind.data_local_maps, blind.num_maps),
            attribution::summary_cell(&attr_aware),
            attribution::summary_cell(&attr_blind),
        ]);
    }
    vc_bench::table::print(
        "Ablation — locality-aware vs data-blind map scheduling (WordCount)",
        &[
            "cluster",
            "aware runtime (s)",
            "blind runtime (s)",
            "aware local maps",
            "blind local maps",
            "aware m/s/r/w",
            "blind m/s/r/w",
        ],
        &rows,
    );
    vc_bench::emit_json(
        "ablation_scheduler",
        &serde_json::json!({ "series": series }),
    );
}
