//! Regenerates **Fig. 6**: online heuristic vs. global sub-optimisation
//! over a queue of twenty requests with a *relatively small* number of
//! VMs (paper: global is ≈ 12 % shorter — small clusters leave more
//! exchange opportunities).

use vc_bench::scenarios::FIG_SEED;
use vc_model::workload::RequestProfile;

fn main() {
    vc_bench::fig56::run("fig6", RequestProfile::small(), FIG_SEED);
}
