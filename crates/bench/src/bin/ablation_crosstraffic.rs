//! Ablation: multi-tenant cross-traffic. Background tenants consume rack
//! uplink bandwidth; at flow level this is equivalent to shrinking the
//! uplink capacity available to the job. The squeeze amplifies the
//! affinity effect: compact clusters barely notice, spread clusters
//! collapse — the paper's core motivation ("bandwidth is limited and the
//! cost is very high") made quantitative.

use vc_bench::scenarios;
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{simulate_job, JobConfig, Workload};
use vc_netsim::NetworkParams;

fn main() {
    let job = JobConfig {
        workload: Workload::terasort(),
        num_reducers: 4,
        ..JobConfig::paper_wordcount()
    };
    let uplinks = [119.0f64, 60.0, 30.0];
    let clusters = scenarios::fig7_clusters();

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &uplink in &uplinks {
        let params = SimParams {
            net: NetworkParams {
                rack_uplink_mbps: uplink,
                ..NetworkParams::default()
            },
            ..SimParams::default()
        };
        let runtimes: Vec<f64> = clusters
            .iter()
            .map(|(_, c)| simulate_job(c, &job, &params).runtime.as_secs_f64())
            .collect();
        let ratio = runtimes.last().unwrap() / runtimes.first().unwrap();
        series.push((uplink, runtimes.clone(), ratio));
        rows.push(vec![
            format!("{uplink:.0} MB/s"),
            format!("{:.1}", runtimes[0]),
            format!("{:.1}", runtimes[1]),
            format!("{:.1}", runtimes[2]),
            format!("{:.1}", runtimes[3]),
            format!("{ratio:.2}x"),
        ]);
    }
    vc_bench::table::print(
        "Ablation — TeraSort runtime (s) vs uplink squeeze (4 reducers)",
        &[
            "free uplink",
            "d=10",
            "d=14",
            "d=16",
            "d=20",
            "spread/compact",
        ],
        &rows,
    );
    vc_bench::emit_json(
        "ablation_crosstraffic",
        &serde_json::json!({ "series": series }),
    );
}
