//! Ablation: multi-tenant cross-traffic. Background tenants consume rack
//! uplink bandwidth; at flow level this is equivalent to shrinking the
//! uplink capacity available to the job. The squeeze amplifies the
//! affinity effect: compact clusters barely notice, spread clusters
//! collapse — the paper's core motivation ("bandwidth is limited and the
//! cost is very high") made quantitative.
//!
//! The second table re-reads the same runs through the link telemetry:
//! exact bytes each cluster pushed through rack uplinks and the peak
//! instantaneous uplink utilization. Runtime collapse lines up with the
//! uplink pressure — the compact cluster keeps both near zero at every
//! squeeze level, which is *why* its runtime column is flat.

use vc_bench::scenarios;
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{simulate_job, JobConfig, Workload};
use vc_netsim::NetworkParams;

fn main() {
    let job = JobConfig {
        workload: Workload::terasort(),
        num_reducers: 4,
        ..JobConfig::paper_wordcount()
    };
    let uplinks = [119.0f64, 60.0, 30.0];
    let clusters = scenarios::fig7_clusters();

    let mut rows = Vec::new();
    let mut net_rows = Vec::new();
    let mut series = Vec::new();
    for &uplink in &uplinks {
        let params = SimParams {
            net: NetworkParams {
                rack_uplink_mbps: uplink,
                ..NetworkParams::default()
            },
            ..SimParams::default()
        };
        let metrics: Vec<_> = clusters
            .iter()
            .map(|(_, c)| simulate_job(c, &job, &params))
            .collect();
        let runtimes: Vec<f64> = metrics.iter().map(|m| m.runtime.as_secs_f64()).collect();
        let cross_mb: Vec<f64> = metrics
            .iter()
            .map(|m| m.rack_uplink_bytes as f64 / 1e6)
            .collect();
        let peak_util: Vec<f64> = metrics
            .iter()
            .map(|m| m.peak_rack_uplink_utilization)
            .collect();
        let ratio = runtimes.last().unwrap() / runtimes.first().unwrap();
        series.push((
            uplink,
            runtimes.clone(),
            ratio,
            cross_mb.clone(),
            peak_util.clone(),
        ));
        rows.push(vec![
            format!("{uplink:.0} MB/s"),
            format!("{:.1}", runtimes[0]),
            format!("{:.1}", runtimes[1]),
            format!("{:.1}", runtimes[2]),
            format!("{:.1}", runtimes[3]),
            format!("{ratio:.2}x"),
        ]);
        let mut net_row = vec![format!("{uplink:.0} MB/s")];
        for i in 0..clusters.len() {
            net_row.push(format!("{:.0} MB @ {:.2}", cross_mb[i], peak_util[i]));
        }
        net_rows.push(net_row);
    }
    vc_bench::table::print(
        "Ablation — TeraSort runtime (s) vs uplink squeeze (4 reducers)",
        &[
            "free uplink",
            "d=10",
            "d=14",
            "d=16",
            "d=20",
            "spread/compact",
        ],
        &rows,
    );
    vc_bench::table::print(
        "Ablation — rack-uplink pressure (cross-rack MB @ peak uplink utilization)",
        &["free uplink", "d=10", "d=14", "d=16", "d=20"],
        &net_rows,
    );
    vc_bench::emit_json(
        "ablation_crosstraffic",
        &serde_json::json!({ "series": series }),
    );
}
