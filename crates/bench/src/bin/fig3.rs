//! Regenerates **Fig. 3**: which central node the heuristic picks for
//! each of the twenty requests — centres vary with request shape and the
//! evolving resource state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_bench::scenarios::{self, FIG_SEED};
use vc_model::workload::RequestProfile;
use vc_placement::distance::distance_with_center;
use vc_placement::online;

fn main() {
    let mut state = scenarios::paper_cloud(FIG_SEED);
    let requests = scenarios::paper_requests(FIG_SEED, RequestProfile::standard(), 20);
    let mut rng = StdRng::seed_from_u64(FIG_SEED);

    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut live: Vec<vc_model::Allocation> = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        // Jobs complete randomly between arrivals (§V-A).
        live.retain(|alloc| {
            if rng.gen_bool(0.5) {
                state.release(alloc).expect("release succeeds");
                false
            } else {
                true
            }
        });
        if !state.can_satisfy(request) {
            rows.push(vec![
                i.to_string(),
                request.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let alloc = online::place(request, &state).expect("satisfiable");
        state.allocate(&alloc).expect("valid allocation");
        live.push(alloc.clone());
        let d = distance_with_center(alloc.matrix(), state.topology(), alloc.center());
        let rack = state.topology().rack_of(alloc.center());
        series.push((i, alloc.center().0, d));
        rows.push(vec![
            i.to_string(),
            request.to_string(),
            alloc.center().to_string(),
            rack.to_string(),
            d.to_string(),
        ]);
    }
    vc_bench::table::print(
        "Fig. 3 — central node chosen per request (shortest-distance constraint)",
        &["request", "R", "central node", "rack", "distance"],
        &rows,
    );
    vc_bench::emit_json("fig3", &serde_json::json!({ "series": series }));
}
