//! Regenerates **Fig. 5**: online heuristic vs. global sub-optimisation
//! over a queue of twenty *standard-size* requests (paper: global is
//! ≈ 2 % shorter in total).

use vc_bench::scenarios::FIG_SEED;
use vc_model::workload::RequestProfile;

fn main() {
    vc_bench::fig56::run("fig5", RequestProfile::standard(), FIG_SEED);
}
