//! The headline end-to-end experiment: close the paper's loop. Tenants
//! request virtual clusters, the provider places them (affinity-aware or
//! not), each tenant runs a real (simulated) shuffle-heavy MapReduce job
//! on exactly the VMs it got, and holds them until the job finishes.
//! Affinity now feeds back into the queue: tight clusters finish sooner,
//! release capacity earlier, and shrink everyone's waiting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_bench::{attribution, scenarios};
use vc_cloudsim::sim::{run_recorded, PolicyMode, ServiceModel, SimConfig};
use vc_cloudsim::{ArrivalProcess, ServiceTime};
use vc_des::SimTime;
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{JobConfig, Workload};
use vc_model::workload::RequestProfile;
use vc_obs::MemRecorder;
use vc_placement::baselines::Spread;
use vc_placement::global::Admission;
use vc_placement::online::{OnlineHeuristic, ScanConfig};

fn main() {
    let state = scenarios::paper_cloud(17);
    let process = ArrivalProcess {
        rate_per_s: 0.2,
        profile: RequestProfile::standard(),
        service: ServiceTime::Fixed(SimTime::from_secs(1)), // superseded by the job model
    };
    let trace = process.generate(20, 3, &mut StdRng::seed_from_u64(17));
    let service = || ServiceModel::MapReduce {
        job: JobConfig {
            workload: Workload::terasort(),
            input_mb: 16.0 * 64.0,
            split_mb: 64.0,
            num_reducers: 2,
            replication: 2,
        },
        params: SimParams::default(),
    };

    let modes: Vec<(&str, PolicyMode)> = vec![
        (
            "Algorithm 1 (online)",
            PolicyMode::Individual(Box::new(OnlineHeuristic)),
        ),
        (
            "Algorithm 2 (global batch)",
            PolicyMode::GlobalBatch(Admission::FifoBlocking, ScanConfig::default()),
        ),
        ("spread baseline", PolicyMode::Individual(Box::new(Spread))),
    ];

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (name, mode) in modes {
        let rec = MemRecorder::new();
        let result = run_recorded(
            &state,
            SimConfig::new(trace.clone(), mode, 17).with_service(service()),
            &rec,
        );
        // Makespan-weighted critical-path split across every tenant job.
        let attr = attribution::aggregate_cell(&attribution::trace_attributions(&rec));
        // Link telemetry across all tenants: exact bytes through rack
        // uplinks (counters sum over jobs) and the worst instantaneous
        // uplink utilization any tenant saw (gauge_max over jobs).
        let snap = rec.metrics();
        let uplink_bytes: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("net.link.rack") && k.ends_with(".up.bytes"))
            .map(|(_, &v)| v)
            .sum();
        let peak_uplink: f64 = snap
            .gauges
            .iter()
            .filter(|(k, _)| k.starts_with("net.link.rack") && k.ends_with(".up.peak_util"))
            .map(|(_, &v)| v)
            .fold(0.0, f64::max);
        let total_job_s: f64 = result
            .outcomes
            .iter()
            .filter_map(|o| o.job_runtime)
            .map(|t| t.as_secs_f64())
            .sum();
        let makespan = result
            .outcomes
            .iter()
            .filter_map(|o| o.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        series.push((
            name,
            result.served,
            result.total_distance,
            total_job_s,
            makespan.as_secs_f64(),
            result.mean_wait.as_secs_f64(),
            attr.clone(),
            (uplink_bytes, peak_uplink),
        ));
        rows.push(vec![
            name.to_string(),
            result.served.to_string(),
            result.total_distance.to_string(),
            format!("{total_job_s:.0}"),
            format!("{:.0}", makespan.as_secs_f64()),
            format!("{:.1}", result.mean_wait.as_secs_f64()),
            attr,
            format!("{:.0}", uplink_bytes as f64 / 1e6),
            format!("{peak_uplink:.2}"),
        ]);
    }
    vc_bench::table::print(
        "End-to-end — 20 tenants each running TeraSort on their placed cluster",
        &[
            "policy",
            "served",
            "Σ distance",
            "Σ job time (s)",
            "makespan (s)",
            "mean wait (s)",
            "crit-path m/s/r/w",
            "x-rack MB",
            "peak uplink",
        ],
        &rows,
    );
    vc_bench::emit_json(
        "ablation_endtoend",
        &serde_json::json!({ "series": series }),
    );
}
