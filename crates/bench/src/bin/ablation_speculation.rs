//! Ablation: speculative execution vs stragglers across cluster
//! distances. Backups re-read input blocks — often remotely — so
//! speculation itself consumes affinity-sensitive bandwidth; compact
//! clusters pay less for their backups.

use vc_bench::{attribution, scenarios};
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{simulate_job, JobConfig};
use vc_obs::Category;

fn main() {
    let job = JobConfig::paper_wordcount();
    let base = SimParams {
        straggler_prob: 0.25,
        straggler_slowdown: 6.0,
        ..SimParams::default()
    };
    let spec = SimParams {
        speculative_execution: true,
        ..base.clone()
    };

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (name, cluster) in scenarios::fig7_clusters() {
        let without = simulate_job(&cluster, &job, &base);
        let with = simulate_job(&cluster, &job, &spec);
        let speedup = without.runtime.as_secs_f64() / with.runtime.as_secs_f64();
        // Critical-path view: how much of the unmitigated makespan is
        // straggler slack, and where the time goes once backups run.
        let attr_base = attribution::job_attribution(&cluster, &job, &base);
        let attr_spec = attribution::job_attribution(&cluster, &job, &spec);
        let slack_pct = attribution::pct(&attr_base, Category::StragglerSlack);
        series.push((
            with.cluster_distance,
            without.runtime.as_secs_f64(),
            with.runtime.as_secs_f64(),
            with.speculative_attempts,
            with.speculative_wins,
            slack_pct,
        ));
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", without.runtime.as_secs_f64()),
            format!("{:.1}", with.runtime.as_secs_f64()),
            format!("{speedup:.2}x"),
            format!("{}/{}", with.speculative_wins, with.speculative_attempts),
            format!("{slack_pct:.0}%"),
            attribution::summary_cell(&attr_spec),
        ]);
    }
    vc_bench::table::print(
        "Ablation — speculative execution under 25% stragglers (6x slowdown)",
        &[
            "cluster",
            "no spec (s)",
            "spec (s)",
            "speedup",
            "backup wins/launched",
            "slack (no spec)",
            "crit-path spec m/s/r/w",
        ],
        &rows,
    );
    vc_bench::emit_json(
        "ablation_speculation",
        &serde_json::json!({ "series": series }),
    );
}
