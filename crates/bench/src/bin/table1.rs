//! Regenerates **Table I**: the Amazon EC2 instance types available to
//! requests (paper §II).

use vc_model::VmCatalog;

fn main() {
    let catalog = VmCatalog::ec2_table1();
    let rows: Vec<Vec<String>> = catalog
        .types()
        .iter()
        .map(|t| {
            vec![
                format!("{} ({})", t.id, t.name),
                format!("{:.2}", f64::from(t.memory_mb) / 1024.0),
                t.compute_units.to_string(),
                t.storage_gb.to_string(),
                format!("{}-bit", t.platform_bits),
            ]
        })
        .collect();
    vc_bench::table::print(
        "Table I — VM instance types (Amazon EC2)",
        &[
            "Instance type",
            "Memory (GB)",
            "CPU (compute unit)",
            "Storage (GB)",
            "Platform",
        ],
        &rows,
    );
    vc_bench::emit_json("table1", &catalog.types());
}
