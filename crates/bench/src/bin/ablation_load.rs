//! Ablation: behaviour under load. Sweeps the arrival rate and compares
//! the affinity-aware policy against the spread baseline on queueing
//! delay and cluster distance — checking the paper's claim that affinity
//! optimisation costs nothing in throughput ("cloud users can get a more
//! efficient platform with the same resource request and cost").

use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_bench::scenarios;
use vc_cloudsim::batch::run_grid;
use vc_cloudsim::sim::{run, PolicyMode, SimConfig};
use vc_cloudsim::{ArrivalProcess, ServiceTime};
use vc_model::workload::RequestProfile;
use vc_placement::baselines::Spread;
use vc_placement::online::OnlineHeuristic;

fn main() {
    let rates = [0.2f64, 0.5, 1.0, 2.0, 4.0];
    let cases: Vec<(f64, bool)> = rates
        .iter()
        .flat_map(|&r| [(r, true), (r, false)])
        .collect();

    let results = run_grid(cases.clone(), |(rate, affinity_aware)| {
        let state = scenarios::paper_cloud(11);
        let process = ArrivalProcess {
            rate_per_s: rate,
            profile: RequestProfile::standard(),
            service: ServiceTime::UniformMs(20_000, 60_000),
        };
        let trace = process.generate(100, 3, &mut StdRng::seed_from_u64(11));
        let mode: PolicyMode = if affinity_aware {
            PolicyMode::Individual(Box::new(OnlineHeuristic))
        } else {
            PolicyMode::Individual(Box::new(Spread))
        };
        run(&state, SimConfig::new(trace, mode, 11))
    });

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for ((rate, aware), result) in cases.iter().zip(&results) {
        let mean_d = result.total_distance as f64 / result.served.max(1) as f64;
        series.push((
            rate,
            aware,
            result.served,
            result.mean_wait.as_secs_f64(),
            mean_d,
        ));
        rows.push(vec![
            format!("{rate}"),
            if *aware {
                "online".into()
            } else {
                "spread".into()
            },
            result.served.to_string(),
            format!("{:.1}", result.mean_wait.as_secs_f64()),
            format!("{mean_d:.1}"),
        ]);
    }
    vc_bench::table::print(
        "Ablation — load sweep (100 requests, 20-60s holds)",
        &[
            "arrivals/s",
            "policy",
            "served",
            "mean wait (s)",
            "mean distance",
        ],
        &rows,
    );
    vc_bench::emit_json("ablation_load", &serde_json::json!({ "series": series }));
}
