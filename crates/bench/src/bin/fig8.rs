//! Regenerates **Fig. 8**: data- and shuffle-locality on the same four
//! virtual clusters as Fig. 7 — non-data-local map tasks and the
//! non-local shuffle fraction explain the runtime anomaly.

use vc_bench::scenarios;
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{simulate_job, JobConfig};

fn main() {
    let job = JobConfig::paper_wordcount();
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (name, cluster) in scenarios::fig7_clusters() {
        let m = simulate_job(&cluster, &job, &SimParams::default());
        series.push((
            m.cluster_distance,
            m.non_data_local_maps(),
            m.non_local_shuffle_fraction(),
            m.cross_rack_shuffle_fraction(),
        ));
        rows.push(vec![
            name.to_string(),
            m.cluster_distance.to_string(),
            m.data_local_maps.to_string(),
            m.rack_local_maps.to_string(),
            m.remote_maps.to_string(),
            format!("{:.1}%", 100.0 * m.non_local_shuffle_fraction()),
            format!("{:.1}%", 100.0 * m.cross_rack_shuffle_fraction()),
        ]);
    }
    vc_bench::table::print(
        "Fig. 8 — data & shuffle locality vs cluster distance (32 maps, 1 reduce)",
        &[
            "cluster",
            "distance",
            "node-local maps",
            "rack-local maps",
            "remote maps",
            "off-node shuffle",
            "cross-rack shuffle",
        ],
        &rows,
    );
    let bars: Vec<(String, f64)> = series
        .iter()
        .map(|&(d, non_local, _, _)| (format!("distance {d:>2}"), f64::from(non_local)))
        .collect();
    vc_bench::chart::print("non-data-local map tasks", &bars, 48);
    vc_bench::emit_json("fig8", &serde_json::json!({ "series": series }));
}
