//! Regenerates **Fig. 4**: the distance of one fixed allocation as a
//! function of which node is designated the centre — the master-placement
//! sensitivity of master/slave MapReduce topologies.

use vc_bench::scenarios::{self, FIG_SEED};
use vc_model::workload::RequestProfile;
use vc_placement::distance::{cluster_distance, distance_profile};
use vc_placement::online;

fn main() {
    let state = scenarios::paper_cloud(FIG_SEED);
    // One mid-sized request; its allocation is then evaluated at every centre.
    let request = scenarios::paper_requests(FIG_SEED, RequestProfile::standard(), 8)
        .into_iter()
        .max_by_key(vc_model::Request::total_vms)
        .expect("non-empty batch");
    let alloc = online::place(&request, &state).expect("satisfiable");
    let profile = distance_profile(alloc.matrix(), state.topology());
    let (best_d, best_k) = cluster_distance(alloc.matrix(), state.topology());

    let rows: Vec<Vec<String>> = profile
        .iter()
        .enumerate()
        .map(|(k, &d)| {
            let hosts = alloc.matrix().node_total(vc_topology::NodeId(k as u32));
            vec![
                format!("N{k}"),
                d.to_string(),
                hosts.to_string(),
                if vc_topology::NodeId(k as u32) == best_k {
                    "<- optimal".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    vc_bench::table::print(
        &format!("Fig. 4 — distance vs centre choice for R = {request}"),
        &["centre", "distance", "VMs hosted", ""],
        &rows,
    );
    println!(
        "\noptimal centre {best_k} gives distance {best_d}; worst centre gives {}",
        profile.iter().max().unwrap()
    );
    vc_bench::emit_json(
        "fig4",
        &serde_json::json!({ "profile": profile, "optimal_center": best_k.0, "optimal_distance": best_d }),
    );
}
