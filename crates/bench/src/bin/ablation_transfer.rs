//! Ablation: how much the Theorem-2 exchange pass (Algorithm 2, step 3)
//! buys as a function of request size — explaining why the paper sees 2 %
//! on standard requests (Fig. 5) but 12 % on small ones (Fig. 6).

use vc_bench::scenarios;
use vc_model::workload::RequestProfile;
use vc_placement::global::{self, Admission};

fn main() {
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for max_per_type in 1..=6u32 {
        let profile = RequestProfile {
            min_per_type: 1,
            max_per_type,
            type_presence_pct: 70,
        };
        let (mut online_sum, mut global_sum) = (0u64, 0u64);
        for seed in 0..10u64 {
            let state = scenarios::paper_cloud(seed);
            let queue = scenarios::paper_requests(seed, profile, 20);
            let placed = global::place_queue(&queue, &state, Admission::FifoBlocking)
                .expect("admitted batch placement cannot fail");
            online_sum += placed.online_distance;
            global_sum += placed.optimized_distance;
        }
        let pct = 100.0 * (online_sum.saturating_sub(global_sum)) as f64 / online_sum.max(1) as f64;
        series.push((max_per_type, online_sum, global_sum, pct));
        rows.push(vec![
            format!("1..={max_per_type}"),
            online_sum.to_string(),
            global_sum.to_string(),
            format!("{pct:.1}%"),
        ]);
    }
    vc_bench::table::print(
        "Ablation — Theorem-2 exchange benefit vs request size (10 seeds each)",
        &["VMs per type", "Σ online", "Σ global", "decrease"],
        &rows,
    );
    vc_bench::emit_json(
        "ablation_transfer",
        &serde_json::json!({ "series": series }),
    );
}
