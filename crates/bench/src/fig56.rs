//! Shared implementation of Figs. 5 and 6: online heuristic vs. global
//! sub-optimisation over a twenty-request queue. The figures differ only
//! in the request-size profile (standard vs. "relatively small").

use crate::scenarios;
use vc_model::workload::RequestProfile;
use vc_placement::global::{self, Admission};

/// Run the comparison, print the figure table, and emit the JSON trailer.
/// Returns `(online_total, global_total)`.
pub fn run(label: &str, profile: RequestProfile, seed: u64) -> (u64, u64) {
    let state = scenarios::paper_cloud(seed);
    let queue = scenarios::paper_requests(seed, profile, 20);

    let placed = global::place_queue(&queue, &state, Admission::FifoBlocking)
        .expect("admitted batch placement cannot fail");

    let mut rows = Vec::new();
    let mut series = Vec::new();
    let topo = state.topology();
    for ((idx, alloc), &online_d) in placed.served.iter().zip(&placed.served_online_distances) {
        let optimized_d =
            vc_placement::distance::distance_with_center(alloc.matrix(), topo, alloc.center());
        series.push((idx, online_d, optimized_d));
        rows.push(vec![
            idx.to_string(),
            queue[*idx].to_string(),
            online_d.to_string(),
            optimized_d.to_string(),
        ]);
    }
    crate::table::print(
        &format!(
            "{label} — online heuristic vs global sub-optimisation (served {} of {})",
            placed.served.len(),
            queue.len()
        ),
        &["request", "R", "online distance", "global distance"],
        &rows,
    );
    let decrease = placed
        .online_distance
        .saturating_sub(placed.optimized_distance);
    let pct = 100.0 * decrease as f64 / placed.online_distance.max(1) as f64;
    println!(
        "\ntotals: online = {}, global = {} (decrease {:.1}%)",
        placed.online_distance, placed.optimized_distance, pct
    );
    crate::emit_json(
        label,
        &serde_json::json!({
            "series": series,
            "online_total": placed.online_distance,
            "global_total": placed.optimized_distance,
            "decrease_pct": pct,
            "served": placed.served.len(),
            "deferred": placed.deferred.len(),
        }),
    );
    (placed.online_distance, placed.optimized_distance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::FIG_SEED;

    #[test]
    fn global_never_worse_in_both_scenarios() {
        let (on, gl) = run("fig5-test", RequestProfile::standard(), FIG_SEED);
        assert!(gl <= on);
        let (on, gl) = run("fig6-test", RequestProfile::small(), FIG_SEED);
        assert!(gl <= on);
    }
}
