//! Experiment harness: shared scenario builders and output formatting for
//! the per-table/per-figure binaries (`table1`, `table2`, `fig1` … `fig8`,
//! `ablation_*`) and the Criterion benches.
//!
//! Every binary prints a human-readable table followed by a single
//! `RESULT-JSON:` line with the same data machine-readably, so
//! `EXPERIMENTS.md` numbers can be regenerated and diffed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod chart;
pub mod fig56;
pub mod scenarios;
pub mod table;

use serde::Serialize;

/// Print a line to stdout, tolerating a closed pipe (`fig7 | head` must
/// not panic).
pub(crate) fn print_line(line: &str) {
    use std::io::Write;
    let _ = writeln!(std::io::stdout(), "{line}");
}

/// Print the machine-readable result trailer.
///
/// # Panics
/// Panics if `value` cannot be serialised (plain data types never fail).
pub fn emit_json<T: Serialize>(label: &str, value: &T) {
    let json = serde_json::to_string(value).expect("result serialisation cannot fail");
    print_line(&format!("RESULT-JSON {label}: {json}"));
}

#[cfg(test)]
mod tests {
    #[test]
    fn emit_json_smoke() {
        super::emit_json("test", &serde_json::json!({"a": 1}));
    }
}
