//! Minimal fixed-width text-table printer for experiment output.

/// Render a table: header row, separator, data rows; columns padded to the
/// widest cell. Returns the string (callers print it).
///
/// # Panics
/// Panics if any row's length differs from the header's.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width must match header");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}", w = w))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Print a titled table to stdout (broken-pipe tolerant).
pub fn print(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    crate::print_line(&format!("\n== {title} =="));
    for line in render(headers, rows).lines() {
        crate::print_line(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let s = render(
            &["id", "name"],
            &[
                vec!["1".into(), "alpha".into()],
                vec!["22".into(), "b".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("id"));
        assert!(lines[2].starts_with("| 1 "));
        // all lines same width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let _ = render(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
