//! Network capacity and latency parameters.

use serde::{Deserialize, Serialize};

/// Capacities (MB/s) and latencies (µs) of the modelled network.
///
/// Defaults approximate the 2012-era gigabit clusters of the paper's
/// testbed: 1 Gbps NICs (≈ 119 MB/s), a single-gigabit rack uplink shared by the
/// whole rack (10:1 oversubscription at 10 nodes), per-flow TCP ceilings
/// that shrink with distance, and memory-speed intra-node copies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// Same-node VM-to-VM copy rate, MB/s (unshared).
    pub intra_node_mbps: f64,
    /// Per-node NIC rate, MB/s (each of TX and RX).
    pub nic_mbps: f64,
    /// Per-rack uplink rate, MB/s (each of up and down).
    pub rack_uplink_mbps: f64,
    /// Per-cloud WAN rate, MB/s (each direction).
    pub cloud_uplink_mbps: f64,
    /// Per-flow throughput ceiling for intra-rack transfers, MB/s.
    ///
    /// Models the TCP window/RTT product: a single 2012-era connection
    /// rarely fills more than its NIC inside a rack.
    pub same_rack_flow_mbps: f64,
    /// Per-flow throughput ceiling for cross-rack transfers, MB/s.
    ///
    /// Higher RTT through the aggregation switch caps a single
    /// connection well below the NIC — this is the mechanism that makes
    /// cluster *distance* (the paper's affinity metric) matter even when
    /// shared links are not saturated.
    pub cross_rack_flow_mbps: f64,
    /// Per-flow throughput ceiling for cross-cloud transfers, MB/s.
    pub cross_cloud_flow_mbps: f64,
    /// One-way latency between nodes in the same rack, µs.
    pub same_rack_latency_us: u64,
    /// One-way latency between racks, µs.
    pub cross_rack_latency_us: u64,
    /// One-way latency between clouds, µs.
    pub cross_cloud_latency_us: u64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        Self {
            intra_node_mbps: 4_000.0,
            nic_mbps: 119.0,
            rack_uplink_mbps: 119.0,
            cloud_uplink_mbps: 119.0,
            same_rack_flow_mbps: 119.0,
            cross_rack_flow_mbps: 40.0,
            cross_cloud_flow_mbps: 10.0,
            same_rack_latency_us: 100,
            cross_rack_latency_us: 300,
            cross_cloud_latency_us: 10_000,
        }
    }
}

impl NetworkParams {
    /// A fast, uncontended network for unit tests (1 GB/s everywhere,
    /// zero latency).
    pub fn uncontended() -> Self {
        Self {
            intra_node_mbps: 1_000.0,
            nic_mbps: 1_000.0,
            rack_uplink_mbps: 1_000_000.0,
            cloud_uplink_mbps: 1_000_000.0,
            same_rack_flow_mbps: 1_000_000.0,
            cross_rack_flow_mbps: 1_000_000.0,
            cross_cloud_flow_mbps: 1_000_000.0,
            same_rack_latency_us: 0,
            cross_rack_latency_us: 0,
            cross_cloud_latency_us: 0,
        }
    }

    /// Validate the rate parameters.
    ///
    /// Shared link capacities (`nic_mbps`, `rack_uplink_mbps`,
    /// `cloud_uplink_mbps`) may be **zero** — a zero-capacity link models
    /// a failed or partitioned link (ROADMAP item 3): flows routed over
    /// it get rate 0 and *starve* (see `FlowNet::starved_flows`) rather
    /// than being rejected at construction. Per-flow ceilings must stay
    /// strictly positive: they describe what one connection can do at a
    /// distance tier, not link health, and a zero ceiling would starve
    /// every flow of that tier with no link to blame it on.
    ///
    /// # Panics
    /// Panics on non-finite or negative capacities, and on non-positive
    /// or non-finite per-flow ceilings.
    pub fn validate(&self) {
        for (name, v) in [
            ("nic_mbps", self.nic_mbps),
            ("rack_uplink_mbps", self.rack_uplink_mbps),
            ("cloud_uplink_mbps", self.cloud_uplink_mbps),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be finite and non-negative, got {v}"
            );
        }
        for (name, v) in [
            ("intra_node_mbps", self.intra_node_mbps),
            ("same_rack_flow_mbps", self.same_rack_flow_mbps),
            ("cross_rack_flow_mbps", self.cross_rack_flow_mbps),
            ("cross_cloud_flow_mbps", self.cross_cloud_flow_mbps),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "{name} must be positive and finite, got {v}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_oversubscribed() {
        let p = NetworkParams::default();
        p.validate();
        // 10 nodes × NIC > uplink: rack uplink is the shared bottleneck.
        assert!(10.0 * p.nic_mbps > p.rack_uplink_mbps);
    }

    #[test]
    #[should_panic(expected = "cross_rack_flow_mbps must be positive")]
    fn zero_flow_ceiling_rejected() {
        let p = NetworkParams {
            cross_rack_flow_mbps: 0.0,
            ..NetworkParams::default()
        };
        p.validate();
    }

    #[test]
    fn zero_link_capacity_models_failure() {
        // A dead uplink is a legal topology state (failed link) — flows
        // over it starve instead of the params being rejected.
        let p = NetworkParams {
            rack_uplink_mbps: 0.0,
            ..NetworkParams::default()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "nic_mbps must be finite and non-negative")]
    fn negative_link_capacity_rejected() {
        let p = NetworkParams {
            nic_mbps: -1.0,
            ..NetworkParams::default()
        };
        p.validate();
    }

    #[test]
    fn uncontended_is_valid() {
        NetworkParams::uncontended().validate();
    }
}
