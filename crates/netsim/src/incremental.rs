//! Incremental max-min fair-share solver.
//!
//! [`max_min_fair_share_detailed`](crate::max_min_fair_share_detailed)
//! re-solves the whole flow set from scratch on every call; at cloud
//! scale the shuffle simulator spends its time there (and in the
//! allocation churn around it), not in the simulated network. This
//! module keeps the solve *state* alive between flow events:
//!
//! * per-link flow sets (`link_flows`) maintained on every start and
//!   completion, so membership changes are O(path);
//! * a **component-restricted re-solve**: a flow start or a batch of
//!   completions only re-runs progressive filling over the connected
//!   component of the flow↔link bipartite graph whose membership
//!   changed — flows in untouched components provably keep their exact
//!   rates (max-min fair share decomposes over components);
//! * per-flow rate ceilings handled natively inside the filling loop
//!   (no synthetic one-flow resource materialized per flow per solve),
//!   with the same tie-breaking as the synthetic-resource formulation;
//! * all scratch buffers reused across solves — a solve allocates
//!   nothing on the steady-state path.
//!
//! Flow state lives in a slab (`Vec<SolvedFlow>` addressed by `u32`
//! slot); the key→slot `BTreeMap` is consulted only on the cold paths
//! (insert, remove, point queries). Expansion, freezing, and
//! observation — the per-event hot loops — address flows by slot, so
//! they do array indexing instead of tree walks. The sorted ceiling
//! list is likewise maintained persistently across operations instead
//! of being rebuilt and re-sorted per solve.
//!
//! # Bit-identical by construction
//!
//! The component solve replays exactly the arithmetic the batch solver
//! would perform for that component, in the same order:
//!
//! * resources are scanned in ascending index order and the bottleneck
//!   is chosen by strict `<`, so ties pick the lowest-index link, and a
//!   physical link beats an equal per-flow ceiling (ceilings order after
//!   all physical resources, by flow key, exactly like the appended
//!   synthetic resources in the batch formulation);
//! * a freezing round freezes the bottleneck link's unfrozen flows in
//!   ascending flow-key order and deducts the share from each flow's
//!   path in path order — the same f64 operation sequence per residual
//!   as the batch solver;
//! * residuals are rebuilt from link capacities at every solve (never
//!   carried across solves), so no fp drift can accumulate.
//!
//! Within the batch solve, rounds belonging to different components
//! interleave by ascending share, but a round only reads and writes
//! state of its own component, so the component-restricted subsequence
//! is the solo-component solve. The equality proptests in this module
//! and `tests/batch_equiv.rs` assert bit-identical rates and bindings
//! against the batch solver on random instances and interleavings.

use crate::link::Bottleneck;
use std::collections::BTreeMap;

/// Effort of one incremental re-solve — the working set actually
/// touched, feeding [`SolverStats`](crate::SolverStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveReport {
    /// Flows in the re-solved connected component.
    pub flows_solved: u64,
    /// Links in the re-solved component (each carries ≥ 1 flow).
    pub links_solved: u64,
    /// Progressive-filling rounds the component solve ran.
    pub iterations: u64,
}

#[derive(Debug)]
struct SolvedFlow {
    key: u64,
    path: Vec<usize>,
    cap: f64,
    rate: f64,
    binding: Bottleneck,
    /// Epoch marker: flow is in the current component.
    visited: u64,
    /// Epoch marker: flow froze during the current solve.
    frozen: u64,
}

/// Max-min fair-share state that survives across flow starts and
/// completions, re-solving only the affected connected component.
///
/// Keys are caller-chosen `u64`s; all ordering-sensitive steps (freeze
/// order inside a round, ceiling tie-breaks) use ascending key order,
/// matching a batch solver that iterates flows in ascending key order.
///
/// ```
/// use vc_netsim::{Bottleneck, IncrementalFairShare};
/// let mut s = IncrementalFairShare::new(vec![10.0, 30.0]);
/// s.insert(0, &[0], f64::INFINITY);
/// s.insert(1, &[0, 1], f64::INFINITY);
/// s.insert(2, &[1], f64::INFINITY);
/// assert_eq!(s.rate(1), Some(5.0)); // classic 3-flow example
/// assert_eq!(s.rate(2), Some(25.0));
/// assert_eq!(s.binding(2), Some(Bottleneck::Link(1)));
/// s.remove_batch(&[1]);
/// assert_eq!(s.rate(0), Some(10.0)); // component re-solved
/// assert_eq!(s.rate(2), Some(30.0));
/// ```
#[derive(Debug)]
pub struct IncrementalFairShare {
    capacities: Vec<f64>,
    /// key → slab slot. Cold-path lookup only; the hot loops address
    /// flows by slot.
    index: BTreeMap<u64, u32>,
    slab: Vec<SolvedFlow>,
    free_slots: Vec<u32>,
    /// Per resource: `(key, slot)` of active flows through it,
    /// ascending by key.
    link_flows: Vec<Vec<(u64, u32)>>,
    /// Number of resources currently carrying ≥ 1 flow.
    active_links: u64,
    epoch: u64,
    // ---- last-solve outputs ----
    /// Slots of the last component, ascending by key after the solve.
    comp_flows: Vec<u32>,
    comp_links: Vec<usize>,
    touched_links: Vec<usize>,
    // ---- scratch, reused across solves ----
    in_comp_link: Vec<bool>,
    in_touched: Vec<bool>,
    users: Vec<u32>,
    residual: Vec<f64>,
    /// Every active finite-ceiling flow as `(cap bits, key, slot)`,
    /// ascending — positive-finite f64 bit order is numeric order, so
    /// this is (cap, key) order. Maintained persistently on
    /// insert/remove; a solve walks it with a cursor, skipping entries
    /// outside the current component.
    capped: Vec<(u64, u64, u32)>,
}

impl IncrementalFairShare {
    /// A solver over `capacities` physical resources (MB/s each).
    ///
    /// # Panics
    /// Panics if a capacity is negative, NaN, or infinite.
    pub fn new(capacities: Vec<f64>) -> Self {
        for &c in &capacities {
            assert!(c.is_finite() && c >= 0.0, "invalid capacity {c}");
        }
        let nr = capacities.len();
        Self {
            index: BTreeMap::new(),
            slab: Vec::new(),
            free_slots: Vec::new(),
            link_flows: vec![Vec::new(); nr],
            active_links: 0,
            epoch: 0,
            comp_flows: Vec::new(),
            comp_links: Vec::new(),
            touched_links: Vec::new(),
            in_comp_link: vec![false; nr],
            in_touched: vec![false; nr],
            users: vec![0; nr],
            residual: vec![0.0; nr],
            capped: Vec::new(),
            capacities,
        }
    }

    /// Number of physical resources.
    pub fn num_resources(&self) -> usize {
        self.capacities.len()
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.index.len()
    }

    /// Number of resources currently carrying at least one flow.
    pub fn active_links(&self) -> u64 {
        self.active_links
    }

    /// Current rate of flow `key`, or `None` if unknown.
    pub fn rate(&self, key: u64) -> Option<f64> {
        self.index.get(&key).map(|&s| self.slab[s as usize].rate)
    }

    /// Current binding attribution of flow `key`, or `None` if unknown.
    pub fn binding(&self, key: u64) -> Option<Bottleneck> {
        self.index.get(&key).map(|&s| self.slab[s as usize].binding)
    }

    /// The flows whose rates the last solve recomputed, with their new
    /// rate and binding, in ascending key order — callers can apply the
    /// updates with a single sorted merge over their own flow table.
    pub fn changed(&self) -> impl Iterator<Item = (u64, f64, Bottleneck)> + '_ {
        self.comp_flows.iter().map(|&s| {
            let f = &self.slab[s as usize];
            (f.key, f.rate, f.binding)
        })
    }

    /// Links whose state (flow set or member rates) the last operation
    /// may have changed: the re-solved component's links plus the links
    /// of removed flows. Ascending; deduplicated.
    pub fn touched_links(&self) -> &[usize] {
        &self.touched_links
    }

    /// Active flow keys through resource `r`, ascending.
    pub fn link_active_flows(&self, r: usize) -> impl Iterator<Item = u64> + '_ {
        self.link_flows[r].iter().map(|&(k, _)| k)
    }

    /// Fold resource `r`'s current state: (Σ member rates in key order,
    /// member count, does `r` bind at least one member's rate).
    pub fn observe_link(&self, r: usize) -> (f64, u32, bool) {
        let mut rate_sum = 0.0;
        let mut binding = false;
        for &(_, slot) in &self.link_flows[r] {
            let f = &self.slab[slot as usize];
            rate_sum += f.rate;
            binding |= f.binding == Bottleneck::Link(r);
        }
        (rate_sum, self.link_flows[r].len() as u32, binding)
    }

    /// Add flow `key` over `path` with per-flow ceiling `rate_cap`
    /// (`f64::INFINITY` for none) and re-solve its component.
    ///
    /// # Panics
    /// Panics if `key` is already active, a path entry is out of range
    /// or duplicated (the batch solver weights duplicates by
    /// multiplicity; this solver rejects them instead), or `rate_cap`
    /// is NaN/non-positive.
    pub fn insert(&mut self, key: u64, path: &[usize], rate_cap: f64) -> SolveReport {
        assert!(
            !rate_cap.is_nan() && rate_cap > 0.0,
            "invalid rate cap {rate_cap}"
        );
        for (i, &r) in path.iter().enumerate() {
            assert!(r < self.capacities.len(), "resource index {r} out of range");
            assert!(!path[..i].contains(&r), "duplicate resource {r} in path");
        }
        self.begin_op();
        let flow = SolvedFlow {
            key,
            path: path.to_vec(),
            cap: rate_cap,
            rate: 0.0,
            binding: Bottleneck::Unconstrained,
            visited: self.epoch,
            frozen: 0,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slab[s as usize] = flow;
                s
            }
            None => {
                self.slab.push(flow);
                (self.slab.len() - 1) as u32
            }
        };
        let inserted = self.index.insert(key, slot).is_none();
        assert!(inserted, "flow key {key} already active");
        self.comp_flows.push(slot);
        if rate_cap.is_finite() {
            let entry = (rate_cap.to_bits(), key, slot);
            let pos = self.capped.binary_search(&entry).unwrap_err();
            self.capped.insert(pos, entry);
        }
        for &r in path {
            let lf = &mut self.link_flows[r];
            if lf.is_empty() {
                self.active_links += 1;
            }
            let pos = lf.binary_search_by_key(&key, |e| e.0).unwrap_err();
            lf.insert(pos, (key, slot));
            if !self.in_comp_link[r] {
                self.in_comp_link[r] = true;
                self.comp_links.push(r);
            }
        }
        self.expand_component();
        self.solve_component()
    }

    /// Remove every flow in `keys` (one batch, one re-solve of the
    /// union of their components among the remaining flows).
    ///
    /// # Panics
    /// Panics if any key is not an active flow.
    pub fn remove_batch(&mut self, keys: &[u64]) -> SolveReport {
        self.begin_op();
        for &key in keys {
            let slot = self.index.remove(&key).expect("removing unknown flow key");
            let f = &mut self.slab[slot as usize];
            let cap = f.cap;
            let path = std::mem::take(&mut f.path);
            if cap.is_finite() {
                let pos = self
                    .capped
                    .binary_search(&(cap.to_bits(), key, slot))
                    .expect("capped entry missing");
                self.capped.remove(pos);
            }
            for &r in &path {
                let lf = &mut self.link_flows[r];
                let pos = lf
                    .binary_search_by_key(&key, |e| e.0)
                    .expect("flow missing from link set");
                lf.remove(pos);
                if lf.is_empty() {
                    self.active_links -= 1;
                }
                if !self.in_touched[r] {
                    self.in_touched[r] = true;
                    self.touched_links.push(r);
                }
            }
            self.free_slots.push(slot);
        }
        // Seed the component from the removed flows' links that still
        // carry flows; links emptied by the removal only need observing.
        for i in 0..self.touched_links.len() {
            let r = self.touched_links[i];
            if !self.link_flows[r].is_empty() && !self.in_comp_link[r] {
                self.in_comp_link[r] = true;
                self.comp_links.push(r);
            }
        }
        self.expand_component();
        self.solve_component()
    }

    /// Clear the previous operation's component/touched marks.
    fn begin_op(&mut self) {
        self.epoch += 1;
        for &r in &self.comp_links {
            self.in_comp_link[r] = false;
        }
        for &r in &self.touched_links {
            self.in_touched[r] = false;
        }
        self.comp_flows.clear();
        self.comp_links.clear();
        self.touched_links.clear();
    }

    /// Grow `comp_links`/`comp_flows` to the full connected component:
    /// every flow of a component link is in the component, and every
    /// link of a component flow is a component link.
    fn expand_component(&mut self) {
        let mut i = 0;
        while i < self.comp_links.len() {
            let r = self.comp_links[i];
            i += 1;
            for idx in 0..self.link_flows[r].len() {
                let (_, slot) = self.link_flows[r][idx];
                let flow = &mut self.slab[slot as usize];
                if flow.visited == self.epoch {
                    continue;
                }
                flow.visited = self.epoch;
                self.comp_flows.push(slot);
                for &l in &flow.path {
                    if !self.in_comp_link[l] {
                        self.in_comp_link[l] = true;
                        self.comp_links.push(l);
                    }
                }
            }
        }
    }

    /// Progressive filling restricted to the current component,
    /// replaying the batch solver's arithmetic exactly (see module
    /// docs for the ordering invariants).
    fn solve_component(&mut self) -> SolveReport {
        // Ascending link order reproduces the batch solver's
        // lowest-index tie-break on bottleneck selection.
        self.comp_links.sort_unstable();
        for &r in &self.comp_links {
            self.users[r] = self.link_flows[r].len() as u32;
            self.residual[r] = self.capacities[r];
        }
        // Ceiling candidates in (cap, key) order: the batch solver
        // appends one synthetic resource per capped flow in key order,
        // so equal ceilings break ties towards the smaller key, and a
        // physical link beats an equal ceiling (scanned first). The
        // cursor walks the persistent global list, skipping flows
        // outside this component without consuming them — `cap_idx` is
        // solve-local, so other components are unaffected.
        let mut cap_idx = 0usize;
        let mut iterations = 0u64;
        loop {
            // Bottleneck among component links with unfrozen flows.
            let mut best: Option<(usize, f64)> = None;
            for &r in &self.comp_links {
                if self.users[r] > 0 {
                    let share = self.residual[r].max(0.0) / f64::from(self.users[r]);
                    if best.is_none_or(|(_, s)| share < s) {
                        best = Some((r, share));
                    }
                }
            }
            // Smallest unfrozen per-flow ceiling in this component.
            while cap_idx < self.capped.len() && {
                let f = &self.slab[self.capped[cap_idx].2 as usize];
                f.visited != self.epoch || f.frozen == self.epoch
            } {
                cap_idx += 1;
            }
            let cap_next = self.capped.get(cap_idx).copied();
            match (best, cap_next) {
                (None, None) => break,
                (Some((r, share)), cap) => {
                    // A ceiling wins only strictly, like a synthetic
                    // resource scanned after all physical ones.
                    if let Some((cap_bits, _, slot)) = cap {
                        if f64::from_bits(cap_bits) < share {
                            iterations += 1;
                            self.freeze_at_cap(slot);
                            cap_idx += 1;
                            continue;
                        }
                    }
                    iterations += 1;
                    self.freeze_link(r, share);
                }
                (None, Some((_, _, slot))) => {
                    iterations += 1;
                    self.freeze_at_cap(slot);
                    cap_idx += 1;
                }
            }
        }
        // Flows with no resources and no finite ceiling never freeze.
        for i in 0..self.comp_flows.len() {
            let slot = self.comp_flows[i];
            let flow = &mut self.slab[slot as usize];
            if flow.frozen != self.epoch {
                flow.rate = f64::INFINITY;
                flow.binding = Bottleneck::Unconstrained;
            }
        }
        // Touched ⊇ component (plus removed flows' links, added in
        // remove_batch); ascending for deterministic observation order.
        for &r in &self.comp_links {
            if !self.in_touched[r] {
                self.in_touched[r] = true;
                self.touched_links.push(r);
            }
        }
        self.touched_links.sort_unstable();
        let report = SolveReport {
            flows_solved: self.comp_flows.len() as u64,
            links_solved: self.comp_links.len() as u64,
            iterations,
        };
        // Put `changed()` in ascending key order (discovery order until
        // here) for the callers' sorted-merge update.
        let Self {
            comp_flows, slab, ..
        } = &mut *self;
        comp_flows.sort_unstable_by_key(|&s| slab[s as usize].key);
        report
    }

    /// Freeze every unfrozen flow through `r` at `share`, in ascending
    /// key order, deducting along each flow's path in path order.
    fn freeze_link(&mut self, r: usize, share: f64) {
        for idx in 0..self.link_flows[r].len() {
            let (_, slot) = self.link_flows[r][idx];
            let flow = &mut self.slab[slot as usize];
            if flow.frozen == self.epoch {
                continue;
            }
            flow.frozen = self.epoch;
            // At a physical round every unfrozen flow's ceiling is
            // ≥ share (a smaller one would have won this round), so the
            // min matches the batch solver's post-solve clamp exactly.
            flow.rate = share.min(flow.cap);
            flow.binding = Bottleneck::Link(r);
            for &l in &flow.path {
                self.residual[l] -= share;
                self.users[l] -= 1;
            }
        }
    }

    /// Freeze the single flow in `slot` at its own finite ceiling.
    fn freeze_at_cap(&mut self, slot: u32) {
        let flow = &mut self.slab[slot as usize];
        debug_assert!(flow.frozen != self.epoch);
        flow.frozen = self.epoch;
        let cap = flow.cap;
        flow.rate = cap;
        flow.binding = Bottleneck::RateCap;
        for &l in &flow.path {
            self.residual[l] -= cap;
            self.users[l] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairshare::max_min_fair_share_detailed;

    /// The batch-solver formulation FlowNet's batch mode uses: append a
    /// synthetic single-flow resource per finite ceiling (in ascending
    /// key order), solve, clamp by the ceiling, translate bindings.
    /// `flows` must be in ascending key order.
    pub(super) fn batch_reference(
        caps: &[f64],
        flows: &[(u64, Vec<usize>, f64)],
    ) -> Vec<(u64, f64, Bottleneck)> {
        let physical = caps.len();
        let mut capacities = caps.to_vec();
        let paths: Vec<Vec<usize>> = flows
            .iter()
            .map(|(_, path, cap)| {
                let mut p = path.clone();
                if cap.is_finite() {
                    p.push(capacities.len());
                    capacities.push(*cap);
                }
                p
            })
            .collect();
        let fs = max_min_fair_share_detailed(&capacities, &paths);
        flows
            .iter()
            .zip(fs.rates)
            .zip(fs.binding)
            .map(|(((key, _, cap), rate), bind)| {
                let binding = match bind {
                    Some(r) if r < physical => Bottleneck::Link(r),
                    Some(_) => Bottleneck::RateCap,
                    None => Bottleneck::Unconstrained,
                };
                (*key, rate.min(*cap), binding)
            })
            .collect()
    }

    /// Assert the incremental state matches the batch reference over the
    /// given flow set, bit for bit.
    pub(super) fn assert_matches_batch(inc: &IncrementalFairShare, caps: &[f64]) {
        let flows: Vec<(u64, Vec<usize>, f64)> = inc
            .index
            .iter()
            .map(|(&k, &slot)| {
                let f = &inc.slab[slot as usize];
                (k, f.path.clone(), f.cap)
            })
            .collect();
        let expect = batch_reference(caps, &flows);
        for (key, rate, binding) in expect {
            let got_rate = inc.rate(key).expect("flow missing");
            assert_eq!(
                got_rate.to_bits(),
                rate.to_bits(),
                "flow {key}: incremental rate {got_rate} != batch {rate}"
            );
            assert_eq!(inc.binding(key), Some(binding), "flow {key} binding");
        }
    }

    #[test]
    fn insert_matches_batch_classic() {
        let caps = vec![10.0, 30.0];
        let mut s = IncrementalFairShare::new(caps.clone());
        s.insert(0, &[0], f64::INFINITY);
        assert_matches_batch(&s, &caps);
        s.insert(1, &[0, 1], f64::INFINITY);
        assert_matches_batch(&s, &caps);
        s.insert(2, &[1], f64::INFINITY);
        assert_matches_batch(&s, &caps);
        assert_eq!(s.rate(0), Some(5.0));
        assert_eq!(s.rate(1), Some(5.0));
        assert_eq!(s.rate(2), Some(25.0));
    }

    #[test]
    fn disjoint_components_not_resolved() {
        // Two disjoint links: inserting into one never touches the other.
        let mut s = IncrementalFairShare::new(vec![10.0, 30.0]);
        s.insert(0, &[0], f64::INFINITY);
        let report = s.insert(1, &[1], f64::INFINITY);
        assert_eq!(report.flows_solved, 1, "flow 0 is in another component");
        assert_eq!(report.links_solved, 1);
        assert_eq!(s.touched_links(), &[1]);
        // Joining flow merges the components.
        let report = s.insert(2, &[0, 1], f64::INFINITY);
        assert_eq!(report.flows_solved, 3);
        assert_eq!(report.links_solved, 2);
    }

    #[test]
    fn remove_batch_observes_emptied_links() {
        let mut s = IncrementalFairShare::new(vec![10.0, 30.0]);
        s.insert(0, &[0, 1], f64::INFINITY);
        let report = s.remove_batch(&[0]);
        // Nothing left to solve, but both links changed state.
        assert_eq!(report.flows_solved, 0);
        assert_eq!(s.touched_links(), &[0, 1]);
        assert_eq!(s.active_links(), 0);
        assert_eq!(s.observe_link(0), (0.0, 0, false));
    }

    #[test]
    fn slots_are_reused_after_removal() {
        // Slab slots freed by removals are recycled by later inserts,
        // and the recycled state solves exactly.
        let caps = vec![100.0];
        let mut s = IncrementalFairShare::new(caps.clone());
        s.insert(0, &[0], 30.0);
        s.insert(1, &[0], f64::INFINITY);
        s.remove_batch(&[0]);
        assert_eq!(s.slab.len(), 2);
        s.insert(2, &[0], 10.0);
        assert_eq!(s.slab.len(), 2, "freed slot must be recycled");
        assert_matches_batch(&s, &caps);
        assert_eq!(s.rate(2), Some(10.0));
        assert_eq!(s.rate(1), Some(90.0));
    }

    #[test]
    fn rate_caps_match_synthetic_resources() {
        // Flow 0 capped below its fair share, flow 1 uncapped: the
        // leftover redistributes exactly as with a synthetic resource.
        let caps = vec![100.0];
        let mut s = IncrementalFairShare::new(caps.clone());
        s.insert(0, &[0], 20.0);
        s.insert(1, &[0], f64::INFINITY);
        assert_matches_batch(&s, &caps);
        assert_eq!(s.rate(0), Some(20.0));
        assert_eq!(s.binding(0), Some(Bottleneck::RateCap));
        assert_eq!(s.rate(1), Some(80.0));
        assert_eq!(s.binding(1), Some(Bottleneck::Link(0)));
    }

    #[test]
    fn equal_cap_and_link_share_prefers_link() {
        // Two flows share a 80 MB/s link (share 40); flow 0's ceiling is
        // exactly 40: the physical link wins the tie, like a synthetic
        // resource scanned after all physical ones.
        let caps = vec![80.0];
        let mut s = IncrementalFairShare::new(caps.clone());
        s.insert(0, &[0], 40.0);
        s.insert(1, &[0], f64::INFINITY);
        assert_matches_batch(&s, &caps);
        assert_eq!(s.binding(0), Some(Bottleneck::Link(0)));
        assert_eq!(s.binding(1), Some(Bottleneck::Link(0)));
    }

    #[test]
    fn zero_capacity_starves_members() {
        let caps = vec![0.0, 100.0];
        let mut s = IncrementalFairShare::new(caps.clone());
        s.insert(0, &[0, 1], f64::INFINITY);
        s.insert(1, &[1], f64::INFINITY);
        assert_matches_batch(&s, &caps);
        assert_eq!(s.rate(0), Some(0.0));
        assert_eq!(s.binding(0), Some(Bottleneck::Link(0)));
        // The healthy flow gets the full second link.
        assert_eq!(s.rate(1), Some(100.0));
    }

    #[test]
    fn empty_path_flows() {
        let caps = vec![10.0];
        let mut s = IncrementalFairShare::new(caps.clone());
        // Finite ceiling, no links: frozen at the ceiling.
        s.insert(0, &[], 4000.0);
        assert_eq!(s.rate(0), Some(4000.0));
        assert_eq!(s.binding(0), Some(Bottleneck::RateCap));
        // No ceiling, no links: unconstrained.
        s.insert(1, &[], f64::INFINITY);
        assert_eq!(s.rate(1), Some(f64::INFINITY));
        assert_eq!(s.binding(1), Some(Bottleneck::Unconstrained));
        assert_matches_batch(&s, &caps);
    }

    #[test]
    #[should_panic(expected = "duplicate resource")]
    fn duplicate_path_entry_rejected() {
        let mut s = IncrementalFairShare::new(vec![10.0]);
        s.insert(0, &[0, 0], f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn duplicate_key_rejected() {
        let mut s = IncrementalFairShare::new(vec![10.0]);
        s.insert(0, &[0], f64::INFINITY);
        s.insert(0, &[0], f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "removing unknown flow key")]
    fn unknown_removal_rejected() {
        let mut s = IncrementalFairShare::new(vec![10.0]);
        s.remove_batch(&[3]);
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::{assert_matches_batch, batch_reference};
    use super::*;
    use proptest::prelude::*;

    /// Random solver instances: up to 6 resources with capacities in
    /// [0, 1000] (zero = failed link), up to 10 flows each traversing a
    /// random duplicate-free resource subset in random order, with an
    /// infinite or finite per-flow ceiling.
    #[allow(clippy::type_complexity)]
    fn instances() -> impl Strategy<Value = (Vec<f64>, Vec<(Vec<usize>, f64)>)> {
        (1usize..=6).prop_flat_map(|nr| {
            (
                // ~1 in 8 links is dead (capacity exactly 0) so the
                // starvation corner gets real coverage.
                proptest::collection::vec((0u8..8, 0.0f64..1000.0), nr),
                proptest::collection::vec(
                    (
                        proptest::collection::vec(0usize..nr, 0usize..=4),
                        any::<bool>(),
                        0.5f64..500.0,
                    ),
                    0usize..=10,
                ),
            )
                .prop_map(|(caps, raw)| {
                    let caps = caps
                        .into_iter()
                        .map(|(die, c)| if die == 0 { 0.0 } else { c })
                        .collect();
                    let flows = raw
                        .into_iter()
                        .map(|(path, capped, cap)| {
                            // Keep first occurrences only: the solver
                            // rejects duplicate path entries.
                            let mut dedup: Vec<usize> = Vec::new();
                            for r in path {
                                if !dedup.contains(&r) {
                                    dedup.push(r);
                                }
                            }
                            (dedup, if capped { cap } else { f64::INFINITY })
                        })
                        .collect();
                    (caps, flows)
                })
        })
    }

    proptest! {
        /// After every insert, the incremental state is bit-identical to
        /// a from-scratch batch solve of the full flow set (rates via
        /// `to_bits`, bindings exactly).
        #[test]
        fn inserts_match_batch((caps, flows) in instances()) {
            let mut s = IncrementalFairShare::new(caps.clone());
            for (key, (path, cap)) in flows.into_iter().enumerate() {
                s.insert(key as u64, &path, cap);
                assert_matches_batch(&s, &caps);
            }
        }

        /// Removing a random batch of flows leaves the survivors
        /// bit-identical to a batch solve over just the survivors, and
        /// inserts after the removal stay exact.
        #[test]
        fn removals_match_batch(
            (caps, flows) in instances(),
            selector in proptest::collection::vec(any::<bool>(), 10),
        ) {
            let mut s = IncrementalFairShare::new(caps.clone());
            for (key, (path, cap)) in flows.iter().enumerate() {
                s.insert(key as u64, path, *cap);
            }
            let doomed: Vec<u64> = (0..flows.len() as u64)
                .filter(|&k| selector[k as usize])
                .collect();
            if !doomed.is_empty() {
                s.remove_batch(&doomed);
            }
            assert_matches_batch(&s, &caps);
            // One more arrival after the removal batch.
            s.insert(flows.len() as u64, &[], 7.0);
            assert_matches_batch(&s, &caps);
        }

        /// The same operation sequence produces identical `SolveReport`s
        /// and identical `touched_links` on every run — the effort
        /// counters exported via `prof.solver.*` are deterministic.
        #[test]
        fn reports_are_deterministic((caps, flows) in instances()) {
            let run = || {
                let mut s = IncrementalFairShare::new(caps.clone());
                let mut log = Vec::new();
                for (key, (path, cap)) in flows.iter().enumerate() {
                    log.push(s.insert(key as u64, path, *cap));
                    log.push(SolveReport {
                        flows_solved: 0,
                        links_solved: s.touched_links().len() as u64,
                        iterations: 0,
                    });
                }
                if !flows.is_empty() {
                    log.push(s.remove_batch(&[0]));
                }
                log
            };
            prop_assert_eq!(run(), run());
        }

        /// `observe_link` matches a fresh whole-net scan: summing member
        /// rates in ascending key order — the same fp addition order the
        /// batch observation path uses.
        #[test]
        fn observation_matches_full_scan((caps, flows) in instances()) {
            let mut s = IncrementalFairShare::new(caps.clone());
            for (key, (path, cap)) in flows.iter().enumerate() {
                s.insert(key as u64, path, *cap);
            }
            let batch: Vec<(u64, Vec<usize>, f64)> = flows
                .iter()
                .enumerate()
                .map(|(k, (p, c))| (k as u64, p.clone(), *c))
                .collect();
            let solved = batch_reference(&caps, &batch);
            for r in 0..caps.len() {
                let mut rate_sum = 0.0f64;
                let mut active = 0u32;
                let mut binding = false;
                for ((_, path, _), (_, rate, bind)) in batch.iter().zip(&solved) {
                    if path.contains(&r) {
                        rate_sum += rate;
                        active += 1;
                        binding |= *bind == Bottleneck::Link(r);
                    }
                }
                let (got_sum, got_active, got_binding) = s.observe_link(r);
                prop_assert_eq!(got_sum.to_bits(), rate_sum.to_bits(), "link {} rate sum", r);
                prop_assert_eq!(got_active, active, "link {} active", r);
                prop_assert_eq!(got_binding, binding, "link {} binding", r);
            }
        }
    }
}
