//! Deriving the placement distance matrix from *measured* network
//! latency.
//!
//! The paper defines distance **as** latency ("we define distance as the
//! latency between virtual machines", §Abstract) but configures it
//! statically, and lists dynamic recomputation as future work (§VII).
//! This module closes the loop: probe the flow network's one-way
//! latencies and quantise them into the integer distance units the
//! optimisation crates consume. When links degrade or nodes move, a
//! re-probe yields an updated matrix and placements adapt.

use crate::params::NetworkParams;
use vc_des::SimTime;
use vc_topology::{DistanceMatrix, NodeId, Topology};

/// One-way latency between two nodes under `params`, as the flow network
/// would impose on a zero-byte transfer.
pub fn probe_latency(topo: &Topology, params: &NetworkParams, a: NodeId, b: NodeId) -> SimTime {
    if a == b {
        return SimTime::ZERO;
    }
    let us = if topo.same_rack(a, b) {
        params.same_rack_latency_us
    } else if topo.same_cloud(a, b) {
        params.cross_rack_latency_us
    } else {
        params.cross_cloud_latency_us
    };
    SimTime::from_micros(us)
}

/// Probe every node pair and quantise latencies into distance units of
/// `unit` (e.g. the same-rack latency), rounding up so that any strictly
/// larger latency maps to a strictly larger distance tier whenever it
/// exceeds the next multiple.
///
/// With the default parameters (100 µs / 300 µs / 10 ms) and
/// `unit = 100 µs` this reproduces the familiar `1 / 3 / 100` shape; with
/// `unit = 300 µs` it collapses towards the paper's coarse `1 / 1 / 34`.
///
/// # Panics
/// Panics if `unit` is zero.
pub fn derive_distance_matrix(
    topo: &Topology,
    params: &NetworkParams,
    unit: SimTime,
) -> DistanceMatrix {
    assert!(unit > SimTime::ZERO, "quantisation unit must be positive");
    DistanceMatrix::from_fn(topo.num_nodes(), |i, j| {
        let lat = probe_latency(topo, params, NodeId::from_index(i), NodeId::from_index(j));
        let units = lat.as_micros().div_ceil(unit.as_micros());
        u32::try_from(units).expect("distance unit overflow")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_topology::{generate, DistanceTiers, TopologyBuilder};

    fn topo() -> Topology {
        generate::multi_cloud(2, 2, 2, DistanceTiers::new(1, 2, 4).unwrap())
    }

    #[test]
    fn probe_matches_tier_latencies() {
        let t = topo();
        let p = NetworkParams::default();
        assert_eq!(probe_latency(&t, &p, NodeId(0), NodeId(0)), SimTime::ZERO);
        assert_eq!(
            probe_latency(&t, &p, NodeId(0), NodeId(1)),
            SimTime::from_micros(100)
        );
        assert_eq!(
            probe_latency(&t, &p, NodeId(0), NodeId(2)),
            SimTime::from_micros(300)
        );
        assert_eq!(
            probe_latency(&t, &p, NodeId(0), NodeId(7)),
            SimTime::from_micros(10_000)
        );
    }

    #[test]
    fn derived_matrix_is_ordered_like_tiers() {
        let t = topo();
        let p = NetworkParams::default();
        let m = derive_distance_matrix(&t, &p, SimTime::from_micros(100));
        assert_eq!(m.get(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.get(NodeId(0), NodeId(1)), 1); // 100 µs / 100
        assert_eq!(m.get(NodeId(0), NodeId(2)), 3); // 300 µs / 100
        assert_eq!(m.get(NodeId(0), NodeId(7)), 100); // 10 ms / 100
    }

    #[test]
    fn derived_matrix_drives_placement_topology() {
        // The derived matrix can replace the static tiers in a Topology.
        let t = topo();
        let p = NetworkParams::default();
        let m = derive_distance_matrix(&t, &p, SimTime::from_micros(100));

        let mut b = TopologyBuilder::new(DistanceTiers::new(1, 3, 100).unwrap());
        let cloud = b.add_cloud("measured");
        let rack = b.add_rack(cloud);
        for _ in 0..t.num_nodes() {
            b.add_node(rack);
        }
        b.with_distance_matrix(m);
        let measured = b.build();
        assert_eq!(measured.distance(NodeId(0), NodeId(2)), 3);
    }

    #[test]
    fn degraded_link_raises_distance() {
        // Simulate a degraded aggregation layer: cross-rack latency 5x.
        let t = topo();
        let healthy = NetworkParams::default();
        let degraded = NetworkParams {
            cross_rack_latency_us: 1_500,
            ..NetworkParams::default()
        };
        let unit = SimTime::from_micros(100);
        let m0 = derive_distance_matrix(&t, &healthy, unit);
        let m1 = derive_distance_matrix(&t, &degraded, unit);
        assert!(m1.get(NodeId(0), NodeId(2)) > m0.get(NodeId(0), NodeId(2)));
        // Intra-rack unaffected.
        assert_eq!(m1.get(NodeId(0), NodeId(1)), m0.get(NodeId(0), NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_unit_rejected() {
        let t = topo();
        let _ = derive_distance_matrix(&t, &NetworkParams::default(), SimTime::ZERO);
    }
}
