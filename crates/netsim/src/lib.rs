//! Flow-level datacenter network simulation.
//!
//! Models the network the paper's experiments run over — NICs, shared
//! top-of-rack uplinks, and (optionally) inter-cloud links — at *flow*
//! granularity: each transfer is a fluid flow whose rate is the **max-min
//! fair share** across every resource on its path, recomputed whenever a
//! flow starts or finishes. This captures exactly the effect the paper
//! measures: a virtual cluster that spans racks pushes its shuffle traffic
//! through oversubscribed uplinks and slows down, while a compact cluster
//! stays on fast intra-rack paths.
//!
//! Resources on a flow's path:
//!
//! * same node — no network resource (memory-speed copy at
//!   [`NetworkParams::intra_node_mbps`], unshared);
//! * same rack — sender NIC TX, receiver NIC RX;
//! * cross rack — sender TX, source-rack uplink (up), destination-rack
//!   uplink (down), receiver RX;
//! * cross cloud — additionally the per-cloud WAN links.
//!
//! Rates are in MB/s, which conveniently equals bytes/µs — the unit of
//! [`vc_des::SimTime`].
//!
//! Every link resource additionally carries always-on telemetry
//! ([`LinkStats`]: byte integrals, exact per-class byte counters, busy
//! time, peaks, binding counts) and can emit utilization time-series
//! samples ([`LinkSample`]) at each rate recomputation; completed flows
//! report which link (or per-connection ceiling) bound their rate
//! ([`Bottleneck`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fairshare;
mod flownet;
mod incremental;
mod link;
pub mod measure;
mod params;

pub use fairshare::{max_min_fair_share, max_min_fair_share_detailed, FairShare};
pub use flownet::{CompletedFlow, FlowId, FlowNet, FlowSnapshot, SolverMode, SolverStats};
pub use incremental::{IncrementalFairShare, SolveReport};
pub use link::{Bottleneck, FlowClass, LinkClass, LinkInfo, LinkSample, LinkStats};
pub use params::NetworkParams;
