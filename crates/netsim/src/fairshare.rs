//! Max-min fair bandwidth allocation (progressive filling).

// Index-based loops mirror the textbook matrix formulations here.
#![allow(clippy::needless_range_loop)]

/// Per-flow outcome of a max-min fair allocation, including which
/// resource froze (bottlenecked) each flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FairShare {
    /// Fair rate for each flow (MB/s); unconstrained flows get
    /// [`f64::INFINITY`].
    pub rates: Vec<f64>,
    /// For each flow, the resource index whose progressive-filling round
    /// froze it — the flow's *binding* (bottleneck) link. `None` for
    /// unconstrained (empty-path) flows.
    pub binding: Vec<Option<usize>>,
    /// Progressive-filling rounds that ran before every flow froze — the
    /// solver's iterations-to-fixpoint. 0 when no flow is constrained.
    /// Purely diagnostic: the rates are computed identically whether or
    /// not anyone reads this.
    pub iterations: u64,
}

/// Compute the max-min fair rate for each flow.
///
/// * `capacities[r]` — capacity of resource `r` (MB/s);
/// * `flow_resources[f]` — the resource indices flow `f` traverses (a
///   flow with an empty list is unconstrained and gets
///   [`f64::INFINITY`]).
///
/// Progressive filling: repeatedly find the resource with the smallest
/// per-flow fair share among its unfrozen flows, freeze those flows at
/// that rate, deduct their consumption everywhere, and continue until all
/// flows are frozen. `O(R · F · path)` — fine at simulator scale.
///
/// # Panics
/// Panics if a flow references an out-of-range resource or a capacity is
/// negative/NaN.
pub fn max_min_fair_share(capacities: &[f64], flow_resources: &[Vec<usize>]) -> Vec<f64> {
    max_min_fair_share_detailed(capacities, flow_resources).rates
}

/// Like [`max_min_fair_share`], but also reports each flow's binding
/// resource — the link whose saturation froze the flow's rate. The rates
/// are bit-identical to the plain variant (it is a thin wrapper over
/// this one).
///
/// # Panics
/// Panics if a flow references an out-of-range resource or a capacity is
/// negative/NaN.
pub fn max_min_fair_share_detailed(capacities: &[f64], flow_resources: &[Vec<usize>]) -> FairShare {
    for &c in capacities {
        assert!(c.is_finite() && c >= 0.0, "invalid capacity {c}");
    }
    let nr = capacities.len();
    let nf = flow_resources.len();
    for fr in flow_resources {
        for &r in fr {
            assert!(r < nr, "resource index {r} out of range");
        }
    }

    let mut rates = vec![f64::INFINITY; nf];
    let mut binding: Vec<Option<usize>> = vec![None; nf];
    let mut frozen = vec![false; nf];
    let mut residual: Vec<f64> = capacities.to_vec();
    // Unconstrained flows stay at infinity.
    for (f, fr) in flow_resources.iter().enumerate() {
        if fr.is_empty() {
            frozen[f] = true;
        }
    }

    let mut iterations = 0u64;
    loop {
        // Count unfrozen flows per resource.
        let mut users = vec![0u32; nr];
        for (f, fr) in flow_resources.iter().enumerate() {
            if !frozen[f] {
                for &r in fr {
                    users[r] += 1;
                }
            }
        }
        // Bottleneck resource: smallest residual fair share.
        let mut bottleneck: Option<(usize, f64)> = None;
        for r in 0..nr {
            if users[r] > 0 {
                let share = residual[r].max(0.0) / f64::from(users[r]);
                if bottleneck.is_none_or(|(_, s)| share < s) {
                    bottleneck = Some((r, share));
                }
            }
        }
        let Some((r, share)) = bottleneck else {
            // every flow frozen
            return FairShare {
                rates,
                binding,
                iterations,
            };
        };
        iterations += 1;
        // Freeze all unfrozen flows through r at `share`.
        for f in 0..nf {
            if !frozen[f] && flow_resources[f].contains(&r) {
                rates[f] = share;
                binding[f] = Some(r);
                frozen[f] = true;
                for &res in &flow_resources[f] {
                    residual[res] -= share;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn single_flow_gets_bottleneck() {
        let rates = max_min_fair_share(&[100.0, 40.0], &[vec![0, 1]]);
        assert_close(rates[0], 40.0);
    }

    #[test]
    fn equal_split_on_shared_link() {
        let rates = max_min_fair_share(&[90.0], &[vec![0], vec![0], vec![0]]);
        for r in rates {
            assert_close(r, 30.0);
        }
    }

    #[test]
    fn classic_three_flow_example() {
        // Link A (cap 10) shared by f0, f1; link B (cap 30) shared by f1, f2.
        // f0 = 5, f1 = 5 (bottleneck A), f2 = 25 (leftover of B).
        let rates = max_min_fair_share(&[10.0, 30.0], &[vec![0], vec![0, 1], vec![1]]);
        assert_close(rates[0], 5.0);
        assert_close(rates[1], 5.0);
        assert_close(rates[2], 25.0);
    }

    #[test]
    fn unconstrained_flow_infinite() {
        let rates = max_min_fair_share(&[10.0], &[vec![], vec![0]]);
        assert!(rates[0].is_infinite());
        assert_close(rates[1], 10.0);
    }

    #[test]
    fn no_flows() {
        assert!(max_min_fair_share(&[5.0], &[]).is_empty());
    }

    #[test]
    fn total_never_exceeds_capacity() {
        // randomised-ish structured case, checked exactly
        let caps = [50.0, 20.0, 80.0];
        let flows = vec![vec![0, 1], vec![1], vec![0, 2], vec![2], vec![0, 1, 2]];
        let rates = max_min_fair_share(&caps, &flows);
        for r in 0..caps.len() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(fr, _)| fr.contains(&r))
                .map(|(_, &rate)| rate)
                .sum();
            assert!(used <= caps[r] + 1e-6, "resource {r} over capacity: {used}");
        }
    }

    #[test]
    fn pareto_efficiency_on_bottlenecks() {
        // Every flow should be bottlenecked somewhere: increasing any flow
        // alone must violate some resource.
        let caps = [50.0, 20.0];
        let flows = vec![vec![0], vec![0, 1], vec![1]];
        let rates = max_min_fair_share(&caps, &flows);
        for (f, fr) in flows.iter().enumerate() {
            let saturated = fr.iter().any(|&r| {
                let used: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| g.contains(&r))
                    .map(|(_, &rate)| rate)
                    .sum();
                (used - caps[r]).abs() < 1e-6
            });
            assert!(saturated, "flow {f} is not bottlenecked");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_resource_index_panics() {
        let _ = max_min_fair_share(&[1.0], &[vec![3]]);
    }

    #[test]
    #[should_panic(expected = "invalid capacity")]
    fn nan_capacity_panics() {
        let _ = max_min_fair_share(&[f64::NAN], &[vec![0]]);
    }

    #[test]
    fn zero_capacity_freezes_at_zero() {
        let rates = max_min_fair_share(&[0.0], &[vec![0]]);
        assert_close(rates[0], 0.0);
    }

    #[test]
    fn detailed_reports_binding_resources() {
        // Same fixture as classic_three_flow_example: f0/f1 bind on link 0,
        // f2 binds on link 1.
        let fs = max_min_fair_share_detailed(&[10.0, 30.0], &[vec![0], vec![0, 1], vec![1]]);
        assert_eq!(fs.binding, vec![Some(0), Some(0), Some(1)]);
        assert_close(fs.rates[0], 5.0);
        assert_close(fs.rates[1], 5.0);
        assert_close(fs.rates[2], 25.0);
    }

    #[test]
    fn detailed_unconstrained_flow_has_no_binding() {
        let fs = max_min_fair_share_detailed(&[10.0], &[vec![], vec![0]]);
        assert_eq!(fs.binding, vec![None, Some(0)]);
    }

    #[test]
    fn iterations_count_freezing_rounds() {
        // classic_three_flow_example freezes in two rounds: link 0 first
        // (f0, f1), then link 1 (f2).
        let fs = max_min_fair_share_detailed(&[10.0, 30.0], &[vec![0], vec![0, 1], vec![1]]);
        assert_eq!(fs.iterations, 2);
        // No constrained flows → zero rounds.
        let fs = max_min_fair_share_detailed(&[10.0], &[vec![], vec![]]);
        assert_eq!(fs.iterations, 0);
        let fs = max_min_fair_share_detailed(&[10.0], &[]);
        assert_eq!(fs.iterations, 0);
        // One shared link, any number of flows → one round.
        let fs = max_min_fair_share_detailed(&[90.0], &[vec![0], vec![0], vec![0]]);
        assert_eq!(fs.iterations, 1);
    }

    #[test]
    fn detailed_matches_plain_variant() {
        let caps = [50.0, 20.0, 80.0];
        let flows = vec![vec![0, 1], vec![1], vec![0, 2], vec![2], vec![0, 1, 2]];
        let fs = max_min_fair_share_detailed(&caps, &flows);
        assert_eq!(fs.rates, max_min_fair_share(&caps, &flows));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random (capacities, flow paths) instances: up to 6 resources with
    /// capacities in [0, 1000], up to 10 flows each traversing a random
    /// (possibly empty, possibly duplicated) subset of resources.
    fn instances() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
        (1usize..=6).prop_flat_map(|nr| {
            (
                proptest::collection::vec(0.0f64..1000.0, nr),
                proptest::collection::vec(proptest::collection::vec(0usize..nr, 0..=4), 0..=10),
            )
        })
    }

    proptest! {
        /// Max-min rates never oversubscribe any link: for every
        /// resource, the summed rate of flows through it stays within
        /// capacity (up to fp tolerance).
        #[test]
        fn rates_never_oversubscribe((caps, flows) in instances()) {
            let rates = max_min_fair_share(&caps, &flows);
            for (r, &cap) in caps.iter().enumerate() {
                let used: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter_map(|(fr, &rate)| {
                        let crossings = fr.iter().filter(|&&x| x == r).count();
                        (crossings > 0).then_some(rate * crossings as f64)
                    })
                    .sum();
                prop_assert!(
                    used <= cap + 1e-6 * (1.0 + cap),
                    "resource {} over capacity: {} > {}",
                    r, used, cap
                );
            }
        }

        /// Binding-link marking is consistent: every constrained flow is
        /// frozen by a resource on its own path, and that resource is
        /// saturated (its residual capacity is ~0), i.e. the flow really
        /// is capped by a binding link. Unconstrained flows have no
        /// binding and an infinite rate.
        #[test]
        fn binding_marks_are_consistent((caps, flows) in instances()) {
            let fs = max_min_fair_share_detailed(&caps, &flows);
            for (f, fr) in flows.iter().enumerate() {
                if fr.is_empty() {
                    prop_assert_eq!(fs.binding[f], None);
                    prop_assert!(fs.rates[f].is_infinite());
                    continue;
                }
                let r = fs.binding[f].expect("constrained flow must have a binding link");
                prop_assert!(fr.contains(&r), "binding {} not on flow {}'s path", r, f);
                let used: f64 = flows
                    .iter()
                    .zip(&fs.rates)
                    .filter_map(|(g, &rate)| {
                        let crossings = g.iter().filter(|&&x| x == r).count();
                        (crossings > 0).then_some(rate * crossings as f64)
                    })
                    .sum();
                prop_assert!(
                    (used - caps[r]).abs() <= 1e-6 * (1.0 + caps[r]),
                    "binding resource {} of flow {} is not saturated: used {} cap {}",
                    r, f, used, caps[r]
                );
            }
        }

        /// The detailed variant's rates are bit-identical to the plain
        /// wrapper (it *is* the implementation).
        #[test]
        fn detailed_and_plain_agree((caps, flows) in instances()) {
            let fs = max_min_fair_share_detailed(&caps, &flows);
            prop_assert_eq!(fs.rates, max_min_fair_share(&caps, &flows));
        }

        /// Each progressive-filling round saturates a distinct resource
        /// and freezes at least one flow, so iterations is bounded by
        /// both counts — and is zero iff no flow is constrained.
        #[test]
        fn iterations_bounded_by_resources_and_flows((caps, flows) in instances()) {
            let fs = max_min_fair_share_detailed(&caps, &flows);
            let constrained = flows.iter().filter(|fr| !fr.is_empty()).count() as u64;
            prop_assert!(fs.iterations <= caps.len() as u64);
            prop_assert!(fs.iterations <= constrained);
            prop_assert_eq!(fs.iterations == 0, constrained == 0);
        }
    }
}
