//! The flow network: active transfers and their fair-share rates.

use crate::fairshare::max_min_fair_share_detailed;
use crate::incremental::{IncrementalFairShare, SolveReport};
use crate::link::{Bottleneck, FlowClass, LinkClass, LinkInfo, LinkSample, LinkStats};
use crate::params::NetworkParams;
use std::collections::BTreeMap;
use std::sync::Arc;
use vc_des::SimTime;
use vc_topology::{NodeId, Topology};

/// Identifier of an active (or completed) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

/// Which fair-share solver drives rate recomputations.
///
/// Both produce bit-identical rates, bindings, completion times, and
/// link telemetry (asserted by the equality proptests); they differ
/// only in effort. [`SolverStats`] working-set counters
/// (`flows_total`, `links_touched_total`, `iterations_total`, peaks)
/// count what each solver actually re-solved, so the two modes report
/// different — honest — effort numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Re-solve the entire flow set from scratch on every flow start
    /// and completion batch. O(rounds × flows × path) per event plus
    /// allocation churn; kept as the reference oracle.
    Batch,
    /// Delta-update: re-solve only the connected component of links
    /// whose flow membership changed, with persistent per-link flow
    /// sets and reusable scratch (see
    /// [`IncrementalFairShare`](crate::IncrementalFairShare)).
    #[default]
    Incremental,
}

/// Σ flow rate over capacity, defined as 0 for idle links — including
/// zero-capacity (failed) links, which can only carry rate-0 flows —
/// so utilization telemetry never produces NaN or infinity.
fn utilization(rate_sum: f64, capacity: f64) -> f64 {
    if rate_sum > 0.0 && capacity > 0.0 {
        rate_sum / capacity
    } else {
        0.0
    }
}

#[derive(Debug)]
struct Flow {
    resources: Vec<usize>,
    /// Rate ceiling independent of sharing (same-node memory copies).
    rate_cap: f64,
    remaining_latency_us: f64,
    remaining_bytes: f64,
    /// Current fair-share rate, bytes/µs (== MB/s).
    rate: f64,
    /// Caller-supplied correlation token, returned on completion.
    token: u64,
    src: NodeId,
    dst: NodeId,
    /// Requested transfer size (exact).
    bytes: u64,
    started: SimTime,
    class: FlowClass,
    /// What froze this flow's rate at the latest recomputation.
    bottleneck: Bottleneck,
}

/// A finished transfer returned by [`FlowNet::take_completed`]: the
/// caller's token plus the flow's own metadata, so callers need no
/// shadow map keyed by token.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedFlow {
    /// The flow's identifier.
    pub id: FlowId,
    /// Caller-supplied correlation token from `start_flow`.
    pub token: u64,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Requested transfer size in bytes.
    pub bytes: u64,
    /// When the flow was started.
    pub started: SimTime,
    /// Traffic class the flow was tagged with.
    pub class: FlowClass,
    /// What bounded the flow's rate at the last recomputation before it
    /// finished — its bottleneck attribution.
    pub bottleneck: Bottleneck,
}

/// Point-in-time view of one active flow, from
/// [`FlowNet::active_flow_snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSnapshot {
    /// The flow's identifier.
    pub id: FlowId,
    /// Caller-supplied correlation token from `start_flow`.
    pub token: u64,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Requested transfer size in bytes.
    pub bytes: u64,
    /// Bytes not yet drained by the fluid model.
    pub remaining_bytes: f64,
    /// Current max-min fair rate, bytes/µs (== MB/s).
    pub rate: f64,
    /// Traffic class the flow was tagged with.
    pub class: FlowClass,
    /// What froze the flow's rate at the latest recomputation.
    pub bottleneck: Bottleneck,
    /// When the flow was started.
    pub started: SimTime,
}

const BYTE_EPS: f64 = 1e-6;

/// All active flows over one physical topology, with max-min fair rates.
///
/// Drive it from a discrete-event loop:
///
/// 1. [`start_flow`](Self::start_flow) when a transfer begins;
/// 2. schedule a wake-up at [`next_event_time`](Self::next_event_time)
///    (re-query after *every* start/completion — rates shift);
/// 3. on wake-up, [`take_completed`](Self::take_completed) returns the
///    transfers that have finished by then.
///
/// ```
/// use std::sync::Arc;
/// use vc_des::SimTime;
/// use vc_netsim::{FlowNet, NetworkParams};
/// use vc_topology::{generate, DistanceTiers, NodeId};
///
/// let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::default()));
/// let mut net = FlowNet::new(topo, NetworkParams::default());
/// net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 119_000_000, 42);
/// let done_at = net.next_event_time().unwrap();
/// let done = net.take_completed(done_at);
/// assert_eq!(done[0].token, 42);
/// assert_eq!(done[0].bytes, 119_000_000);
/// assert!((done_at.as_secs_f64() - 1.0).abs() < 0.01); // 119 MB at 119 MB/s
/// ```
#[derive(Debug)]
pub struct FlowNet {
    topo: Arc<Topology>,
    params: NetworkParams,
    capacities: Vec<f64>,
    flows: BTreeMap<u64, Flow>,
    next_id: u64,
    clock: SimTime,
    /// Static catalog of the physical link resources (parallel to
    /// `capacities`).
    links: Vec<LinkInfo>,
    /// Always-on per-link accumulators (parallel to `capacities`).
    stats: Vec<LinkStats>,
    /// Emit [`LinkSample`]s at rate recomputations?
    sampling: bool,
    samples: Vec<LinkSample>,
    /// Last emitted `(utilization, active, binding)` per link, to
    /// suppress unchanged samples.
    last_sample: Vec<(f64, u32, bool)>,
    /// Always-on fair-share solver effort accumulators.
    solver_stats: SolverStats,
    /// Which solver runs rate recomputations (fixed at construction).
    mode: SolverMode,
    /// Incremental solver state (only maintained in incremental mode).
    inc: IncrementalFairShare,
    /// Links currently binding ≥ 1 flow, ascending (incremental mode:
    /// lets every solve bump `binding_events` for *unchanged* binding
    /// links without scanning all flows, matching batch accounting).
    binding_links: Vec<usize>,
    /// Per-link binding state backing `binding_links`.
    binding_now: Vec<bool>,
    /// `advance` scratch: per-link active-transfer windows, reused.
    win_scratch: Vec<Vec<(f64, f64)>>,
    /// Links with pending windows in `win_scratch` this advance.
    win_touched: Vec<usize>,
    /// Optional fixed-window rollup of cross-rack (RackUp) traffic for
    /// the `ts.*` time-series layer. Off by default; pure observation —
    /// never feeds back into rates or completion times.
    win_rollup: Option<WindowRollup>,
}

/// Windowed RackUp byte rollup: drained bytes apportioned over absolute
/// sim-time windows of fixed width. `offset_us` maps this net's local
/// clock (a per-job engine runs its `FlowNet` from t=0) onto global sim
/// time.
#[derive(Debug, Default)]
struct WindowRollup {
    window_us: u64,
    offset_us: u64,
    /// Window index → RackUp bytes drained within that window.
    bytes: BTreeMap<u64, f64>,
}

impl WindowRollup {
    /// Spread `bytes` uniformly over the absolute interval
    /// `[start_us, end_us)` across window boundaries.
    fn add_span(&mut self, start_us: f64, end_us: f64, bytes: f64) {
        if bytes <= 0.0 {
            return;
        }
        let w = self.window_us as f64;
        if end_us <= start_us {
            let idx = (start_us / w) as u64;
            *self.bytes.entry(idx).or_insert(0.0) += bytes;
            return;
        }
        let rate = bytes / (end_us - start_us);
        let mut t = start_us;
        while t < end_us {
            let idx = (t / w) as u64;
            let seg_end = (w * (idx + 1) as f64).min(end_us);
            *self.bytes.entry(idx).or_insert(0.0) += rate * (seg_end - t);
            if seg_end <= t {
                break; // f64 guard: a zero-width segment must not loop
            }
            t = seg_end;
        }
    }
}

/// Always-on effort counters for the max-min fair-share solver — the
/// measured baseline ROADMAP item 5 (incremental fair share) must beat.
/// The deterministic counters (everything except `wall_us`) depend only
/// on the simulated workload, so they are stable across hosts and usable
/// as CI regression-gate inputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverStats {
    /// Rate recomputations (one per flow start and per non-empty
    /// completion batch).
    pub solves: u64,
    /// Σ flows in the solved set, over all solves.
    pub flows_total: u64,
    /// Σ distinct physical links carrying ≥ 1 flow, over all solves.
    pub links_touched_total: u64,
    /// Σ progressive-filling iterations to fixpoint, over all solves.
    pub iterations_total: u64,
    /// Largest flow set handed to a single solve.
    pub peak_flows: u64,
    /// Most iterations any single solve took.
    pub peak_iterations: u64,
    /// Non-empty completion batches drained by `take_completed`.
    pub completion_batches: u64,
    /// Σ flows completed across those batches (batch size integral).
    pub completion_batch_flows: u64,
    /// Σ active flows a solve did *not* have to re-solve (outside the
    /// changed connected component) — the incremental solver's saved
    /// work. Always 0 in [`SolverMode::Batch`].
    pub flows_skipped_total: u64,
    /// Host wall-clock µs spent in the solver, accumulated only while
    /// sampling is on (i.e. under an enabled recorder) so unprofiled
    /// runs never read the clock. Non-deterministic; never gate CI on it.
    pub wall_us: u64,
}

impl FlowNet {
    /// Build the resource graph for `topo`: TX/RX per node, up/down per
    /// rack, up/down per cloud.
    ///
    /// # Panics
    /// Panics if `params` fails [`NetworkParams::validate`].
    pub fn new(topo: Arc<Topology>, params: NetworkParams) -> Self {
        Self::with_solver(topo, params, SolverMode::default())
    }

    /// [`new`](Self::new) with an explicit [`SolverMode`] — use
    /// [`SolverMode::Batch`] to run the reference full-set solver (for
    /// equivalence tests and before/after benchmarking).
    ///
    /// # Panics
    /// Panics if `params` fails [`NetworkParams::validate`].
    pub fn with_solver(topo: Arc<Topology>, params: NetworkParams, mode: SolverMode) -> Self {
        params.validate();
        let n = topo.num_nodes();
        let r = topo.num_racks();
        let c = topo.num_clouds();
        let mut capacities = Vec::with_capacity(2 * (n + r + c));
        capacities.extend(std::iter::repeat_n(params.nic_mbps, 2 * n));
        capacities.extend(std::iter::repeat_n(params.rack_uplink_mbps, 2 * r));
        capacities.extend(std::iter::repeat_n(params.cloud_uplink_mbps, 2 * c));
        let mut links = Vec::with_capacity(capacities.len());
        for i in 0..n {
            links.push(LinkInfo {
                name: format!("node{i}.tx"),
                class: LinkClass::NodeTx,
                capacity_mbps: params.nic_mbps,
            });
            links.push(LinkInfo {
                name: format!("node{i}.rx"),
                class: LinkClass::NodeRx,
                capacity_mbps: params.nic_mbps,
            });
        }
        for i in 0..r {
            links.push(LinkInfo {
                name: format!("rack{i}.up"),
                class: LinkClass::RackUp,
                capacity_mbps: params.rack_uplink_mbps,
            });
            links.push(LinkInfo {
                name: format!("rack{i}.down"),
                class: LinkClass::RackDown,
                capacity_mbps: params.rack_uplink_mbps,
            });
        }
        for i in 0..c {
            links.push(LinkInfo {
                name: format!("cloud{i}.up"),
                class: LinkClass::CloudUp,
                capacity_mbps: params.cloud_uplink_mbps,
            });
            links.push(LinkInfo {
                name: format!("cloud{i}.down"),
                class: LinkClass::CloudDown,
                capacity_mbps: params.cloud_uplink_mbps,
            });
        }
        let stats = vec![LinkStats::default(); links.len()];
        let last_sample = vec![(0.0, 0, false); links.len()];
        let inc = IncrementalFairShare::new(capacities.clone());
        let nr = capacities.len();
        Self {
            topo,
            params,
            capacities,
            flows: BTreeMap::new(),
            next_id: 0,
            clock: SimTime::ZERO,
            links,
            stats,
            sampling: false,
            samples: Vec::new(),
            last_sample,
            solver_stats: SolverStats::default(),
            mode,
            inc,
            binding_links: Vec::new(),
            binding_now: vec![false; nr],
            win_scratch: vec![Vec::new(); nr],
            win_touched: Vec::new(),
            win_rollup: None,
        }
    }

    /// The solver mode this net was constructed with.
    pub fn solver_mode(&self) -> SolverMode {
        self.mode
    }

    /// The simulated clock of the last [`advance`](Self::advance).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// The static catalog of physical link resources, indexed by the
    /// resource ids used in [`LinkSample::link`] and
    /// [`Bottleneck::Link`].
    pub fn links(&self) -> &[LinkInfo] {
        &self.links
    }

    /// The always-on accumulators, parallel to [`links`](Self::links).
    pub fn link_stats(&self) -> &[LinkStats] {
        &self.stats
    }

    /// Fair-share solver effort accumulated so far (see [`SolverStats`]).
    pub fn solver_stats(&self) -> &SolverStats {
        &self.solver_stats
    }

    /// Enable or disable [`LinkSample`] emission at rate recomputations.
    /// Off by default; the byte/busy/peak accumulators in
    /// [`link_stats`](Self::link_stats) run regardless.
    pub fn set_sampling(&mut self, on: bool) {
        self.sampling = on;
    }

    /// Take the buffered utilization samples accumulated since the last
    /// drain (empty unless [`set_sampling`](Self::set_sampling) is on).
    pub fn drain_link_samples(&mut self) -> Vec<LinkSample> {
        std::mem::take(&mut self.samples)
    }

    /// Enable the windowed RackUp byte rollup: `window_us`-wide windows
    /// over `offset_us + local_clock` absolute sim time. Off by default
    /// (no cost and no behavior change when unset).
    pub fn set_window_rollup(&mut self, window_us: u64, offset_us: u64) {
        assert!(window_us > 0, "rollup window must be positive");
        self.win_rollup = Some(WindowRollup {
            window_us,
            offset_us,
            bytes: BTreeMap::new(),
        });
    }

    /// Drain the windowed rollup accumulated so far as sorted
    /// `(window_index, rack_up_bytes)` pairs. Empty when the rollup is
    /// disabled. The rollup stays enabled after draining.
    pub fn take_window_rollup(&mut self) -> Vec<(u64, f64)> {
        match self.win_rollup.as_mut() {
            Some(roll) => std::mem::take(&mut roll.bytes).into_iter().collect(),
            None => Vec::new(),
        }
    }

    fn tx(&self, node: NodeId) -> usize {
        2 * node.index()
    }
    fn rx(&self, node: NodeId) -> usize {
        2 * node.index() + 1
    }
    fn rack_up(&self, rack: vc_topology::RackId) -> usize {
        2 * self.topo.num_nodes() + 2 * rack.index()
    }
    fn rack_down(&self, rack: vc_topology::RackId) -> usize {
        2 * self.topo.num_nodes() + 2 * rack.index() + 1
    }
    fn cloud_up(&self, cloud: vc_topology::CloudId) -> usize {
        2 * (self.topo.num_nodes() + self.topo.num_racks()) + 2 * cloud.index()
    }
    fn cloud_down(&self, cloud: vc_topology::CloudId) -> usize {
        2 * (self.topo.num_nodes() + self.topo.num_racks()) + 2 * cloud.index() + 1
    }

    /// The path (resources, one-way latency, per-flow rate ceiling)
    /// between nodes. The ceiling models the TCP window/RTT limit of one
    /// connection at that distance tier.
    fn path(&self, src: NodeId, dst: NodeId) -> (Vec<usize>, u64, f64) {
        if src == dst {
            return (vec![], 0, self.params.intra_node_mbps);
        }
        let mut res = vec![self.tx(src), self.rx(dst)];
        let latency;
        let flow_cap;
        if self.topo.same_rack(src, dst) {
            latency = self.params.same_rack_latency_us;
            flow_cap = self.params.same_rack_flow_mbps;
        } else {
            res.push(self.rack_up(self.topo.rack_of(src)));
            res.push(self.rack_down(self.topo.rack_of(dst)));
            if self.topo.same_cloud(src, dst) {
                latency = self.params.cross_rack_latency_us;
                flow_cap = self.params.cross_rack_flow_mbps;
            } else {
                res.push(self.cloud_up(self.topo.cloud_of(src)));
                res.push(self.cloud_down(self.topo.cloud_of(dst)));
                latency = self.params.cross_cloud_latency_us;
                flow_cap = self.params.cross_cloud_flow_mbps;
            }
        }
        (res, latency, flow_cap)
    }

    /// Begin a transfer of `bytes` from `src` to `dst` at time `now`;
    /// `token` is handed back on completion. Zero-byte flows still pay the
    /// path latency. The flow is tagged [`FlowClass::Other`]; use
    /// [`start_flow_classed`](Self::start_flow_classed) to attribute its
    /// bytes to a traffic class.
    ///
    /// # Panics
    /// Panics if `now` precedes the net's clock.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        token: u64,
    ) -> FlowId {
        self.start_flow_classed(now, src, dst, bytes, token, FlowClass::Other)
    }

    /// [`start_flow`](Self::start_flow) with an explicit traffic class:
    /// every link on the flow's path accrues the flow's exact byte count
    /// under `class` when the flow completes.
    ///
    /// # Panics
    /// Panics if `now` precedes the net's clock.
    pub fn start_flow_classed(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        token: u64,
        class: FlowClass,
    ) -> FlowId {
        self.advance(now);
        let (resources, latency_us, rate_cap) = self.path(src, dst);
        let id = self.next_id;
        self.next_id += 1;
        let report = match self.mode {
            SolverMode::Incremental => {
                let t0 = self.sampling.then(std::time::Instant::now);
                Some((self.inc.insert(id, &resources, rate_cap), t0))
            }
            SolverMode::Batch => None,
        };
        self.flows.insert(
            id,
            Flow {
                resources,
                rate_cap,
                remaining_latency_us: latency_us as f64,
                remaining_bytes: bytes as f64,
                rate: 0.0,
                token,
                src,
                dst,
                bytes,
                started: now,
                class,
                bottleneck: Bottleneck::Unconstrained,
            },
        );
        match report {
            Some((report, t0)) => self.finish_incremental_solve(report, t0),
            None => self.recompute_rates_batch(),
        }
        FlowId(id)
    }

    /// Advance the fluid model to `now`, draining latency then bytes at
    /// the current rates.
    ///
    /// # Panics
    /// Panics if `now` precedes the net's clock.
    pub fn advance(&mut self, now: SimTime) {
        assert!(now >= self.clock, "FlowNet clock moving backwards");
        let elapsed = (now - self.clock).as_micros() as f64;
        self.clock = now;
        if elapsed == 0.0 {
            return;
        }
        // Per-link (start, end) active-transfer windows within this
        // interval, collected into reusable per-link scratch buffers and
        // merged into exact busy time below. Flows iterate in ascending
        // id order, so each link's window list is pushed in a
        // deterministic order and the stable per-link sort reproduces
        // the same merge arithmetic as a global (link, start) sort.
        for flow in self.flows.values_mut() {
            let lat = flow.remaining_latency_us.min(elapsed);
            flow.remaining_latency_us -= lat;
            let active = elapsed - lat;
            if active > 0.0 && flow.rate > 0.0 {
                let before = flow.remaining_bytes;
                flow.remaining_bytes = (flow.remaining_bytes - flow.rate * active).max(0.0);
                let drained = before - flow.remaining_bytes;
                if drained > 0.0 {
                    let end = (lat + drained / flow.rate).min(elapsed);
                    let mut rack_up_hits = 0u32;
                    for &r in &flow.resources {
                        self.stats[r].bytes_total += drained;
                        if self.win_scratch[r].is_empty() {
                            self.win_touched.push(r);
                        }
                        self.win_scratch[r].push((lat, end));
                        if self.links[r].class == LinkClass::RackUp {
                            rack_up_hits += 1;
                        }
                    }
                    if rack_up_hits > 0 {
                        if let Some(roll) = self.win_rollup.as_mut() {
                            // `lat`/`end` are relative to the interval
                            // start (now − elapsed); map to absolute sim
                            // time through the configured offset.
                            let base = now.as_micros() as f64 - elapsed + roll.offset_us as f64;
                            roll.add_span(
                                base + lat,
                                base + end,
                                drained * f64::from(rack_up_hits),
                            );
                        }
                    }
                }
            }
        }
        for &link in &self.win_touched {
            let windows = &mut self.win_scratch[link];
            windows.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (mut s, mut e) = windows[0];
            for &(ws, we) in &windows[1..] {
                if ws <= e {
                    e = e.max(we);
                } else {
                    self.stats[link].busy_us += e - s;
                    (s, e) = (ws, we);
                }
            }
            self.stats[link].busy_us += e - s;
            windows.clear();
        }
        self.win_touched.clear();
    }

    /// Earliest predicted completion across all active flows at current
    /// rates, or `None` when idle. Rounded *up* to the next microsecond so
    /// a wake-up scheduled at this time is guaranteed to observe the
    /// completion.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.flows
            .values()
            .filter_map(|f| {
                let transfer_us = if f.remaining_bytes <= BYTE_EPS {
                    0.0
                } else if f.rate > 0.0 {
                    f.remaining_bytes / f.rate
                } else {
                    return None; // starved flow: wait for a rate change
                };
                let us = (f.remaining_latency_us + transfer_us).ceil() as u64;
                Some(self.clock + SimTime::from_micros(us))
            })
            .min()
    }

    /// Advance to `now` and remove every flow that has finished, returning
    /// a [`CompletedFlow`] per transfer in flow-creation order.
    ///
    /// Completion is also when byte attribution happens: every link on a
    /// finished flow's path accrues the flow's *exact* requested byte
    /// count under its [`FlowClass`] (same-node flows traverse no links,
    /// so they accrue nowhere).
    pub fn take_completed(&mut self, now: SimTime) -> Vec<CompletedFlow> {
        self.advance(now);
        let done: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining_bytes <= BYTE_EPS && f.remaining_latency_us <= 0.0)
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::with_capacity(done.len());
        for &id in &done {
            let flow = self.flows.remove(&id).expect("flow disappeared");
            for &r in &flow.resources {
                let s = &mut self.stats[r];
                match flow.class {
                    FlowClass::MapRead => s.map_read_bytes += flow.bytes,
                    FlowClass::Shuffle => s.shuffle_bytes += flow.bytes,
                    FlowClass::OutputWrite => s.output_bytes += flow.bytes,
                    FlowClass::Other => s.other_bytes += flow.bytes,
                }
            }
            out.push(CompletedFlow {
                id: FlowId(id),
                token: flow.token,
                src: flow.src,
                dst: flow.dst,
                bytes: flow.bytes,
                started: flow.started,
                class: flow.class,
                bottleneck: flow.bottleneck,
            });
        }
        if !out.is_empty() {
            self.solver_stats.completion_batches += 1;
            self.solver_stats.completion_batch_flows += out.len() as u64;
            match self.mode {
                SolverMode::Incremental => {
                    let t0 = self.sampling.then(std::time::Instant::now);
                    let report = self.inc.remove_batch(&done);
                    self.finish_incremental_solve(report, t0);
                }
                SolverMode::Batch => self.recompute_rates_batch(),
            }
        }
        // A standard drive loop (`while let Some(t) = net.next_event_time()`)
        // exits as soon as no completion can ever fire; starved flows
        // (rate 0 with bytes remaining, e.g. routed over a zero-capacity
        // failed link) would be silently lost at that point. Fail loudly
        // in debug builds; release callers can poll `starved_flows()`.
        debug_assert!(
            self.flows.is_empty() || self.next_event_time().is_some(),
            "FlowNet went idle with {} active flow(s) starved at rate 0 — no completion can \
             ever fire; inspect FlowNet::starved_flows() ({:?}) and treat their links as failed",
            self.flows.len(),
            self.starved_flows(),
        );
        out
    }

    /// Point-in-time view of every active flow, in flow-creation order —
    /// the equality tests' window into solver state (rates compared
    /// bit-for-bit via [`f64::to_bits`]).
    pub fn active_flow_snapshot(&self) -> Vec<FlowSnapshot> {
        self.flows
            .iter()
            .map(|(&id, f)| FlowSnapshot {
                id: FlowId(id),
                token: f.token,
                src: f.src,
                dst: f.dst,
                bytes: f.bytes,
                remaining_bytes: f.remaining_bytes,
                rate: f.rate,
                class: f.class,
                bottleneck: f.bottleneck,
                started: f.started,
            })
            .collect()
    }

    /// Flows that can never finish at current rates: bytes remaining
    /// but a max-min rate of zero (every path crosses a saturated-by-
    /// zero or zero-capacity link). They are *not* returned by
    /// [`take_completed`](Self::take_completed) and produce no
    /// [`next_event_time`](Self::next_event_time) entry; callers that
    /// model link failures must check for them when the net goes idle.
    pub fn starved_flows(&self) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|(_, f)| f.remaining_bytes > BYTE_EPS && f.rate <= 0.0)
            .map(|(&id, _)| FlowId(id))
            .collect()
    }

    /// Analytic lower bound for one isolated transfer: path latency plus
    /// bytes over the path's narrowest link. Useful for tests and quick
    /// estimates.
    ///
    /// A transfer that can never finish — nonzero bytes over a path with
    /// a zero-capacity (failed) link — returns [`SimTime::MAX`] as the
    /// "never" sentinel rather than overflowing; don't add an offset to
    /// it (`SimTime` addition panics on overflow by design).
    pub fn isolated_transfer_time(&self, src: NodeId, dst: NodeId, bytes: u64) -> SimTime {
        let (resources, latency_us, rate_cap) = self.path(src, dst);
        if bytes == 0 {
            return SimTime::from_micros(latency_us);
        }
        let bottleneck = resources
            .iter()
            .map(|&r| self.capacities[r])
            .fold(rate_cap, f64::min);
        if bottleneck <= 0.0 {
            return SimTime::MAX;
        }
        let us = latency_us as f64 + bytes as f64 / bottleneck;
        if us >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime::from_micros(us.ceil() as u64)
        }
    }

    /// Apply one incremental solve's results: copy the re-solved
    /// component's rates/bindings into the flow table, fold touched-link
    /// telemetry, and account effort (including the flows the solver
    /// *skipped* — everything outside the changed component).
    fn finish_incremental_solve(&mut self, report: SolveReport, t0: Option<std::time::Instant>) {
        {
            // `changed()` is ascending by key, as is the flow table:
            // apply the updates with one sorted merge pass instead of a
            // tree lookup per re-solved flow.
            let Self { inc, flows, .. } = self;
            let mut changed = inc.changed().peekable();
            if changed.peek().is_some() {
                for (&id, f) in flows.iter_mut() {
                    match changed.peek() {
                        Some(&(key, rate, binding)) if key == id => {
                            f.rate = rate;
                            f.bottleneck = binding;
                            changed.next();
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
                debug_assert!(changed.peek().is_none(), "solved flow missing from table");
            }
        }
        self.observe_touched_links();
        let active = self.flows.len() as u64;
        let s = &mut self.solver_stats;
        s.solves += 1;
        s.flows_total += report.flows_solved;
        s.links_touched_total += report.links_solved;
        s.iterations_total += report.iterations;
        s.peak_flows = s.peak_flows.max(report.flows_solved);
        s.peak_iterations = s.peak_iterations.max(report.iterations);
        s.flows_skipped_total += active - report.flows_solved;
        if let Some(t0) = t0 {
            s.wall_us += t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        }
    }

    /// Incremental-mode counterpart of [`observe_links`](Self::observe_links):
    /// fold post-solve state for only the links the solve touched. Links
    /// outside the changed component cannot have changed state (their
    /// flows were not re-solved), so skipping them preserves bit-identical
    /// peaks, samples, and binding events — except `binding_events`,
    /// which batch mode bumps for *every* currently-binding link each
    /// solve; `binding_links` tracks that set persistently so we can do
    /// the same without a full scan.
    fn observe_touched_links(&mut self) {
        let t_us = self.clock.as_micros();
        let Self {
            inc,
            stats,
            capacities,
            binding_now,
            binding_links,
            sampling,
            samples,
            last_sample,
            ..
        } = self;
        for &r in inc.touched_links() {
            let (rate_sum, active, binding) = inc.observe_link(r);
            let util = utilization(rate_sum, capacities[r]);
            let s = &mut stats[r];
            if util > s.peak_utilization {
                s.peak_utilization = util;
            }
            if active > s.peak_active_flows {
                s.peak_active_flows = active;
            }
            if binding != binding_now[r] {
                binding_now[r] = binding;
                if binding {
                    let pos = binding_links.binary_search(&r).unwrap_err();
                    binding_links.insert(pos, r);
                } else {
                    let pos = binding_links
                        .binary_search(&r)
                        .expect("unbinding unknown link");
                    binding_links.remove(pos);
                }
            }
            if *sampling {
                let state = (util, active, binding);
                if state != last_sample[r] {
                    last_sample[r] = state;
                    samples.push(LinkSample {
                        t_us,
                        link: r,
                        utilization: util,
                        active_flows: active,
                        binding,
                    });
                }
            }
        }
        for &r in binding_links.iter() {
            stats[r].binding_events += 1;
        }
    }

    fn recompute_rates_batch(&mut self) {
        // Wall timing reads the host clock only while sampling (enabled
        // recorder); it never feeds back into simulated state.
        let t0 = self.sampling.then(std::time::Instant::now);
        // Model each finite per-flow ceiling as a dedicated single-flow
        // resource *inside* the max-min computation, so bandwidth a
        // capped flow cannot use is redistributed to its competitors
        // rather than stranded.
        let physical = self.capacities.len();
        let mut capacities = self.capacities.clone();
        let paths: Vec<Vec<usize>> = self
            .flows
            .values()
            .map(|f| {
                let mut path = f.resources.clone();
                if f.rate_cap.is_finite() {
                    path.push(capacities.len());
                    capacities.push(f.rate_cap);
                }
                path
            })
            .collect();
        let fs = max_min_fair_share_detailed(&capacities, &paths);
        for ((flow, rate), bind) in self.flows.values_mut().zip(fs.rates).zip(fs.binding) {
            flow.rate = rate.min(flow.rate_cap);
            flow.bottleneck = match bind {
                Some(r) if r < physical => Bottleneck::Link(r),
                Some(_) => Bottleneck::RateCap,
                None => Bottleneck::Unconstrained,
            };
        }
        let links_touched = self.observe_links();
        let s = &mut self.solver_stats;
        s.solves += 1;
        s.flows_total += paths.len() as u64;
        s.links_touched_total += links_touched;
        s.iterations_total += fs.iterations;
        s.peak_flows = s.peak_flows.max(paths.len() as u64);
        s.peak_iterations = s.peak_iterations.max(fs.iterations);
        if let Some(t0) = t0 {
            s.wall_us += t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        }
    }

    /// Fold the post-recomputation link state into the always-on
    /// accumulators, and (when sampling) emit a [`LinkSample`] for every
    /// link whose state changed. Returns the number of distinct physical
    /// links carrying at least one flow (the solve's working set).
    fn observe_links(&mut self) -> u64 {
        let physical = self.capacities.len();
        let mut rate_sum = vec![0.0f64; physical];
        let mut active = vec![0u32; physical];
        let mut binding = vec![false; physical];
        for flow in self.flows.values() {
            for &r in &flow.resources {
                rate_sum[r] += flow.rate;
                active[r] += 1;
            }
            if let Bottleneck::Link(r) = flow.bottleneck {
                binding[r] = true;
            }
        }
        let t_us = self.clock.as_micros();
        let links_touched = active.iter().filter(|&&a| a > 0).count() as u64;
        for r in 0..physical {
            let util = utilization(rate_sum[r], self.capacities[r]);
            let s = &mut self.stats[r];
            if util > s.peak_utilization {
                s.peak_utilization = util;
            }
            if active[r] > s.peak_active_flows {
                s.peak_active_flows = active[r];
            }
            if binding[r] {
                s.binding_events += 1;
            }
            if self.sampling {
                let state = (util, active[r], binding[r]);
                if state != self.last_sample[r] {
                    self.last_sample[r] = state;
                    self.samples.push(LinkSample {
                        t_us,
                        link: r,
                        utilization: util,
                        active_flows: active[r],
                        binding: binding[r],
                    });
                }
            }
        }
        links_touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_topology::{generate, DistanceTiers};

    fn net() -> FlowNet {
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::default()));
        FlowNet::new(topo, NetworkParams::default())
    }

    fn run_to_completion(net: &mut FlowNet) -> Vec<(SimTime, u64)> {
        let mut out = vec![];
        while let Some(t) = net.next_event_time() {
            for done in net.take_completed(t) {
                out.push((t, done.token));
            }
        }
        out
    }

    #[test]
    fn single_intra_rack_flow_nic_limited() {
        let mut n = net();
        // 119 MB over a 119 MB/s NIC = 1s + 100µs latency.
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 119_000_000, 7);
        let done = run_to_completion(&mut n);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 7);
        let t = done[0].0;
        let expect = n.isolated_transfer_time(NodeId(0), NodeId(1), 119_000_000);
        assert_eq!(t, expect);
        assert!((t.as_secs_f64() - 1.0001).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn same_node_flow_memory_speed() {
        let mut n = net();
        n.start_flow(SimTime::ZERO, NodeId(2), NodeId(2), 4_000_000, 1);
        let done = run_to_completion(&mut n);
        // 4 MB at 4000 MB/s = 1 ms, zero latency.
        assert_eq!(done[0].0, SimTime::from_micros(1_000));
    }

    #[test]
    fn two_flows_share_sender_nic() {
        let mut n = net();
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 119_000_000, 1);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 119_000_000, 2);
        let done = run_to_completion(&mut n);
        assert_eq!(done.len(), 2);
        // Each gets half the TX NIC -> ~2s.
        let last = done.last().unwrap().0;
        assert!((last.as_secs_f64() - 2.0001).abs() < 1e-2, "last = {last}");
    }

    #[test]
    fn solver_stats_count_effort() {
        let mut n = net();
        assert_eq!(*n.solver_stats(), SolverStats::default());
        // Two flows from node 0 sharing its TX NIC (rack-local paths:
        // sender TX + receiver RX).
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 119_000_000, 1);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 119_000_000, 2);
        let s = n.solver_stats().clone();
        assert_eq!(s.solves, 2);
        assert_eq!(s.flows_total, 1 + 2);
        // Solve 1 touches {node0.tx, node1.rx}; solve 2 adds node2.rx.
        assert_eq!(s.links_touched_total, 2 + 3);
        // Each solve froze everything through the shared TX in one round.
        assert_eq!(s.iterations_total, 2);
        assert_eq!(s.peak_flows, 2);
        assert_eq!(s.peak_iterations, 1);
        assert_eq!(s.completion_batches, 0);
        // Sampling is off → the solver never read the host clock.
        assert_eq!(s.wall_us, 0);

        // Symmetric flows finish together: one batch of two, plus one
        // final (empty-set) recomputation.
        let done = run_to_completion(&mut n);
        assert_eq!(done.len(), 2);
        let s = n.solver_stats().clone();
        assert_eq!(s.solves, 3);
        assert_eq!(s.completion_batches, 1);
        assert_eq!(s.completion_batch_flows, 2);
        assert_eq!(s.flows_total, 3);
        assert_eq!(s.links_touched_total, 5);
    }

    #[test]
    fn cross_rack_flows_capped_per_flow() {
        let mut n = net();
        // 3 senders in rack 0 to rack 1: the per-flow ceiling is 40 MB/s
        // and the shared 119 MB/s uplink allows 119/3 ≈ 39.7 MB/s each, so
        // the uplink share binds: 119 MB / 39.7 MB/s ≈ 3.0 s.
        for (i, src) in [0u32, 1, 2].into_iter().enumerate() {
            n.start_flow(
                SimTime::ZERO,
                NodeId(src),
                NodeId(3 + src),
                119_000_000,
                i as u64,
            );
        }
        let done = run_to_completion(&mut n);
        let last = done.last().unwrap().0;
        assert!((last.as_secs_f64() - 3.0003).abs() < 1e-2, "last = {last}");
        // A single cross-rack flow in isolation is capped at 40 MB/s.
        let mut solo = net();
        solo.start_flow(SimTime::ZERO, NodeId(0), NodeId(3), 119_000_000, 0);
        let done = run_to_completion(&mut solo);
        assert!(
            (done[0].0.as_secs_f64() - 2.9753).abs() < 1e-2,
            "solo = {}",
            done[0].0
        );
    }

    #[test]
    fn uplink_saturates_with_many_cross_rack_flows() {
        // 3 nodes per rack is too few to saturate 476; shrink the uplink.
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::default()));
        let params = NetworkParams {
            rack_uplink_mbps: 60.0,
            ..NetworkParams::default()
        };
        let mut n = FlowNet::new(topo, params);
        for i in 0..3u32 {
            n.start_flow(
                SimTime::ZERO,
                NodeId(i),
                NodeId(3 + i),
                60_000_000,
                u64::from(i),
            );
        }
        // 3 flows share the 60 MB/s uplink: 20 MB/s each -> ~3 s.
        let done = run_to_completion(&mut n);
        let last = done.last().unwrap().0;
        assert!((last.as_secs_f64() - 3.0003).abs() < 1e-2, "last = {last}");
    }

    #[test]
    fn oversubscribed_uplink_slows_cross_rack() {
        // Compare 5 parallel intra-rack flows vs 5 cross-rack flows from
        // distinct senders: uplink (476) < 5 × NIC (595).
        let topo = Arc::new(generate::uniform(2, 5, DistanceTiers::default()));
        let mut intra = FlowNet::new(Arc::clone(&topo), NetworkParams::default());
        let mut cross = FlowNet::new(topo, NetworkParams::default());
        for i in 0..5u32 {
            // intra: node i -> node (i+1)%5 (same rack, distinct NIC pairs? receivers overlap)
            intra.start_flow(
                SimTime::ZERO,
                NodeId(i),
                NodeId((i + 1) % 5),
                50_000_000,
                u64::from(i),
            );
            cross.start_flow(
                SimTime::ZERO,
                NodeId(i),
                NodeId(5 + i),
                50_000_000,
                u64::from(i),
            );
        }
        let t_intra = run_to_completion(&mut intra).last().unwrap().0;
        let t_cross = run_to_completion(&mut cross).last().unwrap().0;
        assert!(
            t_cross > t_intra,
            "cross-rack {t_cross} should be slower than intra-rack {t_intra}"
        );
    }

    #[test]
    fn zero_byte_flow_costs_latency_only() {
        let mut n = net();
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(4), 0, 9);
        let done = run_to_completion(&mut n);
        assert_eq!(done[0].0, SimTime::from_micros(300)); // cross-rack latency
    }

    #[test]
    fn staggered_starts_rate_adjustment() {
        let mut n = net();
        // Flow A alone for 0.5s at 119 MB/s, then B joins; both share TX.
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 119_000_000, 1);
        n.start_flow(
            SimTime::from_millis(500),
            NodeId(0),
            NodeId(2),
            119_000_000,
            2,
        );
        let done = run_to_completion(&mut n);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].1, 1);
        // A: 0.5s alone (59.5MB) + remainder shared at 59.5 MB/s -> ~1.5s total.
        assert!(
            (done[0].0.as_secs_f64() - 1.5).abs() < 0.02,
            "A at {}",
            done[0].0
        );
        // B: ~119MB at mixed rates, finishes ~2.0s
        assert!(
            (done[1].0.as_secs_f64() - 2.0).abs() < 0.02,
            "B at {}",
            done[1].0
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut n = net();
            for i in 0..8u64 {
                n.start_flow(
                    SimTime::from_micros(i * 137),
                    NodeId((i % 6) as u32),
                    NodeId(((i + 3) % 6) as u32),
                    1_000_000 + i * 50_000,
                    i,
                );
            }
            run_to_completion(&mut n)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "clock moving backwards")]
    fn backwards_clock_panics() {
        let mut n = net();
        n.advance(SimTime::from_secs(1));
        n.advance(SimTime::ZERO);
    }

    #[test]
    fn completed_flow_carries_metadata() {
        let mut n = net();
        n.start_flow_classed(
            SimTime::from_micros(250),
            NodeId(0),
            NodeId(1),
            1_000_000,
            42,
            FlowClass::Shuffle,
        );
        let t = n.next_event_time().unwrap();
        let done = n.take_completed(t);
        assert_eq!(done.len(), 1);
        let d = &done[0];
        assert_eq!(d.token, 42);
        assert_eq!(d.src, NodeId(0));
        assert_eq!(d.dst, NodeId(1));
        assert_eq!(d.bytes, 1_000_000);
        assert_eq!(d.started, SimTime::from_micros(250));
        assert_eq!(d.class, FlowClass::Shuffle);
    }

    #[test]
    fn link_catalog_matches_resource_layout() {
        let n = net(); // 2 racks × 3 nodes, 1 cloud
        let links = n.links();
        assert_eq!(links.len(), 2 * 6 + 2 * 2 + 2);
        assert_eq!(links[0].name, "node0.tx");
        assert_eq!(links[0].class, LinkClass::NodeTx);
        assert_eq!(links[1].name, "node0.rx");
        assert_eq!(links[12].name, "rack0.up");
        assert_eq!(links[12].class, LinkClass::RackUp);
        assert_eq!(links[15].name, "rack1.down");
        assert_eq!(links[16].name, "cloud0.up");
        assert_eq!(links[16].class, LinkClass::CloudUp);
        for l in links {
            assert!(l.capacity_mbps > 0.0);
        }
    }

    #[test]
    fn exact_class_bytes_attributed_on_completion() {
        let mut n = net();
        // Cross-rack shuffle + same-rack map read + same-node flow
        // (the latter traverses no links and must accrue nowhere).
        n.start_flow_classed(
            SimTime::ZERO,
            NodeId(0),
            NodeId(3),
            5_000_000,
            0,
            FlowClass::Shuffle,
        );
        n.start_flow_classed(
            SimTime::ZERO,
            NodeId(1),
            NodeId(2),
            3_000_000,
            1,
            FlowClass::MapRead,
        );
        n.start_flow_classed(
            SimTime::ZERO,
            NodeId(4),
            NodeId(4),
            9_000_000,
            2,
            FlowClass::Shuffle,
        );
        run_to_completion(&mut n);
        let rx_shuffle: u64 = n
            .link_stats()
            .iter()
            .zip(n.links())
            .filter(|(_, l)| l.class == LinkClass::NodeRx)
            .map(|(s, _)| s.shuffle_bytes)
            .sum();
        assert_eq!(rx_shuffle, 5_000_000, "same-node shuffle must not count");
        let rack_up = n.links().iter().position(|l| l.name == "rack0.up").unwrap();
        assert_eq!(n.link_stats()[rack_up].shuffle_bytes, 5_000_000);
        assert_eq!(n.link_stats()[rack_up].map_read_bytes, 0);
        let rx_map: u64 = n
            .link_stats()
            .iter()
            .zip(n.links())
            .filter(|(_, l)| l.class == LinkClass::NodeRx)
            .map(|(s, _)| s.map_read_bytes)
            .sum();
        assert_eq!(rx_map, 3_000_000);
    }

    #[test]
    fn byte_integral_and_busy_time_track_single_flow() {
        let mut n = net();
        // 119 MB at 119 MB/s: ~1 s of busy time on node0.tx / node1.rx.
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 119_000_000, 0);
        run_to_completion(&mut n);
        let tx = &n.link_stats()[0];
        assert!(
            (tx.bytes_total - 119_000_000.0).abs() < 1.0,
            "integral = {}",
            tx.bytes_total
        );
        assert!(
            (tx.busy_us - 1_000_000.0).abs() < 1_000.0,
            "busy = {}",
            tx.busy_us
        );
        assert!((tx.peak_utilization - 1.0).abs() < 1e-9);
        assert_eq!(tx.peak_active_flows, 1);
    }

    #[test]
    fn busy_time_merges_overlapping_flows() {
        let mut n = net();
        // Two flows share node0.tx the whole time: busy time is the
        // union (~2 s for 2 × 119 MB at half rate each), not the sum.
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 119_000_000, 0);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 119_000_000, 1);
        run_to_completion(&mut n);
        let tx = &n.link_stats()[0];
        assert!(
            (tx.busy_us - 2_000_000.0).abs() < 2_000.0,
            "busy = {}",
            tx.busy_us
        );
        assert_eq!(tx.peak_active_flows, 2);
        assert!(
            (tx.bytes_total - 238_000_000.0).abs() < 2.0,
            "integral = {}",
            tx.bytes_total
        );
    }

    #[test]
    fn bottleneck_attribution_rate_cap_vs_link() {
        // A solo cross-rack flow is bound by its 40 MB/s connection cap.
        let mut solo = net();
        solo.start_flow(SimTime::ZERO, NodeId(0), NodeId(3), 1_000_000, 0);
        let t = solo.next_event_time().unwrap();
        let done = solo.take_completed(t);
        assert_eq!(done[0].bottleneck, Bottleneck::RateCap);

        // Four competing cross-rack senders oversubscribe the shared
        // 119 MB/s uplink (4 × 40 > 119): the uplink binds.
        let topo = Arc::new(generate::uniform(2, 4, DistanceTiers::default()));
        let mut n = FlowNet::new(topo, NetworkParams::default());
        for i in 0..4u32 {
            n.start_flow(
                SimTime::ZERO,
                NodeId(i),
                NodeId(4 + i),
                10_000_000,
                u64::from(i),
            );
        }
        let t = n.next_event_time().unwrap();
        let done = n.take_completed(t);
        let rack0_up = n.links().iter().position(|l| l.name == "rack0.up").unwrap();
        assert_eq!(done[0].bottleneck, Bottleneck::Link(rack0_up));
        assert!(n.link_stats()[rack0_up].binding_events > 0);
    }

    #[test]
    fn sampling_emits_changed_links_only() {
        let mut n = net();
        n.set_sampling(true);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000, 0);
        let samples = n.drain_link_samples();
        // One recompute touched exactly node0.tx and node1.rx.
        assert_eq!(samples.len(), 2);
        for s in &samples {
            assert!(s.utilization > 0.0 && s.utilization <= 1.0 + 1e-9);
            assert_eq!(s.active_flows, 1);
            assert_eq!(s.t_us, 0);
        }
        run_to_completion(&mut n);
        let after = n.drain_link_samples();
        // Completion recompute drops both links back to zero.
        assert_eq!(after.len(), 2);
        for s in &after {
            assert_eq!(s.utilization, 0.0);
            assert_eq!(s.active_flows, 0);
        }
        // Untraced runs buffer nothing.
        let mut quiet = net();
        quiet.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 1_000, 0);
        run_to_completion(&mut quiet);
        assert!(quiet.drain_link_samples().is_empty());
    }

    #[test]
    fn window_rollup_partitions_rack_up_bytes() {
        // Cross-rack: node0 (rack 0) → node3 (rack 1) crosses rack0.up.
        let mut n = net();
        n.set_window_rollup(1_000, 0);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(3), 50_000_000, 0);
        run_to_completion(&mut n);
        let roll = n.take_window_rollup();
        assert!(!roll.is_empty());
        let total: f64 = roll.iter().map(|&(_, b)| b).sum();
        assert!(
            (total - 50_000_000.0).abs() < 1.0,
            "rollup total {total} != flow bytes"
        );
        // Windows are contiguous from 0 while the flow transfers.
        for (i, &(idx, bytes)) in roll.iter().enumerate() {
            assert_eq!(idx, i as u64, "gap in rollup windows: {roll:?}");
            assert!(bytes > 0.0);
        }
        // Draining leaves the rollup armed but empty.
        assert!(n.take_window_rollup().is_empty());

        // Same-rack traffic never touches a RackUp link.
        let mut local = net();
        local.set_window_rollup(1_000, 0);
        local.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000, 0);
        run_to_completion(&mut local);
        assert!(local.take_window_rollup().is_empty());

        // The offset shifts which absolute windows accrue.
        let mut shifted = net();
        shifted.set_window_rollup(1_000, 5_000);
        shifted.start_flow(SimTime::ZERO, NodeId(0), NodeId(3), 1_000_000, 0);
        run_to_completion(&mut shifted);
        let roll = shifted.take_window_rollup();
        assert!(roll.iter().all(|&(idx, _)| idx >= 5), "{roll:?}");

        // Rollup is pure observation: completion times are unchanged.
        let mut plain = net();
        plain.start_flow(SimTime::ZERO, NodeId(0), NodeId(3), 50_000_000, 0);
        let mut rolled = net();
        rolled.set_window_rollup(1_000, 0);
        rolled.start_flow(SimTime::ZERO, NodeId(0), NodeId(3), 50_000_000, 0);
        assert_eq!(
            run_to_completion(&mut plain),
            run_to_completion(&mut rolled)
        );
    }

    #[test]
    fn telemetry_does_not_change_completion_times() {
        let mk = |sampling: bool| {
            let mut n = net();
            n.set_sampling(sampling);
            for i in 0..8u64 {
                n.start_flow(
                    SimTime::from_micros(i * 137),
                    NodeId((i % 6) as u32),
                    NodeId(((i + 3) % 6) as u32),
                    1_000_000 + i * 50_000,
                    i,
                );
            }
            run_to_completion(&mut n)
        };
        assert_eq!(mk(false), mk(true));
    }

    /// 2 racks × 3 nodes with a dead (failed) rack uplink.
    fn net_dead_uplink() -> FlowNet {
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::default()));
        let params = NetworkParams {
            rack_uplink_mbps: 0.0,
            ..NetworkParams::default()
        };
        FlowNet::new(topo, params)
    }

    #[test]
    fn starved_flows_are_surfaced_not_lost() {
        let mut n = net_dead_uplink();
        // Cross-rack flow over the dead uplink: max-min rate 0.
        let starved = n.start_flow(SimTime::ZERO, NodeId(0), NodeId(3), 1_000_000, 7);
        // Intra-rack flow is unaffected by the dead uplink.
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000, 8);
        assert_eq!(n.starved_flows(), vec![starved]);
        // The healthy flow still schedules a wake-up…
        assert!(n.next_event_time().is_some());
        // …but a net with only the starved flow can never fire an event.
        let mut probe = net_dead_uplink();
        probe.start_flow(SimTime::ZERO, NodeId(0), NodeId(3), 1_000_000, 7);
        assert_eq!(probe.next_event_time(), None);
        assert_eq!(probe.starved_flows().len(), 1);
        // Zero-byte flows only pay latency and are *not* starved.
        let mut lat = net_dead_uplink();
        lat.start_flow(SimTime::ZERO, NodeId(0), NodeId(3), 0, 9);
        assert!(lat.starved_flows().is_empty());
        assert!(lat.next_event_time().is_some());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "starved at rate 0")]
    fn going_idle_with_starved_flows_panics_in_debug() {
        let mut n = net_dead_uplink();
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(3), 1_000_000, 7);
        // Nothing completes and the net is idle with a live flow: the
        // debug assertion in take_completed must fire rather than let a
        // drive loop exit with the flow silently lost.
        n.take_completed(SimTime::from_secs(10));
    }

    #[test]
    fn isolated_transfer_time_over_dead_link_is_never() {
        let n = net_dead_uplink();
        // Nonzero bytes across the dead uplink: "never", not an overflow.
        let t = n.isolated_transfer_time(NodeId(0), NodeId(3), 1);
        assert_eq!(t, SimTime::MAX);
        // Zero bytes still just pay the path latency (no 0/0 NaN).
        let t0 = n.isolated_transfer_time(NodeId(0), NodeId(3), 0);
        assert_eq!(t0, SimTime::from_micros(300));
        // Intra-rack paths avoid the dead link entirely.
        let t1 = n.isolated_transfer_time(NodeId(0), NodeId(1), 119_000_000);
        assert!((t1.as_secs_f64() - 1.0001).abs() < 1e-3, "t1 = {t1}");
    }

    #[test]
    fn zero_capacity_links_report_finite_utilization() {
        for mode in [SolverMode::Batch, SolverMode::Incremental] {
            let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::default()));
            let params = NetworkParams {
                rack_uplink_mbps: 0.0,
                ..NetworkParams::default()
            };
            let mut n = FlowNet::with_solver(topo, params, mode);
            n.set_sampling(true);
            // One starved cross-rack flow and one healthy intra-rack flow.
            n.start_flow(SimTime::ZERO, NodeId(0), NodeId(3), 1_000_000, 0);
            n.start_flow(SimTime::ZERO, NodeId(1), NodeId(2), 1_000_000, 1);
            for s in &n.drain_link_samples() {
                assert!(
                    s.utilization.is_finite(),
                    "{mode:?}: non-finite utilization leaked into samples: {s:?}"
                );
            }
            let rack_up = n.links().iter().position(|l| l.name == "rack0.up").unwrap();
            let dead = &n.link_stats()[rack_up];
            // rate 0 over capacity 0 is reported as 0, not NaN/inf.
            assert_eq!(dead.peak_utilization, 0.0, "{mode:?}");
            assert_eq!(dead.peak_active_flows, 1, "{mode:?}");
        }
    }

    #[test]
    fn cross_cloud_path_uses_wan() {
        let topo = Arc::new(generate::multi_cloud(
            2,
            1,
            2,
            DistanceTiers::new(1, 2, 8).unwrap(),
        ));
        let n = FlowNet::new(topo, NetworkParams::default());
        // WAN latency dominates.
        let t = n.isolated_transfer_time(NodeId(0), NodeId(3), 0);
        assert_eq!(t, SimTime::from_micros(10_000));
        // A single cross-cloud connection is capped at 10 MB/s.
        let t2 = n.isolated_transfer_time(NodeId(0), NodeId(3), 119_000_000);
        assert!((t2.as_secs_f64() - 11.91).abs() < 0.01, "t2 = {t2}");
    }
}
