//! The flow network: active transfers and their fair-share rates.

use crate::fairshare::max_min_fair_share;
use crate::params::NetworkParams;
use std::collections::BTreeMap;
use std::sync::Arc;
use vc_des::SimTime;
use vc_topology::{NodeId, Topology};

/// Identifier of an active (or completed) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

#[derive(Debug)]
struct Flow {
    resources: Vec<usize>,
    /// Rate ceiling independent of sharing (same-node memory copies).
    rate_cap: f64,
    remaining_latency_us: f64,
    remaining_bytes: f64,
    /// Current fair-share rate, bytes/µs (== MB/s).
    rate: f64,
    /// Caller-supplied correlation token, returned on completion.
    token: u64,
}

const BYTE_EPS: f64 = 1e-6;

/// All active flows over one physical topology, with max-min fair rates.
///
/// Drive it from a discrete-event loop:
///
/// 1. [`start_flow`](Self::start_flow) when a transfer begins;
/// 2. schedule a wake-up at [`next_event_time`](Self::next_event_time)
///    (re-query after *every* start/completion — rates shift);
/// 3. on wake-up, [`take_completed`](Self::take_completed) returns the
///    transfers that have finished by then.
///
/// ```
/// use std::sync::Arc;
/// use vc_des::SimTime;
/// use vc_netsim::{FlowNet, NetworkParams};
/// use vc_topology::{generate, DistanceTiers, NodeId};
///
/// let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::default()));
/// let mut net = FlowNet::new(topo, NetworkParams::default());
/// net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 119_000_000, 42);
/// let done_at = net.next_event_time().unwrap();
/// let done = net.take_completed(done_at);
/// assert_eq!(done[0].1, 42);
/// assert!((done_at.as_secs_f64() - 1.0).abs() < 0.01); // 119 MB at 119 MB/s
/// ```
#[derive(Debug)]
pub struct FlowNet {
    topo: Arc<Topology>,
    params: NetworkParams,
    capacities: Vec<f64>,
    flows: BTreeMap<u64, Flow>,
    next_id: u64,
    clock: SimTime,
}

impl FlowNet {
    /// Build the resource graph for `topo`: TX/RX per node, up/down per
    /// rack, up/down per cloud.
    ///
    /// # Panics
    /// Panics if `params` fails [`NetworkParams::validate`].
    pub fn new(topo: Arc<Topology>, params: NetworkParams) -> Self {
        params.validate();
        let n = topo.num_nodes();
        let r = topo.num_racks();
        let c = topo.num_clouds();
        let mut capacities = Vec::with_capacity(2 * (n + r + c));
        capacities.extend(std::iter::repeat_n(params.nic_mbps, 2 * n));
        capacities.extend(std::iter::repeat_n(params.rack_uplink_mbps, 2 * r));
        capacities.extend(std::iter::repeat_n(params.cloud_uplink_mbps, 2 * c));
        Self {
            topo,
            params,
            capacities,
            flows: BTreeMap::new(),
            next_id: 0,
            clock: SimTime::ZERO,
        }
    }

    /// The simulated clock of the last [`advance`](Self::advance).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    fn tx(&self, node: NodeId) -> usize {
        2 * node.index()
    }
    fn rx(&self, node: NodeId) -> usize {
        2 * node.index() + 1
    }
    fn rack_up(&self, rack: vc_topology::RackId) -> usize {
        2 * self.topo.num_nodes() + 2 * rack.index()
    }
    fn rack_down(&self, rack: vc_topology::RackId) -> usize {
        2 * self.topo.num_nodes() + 2 * rack.index() + 1
    }
    fn cloud_up(&self, cloud: vc_topology::CloudId) -> usize {
        2 * (self.topo.num_nodes() + self.topo.num_racks()) + 2 * cloud.index()
    }
    fn cloud_down(&self, cloud: vc_topology::CloudId) -> usize {
        2 * (self.topo.num_nodes() + self.topo.num_racks()) + 2 * cloud.index() + 1
    }

    /// The path (resources, one-way latency, per-flow rate ceiling)
    /// between nodes. The ceiling models the TCP window/RTT limit of one
    /// connection at that distance tier.
    fn path(&self, src: NodeId, dst: NodeId) -> (Vec<usize>, u64, f64) {
        if src == dst {
            return (vec![], 0, self.params.intra_node_mbps);
        }
        let mut res = vec![self.tx(src), self.rx(dst)];
        let latency;
        let flow_cap;
        if self.topo.same_rack(src, dst) {
            latency = self.params.same_rack_latency_us;
            flow_cap = self.params.same_rack_flow_mbps;
        } else {
            res.push(self.rack_up(self.topo.rack_of(src)));
            res.push(self.rack_down(self.topo.rack_of(dst)));
            if self.topo.same_cloud(src, dst) {
                latency = self.params.cross_rack_latency_us;
                flow_cap = self.params.cross_rack_flow_mbps;
            } else {
                res.push(self.cloud_up(self.topo.cloud_of(src)));
                res.push(self.cloud_down(self.topo.cloud_of(dst)));
                latency = self.params.cross_cloud_latency_us;
                flow_cap = self.params.cross_cloud_flow_mbps;
            }
        }
        (res, latency, flow_cap)
    }

    /// Begin a transfer of `bytes` from `src` to `dst` at time `now`;
    /// `token` is handed back on completion. Zero-byte flows still pay the
    /// path latency.
    ///
    /// # Panics
    /// Panics if `now` precedes the net's clock.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        token: u64,
    ) -> FlowId {
        self.advance(now);
        let (resources, latency_us, rate_cap) = self.path(src, dst);
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                resources,
                rate_cap,
                remaining_latency_us: latency_us as f64,
                remaining_bytes: bytes as f64,
                rate: 0.0,
                token,
            },
        );
        self.recompute_rates();
        FlowId(id)
    }

    /// Advance the fluid model to `now`, draining latency then bytes at
    /// the current rates.
    ///
    /// # Panics
    /// Panics if `now` precedes the net's clock.
    pub fn advance(&mut self, now: SimTime) {
        assert!(now >= self.clock, "FlowNet clock moving backwards");
        let elapsed = (now - self.clock).as_micros() as f64;
        self.clock = now;
        if elapsed == 0.0 {
            return;
        }
        for flow in self.flows.values_mut() {
            let lat = flow.remaining_latency_us.min(elapsed);
            flow.remaining_latency_us -= lat;
            let active = elapsed - lat;
            if active > 0.0 && flow.rate > 0.0 {
                flow.remaining_bytes = (flow.remaining_bytes - flow.rate * active).max(0.0);
            }
        }
    }

    /// Earliest predicted completion across all active flows at current
    /// rates, or `None` when idle. Rounded *up* to the next microsecond so
    /// a wake-up scheduled at this time is guaranteed to observe the
    /// completion.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.flows
            .values()
            .filter_map(|f| {
                let transfer_us = if f.remaining_bytes <= BYTE_EPS {
                    0.0
                } else if f.rate > 0.0 {
                    f.remaining_bytes / f.rate
                } else {
                    return None; // starved flow: wait for a rate change
                };
                let us = (f.remaining_latency_us + transfer_us).ceil() as u64;
                Some(self.clock + SimTime::from_micros(us))
            })
            .min()
    }

    /// Advance to `now` and remove every flow that has finished, returning
    /// `(id, token)` pairs in flow-creation order.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<(FlowId, u64)> {
        self.advance(now);
        let done: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining_bytes <= BYTE_EPS && f.remaining_latency_us <= 0.0)
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::with_capacity(done.len());
        for id in done {
            let flow = self.flows.remove(&id).expect("flow disappeared");
            out.push((FlowId(id), flow.token));
        }
        if !out.is_empty() {
            self.recompute_rates();
        }
        out
    }

    /// Analytic lower bound for one isolated transfer: path latency plus
    /// bytes over the path's narrowest link. Useful for tests and quick
    /// estimates.
    pub fn isolated_transfer_time(&self, src: NodeId, dst: NodeId, bytes: u64) -> SimTime {
        let (resources, latency_us, rate_cap) = self.path(src, dst);
        let bottleneck = resources
            .iter()
            .map(|&r| self.capacities[r])
            .fold(rate_cap, f64::min);
        let us = latency_us as f64 + bytes as f64 / bottleneck;
        SimTime::from_micros(us.ceil() as u64)
    }

    fn recompute_rates(&mut self) {
        // Model each finite per-flow ceiling as a dedicated single-flow
        // resource *inside* the max-min computation, so bandwidth a
        // capped flow cannot use is redistributed to its competitors
        // rather than stranded.
        let mut capacities = self.capacities.clone();
        let paths: Vec<Vec<usize>> = self
            .flows
            .values()
            .map(|f| {
                let mut path = f.resources.clone();
                if f.rate_cap.is_finite() {
                    path.push(capacities.len());
                    capacities.push(f.rate_cap);
                }
                path
            })
            .collect();
        let rates = max_min_fair_share(&capacities, &paths);
        for (flow, rate) in self.flows.values_mut().zip(rates) {
            flow.rate = rate.min(flow.rate_cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_topology::{generate, DistanceTiers};

    fn net() -> FlowNet {
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::default()));
        FlowNet::new(topo, NetworkParams::default())
    }

    fn run_to_completion(net: &mut FlowNet) -> Vec<(SimTime, u64)> {
        let mut out = vec![];
        while let Some(t) = net.next_event_time() {
            for (_, token) in net.take_completed(t) {
                out.push((t, token));
            }
        }
        out
    }

    #[test]
    fn single_intra_rack_flow_nic_limited() {
        let mut n = net();
        // 119 MB over a 119 MB/s NIC = 1s + 100µs latency.
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 119_000_000, 7);
        let done = run_to_completion(&mut n);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 7);
        let t = done[0].0;
        let expect = n.isolated_transfer_time(NodeId(0), NodeId(1), 119_000_000);
        assert_eq!(t, expect);
        assert!((t.as_secs_f64() - 1.0001).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn same_node_flow_memory_speed() {
        let mut n = net();
        n.start_flow(SimTime::ZERO, NodeId(2), NodeId(2), 4_000_000, 1);
        let done = run_to_completion(&mut n);
        // 4 MB at 4000 MB/s = 1 ms, zero latency.
        assert_eq!(done[0].0, SimTime::from_micros(1_000));
    }

    #[test]
    fn two_flows_share_sender_nic() {
        let mut n = net();
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 119_000_000, 1);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 119_000_000, 2);
        let done = run_to_completion(&mut n);
        assert_eq!(done.len(), 2);
        // Each gets half the TX NIC -> ~2s.
        let last = done.last().unwrap().0;
        assert!((last.as_secs_f64() - 2.0001).abs() < 1e-2, "last = {last}");
    }

    #[test]
    fn cross_rack_flows_capped_per_flow() {
        let mut n = net();
        // 3 senders in rack 0 to rack 1: the per-flow ceiling is 40 MB/s
        // and the shared 119 MB/s uplink allows 119/3 ≈ 39.7 MB/s each, so
        // the uplink share binds: 119 MB / 39.7 MB/s ≈ 3.0 s.
        for (i, src) in [0u32, 1, 2].into_iter().enumerate() {
            n.start_flow(
                SimTime::ZERO,
                NodeId(src),
                NodeId(3 + src),
                119_000_000,
                i as u64,
            );
        }
        let done = run_to_completion(&mut n);
        let last = done.last().unwrap().0;
        assert!((last.as_secs_f64() - 3.0003).abs() < 1e-2, "last = {last}");
        // A single cross-rack flow in isolation is capped at 40 MB/s.
        let mut solo = net();
        solo.start_flow(SimTime::ZERO, NodeId(0), NodeId(3), 119_000_000, 0);
        let done = run_to_completion(&mut solo);
        assert!(
            (done[0].0.as_secs_f64() - 2.9753).abs() < 1e-2,
            "solo = {}",
            done[0].0
        );
    }

    #[test]
    fn uplink_saturates_with_many_cross_rack_flows() {
        // 3 nodes per rack is too few to saturate 476; shrink the uplink.
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::default()));
        let params = NetworkParams {
            rack_uplink_mbps: 60.0,
            ..NetworkParams::default()
        };
        let mut n = FlowNet::new(topo, params);
        for i in 0..3u32 {
            n.start_flow(
                SimTime::ZERO,
                NodeId(i),
                NodeId(3 + i),
                60_000_000,
                u64::from(i),
            );
        }
        // 3 flows share the 60 MB/s uplink: 20 MB/s each -> ~3 s.
        let done = run_to_completion(&mut n);
        let last = done.last().unwrap().0;
        assert!((last.as_secs_f64() - 3.0003).abs() < 1e-2, "last = {last}");
    }

    #[test]
    fn oversubscribed_uplink_slows_cross_rack() {
        // Compare 5 parallel intra-rack flows vs 5 cross-rack flows from
        // distinct senders: uplink (476) < 5 × NIC (595).
        let topo = Arc::new(generate::uniform(2, 5, DistanceTiers::default()));
        let mut intra = FlowNet::new(Arc::clone(&topo), NetworkParams::default());
        let mut cross = FlowNet::new(topo, NetworkParams::default());
        for i in 0..5u32 {
            // intra: node i -> node (i+1)%5 (same rack, distinct NIC pairs? receivers overlap)
            intra.start_flow(
                SimTime::ZERO,
                NodeId(i),
                NodeId((i + 1) % 5),
                50_000_000,
                u64::from(i),
            );
            cross.start_flow(
                SimTime::ZERO,
                NodeId(i),
                NodeId(5 + i),
                50_000_000,
                u64::from(i),
            );
        }
        let t_intra = run_to_completion(&mut intra).last().unwrap().0;
        let t_cross = run_to_completion(&mut cross).last().unwrap().0;
        assert!(
            t_cross > t_intra,
            "cross-rack {t_cross} should be slower than intra-rack {t_intra}"
        );
    }

    #[test]
    fn zero_byte_flow_costs_latency_only() {
        let mut n = net();
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(4), 0, 9);
        let done = run_to_completion(&mut n);
        assert_eq!(done[0].0, SimTime::from_micros(300)); // cross-rack latency
    }

    #[test]
    fn staggered_starts_rate_adjustment() {
        let mut n = net();
        // Flow A alone for 0.5s at 119 MB/s, then B joins; both share TX.
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 119_000_000, 1);
        n.start_flow(
            SimTime::from_millis(500),
            NodeId(0),
            NodeId(2),
            119_000_000,
            2,
        );
        let done = run_to_completion(&mut n);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].1, 1);
        // A: 0.5s alone (59.5MB) + remainder shared at 59.5 MB/s -> ~1.5s total.
        assert!(
            (done[0].0.as_secs_f64() - 1.5).abs() < 0.02,
            "A at {}",
            done[0].0
        );
        // B: ~119MB at mixed rates, finishes ~2.0s
        assert!(
            (done[1].0.as_secs_f64() - 2.0).abs() < 0.02,
            "B at {}",
            done[1].0
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut n = net();
            for i in 0..8u64 {
                n.start_flow(
                    SimTime::from_micros(i * 137),
                    NodeId((i % 6) as u32),
                    NodeId(((i + 3) % 6) as u32),
                    1_000_000 + i * 50_000,
                    i,
                );
            }
            run_to_completion(&mut n)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "clock moving backwards")]
    fn backwards_clock_panics() {
        let mut n = net();
        n.advance(SimTime::from_secs(1));
        n.advance(SimTime::ZERO);
    }

    #[test]
    fn cross_cloud_path_uses_wan() {
        let topo = Arc::new(generate::multi_cloud(
            2,
            1,
            2,
            DistanceTiers::new(1, 2, 8).unwrap(),
        ));
        let n = FlowNet::new(topo, NetworkParams::default());
        // WAN latency dominates.
        let t = n.isolated_transfer_time(NodeId(0), NodeId(3), 0);
        assert_eq!(t, SimTime::from_micros(10_000));
        // A single cross-cloud connection is capped at 10 MB/s.
        let t2 = n.isolated_transfer_time(NodeId(0), NodeId(3), 119_000_000);
        assert!((t2.as_secs_f64() - 11.91).abs() < 0.01, "t2 = {t2}");
    }
}
