//! Link-level telemetry types: the catalog of physical link resources
//! and the per-link accumulators/samples [`FlowNet`](crate::FlowNet)
//! maintains.
//!
//! Resource indices follow the `FlowNet` layout: per-node TX/RX pairs,
//! then per-rack up/down pairs, then per-cloud up/down pairs. All
//! accumulators are *always on* (they cost a few adds per advance), so
//! results are identical whether or not a recorder is attached; only the
//! time-series [`LinkSample`] buffer is gated behind
//! [`FlowNet::set_sampling`](crate::FlowNet::set_sampling).

/// Traffic class of a flow, used for exact per-link byte attribution.
///
/// Callers tag flows via
/// [`FlowNet::start_flow_classed`](crate::FlowNet::start_flow_classed);
/// the plain `start_flow` defaults to [`FlowClass::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowClass {
    /// Map-side input read (block fetch from a remote replica).
    MapRead,
    /// Shuffle fetch (map output partition → reducer).
    Shuffle,
    /// Reducer output write (commit replica traffic).
    OutputWrite,
    /// Unclassified traffic.
    #[default]
    Other,
}

impl FlowClass {
    /// Stable lowercase label (`map-read`, `shuffle`, `output-write`,
    /// `other`).
    pub fn label(self) -> &'static str {
        match self {
            FlowClass::MapRead => "map-read",
            FlowClass::Shuffle => "shuffle",
            FlowClass::OutputWrite => "output-write",
            FlowClass::Other => "other",
        }
    }
}

/// Which layer of the physical topology a link resource belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// A node's transmit NIC half.
    NodeTx,
    /// A node's receive NIC half.
    NodeRx,
    /// A rack's uplink into the core (rack → core direction).
    RackUp,
    /// A rack's downlink from the core (core → rack direction).
    RackDown,
    /// A cloud's WAN uplink.
    CloudUp,
    /// A cloud's WAN downlink.
    CloudDown,
}

impl LinkClass {
    /// Stable lowercase label (`node-tx`, `rack-up`, …) used in metric
    /// names and span attributes.
    pub fn label(self) -> &'static str {
        match self {
            LinkClass::NodeTx => "node-tx",
            LinkClass::NodeRx => "node-rx",
            LinkClass::RackUp => "rack-up",
            LinkClass::RackDown => "rack-down",
            LinkClass::CloudUp => "cloud-up",
            LinkClass::CloudDown => "cloud-down",
        }
    }
}

/// Static description of one link resource in the flow network.
#[derive(Debug, Clone)]
pub struct LinkInfo {
    /// Stable name, e.g. `node3.tx`, `rack1.up`, `cloud0.down`.
    pub name: String,
    /// The topology layer this link belongs to.
    pub class: LinkClass,
    /// Link capacity in MB/s (== bytes/µs).
    pub capacity_mbps: f64,
}

/// Always-on accumulators for one link resource.
///
/// `bytes_total` is the time-integral of the fluid model's drained
/// bytes (an `f64`, exact up to fp rounding); the per-class byte
/// counters are *exact integers*, attributed when a flow completes:
/// every link on a completed flow's path carried exactly the flow's
/// requested byte count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkStats {
    /// Total bytes carried (time-integral of per-flow drain).
    pub bytes_total: f64,
    /// Exact bytes from [`FlowClass::Shuffle`] flows (at completion).
    pub shuffle_bytes: u64,
    /// Exact bytes from [`FlowClass::MapRead`] flows (at completion).
    pub map_read_bytes: u64,
    /// Exact bytes from [`FlowClass::OutputWrite`] flows (at completion).
    pub output_bytes: u64,
    /// Exact bytes from [`FlowClass::Other`] flows (at completion).
    pub other_bytes: u64,
    /// Microseconds during which ≥ 1 flow was actively draining bytes
    /// through this link (union of active-transfer windows).
    pub busy_us: f64,
    /// Peak instantaneous utilization (Σ flow rate / capacity) observed
    /// at any rate recomputation.
    pub peak_utilization: f64,
    /// Peak concurrent flow count observed at any rate recomputation.
    pub peak_active_flows: u32,
    /// Number of rate recomputations in which this link was *binding* —
    /// it froze at least one flow's max-min rate.
    pub binding_events: u64,
}

impl LinkStats {
    /// Exact completed bytes for one traffic class.
    pub fn class_bytes(&self, class: FlowClass) -> u64 {
        match class {
            FlowClass::MapRead => self.map_read_bytes,
            FlowClass::Shuffle => self.shuffle_bytes,
            FlowClass::OutputWrite => self.output_bytes,
            FlowClass::Other => self.other_bytes,
        }
    }

    /// Sum of the exact per-class byte counters.
    pub fn completed_bytes(&self) -> u64 {
        self.shuffle_bytes + self.map_read_bytes + self.output_bytes + self.other_bytes
    }
}

/// One utilization sample, emitted at a rate recomputation for every
/// link whose `(utilization, active flows, binding)` state changed.
///
/// Only produced while sampling is enabled
/// ([`FlowNet::set_sampling`](crate::FlowNet::set_sampling)); drain with
/// [`FlowNet::drain_link_samples`](crate::FlowNet::drain_link_samples).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSample {
    /// Simulation time of the recomputation, µs.
    pub t_us: u64,
    /// Resource index into [`FlowNet::links`](crate::FlowNet::links).
    pub link: usize,
    /// Instantaneous utilization, Σ flow rate / capacity ∈ [0, 1].
    pub utilization: f64,
    /// Number of flows routed through this link.
    pub active_flows: u32,
    /// Whether this link froze at least one flow's rate in the max-min
    /// solve (it is a bottleneck right now).
    pub binding: bool,
}

/// Why a completed flow's rate was what it was at the last rate
/// recomputation before it finished — the flow's bottleneck attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Frozen by the physical link with this resource index (see
    /// [`FlowNet::links`](crate::FlowNet::links)).
    Link(usize),
    /// Frozen by its own per-connection rate ceiling (TCP window/RTT
    /// tier or same-node memory bandwidth), not by any shared link.
    RateCap,
    /// Never constrained — an empty path with an infinite rate ceiling.
    Unconstrained,
}
