//! Batch-vs-incremental solver equivalence under random interleavings.
//!
//! Drives two [`FlowNet`]s — one per [`SolverMode`] — through identical
//! random sequences of `start_flow` / `advance` / `take_completed` and
//! asserts they are observably indistinguishable at every step:
//! bit-identical rates, bindings, completion times, link telemetry
//! (byte integrals, busy time, peaks, binding events), and utilization
//! samples. Also asserts the incremental solver's effort counters are
//! deterministic across reruns of the same sequence (they feed the
//! `prof.solver.*` CI regression gate).

use proptest::prelude::*;
use std::sync::Arc;
use vc_des::SimTime;
use vc_netsim::{FlowClass, FlowNet, NetworkParams, SolverMode, SolverStats};
use vc_topology::{generate, DistanceTiers, NodeId};

/// One scripted step: advance time by `dt_us`, then either start a flow
/// or drain completions.
#[derive(Debug, Clone)]
enum Op {
    Start {
        src: u32,
        dst: u32,
        kilobytes: u64,
        class_sel: u8,
    },
    Take {
        dt_us: u64,
    },
    /// Drain exactly at the net's own predicted next event (if any).
    TakeAtNext,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0u8..6,
            0u32..64,
            0u32..64,
            1u64..5_000,
            0u64..400_000,
            0u8..4,
        ),
        1usize..40,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, src, dst, kilobytes, dt_us, class_sel)| match kind {
                // Bias towards starts so nets actually fill up.
                0..=2 => Op::Start {
                    src,
                    dst,
                    kilobytes,
                    class_sel,
                },
                3..=4 => Op::Take { dt_us },
                _ => Op::TakeAtNext,
            })
            .collect()
    })
}

fn classes(sel: u8) -> FlowClass {
    match sel {
        0 => FlowClass::MapRead,
        1 => FlowClass::Shuffle,
        2 => FlowClass::OutputWrite,
        _ => FlowClass::Other,
    }
}

/// A paper-shaped 2-rack topology; `dead_uplink` zeroes rack uplinks to
/// exercise starvation paths in both solvers.
fn mk_net(mode: SolverMode, dead_uplink: bool) -> FlowNet {
    let topo = Arc::new(generate::uniform(2, 4, DistanceTiers::default()));
    let params = NetworkParams {
        rack_uplink_mbps: if dead_uplink { 0.0 } else { 60.0 },
        ..NetworkParams::default()
    };
    let mut net = FlowNet::with_solver(topo, params, mode);
    net.set_sampling(true);
    net
}

/// Everything observable about a net, with rates as raw bits so the
/// comparison is exact (not `f64` partial-eq semantics).
fn observe(net: &FlowNet) -> impl std::fmt::Debug + PartialEq {
    let flows: Vec<_> = net
        .active_flow_snapshot()
        .into_iter()
        .map(|f| {
            (
                f.id,
                f.token,
                f.rate.to_bits(),
                f.remaining_bytes.to_bits(),
                f.bottleneck,
            )
        })
        .collect();
    let links: Vec<_> = net
        .link_stats()
        .iter()
        .map(|s| {
            (
                s.bytes_total.to_bits(),
                s.busy_us.to_bits(),
                s.peak_utilization.to_bits(),
                s.peak_active_flows,
                s.binding_events,
                s.map_read_bytes,
                s.shuffle_bytes,
                s.output_bytes,
                s.other_bytes,
            )
        })
        .collect();
    (flows, links, net.next_event_time(), net.starved_flows())
}

/// Marker recorded when a take tripped the idle-with-starved-flows
/// debug assertion (an expected outcome on dead-link topologies — and
/// one that must occur at identical steps in both solver modes).
const STARVATION_PANIC: u64 = u64::MAX;

/// `take_completed` with the starvation debug assertion folded into the
/// observable outcome: the assertion runs *after* all state mutation,
/// so the net stays consistent and the panic becomes a comparable
/// marker. Any other panic is re-raised.
fn take(net: &mut FlowNet, now: SimTime) -> Vec<u64> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| net.take_completed(now))) {
        Ok(done) => done.into_iter().map(|c| c.token).collect(),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            assert!(
                msg.contains("starved at rate 0"),
                "unexpected panic in take_completed: {msg}"
            );
            vec![STARVATION_PANIC]
        }
    }
}

/// Run the scripted sequence against one net, returning each take's
/// completions (or starvation-panic marker). The caller compares these
/// (and per-step observations) across solver modes.
fn drive(
    net: &mut FlowNet,
    script: &[Op],
    observations: &mut Vec<String>,
) -> Vec<(SimTime, Vec<u64>)> {
    let nodes = 8u32;
    let mut now = SimTime::ZERO;
    let mut token = 0u64;
    let mut takes = Vec::new();
    for op in script {
        match op {
            Op::Start {
                src,
                dst,
                kilobytes,
                class_sel,
            } => {
                token += 1;
                net.start_flow_classed(
                    now,
                    NodeId(src % nodes),
                    NodeId(dst % nodes),
                    kilobytes * 1_000,
                    token,
                    classes(*class_sel),
                );
            }
            Op::Take { dt_us } => {
                now += SimTime::from_micros(*dt_us);
                takes.push((now, take(net, now)));
            }
            Op::TakeAtNext => {
                if let Some(t) = net.next_event_time() {
                    now = t;
                    takes.push((now, take(net, now)));
                }
            }
        }
        observations.push(format!("{:?}", observe(net)));
    }
    // Drain whatever is drainable so completion times to the very end
    // are part of the comparison.
    while let Some(t) = net.next_event_time() {
        now = t;
        takes.push((now, take(net, now)));
        observations.push(format!("{:?}", observe(net)));
    }
    takes
}

/// `SolverStats` with the host-wall-clock field cleared: everything else
/// must be deterministic.
fn deterministic(stats: &SolverStats) -> SolverStats {
    SolverStats {
        wall_us: 0,
        ..stats.clone()
    }
}

proptest! {
    /// Batch and incremental nets are observably indistinguishable at
    /// every step of a random interleaving: rates, bindings, remaining
    /// bytes (all bit-exact), link-stat integrals, peaks, binding
    /// events, class-byte attribution, completion batches and their
    /// times, utilization samples, and starvation reporting.
    #[test]
    fn interleavings_indistinguishable(script in ops()) {
        let mut batch = mk_net(SolverMode::Batch, false);
        let mut inc = mk_net(SolverMode::Incremental, false);
        let mut obs_batch = Vec::new();
        let mut obs_inc = Vec::new();
        let takes_batch = drive(&mut batch, &script, &mut obs_batch);
        let takes_inc = drive(&mut inc, &script, &mut obs_inc);
        prop_assert_eq!(takes_batch, takes_inc);
        for (step, (b, i)) in obs_batch.iter().zip(&obs_inc).enumerate() {
            prop_assert_eq!(b, i, "observation diverged at step {}", step);
        }
        prop_assert_eq!(obs_batch.len(), obs_inc.len());
        prop_assert_eq!(batch.drain_link_samples(), inc.drain_link_samples());
        // Effort counters differ by design (that is the point of the
        // incremental solver), but the *workload* accounting must agree.
        let sb = batch.solver_stats();
        let si = inc.solver_stats();
        prop_assert_eq!(sb.solves, si.solves);
        prop_assert_eq!(sb.completion_batches, si.completion_batches);
        prop_assert_eq!(sb.completion_batch_flows, si.completion_batch_flows);
        prop_assert_eq!(sb.flows_skipped_total, 0, "batch mode never skips");
        prop_assert!(si.flows_total <= sb.flows_total);
        prop_assert!(si.iterations_total <= sb.iterations_total);
        prop_assert!(si.links_touched_total <= sb.links_touched_total);
        prop_assert_eq!(
            si.flows_total + si.flows_skipped_total,
            sb.flows_total,
            "skipped + solved must account for every active flow per solve"
        );
    }

    /// Same equivalence over a topology with failed (zero-capacity)
    /// rack uplinks: cross-rack flows starve identically in both modes
    /// and the nets still agree on everything observable.
    #[test]
    fn interleavings_indistinguishable_with_dead_links(script in ops()) {
        let mut batch = mk_net(SolverMode::Batch, true);
        let mut inc = mk_net(SolverMode::Incremental, true);
        let mut obs_batch = Vec::new();
        let mut obs_inc = Vec::new();
        let takes_batch = drive(&mut batch, &script, &mut obs_batch);
        let takes_inc = drive(&mut inc, &script, &mut obs_inc);
        prop_assert_eq!(takes_batch, takes_inc);
        for (step, (b, i)) in obs_batch.iter().zip(&obs_inc).enumerate() {
            prop_assert_eq!(b, i, "observation diverged at step {}", step);
        }
        prop_assert_eq!(batch.drain_link_samples(), inc.drain_link_samples());
    }

    /// The incremental solver's effort counters are deterministic: the
    /// same script yields identical `SolverStats` (wall time aside) on
    /// every rerun — the contract the `vc profile` CI gate relies on.
    #[test]
    fn incremental_effort_deterministic(script in ops()) {
        let run = || {
            let mut net = mk_net(SolverMode::Incremental, false);
            let mut obs = Vec::new();
            drive(&mut net, &script, &mut obs);
            deterministic(net.solver_stats())
        };
        prop_assert_eq!(run(), run());
    }
}
