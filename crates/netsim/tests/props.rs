//! Property tests for max-min fair sharing and flow conservation.

use proptest::prelude::*;
use std::sync::Arc;
use vc_des::SimTime;
use vc_netsim::{max_min_fair_share, FlowNet, NetworkParams};
use vc_topology::{generate, DistanceTiers, NodeId};

fn flows_and_caps() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
    (1usize..6).prop_flat_map(|nr| {
        (
            proptest::collection::vec(1u32..1000, nr..=nr),
            proptest::collection::vec(proptest::collection::vec(0usize..nr, 1..=nr.min(3)), 0..8),
        )
            .prop_map(|(caps, mut flows)| {
                for f in &mut flows {
                    f.sort_unstable();
                    f.dedup();
                }
                (caps.into_iter().map(f64::from).collect(), flows)
            })
    })
}

proptest! {
    /// No resource is over-committed and every flow is bottlenecked
    /// somewhere (Pareto efficiency of max-min fairness).
    #[test]
    fn fair_share_feasible_and_pareto((caps, flows) in flows_and_caps()) {
        let rates = max_min_fair_share(&caps, &flows);
        prop_assert_eq!(rates.len(), flows.len());
        for (r, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.contains(&r))
                .map(|(_, &rate)| rate)
                .sum();
            prop_assert!(used <= cap + 1e-6, "resource {r}: {used} > {cap}");
        }
        for (f, fr) in flows.iter().enumerate() {
            prop_assert!(rates[f] > 0.0, "flow {f} starved with positive capacities");
            let saturated = fr.iter().any(|&r| {
                let used: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| g.contains(&r))
                    .map(|(_, &rate)| rate)
                    .sum();
                (used - caps[r]).abs() < 1e-6
            });
            prop_assert!(saturated, "flow {f} not bottlenecked");
        }
    }

    /// Increasing any capacity never reduces any flow's rate (max-min
    /// monotonicity).
    #[test]
    fn fair_share_monotone_in_capacity((caps, flows) in flows_and_caps(), which in 0usize..6, bump in 1u32..100) {
        prop_assume!(!flows.is_empty());
        let rates = max_min_fair_share(&caps, &flows);
        let mut bigger = caps.clone();
        let idx = which % caps.len();
        bigger[idx] += f64::from(bump);
        let rates2 = max_min_fair_share(&bigger, &flows);
        // The *minimum* rate cannot decrease (max-min lexicographic optimality).
        let min1 = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let min2 = rates2.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(min2 >= min1 - 1e-6);
    }

    /// Flow-level simulation conserves bytes: each transfer completes at
    /// exactly the moment its integral of rate equals its size (checked
    /// against an independent event-free replay at constant rates for a
    /// single flow).
    #[test]
    fn single_flow_completion_matches_analytic(
        src in 0u32..6,
        dst in 0u32..6,
        megabytes in 1u64..200,
    ) {
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::default()));
        let mut net = FlowNet::new(Arc::clone(&topo), NetworkParams::default());
        let bytes = megabytes * 1_000_000;
        net.start_flow(SimTime::ZERO, NodeId(src), NodeId(dst), bytes, 1);
        let predicted = net.isolated_transfer_time(NodeId(src), NodeId(dst), bytes);
        let mut done = vec![];
        while let Some(t) = net.next_event_time() {
            done.extend(net.take_completed(t).into_iter().map(|c| (t, c.token)));
        }
        prop_assert_eq!(done.len(), 1);
        let t = done[0].0;
        // within 2µs of the analytic value (integer rounding of wake-ups)
        let diff = t.as_micros().abs_diff(predicted.as_micros());
        prop_assert!(diff <= 2, "simulated {t} vs analytic {predicted}");
    }

    /// With N parallel same-path flows, total completion time scales ~N
    /// (all share one bottleneck) and the net drains completely.
    #[test]
    fn parallel_flows_drain(count in 1usize..6) {
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::default()));
        let mut net = FlowNet::new(topo, NetworkParams::default());
        for i in 0..count {
            net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 10_000_000, i as u64);
        }
        let mut completions = 0;
        while let Some(t) = net.next_event_time() {
            completions += net.take_completed(t).len();
        }
        prop_assert_eq!(completions, count);
        prop_assert_eq!(net.active_flows(), 0);
    }
}
