//! Streaming-vs-memory recorder parity over random simulate runs.
//!
//! The bounded-memory [`StreamingRecorder`] spills every recorder op to
//! a JSONL sink as it happens; replaying that stream must reproduce the
//! [`MemRecorder`] view of the *same* run exactly — same outcomes, same
//! windowed `ts.*` series, same metrics (modulo the self-profiling
//! wall-clock counters, which measure the host, not the simulation).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use vc_cloudsim::sim::{run_recorded, PolicyMode, SimConfig};
use vc_cloudsim::{ArrivalProcess, CloudRequest, ServiceTime};
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{JobConfig, Workload};
use vc_model::workload::RequestProfile;
use vc_model::{ClusterState, VmCatalog};
use vc_obs::{replay_jsonl, MemRecorder, MetricsSnapshot, StreamingRecorder};
use vc_placement::online::OnlineHeuristic;
use vc_topology::{generate, DistanceTiers};

fn state() -> ClusterState {
    let topo = Arc::new(generate::uniform(3, 4, DistanceTiers::paper_experiment()));
    let cat = Arc::new(VmCatalog::ec2_table1());
    ClusterState::uniform_capacity(topo, cat, 2)
}

fn trace(count: usize, seed: u64) -> Vec<CloudRequest> {
    let p = ArrivalProcess {
        rate_per_s: 1.0,
        profile: RequestProfile::standard(),
        service: ServiceTime::UniformMs(2_000, 8_000),
    };
    p.generate(count, 3, &mut StdRng::seed_from_u64(seed))
}

fn cfg(count: usize, seed: u64, window_us: u64, mapreduce: bool, health: bool) -> SimConfig {
    let mut c = SimConfig::new(
        trace(count, seed),
        PolicyMode::Individual(Box::new(OnlineHeuristic)),
        seed,
    )
    .with_timeseries(window_us);
    if health {
        c = c.with_health(vc_obs::HealthPolicy::default());
    }
    if mapreduce {
        c = c.with_service(vc_cloudsim::sim::ServiceModel::MapReduce {
            job: JobConfig {
                workload: Workload::wordcount(),
                input_mb: 4.0 * 64.0,
                split_mb: 64.0,
                num_reducers: 1,
                replication: 2,
            },
            params: SimParams::default(),
        });
    }
    c
}

/// Drop the host-wall-clock self-profiling metrics: they time the
/// simulator process, so two runs of the same simulation legitimately
/// differ there. Everything else must match bit-for-bit.
fn strip_host_metrics(mut snap: MetricsSnapshot) -> MetricsSnapshot {
    snap.counters.retain(|k, _| !k.ends_with(".wall_us"));
    snap.gauges.retain(|k, _| k != "prof.rss_peak_kb");
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For a random queue simulation, the replayed stream carries the
    /// same simulation-derived telemetry as the in-memory recorder, and
    /// neither recorder perturbs the simulation itself.
    #[test]
    fn stream_replay_matches_mem_over_random_runs(
        count in 3usize..12,
        seed in any::<u64>(),
        window_s in 2u64..9,
        mapreduce in any::<bool>(),
        health in any::<bool>(),
    ) {
        let window_us = window_s * 1_000_000;
        let s = state();

        let mem = MemRecorder::new();
        let mem_result = run_recorded(&s, cfg(count, seed, window_us, mapreduce, health), &mem);

        let stream = StreamingRecorder::new(Vec::new());
        let stream_result = run_recorded(&s, cfg(count, seed, window_us, mapreduce, health), &stream);
        let bytes = stream.finish().expect("Vec sink cannot fail");
        let merged = replay_jsonl(&String::from_utf8(bytes).expect("UTF-8 stream"))
            .expect("own stream replays");

        prop_assert_eq!(mem_result.outcomes, stream_result.outcomes);
        prop_assert_eq!(merged.open_spans, 0);
        // Windowed ts.* series are emitted in sim-time order, so they
        // must survive the stream untouched. Per-job series (link
        // utilization) interleave across jobs in emission order while
        // replay merges by sim time — compare those as time-sorted
        // multisets.
        let mem_series = mem.counter_series();
        for (name, replayed) in &merged.counter_series {
            let original = &mem_series[name];
            if name.starts_with("ts.") {
                prop_assert_eq!(original, replayed, "ts series {} reordered", name);
            } else {
                let mut sorted = original.clone();
                sorted.sort_by_key(|&(t, _)| t);
                prop_assert_eq!(&sorted, replayed, "series {} diverged", name);
            }
        }
        prop_assert_eq!(mem_series.len(), merged.counter_series.len());
        prop_assert_eq!(mem.track_names(), merged.track_names);
        prop_assert_eq!(
            strip_host_metrics(mem.metrics()),
            strip_host_metrics(merged.metrics)
        );
        prop_assert_eq!(mem.spans().len(), merged.spans.len());
        prop_assert_eq!(mem.events().len(), merged.events.len());
    }

    /// Health auditing is provably read-only: with the watchdog enabled,
    /// a random run produces identical outcomes, and the only metric
    /// names allowed to differ from a health-off run are the watchdog's
    /// own (`alert.*` counters and the `ts.health.*` window series).
    #[test]
    fn health_auditing_perturbs_nothing_but_alert_metrics(
        count in 3usize..12,
        seed in any::<u64>(),
        window_s in 2u64..9,
        mapreduce in any::<bool>(),
    ) {
        let window_us = window_s * 1_000_000;
        let s = state();

        let plain = MemRecorder::new();
        let plain_result = run_recorded(&s, cfg(count, seed, window_us, mapreduce, false), &plain);

        let audited = MemRecorder::new();
        let audited_result =
            run_recorded(&s, cfg(count, seed, window_us, mapreduce, true), &audited);

        // The simulation itself is untouched...
        prop_assert_eq!(&plain_result.outcomes, &audited_result.outcomes);
        // ...and so is the unaudited run without any recorder at all.
        let bare = vc_cloudsim::sim::run(&s, cfg(count, seed, window_us, mapreduce, true));
        prop_assert_eq!(&plain_result.outcomes, &bare.outcomes);

        // Metrics: strip the watchdog's own names, nothing else differs.
        let strip_health = |mut snap: MetricsSnapshot| {
            snap.counters.retain(|k, _| !k.starts_with("alert."));
            snap.gauges.retain(|k, _| !k.starts_with("ts.health."));
            snap
        };
        prop_assert_eq!(
            strip_host_metrics(strip_health(audited.metrics())),
            strip_host_metrics(plain.metrics())
        );
        let mut audited_series = audited.counter_series();
        audited_series.retain(|k, _| !k.starts_with("ts.health."));
        prop_assert_eq!(audited_series, plain.counter_series());
        // Every extra event is an alert; a healthy seeded run fires none,
        // so the event streams are identical too.
        let plain_events = plain.events().len();
        let alert_events = audited
            .events()
            .iter()
            .filter(|e| e.name.starts_with("alert."))
            .count();
        prop_assert_eq!(audited.events().len(), plain_events + alert_events);
    }
}
