//! Cloud request-queue simulation (paper §V-A).
//!
//! Simulates an IaaS cloud receiving virtual-cluster requests over time:
//! requests arrive (Poisson), wait in a FIFO queue when resources are
//! short, are placed by a pluggable [`vc_placement::PlacementPolicy`] (or
//! by Algorithm 2 in batched mode), hold their VMs for a random service
//! time, and release them. The paper's simulations — 3 racks × 10 nodes,
//! twenty random requests with random arrivals and completions — are one
//! [`SimConfig`] away.
//!
//! * [`arrivals`] — request/arrival/service-time generation;
//! * [`sim`] — the event loop and per-request outcomes;
//! * [`batch`] — rayon-parallel execution of many seeds for
//!   confidence-interval sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod batch;
pub mod sim;
pub mod trace;

pub use arrivals::{ArrivalProcess, CloudRequest, ServiceTime};
pub use sim::{PolicyMode, RequestOutcome, SimConfig, SimResult};
