//! Saving and loading request traces as JSON, so experiments can be
//! replayed byte-for-byte across machines and CLI runs.

use crate::arrivals::CloudRequest;
use std::fmt;
use std::path::Path;

/// Trace serialisation/IO failure.
#[derive(Debug)]
pub enum TraceError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(serde_json::Error),
    /// Ids are not dense `0..n` in order (the simulator requires it).
    BadIds,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "trace I/O error: {e}"),
            Self::Format(e) => write!(f, "trace format error: {e}"),
            Self::BadIds => write!(f, "trace request ids must be dense 0..n in arrival order"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        Self::Format(e)
    }
}

/// Serialise a trace to pretty JSON.
pub fn to_json(trace: &[CloudRequest]) -> String {
    serde_json::to_string_pretty(trace).expect("traces are plain data")
}

/// Parse a trace from JSON, validating dense ordered ids.
pub fn from_json(json: &str) -> Result<Vec<CloudRequest>, TraceError> {
    let trace: Vec<CloudRequest> = serde_json::from_str(json)?;
    for (i, r) in trace.iter().enumerate() {
        if r.id != i as u64 {
            return Err(TraceError::BadIds);
        }
    }
    Ok(trace)
}

/// Write a trace to a file.
pub fn save(trace: &[CloudRequest], path: impl AsRef<Path>) -> Result<(), TraceError> {
    std::fs::write(path, to_json(trace))?;
    Ok(())
}

/// Read a trace from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<CloudRequest>, TraceError> {
    from_json(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Vec<CloudRequest> {
        ArrivalProcess::paper_standard().generate(5, 3, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn json_roundtrip() {
        let trace = sample();
        let json = to_json(&trace);
        let back = from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn file_roundtrip() {
        let trace = sample();
        let path = std::env::temp_dir().join("affinity_vc_trace_test.json");
        save(&trace, &path).unwrap();
        let back = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(trace, back);
    }

    #[test]
    fn bad_ids_rejected() {
        let mut trace = sample();
        trace[0].id = 7;
        let json = to_json(&trace);
        assert!(matches!(from_json(&json), Err(TraceError::BadIds)));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(from_json("not json"), Err(TraceError::Format(_))));
        assert!(matches!(
            load("/nonexistent/path/trace.json"),
            Err(TraceError::Io(_))
        ));
    }

    #[test]
    fn wrong_shape_rejected() {
        // Top level must be an array of requests, not an object or scalar.
        assert!(matches!(from_json("{}"), Err(TraceError::Format(_))));
        assert!(matches!(from_json("42"), Err(TraceError::Format(_))));
        // Array elements must match the request schema.
        assert!(matches!(
            from_json(r#"[{"id": 0}]"#),
            Err(TraceError::Format(_))
        ));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(from_json("[]").unwrap(), vec![]);
    }

    #[test]
    fn reordered_ids_rejected() {
        let mut trace = sample();
        trace.swap(0, 1); // ids stay dense but leave arrival order
        let json = to_json(&trace);
        assert!(matches!(from_json(&json), Err(TraceError::BadIds)));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut trace = sample();
        trace[1].id = 0;
        let json = to_json(&trace);
        assert!(matches!(from_json(&json), Err(TraceError::BadIds)));
    }

    #[test]
    fn error_messages_name_the_failure() {
        let bad_ids = from_json(&to_json(&{
            let mut t = sample();
            t[0].id = 9;
            t
        }))
        .unwrap_err();
        assert!(bad_ids.to_string().contains("dense"));
        let format = from_json("[[]]").unwrap_err();
        assert!(format.to_string().contains("format"));
        let io = load("/nonexistent/path/trace.json").unwrap_err();
        assert!(io.to_string().contains("I/O"));
    }
}
