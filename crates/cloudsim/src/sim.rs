//! The request-queue event loop.

use crate::arrivals::CloudRequest;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use vc_des::{Engine, EventKind, SimTime};
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{JobConfig, VirtualCluster};
use vc_model::{Allocation, ClusterState};
use vc_obs::health::{self, rules, AlertSink, HealthMonitor, Severity, WindowHealthSample};
use vc_obs::{AttrValue, HealthPolicy, NoopRecorder, Recorder, SpanId, TrackId, WindowSampler};
use vc_placement::distance::distance_with_center;
use vc_placement::global::{self, Admission};
use vc_placement::online::ScanConfig;
use vc_placement::{PlacementError, PlacementPolicy};
use vc_topology::{NodeId, RackId, Topology};

/// Track-id stride between requests on a shared timeline: request `i`
/// owns tracks `STRIDE·(i+1) ..`, leaving track 0 for queue-level
/// counters. Large enough that an embedded MapReduce job (one lane per
/// VM) never spills into the next request's range.
const TRACK_STRIDE: u64 = 1024;

/// How queued requests are served.
pub enum PolicyMode {
    /// Serve the queue head with a per-request policy whenever resources
    /// allow (plain FIFO; this is how Algorithm 1 and all baselines run).
    Individual(Box<dyn PlacementPolicy>),
    /// At every arrival/departure run **Algorithm 2** over the whole
    /// queue: admit a batch, place with Algorithm 1 (scanning seeds per
    /// the [`ScanConfig`]), then apply the Theorem-2 exchange pass before
    /// committing.
    GlobalBatch(Admission, ScanConfig),
}

/// Where a served request's holding time comes from.
#[derive(Debug, Clone, Default)]
pub enum ServiceModel {
    /// Use the trace's pre-drawn [`CloudRequest::service_time`].
    #[default]
    Trace,
    /// Close the paper's loop: instantiate the placed allocation as a
    /// [`VirtualCluster`], run the given MapReduce job on it with the
    /// `vc-mapreduce` simulator, and hold the VMs for the measured
    /// runtime. Tighter placements finish sooner and release capacity
    /// earlier — affinity feeds back into queueing.
    MapReduce {
        /// The job every tenant runs.
        job: JobConfig,
        /// MapReduce/network simulation parameters.
        params: SimParams,
    },
}

/// Simulation inputs.
pub struct SimConfig {
    /// The request trace (see [`crate::arrivals::ArrivalProcess`]).
    pub requests: Vec<CloudRequest>,
    /// Placement strategy.
    pub mode: PolicyMode,
    /// Holding-time model.
    pub service: ServiceModel,
    /// Seed for stochastic placement policies.
    pub seed: u64,
    /// When set, sample the `ts.*` cloud-health time-series into
    /// fixed-width sim-time windows of this many microseconds (see
    /// `vc_obs::timeseries`). Pure observation: results are identical
    /// with it on or off, and it costs nothing unless a recorder is
    /// enabled.
    pub ts_window_us: Option<u64>,
    /// When set, run the cloud-health watchdog: cadenced invariant
    /// auditors inside the DES loop plus anomaly detectors over the
    /// `ts.*` windows (the latter require [`Self::ts_window_us`]).
    /// Violations emit structured `alert.*` events instead of panicking.
    /// Like sampling, the watchdog is read-only — results are
    /// bit-identical with it on or off — and idle without a recorder.
    pub health: Option<HealthPolicy>,
}

impl SimConfig {
    /// Trace-driven service times (the common case).
    pub fn new(requests: Vec<CloudRequest>, mode: PolicyMode, seed: u64) -> Self {
        Self {
            requests,
            mode,
            service: ServiceModel::Trace,
            seed,
            ts_window_us: None,
            health: None,
        }
    }

    /// Replace the holding-time model.
    pub fn with_service(mut self, service: ServiceModel) -> Self {
        self.service = service;
        self
    }

    /// Enable windowed `ts.*` time-series sampling on the given cadence.
    ///
    /// # Panics
    /// Panics if `window_us` is zero.
    pub fn with_timeseries(mut self, window_us: u64) -> Self {
        assert!(window_us > 0, "time-series window must be positive");
        self.ts_window_us = Some(window_us);
        self
    }

    /// Enable the cloud-health watchdog with the given policy.
    pub fn with_health(mut self, policy: HealthPolicy) -> Self {
        self.health = Some(policy);
        self
    }

    /// The placement-policy name this config runs under, for run
    /// manifests and reports.
    pub fn policy_name(&self) -> String {
        match &self.mode {
            PolicyMode::Individual(policy) => policy.name().to_string(),
            PolicyMode::GlobalBatch(admission, _) => format!("global-batch/{admission:?}"),
        }
    }

    /// Identity facts for a run manifest (see `vc_obs::manifest`):
    /// everything about this config that affects results, as sorted
    /// key/value pairs. The caller merges in command-level knobs
    /// (topology shape, workload parameters) it owns.
    pub fn manifest_entries(&self) -> Vec<(String, String)> {
        let service = match &self.service {
            ServiceModel::Trace => "trace".to_string(),
            ServiceModel::MapReduce { job, .. } => {
                format!(
                    "mapreduce/maps={}/reducers={}",
                    job.num_maps(),
                    job.num_reducers
                )
            }
        };
        vec![
            ("policy".to_string(), self.policy_name()),
            ("service".to_string(), service),
            ("requests".to_string(), self.requests.len().to_string()),
            (
                "window_us".to_string(),
                self.ts_window_us.unwrap_or(0).to_string(),
            ),
            (
                "health".to_string(),
                if self.health.is_some() { "on" } else { "off" }.to_string(),
            ),
        ]
    }
}

/// Per-request outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Request id.
    pub id: u64,
    /// Cluster distance of the final allocation (after any exchange
    /// pass), measured from its designated centre. `None` if refused.
    pub distance: Option<u64>,
    /// Distance when first placed, before any Theorem-2 exchanges.
    pub initial_distance: Option<u64>,
    /// Chosen central node (topology index). `None` if refused.
    pub center: Option<u32>,
    /// Physical nodes spanned. `None` if refused.
    pub span: Option<u32>,
    /// Submission time.
    pub arrival: SimTime,
    /// Service start, if served.
    pub started: Option<SimTime>,
    /// Service completion, if served.
    pub finished: Option<SimTime>,
    /// Whether the request exceeded total capacity and was refused.
    pub refused: bool,
    /// Measured MapReduce runtime, when [`ServiceModel::MapReduce`] is in
    /// effect (equals `finished - started` there).
    pub job_runtime: Option<SimTime>,
}

impl RequestOutcome {
    /// Queueing delay (start − arrival); `None` if never served.
    pub fn wait(&self) -> Option<SimTime> {
        self.started.map(|s| s.saturating_sub(self.arrival))
    }
}

/// Aggregate results.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Outcomes indexed by request id.
    pub outcomes: Vec<RequestOutcome>,
    /// Σ final distances over served requests.
    pub total_distance: u64,
    /// Σ initial (pre-exchange) distances over served requests.
    pub total_initial_distance: u64,
    /// Served request count.
    pub served: usize,
    /// Refused request count.
    pub refused: usize,
    /// Mean queueing delay over served requests.
    pub mean_wait: SimTime,
    /// Time-weighted average fraction of VM slots in use over the whole
    /// simulated horizon.
    pub avg_utilization: f64,
    /// Peak fraction of VM slots in use.
    pub peak_utilization: f64,
}

#[derive(Debug)]
enum Event {
    Arrival(usize),
    Departure(u64),
}

impl EventKind for Event {
    fn kind(&self) -> &'static str {
        match self {
            Event::Arrival(_) => "cloudsim.event.arrival",
            Event::Departure(_) => "cloudsim.event.departure",
        }
    }
}

/// Run the simulation to completion (all arrivals processed, all served
/// clusters released).
///
/// # Panics
/// Panics if request ids are not dense `0..n` in arrival order.
pub fn run(state: &ClusterState, config: SimConfig) -> SimResult {
    run_recorded(state, config, &NoopRecorder)
}

/// Cumulative counts already attributed to earlier windows, so each
/// window emission can report the delta.
#[derive(Default)]
struct TsCumulative {
    served: u64,
    refused: u64,
}

/// Free-resource fragmentation index: `1 − max_rack_free / total_free`,
/// where both terms count free VM slots via the placement index's rack
/// aggregates. 0 means every free slot sits in one rack (a tight request
/// can still land with zero cross-rack spill); values toward 1 mean the
/// free pool is shredded across racks. Defined as 0 — never NaN — on the
/// degenerate clouds: fully allocated (no free slots anywhere) and empty
/// (zero total capacity) both have `total_free == 0`.
pub fn fragmentation_index(state: &ClusterState, topo: &Topology) -> f64 {
    let idx = state.index();
    let mut total_free = 0u64;
    let mut max_rack_free = 0u64;
    for r in 0..topo.num_racks() {
        let free: u64 = idx
            .rack_free(RackId(r as u32))
            .iter()
            .map(|&x| u64::from(x))
            .sum();
        total_free += free;
        max_rack_free = max_rack_free.max(free);
    }
    if total_free == 0 {
        0.0
    } else {
        1.0 - max_rack_free as f64 / total_free as f64
    }
}

/// Emit one closed (or final partial) `ts.*` window at `edge_us`.
/// `elapsed_us` is the window's actual width (shorter than the cadence
/// only for the final partial window); `net` carries the RackUp bytes
/// apportioned to this window plus the aggregate uplink capacity in
/// MB/s, present only under the MapReduce service model. The returned
/// sample carries the same readings for the health watchdog's anomaly
/// detectors.
#[allow(clippy::too_many_arguments)]
fn emit_ts_window(
    rec: &dyn Recorder,
    edge_us: u64,
    elapsed_us: u64,
    state: &ClusterState,
    topo: &Topology,
    queue_depth: usize,
    live: &BTreeMap<u64, Allocation>,
    outcomes: &[RequestOutcome],
    prev: &mut TsCumulative,
    net: Option<(f64, f64)>,
) -> WindowHealthSample {
    let fill = state.utilization();
    let frag = fragmentation_index(state, topo);
    rec.counter_sample("ts.cloud.fill", edge_us, fill);
    rec.counter_sample("ts.cloud.frag", edge_us, frag);
    rec.counter_sample("ts.cloud.active_vms", edge_us, state.used().total() as f64);
    rec.counter_sample("ts.cloud.active_jobs", edge_us, live.len() as f64);
    rec.counter_sample("ts.queue.depth", edge_us, queue_depth as f64);

    let (dc_sum, dc_n) = live
        .keys()
        .filter_map(|&id| outcomes[id as usize].distance)
        .fold((0u64, 0u64), |(s, n), d| (s + d, n + 1));
    let mean_dc = if dc_n > 0 {
        dc_sum as f64 / dc_n as f64
    } else {
        0.0
    };
    rec.counter_sample("ts.cloud.mean_job_dc", edge_us, mean_dc);

    let served = outcomes.iter().filter(|o| o.started.is_some()).count() as u64;
    let refused = outcomes.iter().filter(|o| o.refused).count() as u64;
    let served_delta = served.saturating_sub(prev.served) as f64;
    let refused_delta = refused.saturating_sub(prev.refused) as f64;
    rec.counter_sample("ts.served.delta", edge_us, served_delta);
    rec.counter_sample("ts.refused.delta", edge_us, refused_delta);
    prev.served = served;
    prev.refused = refused;

    let mut uplink_util = None;
    if let Some((bytes, uplink_total_mbps)) = net {
        rec.counter_sample("ts.net.rack_up_bytes.delta", edge_us, bytes);
        // 1 MB/s delivers exactly 1 byte/µs, so the window's aggregate
        // uplink byte budget is capacity × elapsed.
        let budget = uplink_total_mbps * elapsed_us as f64;
        let util = if budget > 0.0 { bytes / budget } else { 0.0 };
        rec.counter_sample("ts.net.rack_up_util", edge_us, util);
        uplink_util = Some(util);
    }

    WindowHealthSample {
        edge_us,
        fill,
        frag,
        queue_depth: queue_depth as f64,
        served_delta,
        refused_delta,
        uplink_util,
    }
}

/// Feed one closed window to the anomaly detectors and sample the
/// per-window alert count (`ts.health.alerts.delta`). `job_alerts` folds
/// in alerts fired by the per-job engine audits since the last window.
fn observe_window_health(
    rec: &dyn Recorder,
    monitor: &mut Option<HealthMonitor>,
    sink: &mut AlertSink,
    job_alerts: u64,
    prev_fired: &mut u64,
    sample: &WindowHealthSample,
) {
    if let Some(mon) = monitor.as_mut() {
        mon.observe(sink, &rec, sample);
    }
    let total = sink.fired() + job_alerts;
    rec.counter_sample(
        health::TS_ALERTS_DELTA,
        sample.edge_us,
        (total - *prev_fired) as f64,
    );
    *prev_fired = total;
}

/// Cadenced invariant audits over the live cloud state: per-node
/// `allocated + free == total`, PlacementIndex aggregates vs the
/// remaining matrix, and queue-depth vs admitted-minus-settled
/// accounting. All checks are exact integer identities the simulator
/// maintains by construction, so any alert is a bug, never workload
/// noise. Read-only: inspects state and talks to the recorder.
fn audit_invariants(
    rec: &dyn Recorder,
    sink: &mut AlertSink,
    now_us: u64,
    state: &ClusterState,
    queue_len: usize,
    arrivals_seen: u64,
    outcomes: &[RequestOutcome],
) {
    let track = Some(TrackId(0));
    let (cap, used, rem) = (state.capacity(), state.used(), state.remaining());
    'capacity: for i in 0..state.num_nodes() {
        let node = NodeId(i as u32);
        let (c, u, r) = (cap.row(node), used.row(node), rem.row(node));
        for j in 0..c.len() {
            if u[j] + r[j] != c[j] {
                sink.emit(
                    &rec,
                    now_us,
                    track,
                    Severity::Critical,
                    "cloudsim",
                    rules::CAPACITY_ACCOUNTING,
                    &[
                        ("node", AttrValue::U64(i as u64)),
                        ("vm_type", AttrValue::U64(j as u64)),
                        ("used", AttrValue::U64(u64::from(u[j]))),
                        ("free", AttrValue::U64(u64::from(r[j]))),
                        ("total", AttrValue::U64(u64::from(c[j]))),
                    ],
                );
                break 'capacity; // one alert per audit, not per node
            }
        }
    }

    let drift = state.index().check_consistent(rem);
    if !drift.is_empty() {
        sink.emit(
            &rec,
            now_us,
            track,
            Severity::Critical,
            "placement",
            rules::INDEX_DRIFT,
            &[
                ("violations", AttrValue::U64(drift.len() as u64)),
                ("first", AttrValue::Owned(drift[0].clone())),
            ],
        );
    }

    let settled = outcomes
        .iter()
        .filter(|o| o.started.is_some() || o.refused)
        .count() as u64;
    let expected = arrivals_seen.saturating_sub(settled);
    if expected != queue_len as u64 {
        sink.emit(
            &rec,
            now_us,
            track,
            Severity::Critical,
            "cloudsim",
            rules::QUEUE_ACCOUNTING,
            &[
                ("queue_depth", AttrValue::U64(queue_len as u64)),
                ("expected", AttrValue::U64(expected)),
                ("arrivals", AttrValue::U64(arrivals_seen)),
                ("settled", AttrValue::U64(settled)),
            ],
        );
    }
}

/// [`run`] with observability: queue-depth samples and histograms,
/// admission/refusal events, provisioning-latency (`cloudsim.wait_us`)
/// and holding-time histograms, per-request timeline spans, and — when
/// [`ServiceModel::MapReduce`] is active — full task-level traces of every
/// job, each on its own track range, all land on `rec`.
///
/// # Panics
/// Panics if request ids are not dense `0..n` in arrival order.
pub fn run_recorded(state: &ClusterState, config: SimConfig, rec: &dyn Recorder) -> SimResult {
    // Total simulator wall-clock: every other prof phase tiles inside
    // this one (drops when the function returns).
    let _run_timer = vc_obs::PhaseTimer::start(rec, vc_obs::prof::CLOUDSIM_RUN);
    let SimConfig {
        requests,
        mode,
        service,
        seed,
        ts_window_us,
        health,
    } = config;
    for (i, r) in requests.iter().enumerate() {
        assert_eq!(r.id, i as u64, "request ids must be dense and ordered");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut engine = Engine::new();
    for (i, r) in requests.iter().enumerate() {
        engine.schedule(r.arrival, Event::Arrival(i));
    }

    let mut state = state.clone();
    let topo = state.topology_arc();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut live: BTreeMap<u64, Allocation> = BTreeMap::new();
    let mut outcomes: Vec<RequestOutcome> = requests
        .iter()
        .map(|r| RequestOutcome {
            id: r.id,
            distance: None,
            initial_distance: None,
            center: None,
            span: None,
            arrival: r.arrival,
            started: None,
            finished: None,
            refused: false,
            job_runtime: None,
        })
        .collect();

    let mut req_spans: BTreeMap<u64, SpanId> = BTreeMap::new();
    if rec.enabled() {
        rec.track_name(TrackId(0), "cloud queue");
    }

    // Windowed time-series: sampling costs nothing unless both a cadence
    // and a live recorder are present.
    let ts_w = if rec.enabled() { ts_window_us } else { None };
    let mut sampler = ts_w.map(WindowSampler::new);
    // Per-window RackUp bytes merged from every job's network rollup.
    // RefCell because `hold_time` (shared by both serve arms) appends
    // while the event loop later drains per closed window.
    let net_win: RefCell<BTreeMap<u64, f64>> = RefCell::new(BTreeMap::new());
    let mut ts_prev = TsCumulative::default();

    // Health watchdog. Like sampling, it is inert without a recorder;
    // every check is read-only, so results never depend on it.
    let health_cfg: Option<HealthPolicy> = if rec.enabled() { health } else { None };
    let audit_every = health_cfg
        .as_ref()
        .filter(|h| h.invariants)
        .map_or(0, |h| h.audit_every_events);
    let mut monitor: Option<HealthMonitor> = health_cfg.clone().map(HealthMonitor::new);
    let mut sink = AlertSink::new();
    // Alerts fired inside per-job engine audits (shuffle conservation,
    // flow starvation), folded into the per-window alert counts.
    let job_alerts = Cell::new(0u64);
    let mut events_since_audit = 0u64;
    let mut arrivals_seen = 0u64;
    let mut alerts_prev = 0u64;

    // Resolve the holding time for a freshly placed allocation.
    let hold_time = |req: &CloudRequest,
                     alloc: &Allocation,
                     state: &ClusterState,
                     now: SimTime|
     -> (SimTime, Option<SimTime>) {
        match &service {
            ServiceModel::Trace => (req.service_time, None),
            ServiceModel::MapReduce { job, params } => {
                let cluster =
                    VirtualCluster::from_allocation(alloc, state.catalog(), state.topology_arc());
                // Each job traces onto its request's private track range,
                // offset to its real start time on the queue timeline.
                let _t = vc_obs::PhaseTimer::start(rec, vc_obs::prof::MR_SERVICE);
                let (metrics, rollup, fired) = vc_mapreduce::simulate_job_audited(
                    &cluster,
                    job,
                    params,
                    rec,
                    TRACK_STRIDE * (req.id + 1),
                    now.as_micros(),
                    ts_w,
                    health_cfg.as_ref(),
                );
                job_alerts.set(job_alerts.get() + fired);
                if !rollup.is_empty() {
                    let mut win = net_win.borrow_mut();
                    for (k, b) in rollup {
                        *win.entry(k).or_insert(0.0) += b;
                    }
                }
                (metrics.runtime, Some(metrics.runtime))
            }
        }
    };

    // Record one admitted request: events, histograms, timeline span.
    let record_served =
        |req: &CloudRequest, d: u64, alloc: &Allocation, now: SimTime, hold: SimTime| -> SpanId {
            rec.counter_add("cloudsim.served", 1);
            rec.histogram_record("cloudsim.wait_us", (now - req.arrival).as_micros());
            rec.histogram_record("cloudsim.hold_us", hold.as_micros());
            let attrs = [
                ("id", AttrValue::from(req.id)),
                ("center", AttrValue::from(u64::from(alloc.center().0))),
                ("dc", AttrValue::from(d)),
                ("span_nodes", AttrValue::from(alloc.span())),
            ];
            rec.event(
                "cloudsim.request_admitted",
                now.as_micros(),
                Some(TrackId(0)),
                &attrs,
            );
            rec.span_begin(
                TrackId(TRACK_STRIDE * (req.id + 1)),
                "request",
                now.as_micros(),
                &attrs,
            )
        };
    let record_refused = |id: u64, now: SimTime| {
        rec.counter_add("cloudsim.refused", 1);
        rec.event(
            "cloudsim.request_refused",
            now.as_micros(),
            Some(TrackId(0)),
            &[("id", AttrValue::from(id))],
        );
    };

    let serve = |now: SimTime,
                 queue: &mut VecDeque<usize>,
                 state: &mut ClusterState,
                 live: &mut BTreeMap<u64, Allocation>,
                 outcomes: &mut Vec<RequestOutcome>,
                 engine: &mut Engine<Event>,
                 req_spans: &mut BTreeMap<u64, SpanId>,
                 rng: &mut StdRng| {
        let _serve_timer = vc_obs::PhaseTimer::start(rec, vc_obs::prof::SERVE);
        // Drop refused requests from the head pre-emptively.
        queue.retain(|&idx| {
            if state.fits_capacity(&requests[idx].request) {
                true
            } else {
                outcomes[idx].refused = true;
                record_refused(requests[idx].id, now);
                false
            }
        });
        match &mode {
            PolicyMode::Individual(policy) => {
                while let Some(&idx) = queue.front() {
                    let req = &requests[idx];
                    match policy.place_recorded(&req.request, state, rng, rec, now.as_micros()) {
                        Ok(alloc) => {
                            queue.pop_front();
                            {
                                let _t = vc_obs::PhaseTimer::start(rec, vc_obs::prof::INDEX_COMMIT);
                                state
                                    .allocate(&alloc)
                                    .expect("policy produced invalid allocation");
                            }
                            let d = distance_with_center(alloc.matrix(), &topo, alloc.center());
                            // Batched mode records DC inside the placement
                            // layer; mirror it here for per-request policies.
                            rec.histogram_record("placement.dc", d);
                            let (hold, job_runtime) = hold_time(req, &alloc, state, now);
                            req_spans.insert(req.id, record_served(req, d, &alloc, now, hold));
                            let o = &mut outcomes[idx];
                            o.distance = Some(d);
                            o.initial_distance = Some(d);
                            o.center = Some(alloc.center().0);
                            o.span = Some(alloc.span() as u32);
                            o.started = Some(now);
                            o.finished = Some(now + hold);
                            o.job_runtime = job_runtime;
                            engine.schedule(now + hold, Event::Departure(req.id));
                            live.insert(req.id, alloc);
                        }
                        Err(PlacementError::Unsatisfiable { .. }) => break, // FIFO blocks
                        Err(PlacementError::Refused { .. } | PlacementError::Malformed { .. }) => {
                            queue.pop_front();
                            outcomes[idx].refused = true;
                            record_refused(req.id, now);
                        }
                    }
                }
            }
            PolicyMode::GlobalBatch(admission, scan) => {
                let batch: Vec<_> = queue.iter().map(|&i| requests[i].request.clone()).collect();
                let placed = match global::place_queue_recorded(
                    &batch,
                    state,
                    *admission,
                    *scan,
                    rec,
                    now.as_micros(),
                ) {
                    Ok(placed) => placed,
                    Err(err) => {
                        // A placement-layer failure defers the whole batch
                        // to the next event instead of aborting the run.
                        rec.counter_add("cloudsim.batch_failed", 1);
                        rec.event(
                            "cloudsim.batch_failed",
                            now.as_micros(),
                            Some(TrackId(0)),
                            &[("error", AttrValue::from(err.to_string()))],
                        );
                        return;
                    }
                };
                let mut served_queue_positions: Vec<usize> = Vec::new();
                for ((pos, alloc), &online_d) in
                    placed.served.iter().zip(&placed.served_online_distances)
                {
                    let idx = queue[*pos];
                    let req = &requests[idx];
                    {
                        let _t = vc_obs::PhaseTimer::start(rec, vc_obs::prof::INDEX_COMMIT);
                        state
                            .allocate(alloc)
                            .expect("batch produced invalid allocation");
                    }
                    let d = distance_with_center(alloc.matrix(), &topo, alloc.center());
                    let (hold, job_runtime) = hold_time(req, alloc, state, now);
                    req_spans.insert(req.id, record_served(req, d, alloc, now, hold));
                    let o = &mut outcomes[idx];
                    o.distance = Some(d);
                    o.initial_distance = Some(online_d);
                    o.center = Some(alloc.center().0);
                    o.span = Some(alloc.span() as u32);
                    o.started = Some(now);
                    o.finished = Some(now + hold);
                    o.job_runtime = job_runtime;
                    engine.schedule(now + hold, Event::Departure(req.id));
                    live.insert(req.id, alloc.clone());
                    served_queue_positions.push(*pos);
                }
                // The admission layer rejects malformed / over-capacity
                // requests instead of letting them block the queue; the
                // retain() pre-drop usually catches them first, but any
                // that slip through leave the same way.
                for &pos in &placed.rejected {
                    let idx = queue[pos];
                    outcomes[idx].refused = true;
                    record_refused(requests[idx].id, now);
                    served_queue_positions.push(pos);
                }
                // Remove settled entries from the queue (descending positions).
                served_queue_positions.sort_unstable_by(|a, b| b.cmp(a));
                for pos in served_queue_positions {
                    queue.remove(pos);
                }
            }
        }
    };

    let capacity_total = state.capacity().total();
    // Aggregate RackUp capacity for the `ts.net.rack_up_util` gauge,
    // present only when jobs actually generate network traffic.
    let rack_uplink_total_mbps = match &service {
        ServiceModel::Trace => None,
        ServiceModel::MapReduce { params, .. } => {
            Some(topo.num_racks() as f64 * params.net.rack_uplink_mbps)
        }
    };
    let mut last_time = SimTime::ZERO;
    let mut used_integral = 0f64; // slot-microseconds
    let mut peak_used = 0u64;
    loop {
        let popped = {
            let _t = vc_obs::PhaseTimer::start(rec, vc_obs::prof::DES_POP);
            engine.pop_traced(&rec)
        };
        let Some((now, event)) = popped else { break };
        // Close every window edge the clock just crossed *before*
        // processing the event: the sampled state is exactly the state
        // as of the edge, because no event in [edge, now) exists.
        if let Some(s) = sampler.as_mut() {
            let w = s.window_us();
            while let Some(edge) = s.pop_due(now.as_micros()) {
                let k = WindowSampler::window_index(w, edge);
                let net = rack_uplink_total_mbps
                    .map(|cap| (net_win.borrow_mut().remove(&k).unwrap_or(0.0), cap));
                let sample = emit_ts_window(
                    rec,
                    edge,
                    w,
                    &state,
                    &topo,
                    queue.len(),
                    &live,
                    &outcomes,
                    &mut ts_prev,
                    net,
                );
                if health_cfg.is_some() {
                    observe_window_health(
                        rec,
                        &mut monitor,
                        &mut sink,
                        job_alerts.get(),
                        &mut alerts_prev,
                        &sample,
                    );
                }
            }
        }
        used_integral += state.used().total() as f64 * (now - last_time).as_micros() as f64;
        last_time = now;
        match event {
            Event::Arrival(idx) => {
                queue.push_back(idx);
                arrivals_seen += 1;
            }
            Event::Departure(id) => {
                let alloc = live.remove(&id).expect("departure for unknown allocation");
                {
                    let _t = vc_obs::PhaseTimer::start(rec, vc_obs::prof::INDEX_COMMIT);
                    state.release(&alloc).expect("release failed");
                }
                if let Some(span) = req_spans.remove(&id) {
                    rec.span_end(span, now.as_micros());
                }
            }
        }
        serve(
            now,
            &mut queue,
            &mut state,
            &mut live,
            &mut outcomes,
            &mut engine,
            &mut req_spans,
            &mut rng,
        );
        rec.counter_sample("cloudsim.queue_depth", now.as_micros(), queue.len() as f64);
        rec.histogram_record("cloudsim.queue_depth", queue.len() as u64);
        rec.counter_sample(
            "cloudsim.used_slots",
            now.as_micros(),
            state.used().total() as f64,
        );
        peak_used = peak_used.max(state.used().total());
        // Cadenced invariant audits: conservation laws re-checked every
        // N processed events, post-serve so the state is settled.
        if audit_every > 0 {
            events_since_audit += 1;
            if events_since_audit >= audit_every {
                events_since_audit = 0;
                audit_invariants(
                    rec,
                    &mut sink,
                    now.as_micros(),
                    &state,
                    queue.len(),
                    arrivals_seen,
                    &outcomes,
                );
            }
        }
    }
    // Final partial window at the last event time, so the tail of the
    // run (everything past the last full edge) is still reported.
    if let Some(s) = &sampler {
        if let Some(edge) = s.partial_edge(last_time.as_micros()) {
            let w = s.window_us();
            let k = WindowSampler::window_index(w, edge);
            let elapsed = edge - k * w;
            let net = rack_uplink_total_mbps
                .map(|cap| (net_win.borrow_mut().remove(&k).unwrap_or(0.0), cap));
            let sample = emit_ts_window(
                rec,
                edge,
                elapsed,
                &state,
                &topo,
                queue.len(),
                &live,
                &outcomes,
                &mut ts_prev,
                net,
            );
            if health_cfg.is_some() {
                observe_window_health(
                    rec,
                    &mut monitor,
                    &mut sink,
                    job_alerts.get(),
                    &mut alerts_prev,
                    &sample,
                );
            }
        }
    }
    // End-of-run audit: the drained cloud must balance exactly (runs
    // even when the cadence is 0, as long as invariants are enabled).
    if health_cfg.as_ref().is_some_and(|h| h.invariants) {
        audit_invariants(
            rec,
            &mut sink,
            last_time.as_micros(),
            &state,
            queue.len(),
            arrivals_seen,
            &outcomes,
        );
    }
    vc_obs::prof::record_peak_rss(rec);
    let horizon = last_time.as_micros() as f64;
    let avg_utilization = if horizon > 0.0 && capacity_total > 0 {
        used_integral / (horizon * capacity_total as f64)
    } else {
        0.0
    };
    let peak_utilization = if capacity_total > 0 {
        peak_used as f64 / capacity_total as f64
    } else {
        0.0
    };

    let served = outcomes.iter().filter(|o| o.started.is_some()).count();
    let refused = outcomes.iter().filter(|o| o.refused).count();
    let total_distance = outcomes.iter().filter_map(|o| o.distance).sum();
    let total_initial_distance = outcomes.iter().filter_map(|o| o.initial_distance).sum();
    let total_wait: u64 = outcomes
        .iter()
        .filter_map(|o| o.wait())
        .map(|w| w.as_micros())
        .sum();
    let mean_wait = if served > 0 {
        SimTime::from_micros(total_wait / served as u64)
    } else {
        SimTime::ZERO
    };
    SimResult {
        outcomes,
        total_distance,
        total_initial_distance,
        served,
        refused,
        mean_wait,
        avg_utilization,
        peak_utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, ServiceTime};
    use std::sync::Arc;
    use vc_model::workload::RequestProfile;
    use vc_model::{Request, VmCatalog};
    use vc_placement::online::OnlineHeuristic;
    use vc_topology::{generate, DistanceTiers};

    fn state(per_node: u32) -> ClusterState {
        let topo = Arc::new(generate::uniform(3, 4, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        ClusterState::uniform_capacity(topo, cat, per_node)
    }

    fn trace(count: usize, seed: u64) -> Vec<CloudRequest> {
        let p = ArrivalProcess {
            rate_per_s: 1.0,
            profile: RequestProfile::standard(),
            service: ServiceTime::UniformMs(2_000, 8_000),
        };
        p.generate(count, 3, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn all_requests_eventually_served() {
        let s = state(3);
        let result = run(
            &s,
            SimConfig::new(
                trace(20, 1),
                PolicyMode::Individual(Box::new(OnlineHeuristic)),
                1,
            ),
        );
        assert_eq!(result.served, 20);
        assert_eq!(result.refused, 0);
        for o in &result.outcomes {
            assert!(o.started.unwrap() >= o.arrival);
            assert!(o.finished.unwrap() > o.started.unwrap());
        }
    }

    #[test]
    fn resources_fully_released_at_end() {
        let s = state(2);
        // Re-run and confirm the *final* state we maintained internally is
        // clean by checking conservation: run twice gives identical results
        // (any leak would change queueing).
        let cfg = || {
            SimConfig::new(
                trace(15, 2),
                PolicyMode::Individual(Box::new(OnlineHeuristic)),
                2,
            )
        };
        let a = run(&s, cfg());
        let b = run(&s, cfg());
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn contention_produces_waiting() {
        // Tiny cloud, big requests, long holds: someone must wait.
        let topo = Arc::new(generate::uniform(1, 2, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        let s = ClusterState::uniform_capacity(topo, cat, 1);
        let requests = vec![
            CloudRequest {
                id: 0,
                request: Request::from_counts(vec![2, 0, 0]),
                arrival: SimTime::ZERO,
                service_time: SimTime::from_secs(100),
            },
            CloudRequest {
                id: 1,
                request: Request::from_counts(vec![1, 0, 0]),
                arrival: SimTime::from_secs(1),
                service_time: SimTime::from_secs(10),
            },
        ];
        let result = run(
            &s,
            SimConfig {
                requests,
                mode: PolicyMode::Individual(Box::new(OnlineHeuristic)),
                service: ServiceModel::Trace,
                seed: 0,
                ts_window_us: None,
                health: None,
            },
        );
        let second = &result.outcomes[1];
        assert_eq!(second.started, Some(SimTime::from_secs(100)));
        assert_eq!(second.wait(), Some(SimTime::from_secs(99)));
    }

    #[test]
    fn refused_requests_flagged_not_served() {
        let topo = Arc::new(generate::uniform(1, 2, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        let s = ClusterState::uniform_capacity(topo, cat, 1);
        let requests = vec![CloudRequest {
            id: 0,
            request: Request::from_counts(vec![99, 0, 0]),
            arrival: SimTime::ZERO,
            service_time: SimTime::from_secs(1),
        }];
        let result = run(
            &s,
            SimConfig {
                requests,
                mode: PolicyMode::Individual(Box::new(OnlineHeuristic)),
                service: ServiceModel::Trace,
                seed: 0,
                ts_window_us: None,
                health: None,
            },
        );
        assert_eq!(result.refused, 1);
        assert_eq!(result.served, 0);
        assert!(result.outcomes[0].distance.is_none());
    }

    #[test]
    fn global_batch_no_worse_than_individual() {
        let s = state(2);
        let individual = run(
            &s,
            SimConfig::new(
                trace(20, 7),
                PolicyMode::Individual(Box::new(OnlineHeuristic)),
                7,
            ),
        );
        let batched = run(
            &s,
            SimConfig::new(
                trace(20, 7),
                PolicyMode::GlobalBatch(Admission::FifoBlocking, ScanConfig::default()),
                7,
            ),
        );
        assert_eq!(batched.served, individual.served);
        assert!(
            batched.total_distance <= batched.total_initial_distance,
            "exchange pass must not increase distance"
        );
    }

    #[test]
    fn recorded_run_captures_queue_and_placement() {
        use vc_obs::MemRecorder;
        let s = state(2);
        let rec = MemRecorder::new();
        let result = run_recorded(
            &s,
            SimConfig::new(
                trace(10, 4),
                PolicyMode::Individual(Box::new(OnlineHeuristic)),
                4,
            ),
            &rec,
        );
        // Recording must not perturb the simulation.
        let plain = run(
            &s,
            SimConfig::new(
                trace(10, 4),
                PolicyMode::Individual(Box::new(OnlineHeuristic)),
                4,
            ),
        );
        assert_eq!(result.outcomes, plain.outcomes);

        let snap = rec.metrics();
        assert_eq!(snap.counters["cloudsim.served"], result.served as u64);
        assert_eq!(snap.counters["cloudsim.event.arrival"], 10);
        assert_eq!(
            snap.counters["cloudsim.event.departure"],
            result.served as u64
        );
        assert!(snap.histograms["cloudsim.queue_depth"].count > 0);
        assert_eq!(
            snap.histograms["cloudsim.wait_us"].count,
            result.served as u64
        );
        assert_eq!(snap.histograms["placement.dc"].count, result.served as u64);
        // One request span per served request, all closed by departure.
        let spans = rec.spans();
        assert_eq!(
            spans.iter().filter(|s| s.name == "request").count(),
            result.served
        );
        assert_eq!(rec.open_span_count(), 0);
        // Queue-depth samples form a counter track on the timeline.
        assert!(!rec.counter_series()["cloudsim.queue_depth"].is_empty());
    }

    #[test]
    fn recorded_mapreduce_service_nests_job_traces() {
        use vc_obs::MemRecorder;
        let topo = Arc::new(generate::uniform(3, 4, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        let s = ClusterState::uniform_capacity(topo, cat, 2);
        let job = JobConfig {
            workload: vc_mapreduce::Workload::wordcount(),
            input_mb: 4.0 * 64.0,
            split_mb: 64.0,
            num_reducers: 1,
            replication: 2,
        };
        let rec = MemRecorder::new();
        let result = run_recorded(
            &s,
            SimConfig::new(
                trace(3, 9),
                PolicyMode::Individual(Box::new(OnlineHeuristic)),
                9,
            )
            .with_service(ServiceModel::MapReduce {
                job,
                params: SimParams::default(),
            }),
            &rec,
        );
        assert_eq!(result.served, 3);
        let spans = rec.spans();
        // Each request nests one job span plus its map/reduce task spans,
        // anchored at the request's start time on the shared timeline.
        for o in &result.outcomes {
            let base = TRACK_STRIDE * (o.id + 1);
            let job_span = spans
                .iter()
                .find(|s| s.name == "job" && s.track.0 == base)
                .expect("job span on the request's track range");
            assert_eq!(job_span.start_us, o.started.unwrap().as_micros());
            assert_eq!(job_span.end_us, Some(o.finished.unwrap().as_micros()));
            assert!(spans
                .iter()
                .any(|s| s.name == "map" && s.track.0 > base && s.track.0 < base + TRACK_STRIDE));
        }
        assert!(spans.iter().any(|s| s.name == "reduce"));
        assert_eq!(rec.open_span_count(), 0);
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn misordered_ids_rejected() {
        let s = state(2);
        let mut requests = trace(3, 1);
        requests[0].id = 5;
        let _ = run(
            &s,
            SimConfig {
                requests,
                mode: PolicyMode::Individual(Box::new(OnlineHeuristic)),
                service: ServiceModel::Trace,
                seed: 0,
                ts_window_us: None,
                health: None,
            },
        );
    }
}

#[cfg(test)]
mod mapreduce_service_tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, ServiceTime};
    use std::sync::Arc;
    use vc_mapreduce::Workload;
    use vc_model::workload::RequestProfile;
    use vc_model::VmCatalog;
    use vc_placement::baselines::Spread;
    use vc_placement::online::OnlineHeuristic;
    use vc_topology::{generate, DistanceTiers};

    fn state() -> ClusterState {
        let topo = Arc::new(generate::uniform(3, 4, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        ClusterState::uniform_capacity(topo, cat, 2)
    }

    fn mr_service() -> ServiceModel {
        ServiceModel::MapReduce {
            job: JobConfig {
                workload: Workload::terasort(),
                input_mb: 8.0 * 64.0,
                split_mb: 64.0,
                num_reducers: 2,
                replication: 2,
            },
            params: SimParams::default(),
        }
    }

    fn trace(count: usize, seed: u64) -> Vec<CloudRequest> {
        let p = ArrivalProcess {
            rate_per_s: 0.5,
            profile: RequestProfile::standard(),
            service: ServiceTime::Fixed(SimTime::from_secs(1)), // ignored by MapReduce model
        };
        p.generate(count, 3, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn holding_time_is_measured_job_runtime() {
        let s = state();
        let result = run(
            &s,
            SimConfig::new(
                trace(6, 3),
                PolicyMode::Individual(Box::new(OnlineHeuristic)),
                3,
            )
            .with_service(mr_service()),
        );
        assert_eq!(result.served, 6);
        for o in &result.outcomes {
            let runtime = o.job_runtime.expect("MapReduce model records runtime");
            assert!(
                runtime > SimTime::from_secs(1),
                "jobs take real time: {runtime}"
            );
            assert_eq!(o.finished.unwrap() - o.started.unwrap(), runtime);
        }
    }

    #[test]
    fn affinity_aware_jobs_no_slower_than_spread() {
        let s = state();
        let online = run(
            &s,
            SimConfig::new(
                trace(8, 5),
                PolicyMode::Individual(Box::new(OnlineHeuristic)),
                5,
            )
            .with_service(mr_service()),
        );
        let spread = run(
            &s,
            SimConfig::new(trace(8, 5), PolicyMode::Individual(Box::new(Spread)), 5)
                .with_service(mr_service()),
        );
        let total = |r: &SimResult| -> u64 {
            r.outcomes
                .iter()
                .filter_map(|o| o.job_runtime)
                .map(|t| t.as_micros())
                .sum()
        };
        assert!(
            total(&online) <= total(&spread),
            "affinity-aware total job time {} must not exceed spread {}",
            total(&online),
            total(&spread)
        );
    }

    #[test]
    fn trace_model_ignores_job_runtime() {
        let s = state();
        let result = run(
            &s,
            SimConfig::new(
                trace(3, 1),
                PolicyMode::Individual(Box::new(OnlineHeuristic)),
                1,
            ),
        );
        assert!(result.outcomes.iter().all(|o| o.job_runtime.is_none()));
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;
    use crate::arrivals::CloudRequest;
    use std::sync::Arc;
    use vc_model::{Request, VmCatalog};
    use vc_placement::online::OnlineHeuristic;
    use vc_topology::{generate, DistanceTiers};

    #[test]
    fn utilization_tracks_occupancy() {
        // One request occupying half the cloud for the whole horizon.
        let topo = Arc::new(generate::uniform(1, 2, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        let s = ClusterState::uniform_capacity(topo, cat, 1); // 6 slots
        let requests = vec![CloudRequest {
            id: 0,
            request: Request::from_counts(vec![1, 1, 1]),
            arrival: SimTime::ZERO,
            service_time: SimTime::from_secs(100),
        }];
        let result = run(
            &s,
            SimConfig::new(
                requests,
                PolicyMode::Individual(Box::new(OnlineHeuristic)),
                0,
            ),
        );
        // 3 of 6 slots for ~the whole horizon.
        assert!(
            (result.avg_utilization - 0.5).abs() < 0.01,
            "{}",
            result.avg_utilization
        );
        assert!((result.peak_utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_zero_utilization() {
        let topo = Arc::new(generate::uniform(1, 2, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        let s = ClusterState::uniform_capacity(topo, cat, 1);
        let result = run(
            &s,
            SimConfig::new(vec![], PolicyMode::Individual(Box::new(OnlineHeuristic)), 0),
        );
        assert_eq!(result.avg_utilization, 0.0);
        assert_eq!(result.peak_utilization, 0.0);
        assert_eq!(result.served, 0);
    }
}

#[cfg(test)]
mod timeseries_tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, ServiceTime};
    use std::sync::Arc;
    use vc_mapreduce::Workload;
    use vc_model::workload::RequestProfile;
    use vc_model::VmCatalog;
    use vc_obs::{MemRecorder, TimeSeriesSet};
    use vc_placement::online::OnlineHeuristic;
    use vc_topology::{generate, DistanceTiers};

    const WINDOW_US: u64 = 5_000_000; // 5 s

    fn state() -> ClusterState {
        let topo = Arc::new(generate::uniform(3, 4, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        ClusterState::uniform_capacity(topo, cat, 2)
    }

    fn trace(count: usize, seed: u64) -> Vec<CloudRequest> {
        let p = ArrivalProcess {
            rate_per_s: 1.0,
            profile: RequestProfile::standard(),
            service: ServiceTime::UniformMs(2_000, 8_000),
        };
        p.generate(count, 3, &mut StdRng::seed_from_u64(seed))
    }

    fn cfg(seed: u64) -> SimConfig {
        SimConfig::new(
            trace(20, seed),
            PolicyMode::Individual(Box::new(OnlineHeuristic)),
            seed,
        )
    }

    #[test]
    fn sampling_does_not_perturb_results() {
        let s = state();
        let plain = run(&s, cfg(11));
        let rec = MemRecorder::new();
        let sampled = run_recorded(&s, cfg(11).with_timeseries(WINDOW_US), &rec);
        assert_eq!(plain.outcomes, sampled.outcomes);
        // And with no recorder attached the cadence is entirely inert.
        let noop = run(&s, cfg(11).with_timeseries(WINDOW_US));
        assert_eq!(plain.outcomes, noop.outcomes);
    }

    #[test]
    fn windows_are_monotone_and_deterministic() {
        let s = state();
        let rec = MemRecorder::new();
        let result = run_recorded(&s, cfg(11).with_timeseries(WINDOW_US), &rec);
        let set = TimeSeriesSet::from_counter_series(&rec.counter_series());
        assert!(!set.is_empty());
        assert!(set.is_monotone());
        for name in [
            "ts.cloud.fill",
            "ts.cloud.frag",
            "ts.cloud.active_vms",
            "ts.cloud.active_jobs",
            "ts.queue.depth",
            "ts.cloud.mean_job_dc",
            "ts.served.delta",
            "ts.refused.delta",
        ] {
            assert!(set.series.contains_key(name), "missing {name}");
        }
        // Trace-driven service: no network, so no ts.net.* series.
        assert!(!set.series.keys().any(|n| n.starts_with("ts.net.")));
        // Every series samples every window: identical edge lists, full
        // edges on exact multiples of the cadence plus one partial tail.
        let edges = set.edges();
        for points in set.series.values() {
            let series_edges: Vec<u64> = points.iter().map(|&(t, _)| t).collect();
            assert_eq!(series_edges, edges);
        }
        for &edge in &edges[..edges.len() - 1] {
            assert_eq!(edge % WINDOW_US, 0, "full edge off-cadence: {edge}");
        }
        // The served deltas tile the run: they sum to the served count.
        let served_sum: f64 = set.series["ts.served.delta"].iter().map(|&(_, v)| v).sum();
        assert_eq!(served_sum as usize, result.served);
        // The cloud drains by the end of the run.
        let (_, last_vms) = *set.series["ts.cloud.active_vms"].last().unwrap();
        assert_eq!(last_vms, 0.0);
        // Fill and fragmentation stay in [0, 1].
        for name in ["ts.cloud.fill", "ts.cloud.frag"] {
            for &(_, v) in &set.series[name] {
                assert!((0.0..=1.0).contains(&v), "{name} out of range: {v}");
            }
        }
        // Same run, same windows: bit-identical series.
        let rec2 = MemRecorder::new();
        run_recorded(&s, cfg(11).with_timeseries(WINDOW_US), &rec2);
        assert_eq!(
            set,
            TimeSeriesSet::from_counter_series(&rec2.counter_series())
        );
    }

    #[test]
    fn mapreduce_service_reports_windowed_uplink_traffic() {
        let s = state();
        let service = ServiceModel::MapReduce {
            job: JobConfig {
                workload: Workload::terasort(),
                input_mb: 8.0 * 64.0,
                split_mb: 64.0,
                num_reducers: 2,
                replication: 2,
            },
            params: SimParams::default(),
        };
        let rec = MemRecorder::new();
        let result = run_recorded(
            &s,
            cfg(5).with_service(service).with_timeseries(WINDOW_US),
            &rec,
        );
        assert!(result.served > 0);
        let set = TimeSeriesSet::from_counter_series(&rec.counter_series());
        let bytes = &set.series["ts.net.rack_up_bytes.delta"];
        let util = &set.series["ts.net.rack_up_util"];
        assert_eq!(bytes.len(), util.len());
        let total: f64 = bytes.iter().map(|&(_, v)| v).sum();
        assert!(total > 0.0, "terasort must cross racks: {total}");
        for &(_, u) in util {
            assert!(u.is_finite() && u >= 0.0, "bad utilization {u}");
        }
        // Utilization is bytes over the aggregate uplink budget, so it
        // cannot exceed 1 by more than the fluid model's rounding.
        assert!(util.iter().all(|&(_, u)| u <= 1.0 + 1e-9));
    }

    #[test]
    fn health_auditing_does_not_perturb_results_or_metrics() {
        let s = state();
        let plain = run(&s, cfg(11));
        let rec_health = MemRecorder::new();
        let audited = run_recorded(
            &s,
            cfg(11)
                .with_timeseries(WINDOW_US)
                .with_health(vc_obs::HealthPolicy::default()),
            &rec_health,
        );
        assert_eq!(plain.outcomes, audited.outcomes);
        // Healthy seeded run: the exact auditors must never fire.
        assert!(
            rec_health
                .events()
                .iter()
                .all(|e| !e.name.starts_with("alert.")),
            "false-positive alert on a healthy run"
        );
        // Against a health-off recorded run, metrics may differ only in
        // `alert.*` / `ts.health.*` names (plus host wall metrics).
        let rec_plain = MemRecorder::new();
        run_recorded(&s, cfg(11).with_timeseries(WINDOW_US), &rec_plain);
        let strip = |rec: &MemRecorder| {
            let mut m = rec.metrics();
            m.counters
                .retain(|k, _| !k.ends_with(".wall_us") && !k.starts_with("alert."));
            m.gauges
                .retain(|k, _| k != "prof.rss_peak_kb" && !k.starts_with("ts.health."));
            m
        };
        assert_eq!(strip(&rec_health), strip(&rec_plain));
        let mut series_health = rec_health.counter_series();
        series_health.retain(|k, _| !k.starts_with("ts.health."));
        assert_eq!(series_health, rec_plain.counter_series());
    }
}

#[cfg(test)]
mod health_tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, ServiceTime};
    use std::sync::Arc;
    use vc_model::workload::RequestProfile;
    use vc_model::{Request, VmCatalog};
    use vc_obs::MemRecorder;
    use vc_placement::online::OnlineHeuristic;
    use vc_topology::{generate, DistanceTiers};

    const WINDOW_US: u64 = 5_000_000; // 5 s

    fn topo() -> Arc<Topology> {
        Arc::new(generate::uniform(3, 4, DistanceTiers::paper_experiment()))
    }

    #[test]
    fn fragmentation_index_zero_on_empty_cloud() {
        // A cloud with zero capacity has no free slots anywhere.
        let topo = topo();
        let cat = Arc::new(VmCatalog::ec2_table1());
        let s = ClusterState::uniform_capacity(topo.clone(), cat, 0);
        let f = fragmentation_index(&s, &topo);
        assert!(!f.is_nan());
        assert_eq!(f, 0.0);
    }

    #[test]
    fn fragmentation_index_zero_on_fully_allocated_cloud() {
        let topo = topo();
        let cat = Arc::new(VmCatalog::ec2_table1());
        let mut s = ClusterState::uniform_capacity(topo.clone(), cat, 1);
        let everything = s.availability();
        let mut rng = StdRng::seed_from_u64(0);
        let alloc = OnlineHeuristic
            .place(&everything, &s, &mut rng)
            .expect("cloud-filling request must place");
        s.allocate(&alloc).expect("allocation fits");
        assert_eq!(s.remaining().total(), 0, "cloud must be full");
        let f = fragmentation_index(&s, &topo);
        assert!(!f.is_nan());
        assert_eq!(f, 0.0);
    }

    /// A two-slot cloud, one long-running tenant holding everything, and
    /// a stream of arrivals piling up behind it: queue depth rises for
    /// window after window with nothing served.
    fn stagnation_config() -> (ClusterState, SimConfig) {
        let topo = Arc::new(generate::uniform(1, 2, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        let s = ClusterState::uniform_capacity(topo, cat, 1);
        let hog = CloudRequest {
            id: 0,
            request: Request::from_counts(vec![2, 0, 0]),
            arrival: SimTime::ZERO,
            service_time: SimTime::from_secs(600),
        };
        let mut requests = vec![hog];
        for i in 1..=10u64 {
            requests.push(CloudRequest {
                id: i,
                request: Request::from_counts(vec![1, 0, 0]),
                arrival: SimTime::from_secs(3 * i),
                service_time: SimTime::from_secs(2),
            });
        }
        let cfg = SimConfig::new(
            requests,
            PolicyMode::Individual(Box::new(OnlineHeuristic)),
            0,
        )
        .with_timeseries(WINDOW_US)
        .with_health(vc_obs::HealthPolicy::default());
        (s, cfg)
    }

    #[test]
    fn queue_stagnation_fires_on_blocked_queue() {
        let (s, cfg) = stagnation_config();
        let rec = MemRecorder::new();
        run_recorded(&s, cfg, &rec);
        let events = rec.events();
        assert!(
            events.iter().any(|e| e.name == "alert.queue_stagnation"),
            "expected a queue_stagnation alert; events: {:?}",
            events
                .iter()
                .map(|e| e.name)
                .filter(|n| n.starts_with("alert."))
                .collect::<Vec<_>>()
        );
        let snap = rec.metrics();
        assert!(
            snap.counters
                .get("alert.total.warn.queue_stagnation")
                .copied()
                .unwrap_or(0)
                >= 1
        );
        // The windowed alert series tiles the total alert count.
        let series = rec.counter_series();
        let delta_sum: f64 = series["ts.health.alerts.delta"]
            .iter()
            .map(|&(_, v)| v)
            .sum();
        let total: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("alert.total."))
            .map(|(_, &v)| v)
            .sum();
        assert_eq!(delta_sum as u64, total);
    }

    #[test]
    fn health_without_recorder_is_inert() {
        let (s, cfg) = stagnation_config();
        let (s2, cfg2) = stagnation_config();
        let audited = run(&s, cfg);
        let mut plain_cfg = cfg2;
        plain_cfg.health = None;
        plain_cfg.ts_window_us = None;
        let plain = run(&s2, plain_cfg);
        assert_eq!(audited.outcomes, plain.outcomes);
    }

    #[test]
    fn arrival_trace_profile_compiles_with_health() {
        // HealthPolicy rides SimConfig through the arrival-process
        // builder path used by the CLI.
        let p = ArrivalProcess {
            rate_per_s: 1.0,
            profile: RequestProfile::standard(),
            service: ServiceTime::UniformMs(2_000, 8_000),
        };
        let requests = p.generate(5, 3, &mut StdRng::seed_from_u64(7));
        let cat = Arc::new(VmCatalog::ec2_table1());
        let s = ClusterState::uniform_capacity(topo(), cat, 2);
        let rec = MemRecorder::new();
        let cfg = SimConfig::new(
            requests,
            PolicyMode::Individual(Box::new(OnlineHeuristic)),
            7,
        )
        .with_health(vc_obs::HealthPolicy::default());
        // No ts window: invariant audits still run, detectors idle.
        run_recorded(&s, cfg, &rec);
        assert!(rec.events().iter().all(|e| !e.name.starts_with("alert.")));
    }
}

/// Provider revenue for a completed simulation: Σ over served requests of
/// the pro-rated holding cost (micro-dollars). Pass the same trace the
/// simulation ran on.
///
/// # Panics
/// Panics if `trace` and `outcomes` are not the same run (lengths differ).
pub fn total_revenue(
    trace: &[CloudRequest],
    outcomes: &[RequestOutcome],
    prices: &vc_model::PriceList,
) -> u64 {
    assert_eq!(trace.len(), outcomes.len(), "trace/outcome mismatch");
    trace
        .iter()
        .zip(outcomes)
        .filter_map(|(req, o)| {
            let (start, end) = (o.started?, o.finished?);
            Some(prices.cost(&req.request, end - start))
        })
        .sum()
}

#[cfg(test)]
mod revenue_tests {
    use super::*;
    use crate::arrivals::CloudRequest;
    use std::sync::Arc;
    use vc_model::{PriceList, Request, VmCatalog};
    use vc_placement::online::OnlineHeuristic;
    use vc_topology::{generate, DistanceTiers};

    #[test]
    fn revenue_matches_holding_costs() {
        let topo = Arc::new(generate::uniform(1, 2, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        let s = ClusterState::uniform_capacity(topo, cat, 2);
        let trace = vec![CloudRequest {
            id: 0,
            request: Request::from_counts(vec![1, 0, 0]),
            arrival: SimTime::ZERO,
            service_time: SimTime::from_secs(3600),
        }];
        let result = run(
            &s,
            SimConfig::new(
                trace.clone(),
                PolicyMode::Individual(Box::new(OnlineHeuristic)),
                0,
            ),
        );
        let revenue = total_revenue(&trace, &result.outcomes, &PriceList::ec2_2012());
        assert_eq!(revenue, 80_000); // one small instance for one hour
    }

    #[test]
    fn refused_requests_earn_nothing() {
        let topo = Arc::new(generate::uniform(1, 2, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        let s = ClusterState::uniform_capacity(topo, cat, 1);
        let trace = vec![CloudRequest {
            id: 0,
            request: Request::from_counts(vec![50, 0, 0]),
            arrival: SimTime::ZERO,
            service_time: SimTime::from_secs(3600),
        }];
        let result = run(
            &s,
            SimConfig::new(
                trace.clone(),
                PolicyMode::Individual(Box::new(OnlineHeuristic)),
                0,
            ),
        );
        assert_eq!(
            total_revenue(&trace, &result.outcomes, &PriceList::ec2_2012()),
            0
        );
    }
}
