//! Request, arrival-time, and service-time generation.

use rand::Rng;
use serde::{Deserialize, Serialize};
use vc_des::SimTime;
use vc_model::workload::RequestProfile;
use vc_model::Request;

/// A virtual-cluster request with its timing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloudRequest {
    /// Dense id (submission order).
    pub id: u64,
    /// The VM counts requested.
    pub request: Request,
    /// Submission time.
    pub arrival: SimTime,
    /// How long the cluster is held once provisioned.
    pub service_time: SimTime,
}

/// Service-time distributions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceTime {
    /// Every job holds its cluster this long.
    Fixed(SimTime),
    /// Uniform in `[lo, hi]` milliseconds.
    UniformMs(u64, u64),
    /// Exponential with the given mean in milliseconds.
    ExpMeanMs(u64),
}

impl ServiceTime {
    /// Draw one service time.
    ///
    /// # Panics
    /// Panics if a uniform range is inverted or an exponential mean is 0.
    pub fn sample(&self, rng: &mut impl Rng) -> SimTime {
        match *self {
            Self::Fixed(t) => t,
            Self::UniformMs(lo, hi) => {
                assert!(lo <= hi, "inverted service-time range");
                SimTime::from_millis(rng.gen_range(lo..=hi))
            }
            Self::ExpMeanMs(mean) => {
                assert!(mean > 0, "exponential mean must be positive");
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                SimTime::from_secs_f64(-(u.ln()) * mean as f64 / 1000.0)
            }
        }
    }
}

/// Poisson arrivals of requests drawn from a [`RequestProfile`].
#[derive(Debug, Clone, Copy)]
pub struct ArrivalProcess {
    /// Mean arrivals per second.
    pub rate_per_s: f64,
    /// Request-size distribution.
    pub profile: RequestProfile,
    /// Service-time distribution.
    pub service: ServiceTime,
}

impl ArrivalProcess {
    /// The paper's simulation setup: twenty random requests, moderate
    /// load.
    pub fn paper_standard() -> Self {
        Self {
            rate_per_s: 0.5,
            profile: RequestProfile::standard(),
            service: ServiceTime::UniformMs(10_000, 60_000),
        }
    }

    /// The "relatively small number of VMs" scenario of Fig. 6.
    pub fn paper_small() -> Self {
        Self {
            profile: RequestProfile::small(),
            ..Self::paper_standard()
        }
    }

    /// Generate `count` requests over `m` VM types with exponential
    /// inter-arrival gaps.
    ///
    /// # Panics
    /// Panics if `rate_per_s` is not positive.
    pub fn generate(&self, count: usize, m: usize, rng: &mut impl Rng) -> Vec<CloudRequest> {
        assert!(self.rate_per_s > 0.0, "arrival rate must be positive");
        let mut t = SimTime::ZERO;
        (0..count)
            .map(|i| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let gap = -(u.ln()) / self.rate_per_s;
                t += SimTime::from_secs_f64(gap);
                CloudRequest {
                    id: i as u64,
                    request: self.profile.sample(m, rng),
                    arrival: t,
                    service_time: self.service.sample(rng),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrivals_monotone_and_sized() {
        let mut rng = StdRng::seed_from_u64(1);
        let reqs = ArrivalProcess::paper_standard().generate(20, 3, &mut rng);
        assert_eq!(reqs.len(), 20);
        for w in reqs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(!r.request.is_zero());
            assert!(r.service_time > SimTime::ZERO);
        }
    }

    #[test]
    fn mean_interarrival_close_to_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = ArrivalProcess {
            rate_per_s: 2.0,
            ..ArrivalProcess::paper_standard()
        };
        let reqs = p.generate(2000, 3, &mut rng);
        let total = reqs.last().unwrap().arrival.as_secs_f64();
        let mean_gap = total / 2000.0;
        assert!((mean_gap - 0.5).abs() < 0.05, "mean gap {mean_gap}");
    }

    #[test]
    fn service_time_dists() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            ServiceTime::Fixed(SimTime::from_secs(5)).sample(&mut rng),
            SimTime::from_secs(5)
        );
        for _ in 0..100 {
            let t = ServiceTime::UniformMs(10, 20).sample(&mut rng);
            assert!(t >= SimTime::from_millis(10) && t <= SimTime::from_millis(20));
        }
        let mean = (0..2000)
            .map(|_| ServiceTime::ExpMeanMs(1000).sample(&mut rng).as_secs_f64())
            .sum::<f64>()
            / 2000.0;
        assert!((mean - 1.0).abs() < 0.1, "exp mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let gen =
            |seed| ArrivalProcess::paper_small().generate(10, 3, &mut StdRng::seed_from_u64(seed));
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_uniform_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = ServiceTime::UniformMs(20, 10).sample(&mut rng);
    }
}
