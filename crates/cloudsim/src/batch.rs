//! Rayon-parallel execution of many simulation seeds.
//!
//! Experiment sweeps (confidence intervals over seeds, parameter grids)
//! are embarrassingly parallel: each run is deterministic in its seed and
//! touches no shared state. This module is the only concurrency in the
//! repository's core path, and it is a pure data-parallel map.

use rayon::prelude::*;

/// Run `f(seed)` for every seed in parallel, preserving input order.
///
/// `f` must be deterministic in `seed` for reproducible experiment tables
/// (all built-in simulations are).
pub fn run_seeds<R, F>(seeds: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    seeds.par_iter().map(|&s| f(s)).collect()
}

/// Run `f(param)` over an arbitrary parameter grid in parallel,
/// preserving order.
pub fn run_grid<P, R, F>(params: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync + Send,
{
    params.into_par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = run_seeds(&[3, 1, 2], |s| s * 10);
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn grid_preserves_order() {
        let out = run_grid(vec!["a", "bb", "ccc"], |p| p.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn parallel_matches_serial() {
        let seeds: Vec<u64> = (0..64).collect();
        let f = |s: u64| {
            s.wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407)
        };
        let par = run_seeds(&seeds, f);
        let ser: Vec<u64> = seeds.iter().map(|&s| f(s)).collect();
        assert_eq!(par, ser);
    }
}
