//! Minimal `--flag value` / `--switch` argument parsing.

use std::collections::BTreeMap;
use std::fmt;

/// An argument or execution error, with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError {
    message: String,
}

impl ArgError {
    /// Wrap a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ArgError {}

/// Boolean switches that take no value.
const SWITCHES: &[&str] = &[
    "json",
    "speculative",
    "network",
    "perf",
    "timeline",
    "health",
    "fail-on-regress",
];

/// Parsed `--key value` pairs and switches.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Parsed {
    /// Parse raw arguments. Every option must start with `--`; known
    /// boolean switches consume no value, everything else consumes
    /// exactly one.
    pub fn parse(args: &[String]) -> Result<Self, ArgError> {
        let (parsed, positionals) = Self::parse_with_positionals(args)?;
        if let Some(first) = positionals.first() {
            return Err(ArgError::new(format!("unexpected argument `{first}`")));
        }
        Ok(parsed)
    }

    /// Like [`Parsed::parse`], but collect bare (non-`--`) arguments as
    /// positionals instead of rejecting them. Options still consume their
    /// value, so `--seed 3 file.json` yields one positional.
    pub fn parse_with_positionals(args: &[String]) -> Result<(Self, Vec<String>), ArgError> {
        let mut out = Parsed::default();
        let mut positionals = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                positionals.push(arg.clone());
                continue;
            };
            if SWITCHES.contains(&key) {
                out.switches.push(key.to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError::new(format!("option --{key} requires a value")))?;
                out.values.insert(key.to_string(), value.clone());
            }
        }
        Ok((out, positionals))
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A string option with a default.
    pub fn str_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.values.get(name).map_or(default, String::as_str)
    }

    /// A required string option.
    pub fn required(&self, name: &str) -> Result<&str, ArgError> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| ArgError::new(format!("missing required option --{name}")))
    }

    /// A numeric option with a default.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::new(format!("invalid value `{v}` for --{name}"))),
        }
    }

    /// A comma-separated list of `u32`.
    pub fn u32_list(&self, name: &str) -> Result<Option<Vec<u32>>, ArgError> {
        match self.values.get(name) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse()
                        .map_err(|_| ArgError::new(format!("invalid list `{v}` for --{name}")))
                })
                .collect::<Result<Vec<u32>, _>>()
                .map(Some),
        }
    }

    /// Reject any option not in `allowed` (switches included).
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.values.keys().chain(self.switches.iter()) {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::new(format!("unknown option --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Parsed, ArgError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Parsed::parse(&v)
    }

    #[test]
    fn values_and_switches() {
        let p = parse(&["--racks", "4", "--json", "--seed", "7"]).unwrap();
        assert_eq!(p.str_or("racks", "3"), "4");
        assert!(p.switch("json"));
        assert!(!p.switch("speculative"));
        assert_eq!(p.num_or("seed", 0u64).unwrap(), 7);
        assert_eq!(p.num_or("missing", 9u32).unwrap(), 9);
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&["--racks"]).is_err());
    }

    #[test]
    fn positional_rejected() {
        assert!(parse(&["positional"]).is_err());
    }

    #[test]
    fn list_parsing() {
        let p = parse(&["--request", "2, 4,1"]).unwrap();
        assert_eq!(p.u32_list("request").unwrap(), Some(vec![2, 4, 1]));
        assert_eq!(p.u32_list("absent").unwrap(), None);
        let bad = parse(&["--request", "2,x"]).unwrap();
        assert!(bad.u32_list("request").is_err());
    }

    #[test]
    fn required_and_unknown() {
        let p = parse(&["--a", "1"]).unwrap();
        assert_eq!(p.required("a").unwrap(), "1");
        assert!(p.required("b").is_err());
        assert!(p.ensure_known(&["a"]).is_ok());
        assert!(p.ensure_known(&["b"]).is_err());
    }

    #[test]
    fn positionals_collected_when_allowed() {
        let v: Vec<String> = ["a.json", "--seed", "3", "b.json", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (p, pos) = Parsed::parse_with_positionals(&v).unwrap();
        assert_eq!(pos, vec!["a.json".to_string(), "b.json".to_string()]);
        assert_eq!(p.num_or("seed", 0u64).unwrap(), 3);
        assert!(p.switch("json"));
    }

    #[test]
    fn bad_number_message_names_flag() {
        let p = parse(&["--seed", "NaN!"]).unwrap();
        let err = p.num_or("seed", 0u64).unwrap_err();
        assert!(err.to_string().contains("--seed"));
    }
}
