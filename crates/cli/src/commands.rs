//! Subcommand implementations.

use crate::args::{ArgError, Parsed};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::Arc;
use vc_cloudsim::sim::{PolicyMode, ServiceModel, SimConfig};
use vc_cloudsim::{ArrivalProcess, ServiceTime};
use vc_des::SimTime;
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{JobConfig, VirtualCluster, Workload};
use vc_model::workload::RequestProfile;
use vc_model::{ClusterState, Request, VmCatalog};
use vc_netsim::NetworkParams;
use vc_obs::{
    HealthPolicy, MemRecorder, MergedTrace, MetricsSnapshot, Recorder, Severity, ShardedRecorder,
    StreamingRecorder, TimeSeriesSet, TraceDump, ALERT_PREFIX, TS_PREFIX,
};
use vc_placement::distance::distance_with_center;
use vc_placement::global::Admission;
use vc_placement::{baselines, exact, ilp, online, PlacementPolicy};
use vc_topology::{generate, DistanceTiers, NodeId};

fn build_cloud(p: &Parsed) -> Result<ClusterState, ArgError> {
    let racks = p.num_or("racks", 3usize)?;
    let nodes = p.num_or("nodes", 10usize)?;
    let capacity = p.num_or("capacity", 2u32)?;
    if racks == 0 || nodes == 0 {
        return Err(ArgError::new("--racks and --nodes must be positive"));
    }
    let topo = Arc::new(generate::uniform(
        racks,
        nodes,
        DistanceTiers::paper_experiment(),
    ));
    let catalog = Arc::new(VmCatalog::ec2_table1());
    Ok(ClusterState::uniform_capacity(topo, catalog, capacity))
}

/// The seed-scan configuration selected by `--placement-threads`
/// (0 = auto-detect, 1 = sequential, n = that many workers). Pruning is
/// always on — it never changes the chosen allocation.
fn scan_config(p: &Parsed) -> Result<online::ScanConfig, ArgError> {
    let threads = p.num_or("placement-threads", 1usize)?;
    Ok(online::ScanConfig {
        prune: true,
        parallelism: online::Parallelism::from_thread_count(threads),
    })
}

fn policy_by_name(
    name: &str,
    scan: online::ScanConfig,
) -> Result<Box<dyn PlacementPolicy>, ArgError> {
    Ok(match name {
        "online" => Box::new(online::OnlineScan(scan)),
        "exact" => Box::new(exact::ExactSd),
        "ilp" => Box::new(ilp::IlpSd),
        "first-fit" => Box::new(baselines::FirstFit),
        "best-fit" => Box::new(baselines::BestFit),
        "spread" => Box::new(baselines::Spread),
        "random" => Box::new(baselines::RandomPlacement),
        other => {
            return Err(ArgError::new(format!(
                "unknown policy `{other}` for --policy"
            )))
        }
    })
}

fn workload_by_name(name: &str) -> Result<Workload, ArgError> {
    Ok(match name {
        "wordcount" => Workload::wordcount(),
        "wordcount-nocombine" => Workload::wordcount_no_combiner(),
        "terasort" => Workload::terasort(),
        "grep" => Workload::grep(),
        other => return Err(ArgError::new(format!("unknown workload `{other}`"))),
    })
}

/// Whether `--trace-out`, `--metrics-out`, `--prom-out`, `--series-out`
/// or `--stream-out` asks for a recorded run.
fn wants_observability(p: &Parsed) -> bool {
    !p.str_or("trace-out", "").is_empty()
        || !p.str_or("metrics-out", "").is_empty()
        || !p.str_or("prom-out", "").is_empty()
        || !p.str_or("series-out", "").is_empty()
        || !p.str_or("stream-out", "").is_empty()
}

/// Flag names shared by every command that accepts the health watchdog.
const HEALTH_OPTIONS: &[&str] = &[
    "health",
    "health-audit-events",
    "health-uplink-util",
    "health-uplink-windows",
    "health-frag-windows",
    "health-queue-windows",
];

/// The [`HealthPolicy`] selected by `--health` and its tuning flags.
/// `--health` alone enables the watchdog with defaults; any
/// `--health-*` tuning flag implies it. `None` when no health flag was
/// given at all.
fn health_policy(p: &Parsed) -> Result<Option<HealthPolicy>, ArgError> {
    let tuned = HEALTH_OPTIONS[1..]
        .iter()
        .any(|k| !p.str_or(k, "").is_empty());
    if !p.switch("health") && !tuned {
        return Ok(None);
    }
    let d = HealthPolicy::default();
    let policy = HealthPolicy {
        audit_every_events: p.num_or("health-audit-events", d.audit_every_events)?,
        uplink_util: p.num_or("health-uplink-util", d.uplink_util)?,
        uplink_windows: p.num_or("health-uplink-windows", d.uplink_windows)?,
        frag_windows: p.num_or("health-frag-windows", d.frag_windows)?,
        queue_windows: p.num_or("health-queue-windows", d.queue_windows)?,
        ..d
    };
    if !(0.0..=1.0).contains(&policy.uplink_util) {
        return Err(ArgError::new(
            "--health-uplink-util must be a fraction in [0, 1]",
        ));
    }
    Ok(Some(policy))
}

/// The `ts.*` sampling cadence from `--window-us` (0/absent = off).
/// `--series-out` is meaningless without one, so that combination is
/// rejected here.
fn ts_window(p: &Parsed) -> Result<Option<u64>, ArgError> {
    let w = p.num_or("window-us", 0u64)?;
    if w == 0 && !p.str_or("series-out", "").is_empty() {
        return Err(ArgError::new(
            "--series-out needs --window-us <N> to define the sampling cadence",
        ));
    }
    Ok((w > 0).then_some(w))
}

/// The recorder a command records into: the single-threaded
/// [`MemRecorder`] normally, the thread-safe [`ShardedRecorder`] when
/// `--placement-threads` enables a parallel seed scan — scan workers then
/// record per-thread chunk telemetry instead of tripping the
/// `placement.recorder_unsync` fallback — and the bounded-memory
/// [`StreamingRecorder`] when `--stream-out` spills the event stream to
/// a JSONL file as it happens. Stream artefacts (trace/metrics/series)
/// are produced by replaying the flushed file, so what you export is
/// exactly what a later `report --stream` will see.
enum CliRecorder {
    Mem(MemRecorder),
    Sharded(ShardedRecorder),
    Stream {
        rec: Option<StreamingRecorder<BufWriter<File>>>,
        path: String,
        merged: Option<MergedTrace>,
    },
}

impl CliRecorder {
    fn for_threads(threads: usize) -> Self {
        if threads == 1 {
            Self::Mem(MemRecorder::new())
        } else {
            Self::Sharded(ShardedRecorder::new())
        }
    }

    /// Select the recorder for a run: `--stream-out` wins (it is
    /// thread-safe, so it also serves parallel seed scans), otherwise
    /// thread count decides.
    fn build(p: &Parsed, threads: usize) -> Result<Self, ArgError> {
        match p.str_or("stream-out", "") {
            "" => Ok(Self::for_threads(threads)),
            path => {
                let file = File::create(path)
                    .map_err(|e| ArgError::new(format!("--stream-out {path}: {e}")))?;
                Ok(Self::Stream {
                    rec: Some(StreamingRecorder::new(BufWriter::new(file))),
                    path: path.to_string(),
                    merged: None,
                })
            }
        }
    }

    fn as_recorder(&self) -> &dyn Recorder {
        match self {
            Self::Mem(r) => r,
            Self::Sharded(r) => r,
            Self::Stream { rec, .. } => rec.as_ref().expect("stream recorder already finished"),
        }
    }

    /// Finish the stream (flush every buffer to disk) and replay the
    /// file into a [`MergedTrace`], memoized. Only valid on `Stream`.
    fn stream_merged(&mut self) -> Result<&MergedTrace, ArgError> {
        let Self::Stream { rec, path, merged } = self else {
            unreachable!("stream_merged on a non-stream recorder")
        };
        if merged.is_none() {
            let r = rec.take().expect("stream recorder already finished");
            let mut writer = r
                .finish()
                .map_err(|e| ArgError::new(format!("--stream-out {path}: {e}")))?;
            writer
                .flush()
                .map_err(|e| ArgError::new(format!("--stream-out {path}: {e}")))?;
            drop(writer);
            let text = std::fs::read_to_string(&*path)
                .map_err(|e| ArgError::new(format!("--stream-out {path}: I/O error: {e}")))?;
            let m = vc_obs::replay_jsonl(&text)
                .map_err(|e| ArgError::new(format!("--stream-out {path}: {e}")))?;
            *merged = Some(m);
        }
        Ok(merged.as_ref().expect("just memoized"))
    }

    fn trace_doc(&mut self) -> Result<serde_json::Value, ArgError> {
        match self {
            Self::Mem(r) => Ok(vc_obs::chrome_trace(r)),
            Self::Sharded(r) => Ok(vc_obs::chrome_trace_sharded(r)),
            Self::Stream { .. } => {
                let m = self.stream_merged()?;
                Ok(vc_obs::trace::chrome_trace_parts(
                    &m.spans,
                    &m.events,
                    &m.track_names,
                    &m.counter_series,
                ))
            }
        }
    }

    fn metrics(&mut self) -> Result<MetricsSnapshot, ArgError> {
        match self {
            Self::Mem(r) => Ok(r.metrics()),
            Self::Sharded(r) => Ok(r.merged().metrics),
            Self::Stream { .. } => Ok(self.stream_merged()?.metrics.clone()),
        }
    }

    /// The `ts.*` windowed series this run recorded.
    fn timeseries(&mut self) -> Result<TimeSeriesSet, ArgError> {
        match self {
            Self::Mem(r) => Ok(TimeSeriesSet::from_counter_series(&r.counter_series())),
            Self::Sharded(r) => Ok(TimeSeriesSet::from_counter_series(
                &r.merged().counter_series,
            )),
            Self::Stream { .. } => Ok(TimeSeriesSet::from_counter_series(
                &self.stream_merged()?.counter_series,
            )),
        }
    }

    fn span_event_counts(&mut self) -> Result<(usize, usize), ArgError> {
        match self {
            Self::Mem(r) => Ok((r.spans().len(), r.events().len())),
            Self::Sharded(r) => {
                let m = r.merged();
                Ok((m.spans.len(), m.events.len()))
            }
            Self::Stream { .. } => {
                let m = self.stream_merged()?;
                Ok((m.spans.len(), m.events.len()))
            }
        }
    }
}

/// Write the requested observability artefacts: a Chrome/Perfetto trace
/// for `--trace-out`, a metrics snapshot for `--metrics-out` (CSV when
/// the path ends in `.csv`, pretty JSON otherwise), a Prometheus text
/// exposition for `--prom-out` (window-labelled `ts.*` samples when
/// `--window-us` is set), and the windowed time-series for
/// `--series-out` (CSV when the path ends in `.csv`, else JSONL).
fn write_observability(p: &Parsed, rec: &mut CliRecorder) -> Result<(), ArgError> {
    match p.str_or("trace-out", "") {
        "" => {}
        path => {
            let doc = rec.trace_doc()?;
            vc_obs::trace::save_trace_value(&doc, path)
                .map_err(|e| ArgError::new(format!("--trace-out {path}: {e}")))?;
        }
    }
    match p.str_or("metrics-out", "") {
        "" => {}
        path => {
            let snap = rec.metrics()?;
            let text = if path.ends_with(".csv") {
                snap.to_csv()
            } else {
                snap.to_json_string()
            };
            std::fs::write(path, text)
                .map_err(|e| ArgError::new(format!("--metrics-out {path}: {e}")))?;
        }
    }
    let window_us = p.num_or("window-us", 0u64)?;
    match p.str_or("prom-out", "") {
        "" => {}
        path => {
            let series = if window_us > 0 {
                rec.timeseries()?
            } else {
                TimeSeriesSet::default()
            };
            let text = vc_obs::to_prometheus_windowed(&rec.metrics()?, window_us, &series);
            std::fs::write(path, text)
                .map_err(|e| ArgError::new(format!("--prom-out {path}: {e}")))?;
        }
    }
    match p.str_or("series-out", "") {
        "" => {}
        path => {
            let set = rec.timeseries()?;
            let text = if path.ends_with(".csv") {
                set.to_csv()
            } else {
                set.to_jsonl()
            };
            std::fs::write(path, text)
                .map_err(|e| ArgError::new(format!("--series-out {path}: {e}")))?;
        }
    }
    // A stream must hit the disk even when no other artefact asked for
    // it; replaying also validates the flushed file end-to-end.
    if let CliRecorder::Stream { .. } = rec {
        rec.stream_merged()?;
    }
    Ok(())
}

/// `affinity-vc place`
pub fn place(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&[
        "request",
        "policy",
        "racks",
        "nodes",
        "capacity",
        "seed",
        "json",
        "placement-threads",
    ])?;
    let counts = p
        .u32_list("request")?
        .ok_or_else(|| ArgError::new("missing required option --request (e.g. --request 2,4,1)"))?;
    let cloud = build_cloud(p)?;
    if counts.len() != cloud.num_types() {
        return Err(ArgError::new(format!(
            "--request must list {} counts (one per VM type)",
            cloud.num_types()
        )));
    }
    let request = Request::from_counts(counts.clone());
    if request.is_zero() {
        return Err(ArgError::new("--request must ask for at least one VM"));
    }
    let policy = policy_by_name(p.str_or("policy", "online"), scan_config(p)?)?;
    let mut rng = StdRng::seed_from_u64(p.num_or("seed", 0u64)?);

    let allocation = policy
        .place(&request, &cloud, &mut rng)
        .map_err(|e| ArgError::new(e.to_string()))?;
    let distance = distance_with_center(allocation.matrix(), cloud.topology(), allocation.center());

    if p.switch("json") {
        let placements: Vec<_> = allocation
            .matrix()
            .entries()
            .map(|(n, t, c)| serde_json::json!({"node": n.0, "type": t.0, "count": c}))
            .collect();
        return Ok(serde_json::json!({
            "request": counts,
            "policy": policy.name(),
            "distance": distance,
            "center": allocation.center().0,
            "span_nodes": allocation.span(),
            "span_racks": allocation.rack_span(cloud.topology()),
            "placements": placements,
        })
        .to_string());
    }
    let mut out = format!(
        "policy {} placed {request}: distance {distance}, centre {}, {} node(s), {} rack(s)\n",
        policy.name(),
        allocation.center(),
        allocation.span(),
        allocation.rack_span(cloud.topology()),
    );
    for (node, ty, count) in allocation.matrix().entries() {
        out.push_str(&format!("  {node}: {count}×{ty}\n"));
    }
    Ok(out)
}

/// `affinity-vc simulate-job`
pub fn simulate_job(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&[
        "spread",
        "workload",
        "maps",
        "reducers",
        "seed",
        "json",
        "speculative",
        "straggler-prob",
        "trace-out",
        "metrics-out",
        "prom-out",
        "stream-out",
    ])?;
    let spread = p.u32_list("spread")?.unwrap_or_else(|| vec![2, 10, 0]);
    if spread.len() != 3 {
        return Err(ArgError::new(
            "--spread must be on_master,same_rack,cross_rack",
        ));
    }
    let workload = workload_by_name(p.str_or("workload", "wordcount"))?;
    let maps = p.num_or("maps", 32u32)?;
    let reducers = p.num_or("reducers", 1u32)?;
    if maps == 0 || reducers == 0 {
        return Err(ArgError::new("--maps and --reducers must be positive"));
    }

    let topo = Arc::new(generate::paper_simulation());
    let mut nodes = vec![NodeId(0); spread[0] as usize];
    nodes.extend((0..spread[1]).map(|i| NodeId(1 + (i % 9))));
    nodes.extend((0..spread[2]).map(|i| NodeId(10 + (i % 20))));
    if nodes.is_empty() {
        return Err(ArgError::new("--spread must place at least one VM"));
    }
    let cluster = VirtualCluster::homogeneous(&nodes, nodes.len(), topo);

    let job = JobConfig {
        workload,
        input_mb: f64::from(maps) * 64.0,
        split_mb: 64.0,
        num_reducers: reducers,
        replication: 3,
    };
    let params = SimParams {
        net: NetworkParams::default(),
        seed: p.num_or("seed", 0u64)?,
        straggler_prob: p.num_or("straggler-prob", 0.0f64)?,
        speculative_execution: p.switch("speculative"),
        ..SimParams::default()
    };
    let m = if wants_observability(p) {
        let mut rec = CliRecorder::build(p, 1)?;
        let m = vc_mapreduce::simulate_job_traced(&cluster, &job, &params, rec.as_recorder(), 0, 0);
        write_observability(p, &mut rec)?;
        m
    } else {
        vc_mapreduce::simulate_job(&cluster, &job, &params)
    };

    if p.switch("json") {
        return serde_json::to_string(&m).map_err(|e| ArgError::new(e.to_string()));
    }
    Ok(format!(
        "cluster distance {}: runtime {:.1}s ({} maps: {} data-local / {} rack / {} remote; \
         non-local shuffle {:.0}%; {} speculative backups, {} won)\n",
        m.cluster_distance,
        m.runtime.as_secs_f64(),
        m.num_maps,
        m.data_local_maps,
        m.rack_local_maps,
        m.remote_maps,
        100.0 * m.non_local_shuffle_fraction(),
        m.speculative_attempts,
        m.speculative_wins,
    ))
}

/// `affinity-vc simulate-queue`
pub fn simulate_queue(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&[
        "requests",
        "rate",
        "policy",
        "racks",
        "nodes",
        "capacity",
        "seed",
        "json",
        "trace",
        "save-trace",
        "trace-out",
        "metrics-out",
        "prom-out",
        "series-out",
        "stream-out",
        "window-us",
        "placement-threads",
        "health",
        "health-audit-events",
        "health-uplink-util",
        "health-uplink-windows",
        "health-frag-windows",
        "health-queue-windows",
    ])?;
    let cloud = build_cloud(p)?;
    let count = p.num_or("requests", 20usize)?;
    let rate = p.num_or("rate", 0.5f64)?;
    if rate <= 0.0 {
        return Err(ArgError::new("--rate must be positive"));
    }
    let seed = p.num_or("seed", 0u64)?;
    let trace = match p.str_or("trace", "") {
        "" => {
            let process = ArrivalProcess {
                rate_per_s: rate,
                profile: RequestProfile::standard(),
                service: ServiceTime::UniformMs(10_000, 60_000),
            };
            process.generate(count, cloud.num_types(), &mut StdRng::seed_from_u64(seed))
        }
        path => vc_cloudsim::trace::load(path).map_err(|e| ArgError::new(e.to_string()))?,
    };
    match p.str_or("save-trace", "") {
        "" => {}
        path => {
            vc_cloudsim::trace::save(&trace, path).map_err(|e| ArgError::new(e.to_string()))?;
        }
    }

    let policy_name = p.str_or("policy", "online");
    let scan = scan_config(p)?;
    let mode = if policy_name == "global" {
        PolicyMode::GlobalBatch(Admission::FifoBlocking, scan)
    } else {
        PolicyMode::Individual(policy_by_name(policy_name, scan)?)
    };
    let total = trace.len();
    let mut config = SimConfig::new(trace, mode, seed);
    if let Some(w) = ts_window(p)? {
        config = config.with_timeseries(w);
    }
    let health = health_policy(p)?;
    let audited = health.is_some();
    if let Some(h) = health {
        config = config.with_health(h);
    }
    // The watchdog only runs against a live recorder, so `--health`
    // forces the recorded path even without an `--*-out` export.
    let result = if wants_observability(p) || audited {
        let mut rec = CliRecorder::build(p, p.num_or("placement-threads", 1usize)?)?;
        let result = vc_cloudsim::sim::run_recorded(&cloud, config, rec.as_recorder());
        write_observability(p, &mut rec)?;
        result
    } else {
        vc_cloudsim::sim::run(&cloud, config)
    };

    if p.switch("json") {
        let outcomes: Vec<_> = result
            .outcomes
            .iter()
            .map(|o| {
                serde_json::json!({
                    "id": o.id,
                    "distance": o.distance,
                    "wait_s": o.wait().map(SimTime::as_secs_f64),
                    "refused": o.refused,
                })
            })
            .collect();
        return Ok(serde_json::json!({
            "policy": policy_name,
            "served": result.served,
            "refused": result.refused,
            "total_distance": result.total_distance,
            "mean_wait_s": result.mean_wait.as_secs_f64(),
            "outcomes": outcomes,
        })
        .to_string());
    }
    Ok(format!(
        "policy {policy_name}: served {}/{} (refused {}), Σdistance {}, mean wait {:.1}s\n",
        result.served,
        total,
        result.refused,
        result.total_distance,
        result.mean_wait.as_secs_f64(),
    ))
}

/// `affinity-vc simulate` (alias `run`) — the end-to-end pipeline:
/// request queue → affinity-aware placement → MapReduce jobs on the
/// placed virtual clusters, with the whole run recorded so
/// `--trace-out`/`--metrics-out` capture every layer at once.
pub fn simulate(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&[
        "requests",
        "rate",
        "policy",
        "racks",
        "nodes",
        "capacity",
        "seed",
        "json",
        "service",
        "workload",
        "maps",
        "reducers",
        "trace-out",
        "metrics-out",
        "prom-out",
        "series-out",
        "stream-out",
        "window-us",
        "placement-threads",
        "health",
        "health-audit-events",
        "health-uplink-util",
        "health-uplink-windows",
        "health-frag-windows",
        "health-queue-windows",
    ])?;
    let cloud = build_cloud(p)?;
    let count = p.num_or("requests", 10usize)?;
    let rate = p.num_or("rate", 0.5f64)?;
    if rate <= 0.0 {
        return Err(ArgError::new("--rate must be positive"));
    }
    let seed = p.num_or("seed", 0u64)?;
    let process = ArrivalProcess {
        rate_per_s: rate,
        profile: RequestProfile::standard(),
        service: ServiceTime::UniformMs(10_000, 60_000),
    };
    let trace = process.generate(count, cloud.num_types(), &mut StdRng::seed_from_u64(seed));

    let policy_name = p.str_or("policy", "global");
    let scan = scan_config(p)?;
    let mode = if policy_name == "global" {
        PolicyMode::GlobalBatch(Admission::FifoBlocking, scan)
    } else {
        PolicyMode::Individual(policy_by_name(policy_name, scan)?)
    };
    let service_name = p.str_or("service", "mapreduce");
    let service = match service_name {
        "trace" => ServiceModel::Trace,
        "mapreduce" => {
            let maps = p.num_or("maps", 8u32)?;
            let reducers = p.num_or("reducers", 2u32)?;
            if maps == 0 || reducers == 0 {
                return Err(ArgError::new("--maps and --reducers must be positive"));
            }
            ServiceModel::MapReduce {
                job: JobConfig {
                    workload: workload_by_name(p.str_or("workload", "wordcount"))?,
                    input_mb: f64::from(maps) * 64.0,
                    split_mb: 64.0,
                    num_reducers: reducers,
                    replication: 3,
                },
                params: SimParams::default(),
            }
        }
        other => {
            return Err(ArgError::new(format!(
                "unknown service model `{other}` for --service (trace|mapreduce)"
            )))
        }
    };

    let total = trace.len();
    let mut config = SimConfig::new(trace, mode, seed).with_service(service);
    if let Some(w) = ts_window(p)? {
        config = config.with_timeseries(w);
    }
    if let Some(h) = health_policy(p)? {
        config = config.with_health(h);
    }
    let mut rec = CliRecorder::build(p, p.num_or("placement-threads", 1usize)?)?;
    let result = vc_cloudsim::sim::run_recorded(&cloud, config, rec.as_recorder());
    write_observability(p, &mut rec)?;
    let snap = rec.metrics()?;
    let (num_spans, num_events) = rec.span_event_counts()?;

    if p.switch("json") {
        return Ok(serde_json::json!({
            "policy": policy_name,
            "service": service_name,
            "served": result.served,
            "refused": result.refused,
            "total_distance": result.total_distance,
            "mean_wait_s": result.mean_wait.as_secs_f64(),
            "events": num_events,
            "spans": num_spans,
            "counters": snap.counters.len(),
            "histograms": snap.histograms.len(),
        })
        .to_string());
    }
    Ok(format!(
        "policy {policy_name}, service {service_name}: served {}/{} (refused {}), \
         Σdistance {}, mean wait {:.1}s\n\
         recorded {} events, {} spans, {} counters, {} histograms\n",
        result.served,
        total,
        result.refused,
        result.total_distance,
        result.mean_wait.as_secs_f64(),
        num_events,
        num_spans,
        snap.counters.len(),
        snap.histograms.len(),
    ))
}

/// One `u64` attribute of a dumped audit event, defaulting to 0.
fn event_u64(e: &vc_obs::critical_path::DumpEvent, key: &str) -> u64 {
    e.attr(key).and_then(serde_json::Value::as_u64).unwrap_or(0)
}

/// One link's telemetry, reassembled from the `net.link.<name>.*`
/// entries of a metrics snapshot. In queue runs the counters sum (and
/// `peak_util` maxes) over every job that crossed the link.
#[derive(Debug, Default)]
struct LinkRow {
    name: String,
    bytes: u64,
    shuffle_bytes: u64,
    busy_us: u64,
    binding_events: u64,
    peak_util: f64,
}

/// Parse every `net.link.*` counter/gauge in a metrics snapshot back
/// into per-link rows, keyed and sorted by link name.
fn collect_link_rows(metrics: &serde_json::Value) -> Vec<LinkRow> {
    use std::collections::BTreeMap;
    let mut rows: BTreeMap<String, LinkRow> = BTreeMap::new();
    fn row<'a>(rows: &'a mut BTreeMap<String, LinkRow>, link: &str) -> &'a mut LinkRow {
        rows.entry(link.to_string()).or_insert_with(|| LinkRow {
            name: link.to_string(),
            ..LinkRow::default()
        })
    }
    if let Some(counters) = metrics
        .get("counters")
        .and_then(serde_json::Value::as_object)
    {
        for (key, value) in counters {
            let Some(rest) = key.strip_prefix("net.link.") else {
                continue;
            };
            let v = value.as_u64().unwrap_or(0);
            // `.shuffle_bytes` must be tested before `.bytes`: both are
            // suffixes of the former.
            if let Some(link) = rest.strip_suffix(".shuffle_bytes") {
                row(&mut rows, link).shuffle_bytes = v;
            } else if let Some(link) = rest.strip_suffix(".bytes") {
                row(&mut rows, link).bytes = v;
            } else if let Some(link) = rest.strip_suffix(".busy_us") {
                row(&mut rows, link).busy_us = v;
            } else if let Some(link) = rest.strip_suffix(".binding_events") {
                row(&mut rows, link).binding_events = v;
            }
        }
    }
    if let Some(gauges) = metrics.get("gauges").and_then(serde_json::Value::as_object) {
        for (key, value) in gauges {
            if let Some(link) = key
                .strip_prefix("net.link.")
                .and_then(|rest| rest.strip_suffix(".peak_util"))
            {
                row(&mut rows, link).peak_util = value.as_f64().unwrap_or(0.0);
            }
        }
    }
    rows.into_values().collect()
}

/// The `--network` hot-spot summary: per-rack uplink peaks, top-K
/// congested links, the shuffle-byte locality split, and the exactness
/// cross-check between link-level and engine-level shuffle accounting.
fn network_summary(metrics: &serde_json::Value) -> (serde_json::Value, String) {
    let links = collect_link_rows(metrics);
    let counter = |name: &str| -> u64 {
        metrics
            .get("counters")
            .and_then(serde_json::Value::as_object)
            .and_then(|entries| entries.iter().find(|(k, _)| k == name))
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or(0)
    };

    let uplinks: Vec<&LinkRow> = links
        .iter()
        .filter(|l| l.name.starts_with("rack") && l.name.ends_with(".up"))
        .collect();
    let uplink_peak = uplinks.iter().map(|l| l.peak_util).fold(0.0, f64::max);
    let uplink_mean_peak = if uplinks.is_empty() {
        0.0
    } else {
        uplinks.iter().map(|l| l.peak_util).sum::<f64>() / uplinks.len() as f64
    };
    let uplink_bytes: u64 = uplinks.iter().map(|l| l.bytes).sum();
    let uplink_shuffle_bytes: u64 = uplinks.iter().map(|l| l.shuffle_bytes).sum();

    let mut congested: Vec<&LinkRow> = links.iter().collect();
    congested.sort_by(|a, b| {
        b.peak_util
            .total_cmp(&a.peak_util)
            .then_with(|| b.bytes.cmp(&a.bytes))
            .then_with(|| a.name.cmp(&b.name))
    });
    congested.truncate(5);

    // Shuffle locality split as the engine counted it, fetch by fetch.
    let node_local = counter("mr.shuffle.node_local_bytes");
    let rack_local = counter("mr.shuffle.rack_local_bytes");
    let cross_rack = counter("mr.shuffle.remote_bytes");

    // Exactness cross-check: every cross-node shuffle byte enters its
    // destination node exactly once, and node-local shuffle crosses no
    // link at all, so the node-rx shuffle integrals must equal the
    // engine's rack-local + cross-rack total *exactly* (both are integer
    // byte counts attributed at flow completion, not rate integrals).
    let link_rx_shuffle: u64 = links
        .iter()
        .filter(|l| l.name.starts_with("node") && l.name.ends_with(".rx"))
        .map(|l| l.shuffle_bytes)
        .sum();
    let engine_cross_node = rack_local + cross_rack;
    let matches = link_rx_shuffle == engine_cross_node;

    let link_objs: Vec<serde_json::Value> = links
        .iter()
        .map(|l| {
            serde_json::json!({
                "link": l.name.as_str(),
                "bytes": l.bytes,
                "shuffle_bytes": l.shuffle_bytes,
                "busy_us": l.busy_us,
                "binding_events": l.binding_events,
                "peak_util": l.peak_util,
            })
        })
        .collect();
    let congested_objs: Vec<serde_json::Value> = congested
        .iter()
        .map(|l| serde_json::json!({"link": l.name.as_str(), "peak_util": l.peak_util}))
        .collect();
    let json = serde_json::json!({
        "links": link_objs,
        "rack_uplinks": {
            "count": uplinks.len() as u64,
            "peak_util": uplink_peak,
            "mean_peak_util": uplink_mean_peak,
            "bytes": uplink_bytes,
            "shuffle_bytes": uplink_shuffle_bytes,
        },
        "top_congested": congested_objs,
        "shuffle_split": {
            "node_local_bytes": node_local,
            "rack_local_bytes": rack_local,
            "cross_rack_bytes": cross_rack,
        },
        "consistency": {
            "link_rx_shuffle_bytes": link_rx_shuffle,
            "engine_cross_node_shuffle_bytes": engine_cross_node,
            "shuffle_rx_matches_engine": matches,
        },
    });

    let mut text = String::new();
    text.push_str(&format!(
        "\nnetwork — {} link(s) with traffic\n",
        links.len()
    ));
    text.push_str(&format!(
        "  rack uplinks ({}): peak util {:.2}, mean peak {:.2}, {} shuffle B of {} B total\n",
        uplinks.len(),
        uplink_peak,
        uplink_mean_peak,
        uplink_shuffle_bytes,
        uplink_bytes,
    ));
    let total_shuffle = node_local + rack_local + cross_rack;
    let cross_pct = if total_shuffle > 0 {
        100.0 * cross_rack as f64 / total_shuffle as f64
    } else {
        0.0
    };
    text.push_str(&format!(
        "  shuffle split: node-local {node_local} B / in-rack {rack_local} B / \
         cross-rack {cross_rack} B ({cross_pct:.0}% cross-rack)\n"
    ));
    if !congested.is_empty() {
        text.push_str("  top congested links:\n");
        for l in &congested {
            text.push_str(&format!(
                "    {:<14} peak {:.2}  busy {:>8.3}s  {:>14} B  binding {}\n",
                l.name,
                l.peak_util,
                l.busy_us as f64 / 1e6,
                l.bytes,
                l.binding_events,
            ));
        }
    }
    text.push_str(&format!(
        "  consistency: link node-rx shuffle {} B {} engine cross-node shuffle {} B\n",
        link_rx_shuffle,
        if matches { "==" } else { "!=" },
        engine_cross_node,
    ));
    (json, text)
}

/// One counter from a metrics-snapshot JSON document, defaulting to 0.
fn snap_counter(metrics: &serde_json::Value, name: &str) -> u64 {
    metrics
        .get("counters")
        .and_then(serde_json::Value::as_object)
        .and_then(|entries| entries.iter().find(|(k, _)| k == name))
        .and_then(|(_, v)| v.as_u64())
        .unwrap_or(0)
}

/// One gauge from a metrics-snapshot JSON document, if present.
fn snap_gauge(metrics: &serde_json::Value, name: &str) -> Option<f64> {
    metrics
        .get("gauges")
        .and_then(serde_json::Value::as_object)
        .and_then(|entries| entries.iter().find(|(k, _)| k == name))
        .and_then(|(_, v)| v.as_f64())
}

/// The `--perf` self-profile summary: where the *simulator's* wall-clock
/// went (by `prof.phase.*`), fair-share solver effort, DES event volume,
/// and peak RSS. The exclusive breakdown tiles the total exactly by
/// construction: `serve` and `des_pop` are disjoint slices of
/// `cloudsim_run`, `mr_service` is the slice of `serve` inside the
/// MapReduce engine, and `other` is the remainder. A standalone
/// `simulate-job` run has no queue loop; its total is `mr_job`.
fn perf_summary(metrics: &serde_json::Value) -> (serde_json::Value, String) {
    let phase_wall = |name: &str| snap_counter(metrics, &format!("prof.phase.{name}.wall_us"));
    let phase_calls = |name: &str| snap_counter(metrics, &format!("prof.phase.{name}.calls"));

    let run_wall = phase_wall("cloudsim_run");
    let serve = phase_wall("serve");
    let mr_service = phase_wall("mr_service");
    let des_pop = phase_wall("des_pop");
    let standalone = phase_calls("cloudsim_run") == 0;
    let (total, total_phase) = if standalone {
        (phase_wall("mr_job"), "mr_job")
    } else {
        (run_wall, "cloudsim_run")
    };

    // Exclusive components. Saturating arithmetic keeps degenerate and
    // partially-profiled snapshots at exact zeros instead of underflowing.
    let breakdown: Vec<(&str, u64)> = if standalone {
        vec![("mapreduce", total), ("other", 0)]
    } else {
        vec![
            ("placement/queue", serve.saturating_sub(mr_service)),
            ("mapreduce", mr_service),
            ("des-pop", des_pop),
            ("other", total.saturating_sub(serve).saturating_sub(des_pop)),
        ]
    };

    let phases: Vec<serde_json::Value> = vc_obs::prof::PHASES
        .iter()
        .filter(|ph| phase_calls(ph.name) > 0)
        .map(|ph| {
            serde_json::json!({
                "phase": ph.name,
                "calls": phase_calls(ph.name),
                "wall_us": phase_wall(ph.name),
            })
        })
        .collect();
    let num_phases = phases.len();

    let solves = snap_counter(metrics, "prof.solver.solves");
    let flows = snap_counter(metrics, "prof.solver.flows");
    let iterations = snap_counter(metrics, "prof.solver.iterations");
    let links_touched = snap_counter(metrics, "prof.solver.links_touched");
    let avg_flows = if solves > 0 {
        flows as f64 / solves as f64
    } else {
        0.0
    };
    let avg_iters = if solves > 0 {
        iterations as f64 / solves as f64
    } else {
        0.0
    };
    let peak_flows = snap_gauge(metrics, "prof.solver.peak_flows").unwrap_or(0.0);
    let events = snap_counter(metrics, "des.events_processed");
    let peak_rss_kb = snap_gauge(metrics, "prof.rss_peak_kb");

    let pct = |us: u64| -> f64 {
        if total > 0 {
            100.0 * us as f64 / total as f64
        } else {
            0.0
        }
    };
    let breakdown_objs: Vec<serde_json::Value> = breakdown
        .iter()
        .map(|(name, us)| serde_json::json!({"component": *name, "wall_us": *us, "pct": pct(*us)}))
        .collect();
    let json = serde_json::json!({
        "total_wall_us": total,
        "total_phase": total_phase,
        "breakdown": breakdown_objs,
        "phases": phases,
        "solver": {
            "solves": solves,
            "flows": flows,
            "iterations": iterations,
            "links_touched": links_touched,
            "completion_batches": snap_counter(metrics, "prof.solver.completion_batches"),
            "batch_flows": snap_counter(metrics, "prof.solver.batch_flows"),
            "flows_skipped": snap_counter(metrics, "prof.solver.flows_skipped"),
            "wall_us": snap_counter(metrics, "prof.solver.wall_us"),
            "avg_flows_per_solve": avg_flows,
            "avg_iterations_per_solve": avg_iters,
            "peak_flows": peak_flows,
            "peak_iterations": snap_gauge(metrics, "prof.solver.peak_iterations").unwrap_or(0.0),
        },
        "des": { "events_processed": events },
        "peak_rss_kb": peak_rss_kb,
    });

    let mut text = String::new();
    text.push_str(&format!(
        "\nperf — simulator self-profile ({num_phases} phase(s) recorded)\n"
    ));
    text.push_str(&format!(
        "  total wall-clock: {:.3}s ({total_phase})\n",
        total as f64 / 1e6
    ));
    for (name, us) in &breakdown {
        text.push_str(&format!(
            "    {:<16} {:>9.3}s {:>5.1}%\n",
            name,
            *us as f64 / 1e6,
            pct(*us),
        ));
    }
    let flows_skipped = snap_counter(metrics, "prof.solver.flows_skipped");
    text.push_str(&format!(
        "  solver: {solves} solve(s), {flows} flow(s) (avg {avg_flows:.1}/solve, peak {peak_flows:.0}), \
         {iterations} iteration(s), {links_touched} link(s) touched, {flows_skipped} flow(s) skipped\n"
    ));
    text.push_str(&format!("  des: {events} event(s) processed\n"));
    if let Some(kb) = peak_rss_kb {
        text.push_str(&format!("  peak RSS: {:.1} MB\n", kb / 1024.0));
    }
    (json, text)
}

/// `affinity-vc report` — analyse a trace written by `--trace-out`:
/// per-job critical-path attribution (where did the makespan go), the
/// placement decision audit (seed-scan work, bound gaps, Theorem-2
/// exchanges), and optionally the headline placement counters from a
/// `--metrics-out` snapshot.
pub fn report(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&[
        "trace",
        "stream",
        "metrics",
        "json",
        "network",
        "perf",
        "timeline",
        "series-out",
        "health",
        "fail-on-alert",
    ])?;
    // Parsed up front so a bad severity name fails before any file I/O.
    let fail_on = match p.str_or("fail-on-alert", "") {
        "" => None,
        s => Some(Severity::parse(s).ok_or_else(|| {
            ArgError::new(format!(
                "--fail-on-alert {s}: expected info, warn or critical"
            ))
        })?),
    };
    let metrics: Option<serde_json::Value> = match p.str_or("metrics", "") {
        "" => None,
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError::new(format!("--metrics {path}: I/O error: {e}")))?;
            Some(
                serde_json::from_str(&text)
                    .map_err(|e| ArgError::new(format!("--metrics {path}: {e}")))?,
            )
        }
    };

    // `--perf` only needs a metrics snapshot, so the trace input becomes
    // optional when it is the sole request; every other mode requires
    // either --trace (a Chrome document) or --stream (a JSONL file from
    // --stream-out, replayed into the same document shape).
    let trace_path = p.str_or("trace", "");
    let stream_path = p.str_or("stream", "");
    if !trace_path.is_empty() && !stream_path.is_empty() {
        return Err(ArgError::new(
            "--trace and --stream both name a trace input; pass exactly one",
        ));
    }
    let doc: Option<serde_json::Value> = if !stream_path.is_empty() {
        let text = std::fs::read_to_string(stream_path)
            .map_err(|e| ArgError::new(format!("--stream {stream_path}: I/O error: {e}")))?;
        let m = vc_obs::replay_jsonl(&text)
            .map_err(|e| ArgError::new(format!("--stream {stream_path}: {e}")))?;
        Some(vc_obs::trace::chrome_trace_parts(
            &m.spans,
            &m.events,
            &m.track_names,
            &m.counter_series,
        ))
    } else if !trace_path.is_empty() {
        let text = std::fs::read_to_string(trace_path)
            .map_err(|e| ArgError::new(format!("--trace {trace_path}: I/O error: {e}")))?;
        Some(
            serde_json::from_str(&text)
                .map_err(|e| ArgError::new(format!("--trace {trace_path}: {e}")))?,
        )
    } else {
        if !(p.switch("perf") && metrics.is_some()) {
            return Err(ArgError::new(
                "missing required option --trace <FILE> (a file written by --trace-out) \
                 or --stream <FILE> (a JSONL file written by --stream-out); \
                 only `report --perf --metrics <FILE>` works without one",
            ));
        }
        None
    };
    let input_label = if stream_path.is_empty() {
        format!("--trace {trace_path}")
    } else {
        format!("--stream {stream_path}")
    };
    let dump = match &doc {
        Some(d) => TraceDump::from_chrome_value(d)
            .map_err(|e| ArgError::new(format!("{input_label}: {e}")))?,
        None => TraceDump::default(),
    };
    let jobs = vc_obs::analyze(&dump);

    // `--timeline` renders the windowed `ts.*` series; `--series-out`
    // re-exports them (CSV/JSONL by extension) from either input kind.
    let series_out = p.str_or("series-out", "");
    let timeline: Option<TimeSeriesSet> = if p.switch("timeline") || !series_out.is_empty() {
        let d = doc
            .as_ref()
            .ok_or_else(|| ArgError::new("--timeline needs a trace input (--trace or --stream)"))?;
        Some(
            TimeSeriesSet::from_chrome_value(d)
                .map_err(|e| ArgError::new(format!("{input_label}: {e}")))?,
        )
    } else {
        None
    };
    if let (path, Some(set)) = (series_out, &timeline) {
        if !path.is_empty() {
            let text = if path.ends_with(".csv") {
                set.to_csv()
            } else {
                set.to_jsonl()
            };
            std::fs::write(path, text)
                .map_err(|e| ArgError::new(format!("--series-out {path}: {e}")))?;
        }
    }

    let network = if p.switch("network") {
        let metrics = metrics.as_ref().ok_or_else(|| {
            ArgError::new("--network needs --metrics <FILE> (a snapshot written by --metrics-out)")
        })?;
        Some(network_summary(metrics))
    } else {
        None
    };
    let perf = if p.switch("perf") {
        let metrics = metrics.as_ref().ok_or_else(|| {
            ArgError::new("--perf needs --metrics <FILE> (a snapshot written by --metrics-out)")
        })?;
        Some(perf_summary(metrics))
    } else {
        None
    };

    let scan_audits: Vec<&vc_obs::critical_path::DumpEvent> = dump
        .events
        .iter()
        .filter(|e| e.name == "placement.scan_audit")
        .collect();
    let exchange_audits: Vec<&vc_obs::critical_path::DumpEvent> = dump
        .events
        .iter()
        .filter(|e| e.name == "placement.exchange_audit")
        .collect();

    // `--health` summarises the watchdog's `alert.*` events (plus the
    // offline attribution-tiling audit over the analysed jobs);
    // `--fail-on-alert <severity>` implies it and gates the exit code.
    let health: Option<Vec<HealthRow>> = if p.switch("health") || fail_on.is_some() {
        if doc.is_none() {
            return Err(ArgError::new(
                "--health needs a trace input (--trace or --stream)",
            ));
        }
        Some(health_summary(&dump, &jobs))
    } else {
        None
    };
    if let (Some(threshold), Some(rows)) = (fail_on, &health) {
        let tripped: Vec<&HealthRow> = rows.iter().filter(|r| r.severity >= threshold).collect();
        if !tripped.is_empty() {
            let total: u64 = tripped.iter().map(|r| r.count).sum();
            let rules: Vec<String> = tripped
                .iter()
                .map(|r| format!("{} ({}, x{})", r.rule, r.severity, r.count))
                .collect();
            return Err(ArgError::new(format!(
                "health gate: FAIL — {total} alert(s) at or above {threshold}: {}",
                rules.join(", ")
            )));
        }
    }

    if p.switch("json") {
        let event_obj = |e: &vc_obs::critical_path::DumpEvent| {
            let mut entries = vec![("t_us".to_string(), serde_json::Value::U64(e.t_us))];
            entries.extend(e.attrs.iter().cloned());
            serde_json::Value::Object(entries)
        };
        let mut entries = vec![
            (
                "jobs".to_string(),
                serde_json::Value::Array(
                    jobs.iter().map(vc_obs::JobAttribution::to_json).collect(),
                ),
            ),
            (
                "placement".to_string(),
                serde_json::Value::Object(vec![
                    (
                        "scan_audits".to_string(),
                        serde_json::Value::Array(
                            scan_audits.iter().map(|e| event_obj(e)).collect(),
                        ),
                    ),
                    (
                        "exchange_audits".to_string(),
                        serde_json::Value::Array(
                            exchange_audits.iter().map(|e| event_obj(e)).collect(),
                        ),
                    ),
                ]),
            ),
            (
                "metrics".to_string(),
                metrics.unwrap_or(serde_json::Value::Null),
            ),
        ];
        if let Some((net_json, _)) = &network {
            entries.push(("network".to_string(), net_json.clone()));
        }
        if let Some((perf_json, _)) = &perf {
            entries.push(("perf".to_string(), perf_json.clone()));
        }
        if let Some(set) = &timeline {
            let series_objs: Vec<(String, serde_json::Value)> = set
                .series
                .iter()
                .map(|(name, points)| {
                    let rows: Vec<serde_json::Value> = points
                        .iter()
                        .map(|&(t, v)| {
                            serde_json::Value::Array(vec![
                                serde_json::Value::U64(t),
                                serde_json::Value::F64(v),
                            ])
                        })
                        .collect();
                    (name.clone(), serde_json::Value::Array(rows))
                })
                .collect();
            entries.push((
                "timeline".to_string(),
                serde_json::Value::Object(vec![
                    (
                        "window_count".to_string(),
                        serde_json::Value::U64(set.window_count() as u64),
                    ),
                    ("series".to_string(), serde_json::Value::Object(series_objs)),
                ]),
            ));
        }
        if let Some(rows) = &health {
            let total: u64 = rows.iter().map(|r| r.count).sum();
            let mut health_entries = vec![
                ("total".to_string(), serde_json::Value::U64(total)),
                (
                    "alerts".to_string(),
                    serde_json::Value::Array(rows.iter().map(HealthRow::to_json).collect()),
                ),
            ];
            if fail_on.is_some() {
                health_entries.push((
                    "gate".to_string(),
                    serde_json::Value::Str("pass".to_string()),
                ));
            }
            entries.push((
                "health".to_string(),
                serde_json::Value::Object(health_entries),
            ));
        }
        return Ok(serde_json::Value::Object(entries).to_string());
    }

    let mut out = String::new();
    out.push_str(&format!(
        "critical-path attribution — {} job(s)\n",
        jobs.len()
    ));
    if !jobs.is_empty() {
        // Abbreviated category headers so the table stays under 100 cols;
        // the full names are in the JSON output and docs/metrics-schema.md.
        let short = |cat: vc_obs::Category| match cat {
            vc_obs::Category::Map => "map",
            vc_obs::Category::StragglerSlack => "straggler",
            vc_obs::Category::ShuffleSerialisation => "shuf-ser",
            vc_obs::Category::ShuffleNetworkWait => "shuf-net",
            vc_obs::Category::Reduce => "reduce",
            vc_obs::Category::SchedulerWait => "sched",
        };
        out.push_str(&format!(
            "{:>6} {:>6} {:>10} {:>10}",
            "track", "dc", "start_s", "makespan_s"
        ));
        for cat in vc_obs::CATEGORIES {
            out.push_str(&format!(" {:>10}", short(cat)));
        }
        out.push('\n');
        for job in &jobs {
            let makespan = job.makespan_us();
            out.push_str(&format!(
                "{:>6} {:>6} {:>10.2} {:>10.2}",
                job.track,
                job.distance
                    .map_or_else(|| "-".to_string(), |d| d.to_string()),
                job.start_us as f64 / 1e6,
                makespan as f64 / 1e6,
            ));
            for cat in vc_obs::CATEGORIES {
                let us = job.total_us(cat);
                let pct = if makespan > 0 {
                    100.0 * us as f64 / makespan as f64
                } else {
                    0.0
                };
                out.push_str(&format!(" {pct:>9.1}%"));
            }
            out.push('\n');
        }
    }

    out.push_str(&format!(
        "\nplacement — {} decision(s), {} exchange batch(es)\n",
        scan_audits.len(),
        exchange_audits.len()
    ));
    if !scan_audits.is_empty() {
        let sum = |key: &str| -> u64 { scan_audits.iter().map(|e| event_u64(e, key)).sum() };
        let gap_total = sum("bound_gap");
        out.push_str(&format!(
            "  seeds: {} total — {} scanned, {} pruned, {} aborted, {} tied; \
             mean bound gap {:.2}\n",
            sum("seeds_total"),
            sum("seeds_scanned"),
            sum("seeds_pruned"),
            sum("seeds_aborted"),
            sum("seeds_tied"),
            gap_total as f64 / scan_audits.len() as f64,
        ));
    }
    if !exchange_audits.is_empty() {
        let sum = |key: &str| -> u64 { exchange_audits.iter().map(|e| event_u64(e, key)).sum() };
        out.push_str(&format!(
            "  exchanges: {} swaps over {} passes, distance saved {} ({} → {})\n",
            sum("swaps"),
            sum("passes"),
            sum("saved"),
            sum("online_distance"),
            sum("optimized_distance"),
        ));
    }

    if let Some(metrics) = &metrics {
        if let Some(counters) = metrics
            .get("counters")
            .and_then(serde_json::Value::as_object)
        {
            let placement: Vec<_> = counters
                .iter()
                .filter(|(k, _)| k.starts_with("placement."))
                .collect();
            if !placement.is_empty() {
                out.push_str("\ncounters (--metrics):\n");
                for (k, v) in placement {
                    out.push_str(&format!("  {k} = {v}\n"));
                }
            }
        }
    }
    if let Some((_, net_text)) = &network {
        out.push_str(net_text);
    }
    if let Some((_, perf_text)) = &perf {
        out.push_str(perf_text);
    }
    if let Some(set) = &timeline {
        out.push_str(&render_timeline(set));
    }
    if let Some(rows) = &health {
        out.push_str(&render_health(rows));
        if let Some(threshold) = fail_on {
            out.push_str(&format!(
                "health gate: PASS — no alerts at or above {threshold}\n"
            ));
        }
    }
    Ok(out)
}

/// One rule's aggregated alert history from a `--health` report: how
/// often it fired, when, and the worst window it pointed at.
struct HealthRow {
    rule: String,
    severity: Severity,
    subsystem: String,
    count: u64,
    first_us: u64,
    last_us: u64,
    /// `(value, window_edge_us)` of the highest-valued alert, when the
    /// rule attaches a numeric `value` (detector rules always do).
    worst: Option<(f64, u64)>,
}

impl HealthRow {
    fn to_json(&self) -> serde_json::Value {
        let mut entries = vec![
            (
                "rule".to_string(),
                serde_json::Value::Str(self.rule.clone()),
            ),
            (
                "severity".to_string(),
                serde_json::Value::Str(self.severity.to_string()),
            ),
            (
                "subsystem".to_string(),
                serde_json::Value::Str(self.subsystem.clone()),
            ),
            ("count".to_string(), serde_json::Value::U64(self.count)),
            (
                "first_t_us".to_string(),
                serde_json::Value::U64(self.first_us),
            ),
            (
                "last_t_us".to_string(),
                serde_json::Value::U64(self.last_us),
            ),
        ];
        if let Some((value, edge)) = self.worst {
            entries.push(("worst_value".to_string(), serde_json::Value::F64(value)));
            entries.push((
                "worst_window_edge_us".to_string(),
                serde_json::Value::U64(edge),
            ));
        }
        serde_json::Value::Object(entries)
    }
}

/// Group the trace's `alert.*` events by rule and append the offline
/// attribution-tiling audit: each analysed job's critical path must
/// tile its makespan exactly (1 µs rounding tolerance), the one
/// invariant that can only be checked after analysis.
fn health_summary(dump: &TraceDump, jobs: &[vc_obs::JobAttribution]) -> Vec<HealthRow> {
    let mut rows: Vec<HealthRow> = Vec::new();
    for e in dump
        .events
        .iter()
        .filter(|e| e.name.starts_with(ALERT_PREFIX))
    {
        let attr_str = |key: &str| {
            e.attr(key)
                .and_then(serde_json::Value::as_str)
                .unwrap_or("?")
                .to_string()
        };
        let rule = match e.attr("rule").and_then(serde_json::Value::as_str) {
            Some(r) => r.to_string(),
            None => e
                .name
                .strip_prefix(ALERT_PREFIX)
                .unwrap_or(&e.name)
                .to_string(),
        };
        let severity = e
            .attr("severity")
            .and_then(serde_json::Value::as_str)
            .and_then(Severity::parse)
            .unwrap_or(Severity::Warn);
        let value = e.attr("value").and_then(serde_json::Value::as_f64);
        let edge = e
            .attr("window_edge_us")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(e.t_us);
        match rows.iter_mut().find(|r| r.rule == rule) {
            Some(row) => {
                row.count += 1;
                row.first_us = row.first_us.min(e.t_us);
                row.last_us = row.last_us.max(e.t_us);
                if let Some(v) = value {
                    let better = match row.worst {
                        Some((w, _)) => v > w,
                        None => true,
                    };
                    if better {
                        row.worst = Some((v, edge));
                    }
                }
            }
            None => rows.push(HealthRow {
                rule,
                severity,
                subsystem: attr_str("subsystem"),
                count: 1,
                first_us: e.t_us,
                last_us: e.t_us,
                worst: value.map(|v| (v, edge)),
            }),
        }
    }

    let mut tiling: Option<HealthRow> = None;
    for job in jobs {
        let gap = job.makespan_us().abs_diff(job.attributed_us());
        if gap <= 1 {
            continue;
        }
        let row = tiling.get_or_insert_with(|| HealthRow {
            rule: "attribution_tiling".to_string(),
            severity: Severity::Critical,
            subsystem: "obs".to_string(),
            count: 0,
            first_us: job.start_us,
            last_us: job.start_us,
            worst: None,
        });
        row.count += 1;
        row.first_us = row.first_us.min(job.start_us);
        row.last_us = row.last_us.max(job.start_us);
        let better = match row.worst {
            Some((w, _)) => gap as f64 > w,
            None => true,
        };
        if better {
            row.worst = Some((gap as f64, job.end_us));
        }
    }
    rows.extend(tiling);

    // Severest and loudest first.
    rows.sort_by(|a, b| b.severity.cmp(&a.severity).then(b.count.cmp(&a.count)));
    rows
}

/// The `report --health` table: one row per alert rule, worst-window
/// pointer in the last column.
fn render_health(rows: &[HealthRow]) -> String {
    let mut out = String::new();
    let total: u64 = rows.iter().map(|r| r.count).sum();
    out.push_str(&format!(
        "\nhealth — {} alert(s) across {} rule(s)\n",
        total,
        rows.len()
    ));
    if rows.is_empty() {
        out.push_str("  no alerts; every audited invariant and detector stayed quiet\n");
        return out;
    }
    out.push_str(&format!(
        "{:>24} {:>8} {:>10} {:>6} {:>9} {:>9}  {}\n",
        "rule", "severity", "subsystem", "count", "first_s", "last_s", "worst"
    ));
    for r in rows {
        let worst = r
            .worst
            .map(|(v, edge)| format!("{} @ {:.2}s", fmt_ts_val(v), edge as f64 / 1e6))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:>24} {:>8} {:>10} {:>6} {:>9.2} {:>9.2}  {}\n",
            r.rule,
            r.severity,
            r.subsystem,
            r.count,
            r.first_us as f64 / 1e6,
            r.last_us as f64 / 1e6,
            worst,
        ));
    }
    out
}

/// One timeline cell: integers render bare, everything else at four
/// decimal places so fill/frag/util fractions stay readable.
fn fmt_ts_val(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// The `report --timeline` table: one row per window edge (shown in
/// seconds), one column per `ts.*` series with the prefix stripped,
/// `-` where a series has no sample at that edge.
fn render_timeline(set: &TimeSeriesSet) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\ntimeline — {} window(s), {} series\n",
        set.window_count(),
        set.series.len()
    ));
    if set.is_empty() {
        out.push_str("  (no ts.* samples; run simulate with --window-us <N>)\n");
        return out;
    }
    let edges = set.edges();
    let names: Vec<&String> = set.series.keys().collect();
    // Pre-render every cell so column widths can be computed.
    let headers: Vec<&str> = names
        .iter()
        .map(|n| n.strip_prefix(TS_PREFIX).unwrap_or(n))
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(edges.len());
    for &edge in &edges {
        let mut row = vec![format!("{:.2}", edge as f64 / 1e6)];
        for name in &names {
            let points = &set.series[*name];
            let cell = points
                .binary_search_by_key(&edge, |&(t, _)| t)
                .map(|pos| fmt_ts_val(points[pos].1))
                .unwrap_or_else(|_| "-".to_string());
            row.push(cell);
        }
        rows.push(row);
    }
    let mut widths: Vec<usize> = std::iter::once("t_s")
        .chain(headers.iter().copied())
        .map(str::len)
        .collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    out.push_str(&format!("  {:>w$}", "t_s", w = widths[0]));
    for (h, w) in headers.iter().zip(&widths[1..]) {
        out.push_str(&format!(" {h:>w$}", w = *w));
    }
    out.push('\n');
    for row in &rows {
        out.push_str("  ");
        for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{cell:>w$}", w = *w));
        }
        out.push('\n');
    }
    out
}

/// Load a perf JSON document for `profile`: either a full
/// `report --perf --json` output (the `perf` key is extracted) or a bare
/// perf object as saved from it.
fn load_perf(path: &str) -> Result<serde_json::Value, ArgError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError::new(format!("{path}: I/O error: {e}")))?;
    let doc: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| ArgError::new(format!("{path}: {e}")))?;
    let perf = doc.get("perf").cloned().unwrap_or(doc);
    if perf.get("solver").is_none() {
        return Err(ArgError::new(format!(
            "{path}: not a perf document (no `solver` key; write one with \
             `report --perf --json --metrics <FILE>`)"
        )));
    }
    Ok(perf)
}

/// One gated metric: dotted path into a perf document plus how to gate it.
struct PerfMetric {
    name: &'static str,
    /// Deterministic effort counters gate with `--max-regress-pct`;
    /// wall-clock metrics gate with `--max-wall-regress-pct` (advisory
    /// when that is unset).
    wall: bool,
}

/// Read a gated metric out of a perf document.
fn perf_metric(doc: &serde_json::Value, name: &str) -> u64 {
    let mut cur = doc;
    for seg in name.split('.') {
        match cur.get(seg) {
            Some(v) => cur = v,
            None => return 0,
        }
    }
    cur.as_u64().unwrap_or(0)
}

/// `affinity-vc profile` — diff two perf snapshots and fail (exit code 1)
/// on regressions beyond the configured thresholds. Deterministic effort
/// counters (solver solves/flows/iterations/links, DES events, phase
/// call counts) gate with `--max-regress-pct` (default 10); wall-clock
/// metrics are advisory unless `--max-wall-regress-pct` is given.
pub fn profile(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&[
        "current",
        "baseline",
        "max-regress-pct",
        "max-wall-regress-pct",
        "json",
    ])?;
    let current = load_perf(p.required("current")?)?;
    let baseline = load_perf(p.required("baseline")?)?;
    let max_regress = p.num_or("max-regress-pct", 10.0f64)?;
    let max_wall = p.num_or("max-wall-regress-pct", -1.0f64)?;
    if max_regress < 0.0 {
        return Err(ArgError::new("--max-regress-pct must be non-negative"));
    }

    let mut metrics: Vec<PerfMetric> = vec![
        PerfMetric {
            name: "solver.solves",
            wall: false,
        },
        PerfMetric {
            name: "solver.flows",
            wall: false,
        },
        PerfMetric {
            name: "solver.iterations",
            wall: false,
        },
        PerfMetric {
            name: "solver.links_touched",
            wall: false,
        },
        PerfMetric {
            name: "solver.completion_batches",
            wall: false,
        },
        PerfMetric {
            name: "des.events_processed",
            wall: false,
        },
        PerfMetric {
            name: "total_wall_us",
            wall: true,
        },
        PerfMetric {
            name: "solver.wall_us",
            wall: true,
        },
    ];
    // Phase call counts are deterministic too (one serve per event, one
    // seed scan per placement solve, ...).
    for ph in vc_obs::prof::PHASES {
        metrics.push(PerfMetric {
            name: Box::leak(format!("phases_calls.{}", ph.name).into_boxed_str()),
            wall: false,
        });
    }
    // `phases` is an array in the document; index it by name once.
    let phase_calls = |doc: &serde_json::Value, name: &str| -> u64 {
        doc.get("phases")
            .and_then(serde_json::Value::as_array)
            .and_then(|phases| {
                phases
                    .iter()
                    .find(|ph| ph.get("phase").and_then(serde_json::Value::as_str) == Some(name))
            })
            .and_then(|ph| ph.get("calls"))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0)
    };
    let read = |doc: &serde_json::Value, name: &str| -> u64 {
        match name.strip_prefix("phases_calls.") {
            Some(phase) => phase_calls(doc, phase),
            None => perf_metric(doc, name),
        }
    };

    let mut rows: Vec<serde_json::Value> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut text = String::from("perf comparison (current vs baseline):\n");
    for m in &metrics {
        let cur = read(&current, m.name);
        let base = read(&baseline, m.name);
        if cur == 0 && base == 0 {
            continue;
        }
        let delta_pct = if base > 0 {
            100.0 * (cur as f64 - base as f64) / base as f64
        } else {
            f64::INFINITY
        };
        let threshold = if m.wall { max_wall } else { max_regress };
        let gated = !m.wall || max_wall >= 0.0;
        let status = if base == 0 {
            "new" // no baseline: informational, never gates
        } else if gated && delta_pct > threshold {
            failures.push(format!(
                "{} regressed {:.1}% ({} -> {}, limit {:.1}%)",
                m.name, delta_pct, base, cur, threshold
            ));
            "FAIL"
        } else if !gated {
            "info"
        } else {
            "ok"
        };
        let shown_delta = if base > 0 { delta_pct } else { 0.0 };
        text.push_str(&format!(
            "  {:<28} {:>12} -> {:>12}  {:>+8.1}%  {}\n",
            m.name, base, cur, shown_delta, status
        ));
        rows.push(serde_json::json!({
            "metric": m.name,
            "baseline": base,
            "current": cur,
            "delta_pct": shown_delta,
            "wall": m.wall,
            "status": status,
        }));
    }

    if failures.is_empty() {
        let verdict = format!(
            "perf gate: PASS ({} metric(s) within {max_regress:.1}%)",
            rows.len()
        );
        if p.switch("json") {
            return Ok(serde_json::json!({
                "verdict": "PASS",
                "max_regress_pct": max_regress,
                "metrics": rows,
            })
            .to_string());
        }
        Ok(format!("{text}{verdict}\n"))
    } else {
        // Returned as an error so the process exits non-zero — that is
        // the CI gate. The verdict line stays greppable on stderr.
        let mut msg = format!("perf gate: FAIL ({} regression(s))\n", failures.len());
        for f in &failures {
            msg.push_str(&format!("  {f}\n"));
        }
        msg.push_str(&text);
        Err(ArgError::new(msg))
    }
}

/// `affinity-vc derive-distance`
pub fn derive_distance(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&["racks", "nodes", "unit-us", "json"])?;
    let racks = p.num_or("racks", 3usize)?;
    let nodes = p.num_or("nodes", 10usize)?;
    let unit = p.num_or("unit-us", 100u64)?;
    if racks == 0 || nodes == 0 || unit == 0 {
        return Err(ArgError::new(
            "--racks, --nodes and --unit-us must be positive",
        ));
    }
    let topo = generate::uniform(racks, nodes, DistanceTiers::paper_experiment());
    let matrix = vc_netsim::measure::derive_distance_matrix(
        &topo,
        &NetworkParams::default(),
        SimTime::from_micros(unit),
    );
    if p.switch("json") {
        let rows: Vec<Vec<u32>> = (0..topo.num_nodes())
            .map(|i| matrix.row(NodeId::from_index(i)).to_vec())
            .collect();
        return Ok(serde_json::json!({ "unit_us": unit, "matrix": rows }).to_string());
    }
    let mut out = format!(
        "distance matrix from measured latency ({} nodes, unit {unit}µs):\n",
        topo.num_nodes()
    );
    for i in 0..topo.num_nodes() {
        let row: Vec<String> = matrix
            .row(NodeId::from_index(i))
            .iter()
            .map(u32::to_string)
            .collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    Ok(out)
}
