//! Subcommand implementations.

use crate::args::{ArgError, Parsed};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::Arc;
use vc_cloudsim::sim::{PolicyMode, ServiceModel, SimConfig};
use vc_cloudsim::{ArrivalProcess, ServiceTime};
use vc_des::SimTime;
use vc_mapreduce::engine::SimParams;
use vc_mapreduce::{JobConfig, VirtualCluster, Workload};
use vc_model::workload::RequestProfile;
use vc_model::{ClusterState, Request, VmCatalog};
use vc_netsim::NetworkParams;
use vc_obs::{
    DiffOptions, DiffReport, Fnv64, HealthPolicy, MemRecorder, MergedTrace, MetricsSnapshot,
    Recorder, RunManifest, Severity, ShardedRecorder, StreamingRecorder, TimeSeriesSet, TraceDump,
    ALERT_PREFIX, MANIFEST_KEY, TS_PREFIX,
};
use vc_placement::distance::distance_with_center;
use vc_placement::global::Admission;
use vc_placement::{baselines, exact, ilp, online, PlacementPolicy};
use vc_topology::{generate, DistanceTiers, NodeId};

fn build_cloud(p: &Parsed) -> Result<ClusterState, ArgError> {
    let racks = p.num_or("racks", 3usize)?;
    let nodes = p.num_or("nodes", 10usize)?;
    let capacity = p.num_or("capacity", 2u32)?;
    if racks == 0 || nodes == 0 {
        return Err(ArgError::new("--racks and --nodes must be positive"));
    }
    let topo = Arc::new(generate::uniform(
        racks,
        nodes,
        DistanceTiers::paper_experiment(),
    ));
    let catalog = Arc::new(VmCatalog::ec2_table1());
    Ok(ClusterState::uniform_capacity(topo, catalog, capacity))
}

/// The seed-scan configuration selected by `--placement-threads`
/// (0 = auto-detect, 1 = sequential, n = that many workers). Pruning is
/// always on — it never changes the chosen allocation.
fn scan_config(p: &Parsed) -> Result<online::ScanConfig, ArgError> {
    let threads = p.num_or("placement-threads", 1usize)?;
    Ok(online::ScanConfig {
        prune: true,
        parallelism: online::Parallelism::from_thread_count(threads),
    })
}

fn policy_by_name(
    name: &str,
    scan: online::ScanConfig,
) -> Result<Box<dyn PlacementPolicy>, ArgError> {
    Ok(match name {
        "online" => Box::new(online::OnlineScan(scan)),
        "exact" => Box::new(exact::ExactSd),
        "ilp" => Box::new(ilp::IlpSd),
        "first-fit" => Box::new(baselines::FirstFit),
        "best-fit" => Box::new(baselines::BestFit),
        "spread" => Box::new(baselines::Spread),
        "random" => Box::new(baselines::RandomPlacement),
        other => {
            return Err(ArgError::new(format!(
                "unknown policy `{other}` for --policy"
            )))
        }
    })
}

fn workload_by_name(name: &str) -> Result<Workload, ArgError> {
    Ok(match name {
        "wordcount" => Workload::wordcount(),
        "wordcount-nocombine" => Workload::wordcount_no_combiner(),
        "terasort" => Workload::terasort(),
        "grep" => Workload::grep(),
        other => return Err(ArgError::new(format!("unknown workload `{other}`"))),
    })
}

/// Whether `--trace-out`, `--metrics-out`, `--prom-out`, `--series-out`
/// or `--stream-out` asks for a recorded run.
fn wants_observability(p: &Parsed) -> bool {
    !p.str_or("trace-out", "").is_empty()
        || !p.str_or("metrics-out", "").is_empty()
        || !p.str_or("prom-out", "").is_empty()
        || !p.str_or("series-out", "").is_empty()
        || !p.str_or("stream-out", "").is_empty()
}

/// Flag names shared by every command that accepts the health watchdog.
const HEALTH_OPTIONS: &[&str] = &[
    "health",
    "health-audit-events",
    "health-uplink-util",
    "health-uplink-windows",
    "health-frag-windows",
    "health-queue-windows",
];

/// The [`HealthPolicy`] selected by `--health` and its tuning flags.
/// `--health` alone enables the watchdog with defaults; any
/// `--health-*` tuning flag implies it. `None` when no health flag was
/// given at all.
fn health_policy(p: &Parsed) -> Result<Option<HealthPolicy>, ArgError> {
    let tuned = HEALTH_OPTIONS[1..]
        .iter()
        .any(|k| !p.str_or(k, "").is_empty());
    if !p.switch("health") && !tuned {
        return Ok(None);
    }
    let d = HealthPolicy::default();
    let policy = HealthPolicy {
        audit_every_events: p.num_or("health-audit-events", d.audit_every_events)?,
        uplink_util: p.num_or("health-uplink-util", d.uplink_util)?,
        uplink_windows: p.num_or("health-uplink-windows", d.uplink_windows)?,
        frag_windows: p.num_or("health-frag-windows", d.frag_windows)?,
        queue_windows: p.num_or("health-queue-windows", d.queue_windows)?,
        ..d
    };
    if !(0.0..=1.0).contains(&policy.uplink_util) {
        return Err(ArgError::new(
            "--health-uplink-util must be a fraction in [0, 1]",
        ));
    }
    Ok(Some(policy))
}

/// The `ts.*` sampling cadence from `--window-us` (0/absent = off).
/// `--series-out` is meaningless without one, so that combination is
/// rejected here.
fn ts_window(p: &Parsed) -> Result<Option<u64>, ArgError> {
    let w = p.num_or("window-us", 0u64)?;
    if w == 0 && !p.str_or("series-out", "").is_empty() {
        return Err(ArgError::new(
            "--series-out needs --window-us <N> to define the sampling cadence",
        ));
    }
    Ok((w > 0).then_some(w))
}

/// FNV digest of a topology's identity — node/rack shape plus distance
/// tiers. Two runs with equal digests placed onto byte-identical clouds,
/// which is what makes their per-link and per-rack telemetry alignable.
fn topology_digest(topo: &vc_topology::Topology) -> String {
    let mut h = Fnv64::new();
    h.write_u64(topo.num_nodes() as u64)
        .write_u64(topo.num_racks() as u64);
    for node in topo.node_ids() {
        h.write_u64(u64::from(topo.rack_of(node).0));
    }
    let tiers = topo.tiers();
    h.write_u64(u64::from(tiers.same_rack))
        .write_u64(u64::from(tiers.cross_rack))
        .write_u64(u64::from(tiers.cross_cloud));
    h.finish()
}

/// FNV digest of a request trace: ids, timings and VM counts. Equal
/// digests mean the two runs served the exact same arrival sequence,
/// so count deltas are attributable to the policy, not the workload.
fn trace_digest(trace: &[vc_cloudsim::CloudRequest]) -> String {
    let mut h = Fnv64::new();
    h.write_u64(trace.len() as u64);
    for r in trace {
        h.write_u64(r.id)
            .write_u64(r.arrival.as_micros())
            .write_u64(r.service_time.as_micros());
        for &c in r.request.counts() {
            h.write_u64(u64::from(c));
        }
    }
    h.finish()
}

/// Cloud-shape knobs every cloud-building command contributes to its
/// manifest.
fn cloud_config_entries(p: &Parsed) -> Result<Vec<(String, String)>, ArgError> {
    Ok(vec![
        ("racks".to_string(), p.num_or("racks", 3usize)?.to_string()),
        ("nodes".to_string(), p.num_or("nodes", 10usize)?.to_string()),
        (
            "capacity".to_string(),
            p.num_or("capacity", 2u32)?.to_string(),
        ),
        (
            "placement-threads".to_string(),
            p.num_or("placement-threads", 1usize)?.to_string(),
        ),
    ])
}

/// The recorder a command records into: the single-threaded
/// [`MemRecorder`] normally, the thread-safe [`ShardedRecorder`] when
/// `--placement-threads` enables a parallel seed scan — scan workers then
/// record per-thread chunk telemetry instead of tripping the
/// `placement.recorder_unsync` fallback — and the bounded-memory
/// [`StreamingRecorder`] when `--stream-out` spills the event stream to
/// a JSONL file as it happens. Stream artefacts (trace/metrics/series)
/// are produced by replaying the flushed file, so what you export is
/// exactly what a later `report --stream` will see.
enum CliRecorder {
    Mem(MemRecorder),
    Sharded(ShardedRecorder),
    Stream {
        rec: Option<StreamingRecorder<BufWriter<File>>>,
        path: String,
        merged: Option<MergedTrace>,
    },
}

impl CliRecorder {
    fn for_threads(threads: usize) -> Self {
        if threads == 1 {
            Self::Mem(MemRecorder::new())
        } else {
            Self::Sharded(ShardedRecorder::new())
        }
    }

    /// Select the recorder for a run: `--stream-out` wins (it is
    /// thread-safe, so it also serves parallel seed scans), otherwise
    /// thread count decides. A stream opens with the run manifest as a
    /// JSONL header line, so a flushed file identifies its run even
    /// when no other artefact was exported (`replay_jsonl` skips the
    /// header; `manifest_from_jsonl` extracts it).
    fn build(p: &Parsed, threads: usize, manifest: &RunManifest) -> Result<Self, ArgError> {
        match p.str_or("stream-out", "") {
            "" => Ok(Self::for_threads(threads)),
            path => {
                let mut file = File::create(path)
                    .map_err(|e| ArgError::new(format!("--stream-out {path}: {e}")))?;
                let header =
                    serde_json::Value::Object(vec![(MANIFEST_KEY.to_string(), manifest.to_json())]);
                writeln!(file, "{header}")
                    .map_err(|e| ArgError::new(format!("--stream-out {path}: {e}")))?;
                Ok(Self::Stream {
                    rec: Some(StreamingRecorder::new(BufWriter::new(file))),
                    path: path.to_string(),
                    merged: None,
                })
            }
        }
    }

    fn as_recorder(&self) -> &dyn Recorder {
        match self {
            Self::Mem(r) => r,
            Self::Sharded(r) => r,
            Self::Stream { rec, .. } => rec.as_ref().expect("stream recorder already finished"),
        }
    }

    /// Finish the stream (flush every buffer to disk) and replay the
    /// file into a [`MergedTrace`], memoized. Only valid on `Stream`.
    fn stream_merged(&mut self) -> Result<&MergedTrace, ArgError> {
        let Self::Stream { rec, path, merged } = self else {
            unreachable!("stream_merged on a non-stream recorder")
        };
        if merged.is_none() {
            let r = rec.take().expect("stream recorder already finished");
            let mut writer = r
                .finish()
                .map_err(|e| ArgError::new(format!("--stream-out {path}: {e}")))?;
            writer
                .flush()
                .map_err(|e| ArgError::new(format!("--stream-out {path}: {e}")))?;
            drop(writer);
            let text = std::fs::read_to_string(&*path)
                .map_err(|e| ArgError::new(format!("--stream-out {path}: I/O error: {e}")))?;
            let m = vc_obs::replay_jsonl(&text)
                .map_err(|e| ArgError::new(format!("--stream-out {path}: {e}")))?;
            *merged = Some(m);
        }
        Ok(merged.as_ref().expect("just memoized"))
    }

    fn trace_doc(&mut self) -> Result<serde_json::Value, ArgError> {
        match self {
            Self::Mem(r) => Ok(vc_obs::chrome_trace(r)),
            Self::Sharded(r) => Ok(vc_obs::chrome_trace_sharded(r)),
            Self::Stream { .. } => {
                let m = self.stream_merged()?;
                Ok(vc_obs::trace::chrome_trace_parts(
                    &m.spans,
                    &m.events,
                    &m.track_names,
                    &m.counter_series,
                ))
            }
        }
    }

    fn metrics(&mut self) -> Result<MetricsSnapshot, ArgError> {
        match self {
            Self::Mem(r) => Ok(r.metrics()),
            Self::Sharded(r) => Ok(r.merged().metrics),
            Self::Stream { .. } => Ok(self.stream_merged()?.metrics.clone()),
        }
    }

    /// The `ts.*` windowed series this run recorded.
    fn timeseries(&mut self) -> Result<TimeSeriesSet, ArgError> {
        match self {
            Self::Mem(r) => Ok(TimeSeriesSet::from_counter_series(&r.counter_series())),
            Self::Sharded(r) => Ok(TimeSeriesSet::from_counter_series(
                &r.merged().counter_series,
            )),
            Self::Stream { .. } => Ok(TimeSeriesSet::from_counter_series(
                &self.stream_merged()?.counter_series,
            )),
        }
    }

    fn span_event_counts(&mut self) -> Result<(usize, usize), ArgError> {
        match self {
            Self::Mem(r) => Ok((r.spans().len(), r.events().len())),
            Self::Sharded(r) => {
                let m = r.merged();
                Ok((m.spans.len(), m.events.len()))
            }
            Self::Stream { .. } => {
                let m = self.stream_merged()?;
                Ok((m.spans.len(), m.events.len()))
            }
        }
    }
}

/// Write the requested observability artefacts: a Chrome/Perfetto trace
/// for `--trace-out`, the run document for `--metrics-out` (CSV snapshot
/// when the path ends in `.csv`, pretty JSON otherwise), a Prometheus
/// text exposition plus the `vc_run_info` info-metric for `--prom-out`
/// (window-labelled `ts.*` samples when `--window-us` is set), and the
/// windowed time-series for `--series-out` (CSV when the path ends in
/// `.csv`, else JSONL).
fn write_observability(
    p: &Parsed,
    rec: &mut CliRecorder,
    manifest: &RunManifest,
    doc: Option<&serde_json::Value>,
) -> Result<(), ArgError> {
    match p.str_or("trace-out", "") {
        "" => {}
        path => {
            let doc = rec.trace_doc()?;
            vc_obs::trace::save_trace_value(&doc, path)
                .map_err(|e| ArgError::new(format!("--trace-out {path}: {e}")))?;
        }
    }
    match p.str_or("metrics-out", "") {
        "" => {}
        path => {
            let text = if path.ends_with(".csv") {
                rec.metrics()?.to_csv()
            } else {
                match doc {
                    Some(doc) => serde_json::to_string_pretty(doc)
                        .map_err(|e| ArgError::new(e.to_string()))?,
                    None => rec.metrics()?.to_json_string(),
                }
            };
            std::fs::write(path, text)
                .map_err(|e| ArgError::new(format!("--metrics-out {path}: {e}")))?;
        }
    }
    let window_us = p.num_or("window-us", 0u64)?;
    match p.str_or("prom-out", "") {
        "" => {}
        path => {
            let series = if window_us > 0 {
                rec.timeseries()?
            } else {
                TimeSeriesSet::default()
            };
            let mut text = vc_obs::to_prometheus_windowed(&rec.metrics()?, window_us, &series);
            text.push_str(&manifest.to_prom_info());
            std::fs::write(path, text)
                .map_err(|e| ArgError::new(format!("--prom-out {path}: {e}")))?;
        }
    }
    match p.str_or("series-out", "") {
        "" => {}
        path => {
            let set = rec.timeseries()?;
            let text = if path.ends_with(".csv") {
                set.to_csv()
            } else {
                set.to_jsonl()
            };
            std::fs::write(path, text)
                .map_err(|e| ArgError::new(format!("--series-out {path}: {e}")))?;
        }
    }
    // A stream must hit the disk even when no other artefact asked for
    // it; replaying also validates the flushed file end-to-end.
    if let CliRecorder::Stream { .. } = rec {
        rec.stream_merged()?;
    }
    Ok(())
}

/// The run document: the metrics snapshot extended with the manifest,
/// per-job critical-path attribution, and (when `--window-us` sampled)
/// the windowed `ts.*` series. This is the unit `vc diff` aligns.
fn run_document(
    rec: &mut CliRecorder,
    manifest: &RunManifest,
) -> Result<serde_json::Value, ArgError> {
    let serde_json::Value::Object(mut entries) = rec.metrics()?.to_json() else {
        return Err(ArgError::new("internal: metrics snapshot is not an object"));
    };
    entries.push((MANIFEST_KEY.to_string(), manifest.to_json()));
    let trace = rec.trace_doc()?;
    let dump = TraceDump::from_chrome_value(&trace)
        .map_err(|e| ArgError::new(format!("internal trace: {e}")))?;
    let jobs = vc_obs::analyze(&dump);
    entries.push((
        "attribution".to_string(),
        serde_json::Value::Object(vec![(
            "jobs".to_string(),
            serde_json::Value::Array(jobs.iter().map(vc_obs::JobAttribution::to_json).collect()),
        )]),
    ));
    if manifest.window_us > 0 {
        let set = rec.timeseries()?;
        let series: Vec<(String, serde_json::Value)> = set
            .series
            .iter()
            .map(|(name, points)| {
                let rows: Vec<serde_json::Value> = points
                    .iter()
                    .map(|&(t, v)| {
                        serde_json::Value::Array(vec![
                            serde_json::Value::U64(t),
                            serde_json::Value::F64(v),
                        ])
                    })
                    .collect();
                (name.clone(), serde_json::Value::Array(rows))
            })
            .collect();
        entries.push((
            "timeseries".to_string(),
            serde_json::Value::Object(vec![
                (
                    "window_us".to_string(),
                    serde_json::Value::U64(manifest.window_us),
                ),
                ("series".to_string(), serde_json::Value::Object(series)),
            ]),
        ));
    }
    Ok(serde_json::Value::Object(entries))
}

/// Everything a recorded run leaves behind for its command to render.
struct RecordedRun<T> {
    result: T,
    metrics: MetricsSnapshot,
    spans: usize,
    events: usize,
    /// The run document — built when `capture` asked for it or an
    /// artefact needed it, `None` otherwise.
    doc: Option<serde_json::Value>,
}

/// Shared recorded-run harness for `simulate`, `simulate-queue` and
/// `simulate-job`: selects the recorder (mem / sharded / streaming),
/// runs `body` against it, builds the run document when needed, and
/// writes every `--*-out` artefact — so manifest capture is wired
/// exactly once.
fn run_recorded_command<T>(
    p: &Parsed,
    threads: usize,
    manifest: &RunManifest,
    capture: bool,
    body: impl FnOnce(&dyn Recorder) -> T,
) -> Result<RecordedRun<T>, ArgError> {
    let mut rec = CliRecorder::build(p, threads, manifest)?;
    let result = body(rec.as_recorder());
    let metrics_path = p.str_or("metrics-out", "");
    let want_doc = capture || (!metrics_path.is_empty() && !metrics_path.ends_with(".csv"));
    let doc = if want_doc {
        Some(run_document(&mut rec, manifest)?)
    } else {
        None
    };
    write_observability(p, &mut rec, manifest, doc.as_ref())?;
    let metrics = rec.metrics()?;
    let (spans, events) = rec.span_event_counts()?;
    Ok(RecordedRun {
        result,
        metrics,
        spans,
        events,
        doc,
    })
}

/// `affinity-vc place`
pub fn place(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&[
        "request",
        "policy",
        "racks",
        "nodes",
        "capacity",
        "seed",
        "json",
        "placement-threads",
    ])?;
    let counts = p
        .u32_list("request")?
        .ok_or_else(|| ArgError::new("missing required option --request (e.g. --request 2,4,1)"))?;
    let cloud = build_cloud(p)?;
    if counts.len() != cloud.num_types() {
        return Err(ArgError::new(format!(
            "--request must list {} counts (one per VM type)",
            cloud.num_types()
        )));
    }
    let request = Request::from_counts(counts.clone());
    if request.is_zero() {
        return Err(ArgError::new("--request must ask for at least one VM"));
    }
    let policy = policy_by_name(p.str_or("policy", "online"), scan_config(p)?)?;
    let mut rng = StdRng::seed_from_u64(p.num_or("seed", 0u64)?);

    let allocation = policy
        .place(&request, &cloud, &mut rng)
        .map_err(|e| ArgError::new(e.to_string()))?;
    let distance = distance_with_center(allocation.matrix(), cloud.topology(), allocation.center());

    if p.switch("json") {
        let placements: Vec<_> = allocation
            .matrix()
            .entries()
            .map(|(n, t, c)| serde_json::json!({"node": n.0, "type": t.0, "count": c}))
            .collect();
        return Ok(serde_json::json!({
            "request": counts,
            "policy": policy.name(),
            "distance": distance,
            "center": allocation.center().0,
            "span_nodes": allocation.span(),
            "span_racks": allocation.rack_span(cloud.topology()),
            "placements": placements,
        })
        .to_string());
    }
    let mut out = format!(
        "policy {} placed {request}: distance {distance}, centre {}, {} node(s), {} rack(s)\n",
        policy.name(),
        allocation.center(),
        allocation.span(),
        allocation.rack_span(cloud.topology()),
    );
    for (node, ty, count) in allocation.matrix().entries() {
        out.push_str(&format!("  {node}: {count}×{ty}\n"));
    }
    Ok(out)
}

/// `affinity-vc simulate-job`
pub fn simulate_job(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&[
        "spread",
        "workload",
        "maps",
        "reducers",
        "seed",
        "json",
        "speculative",
        "straggler-prob",
        "trace-out",
        "metrics-out",
        "prom-out",
        "stream-out",
    ])?;
    let spread = p.u32_list("spread")?.unwrap_or_else(|| vec![2, 10, 0]);
    if spread.len() != 3 {
        return Err(ArgError::new(
            "--spread must be on_master,same_rack,cross_rack",
        ));
    }
    let workload = workload_by_name(p.str_or("workload", "wordcount"))?;
    let maps = p.num_or("maps", 32u32)?;
    let reducers = p.num_or("reducers", 1u32)?;
    if maps == 0 || reducers == 0 {
        return Err(ArgError::new("--maps and --reducers must be positive"));
    }

    let topo = Arc::new(generate::paper_simulation());
    let topo_digest = topology_digest(&topo);
    let mut nodes = vec![NodeId(0); spread[0] as usize];
    nodes.extend((0..spread[1]).map(|i| NodeId(1 + (i % 9))));
    nodes.extend((0..spread[2]).map(|i| NodeId(10 + (i % 20))));
    if nodes.is_empty() {
        return Err(ArgError::new("--spread must place at least one VM"));
    }
    let cluster = VirtualCluster::homogeneous(&nodes, nodes.len(), topo);

    let job = JobConfig {
        workload,
        input_mb: f64::from(maps) * 64.0,
        split_mb: 64.0,
        num_reducers: reducers,
        replication: 3,
    };
    let params = SimParams {
        net: NetworkParams::default(),
        seed: p.num_or("seed", 0u64)?,
        straggler_prob: p.num_or("straggler-prob", 0.0f64)?,
        speculative_execution: p.switch("speculative"),
        ..SimParams::default()
    };
    let m = if wants_observability(p) {
        // The workload digest covers everything that shapes the job:
        // the VM spread, the workload profile, and the task counts.
        let workload_name = p.str_or("workload", "wordcount");
        let mut wh = Fnv64::new();
        wh.write_str(workload_name)
            .write_u64(u64::from(job.num_maps()))
            .write_u64(u64::from(reducers));
        for &s in &spread {
            wh.write_u64(u64::from(s));
        }
        let manifest = RunManifest::new(
            env!("CARGO_PKG_VERSION"),
            "simulate-job",
            params.seed,
            "pinned-spread",
            0,
            topo_digest,
            wh.finish(),
            vec![
                (
                    "spread".to_string(),
                    format!("{},{},{}", spread[0], spread[1], spread[2]),
                ),
                ("workload".to_string(), workload_name.to_string()),
                ("maps".to_string(), maps.to_string()),
                ("reducers".to_string(), reducers.to_string()),
                (
                    "straggler-prob".to_string(),
                    params.straggler_prob.to_string(),
                ),
                (
                    "speculative".to_string(),
                    params.speculative_execution.to_string(),
                ),
            ],
        );
        run_recorded_command(p, 1, &manifest, false, |r| {
            vc_mapreduce::simulate_job_traced(&cluster, &job, &params, r, 0, 0)
        })?
        .result
    } else {
        vc_mapreduce::simulate_job(&cluster, &job, &params)
    };

    if p.switch("json") {
        return serde_json::to_string(&m).map_err(|e| ArgError::new(e.to_string()));
    }
    Ok(format!(
        "cluster distance {}: runtime {:.1}s ({} maps: {} data-local / {} rack / {} remote; \
         non-local shuffle {:.0}%; {} speculative backups, {} won)\n",
        m.cluster_distance,
        m.runtime.as_secs_f64(),
        m.num_maps,
        m.data_local_maps,
        m.rack_local_maps,
        m.remote_maps,
        100.0 * m.non_local_shuffle_fraction(),
        m.speculative_attempts,
        m.speculative_wins,
    ))
}

/// `affinity-vc simulate-queue`
pub fn simulate_queue(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&[
        "requests",
        "rate",
        "policy",
        "racks",
        "nodes",
        "capacity",
        "seed",
        "json",
        "trace",
        "save-trace",
        "trace-out",
        "metrics-out",
        "prom-out",
        "series-out",
        "stream-out",
        "window-us",
        "placement-threads",
        "health",
        "health-audit-events",
        "health-uplink-util",
        "health-uplink-windows",
        "health-frag-windows",
        "health-queue-windows",
    ])?;
    let cloud = build_cloud(p)?;
    let count = p.num_or("requests", 20usize)?;
    let rate = p.num_or("rate", 0.5f64)?;
    if rate <= 0.0 {
        return Err(ArgError::new("--rate must be positive"));
    }
    let seed = p.num_or("seed", 0u64)?;
    let trace = match p.str_or("trace", "") {
        "" => {
            let process = ArrivalProcess {
                rate_per_s: rate,
                profile: RequestProfile::standard(),
                service: ServiceTime::UniformMs(10_000, 60_000),
            };
            process.generate(count, cloud.num_types(), &mut StdRng::seed_from_u64(seed))
        }
        path => vc_cloudsim::trace::load(path).map_err(|e| ArgError::new(e.to_string()))?,
    };
    match p.str_or("save-trace", "") {
        "" => {}
        path => {
            vc_cloudsim::trace::save(&trace, path).map_err(|e| ArgError::new(e.to_string()))?;
        }
    }

    let policy_name = p.str_or("policy", "online");
    let scan = scan_config(p)?;
    let mode = if policy_name == "global" {
        PolicyMode::GlobalBatch(Admission::FifoBlocking, scan)
    } else {
        PolicyMode::Individual(policy_by_name(policy_name, scan)?)
    };
    let total = trace.len();
    let workload_digest = trace_digest(&trace);
    let mut config = SimConfig::new(trace, mode, seed);
    if let Some(w) = ts_window(p)? {
        config = config.with_timeseries(w);
    }
    let health = health_policy(p)?;
    let audited = health.is_some();
    if let Some(h) = health {
        config = config.with_health(h);
    }
    // The watchdog only runs against a live recorder, so `--health`
    // forces the recorded path even without an `--*-out` export.
    let result = if wants_observability(p) || audited {
        let mut entries = cloud_config_entries(p)?;
        entries.extend(config.manifest_entries());
        let manifest = RunManifest::new(
            env!("CARGO_PKG_VERSION"),
            "simulate-queue",
            seed,
            &config.policy_name(),
            config.ts_window_us.unwrap_or(0),
            topology_digest(cloud.topology()),
            workload_digest,
            entries,
        );
        let threads = p.num_or("placement-threads", 1usize)?;
        run_recorded_command(p, threads, &manifest, false, |r| {
            vc_cloudsim::sim::run_recorded(&cloud, config, r)
        })?
        .result
    } else {
        vc_cloudsim::sim::run(&cloud, config)
    };

    if p.switch("json") {
        let outcomes: Vec<_> = result
            .outcomes
            .iter()
            .map(|o| {
                serde_json::json!({
                    "id": o.id,
                    "distance": o.distance,
                    "wait_s": o.wait().map(SimTime::as_secs_f64),
                    "refused": o.refused,
                })
            })
            .collect();
        return Ok(serde_json::json!({
            "policy": policy_name,
            "served": result.served,
            "refused": result.refused,
            "total_distance": result.total_distance,
            "mean_wait_s": result.mean_wait.as_secs_f64(),
            "outcomes": outcomes,
        })
        .to_string());
    }
    Ok(format!(
        "policy {policy_name}: served {}/{} (refused {}), Σdistance {}, mean wait {:.1}s\n",
        result.served,
        total,
        result.refused,
        result.total_distance,
        result.mean_wait.as_secs_f64(),
    ))
}

/// `affinity-vc simulate` (alias `run`) — the end-to-end pipeline:
/// request queue → affinity-aware placement → MapReduce jobs on the
/// placed virtual clusters, with the whole run recorded so
/// `--trace-out`/`--metrics-out` capture every layer at once.
pub fn simulate(p: &Parsed) -> Result<String, ArgError> {
    simulate_impl(p, None, false).map(|(out, _)| out)
}

/// The `simulate` body, parameterised for paired mode: `seed_override`
/// replaces `--seed` (so `vc diff --seeds N` can sweep a seed range),
/// and `capture` forces the run document to be built and returned even
/// when no `--metrics-out` artefact asked for it.
fn simulate_impl(
    p: &Parsed,
    seed_override: Option<u64>,
    capture: bool,
) -> Result<(String, Option<serde_json::Value>), ArgError> {
    p.ensure_known(&[
        "requests",
        "rate",
        "policy",
        "racks",
        "nodes",
        "capacity",
        "seed",
        "json",
        "service",
        "workload",
        "maps",
        "reducers",
        "trace-out",
        "metrics-out",
        "prom-out",
        "series-out",
        "stream-out",
        "window-us",
        "placement-threads",
        "health",
        "health-audit-events",
        "health-uplink-util",
        "health-uplink-windows",
        "health-frag-windows",
        "health-queue-windows",
    ])?;
    let cloud = build_cloud(p)?;
    let count = p.num_or("requests", 10usize)?;
    let rate = p.num_or("rate", 0.5f64)?;
    if rate <= 0.0 {
        return Err(ArgError::new("--rate must be positive"));
    }
    let seed = match seed_override {
        Some(s) => s,
        None => p.num_or("seed", 0u64)?,
    };
    let process = ArrivalProcess {
        rate_per_s: rate,
        profile: RequestProfile::standard(),
        service: ServiceTime::UniformMs(10_000, 60_000),
    };
    let trace = process.generate(count, cloud.num_types(), &mut StdRng::seed_from_u64(seed));

    let policy_name = p.str_or("policy", "global");
    let scan = scan_config(p)?;
    let mode = if policy_name == "global" {
        PolicyMode::GlobalBatch(Admission::FifoBlocking, scan)
    } else {
        PolicyMode::Individual(policy_by_name(policy_name, scan)?)
    };
    let service_name = p.str_or("service", "mapreduce");
    let service = match service_name {
        "trace" => ServiceModel::Trace,
        "mapreduce" => {
            let maps = p.num_or("maps", 8u32)?;
            let reducers = p.num_or("reducers", 2u32)?;
            if maps == 0 || reducers == 0 {
                return Err(ArgError::new("--maps and --reducers must be positive"));
            }
            ServiceModel::MapReduce {
                job: JobConfig {
                    workload: workload_by_name(p.str_or("workload", "wordcount"))?,
                    input_mb: f64::from(maps) * 64.0,
                    split_mb: 64.0,
                    num_reducers: reducers,
                    replication: 3,
                },
                params: SimParams::default(),
            }
        }
        other => {
            return Err(ArgError::new(format!(
                "unknown service model `{other}` for --service (trace|mapreduce)"
            )))
        }
    };

    let total = trace.len();
    let workload_digest = trace_digest(&trace);
    let mut config = SimConfig::new(trace, mode, seed).with_service(service);
    if let Some(w) = ts_window(p)? {
        config = config.with_timeseries(w);
    }
    if let Some(h) = health_policy(p)? {
        config = config.with_health(h);
    }
    let mut entries = cloud_config_entries(p)?;
    entries.extend(config.manifest_entries());
    entries.push(("rate".to_string(), rate.to_string()));
    entries.push((
        "workload".to_string(),
        p.str_or("workload", "wordcount").to_string(),
    ));
    let manifest = RunManifest::new(
        env!("CARGO_PKG_VERSION"),
        "simulate",
        seed,
        &config.policy_name(),
        config.ts_window_us.unwrap_or(0),
        topology_digest(cloud.topology()),
        workload_digest,
        entries,
    );
    let threads = p.num_or("placement-threads", 1usize)?;
    let run = run_recorded_command(p, threads, &manifest, capture, |r| {
        vc_cloudsim::sim::run_recorded(&cloud, config, r)
    })?;
    let result = &run.result;
    let snap = &run.metrics;
    let (num_spans, num_events) = (run.spans, run.events);

    let out = if p.switch("json") {
        serde_json::json!({
            "policy": policy_name,
            "service": service_name,
            "served": result.served,
            "refused": result.refused,
            "total_distance": result.total_distance,
            "mean_wait_s": result.mean_wait.as_secs_f64(),
            "events": num_events,
            "spans": num_spans,
            "counters": snap.counters.len(),
            "histograms": snap.histograms.len(),
        })
        .to_string()
    } else {
        format!(
            "policy {policy_name}, service {service_name}: served {}/{} (refused {}), \
             Σdistance {}, mean wait {:.1}s\n\
             recorded {} events, {} spans, {} counters, {} histograms\n",
            result.served,
            total,
            result.refused,
            result.total_distance,
            result.mean_wait.as_secs_f64(),
            num_events,
            num_spans,
            snap.counters.len(),
            snap.histograms.len(),
        )
    };
    Ok((out, run.doc))
}

/// 1-based line number of a byte offset in `text`.
fn byte_line(text: &str, byte: usize) -> usize {
    text.as_bytes()
        .iter()
        .take(byte)
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// 1-based line of the first occurrence of `needle` (line 1 if absent).
fn line_of(text: &str, needle: &str) -> usize {
    text.find(needle).map_or(1, |pos| byte_line(text, pos))
}

/// Line of a manifest field inside a run document: search for the
/// quoted field name from the `"manifest"` key onward so a same-named
/// key elsewhere (e.g. `timeseries.window_us`) cannot shadow it.
fn manifest_field_line(text: &str, field: &str) -> usize {
    let start = text.find("\"manifest\"").unwrap_or(0);
    let needle = format!("\"{field}\"");
    match text[start..].find(&needle) {
        Some(off) => byte_line(text, start + off),
        None => line_of(text, "\"manifest\""),
    }
}

/// Load one run document for `vc diff`, locating parse errors by line.
fn load_run_doc(path: &str) -> Result<(String, serde_json::Value), ArgError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError::new(format!("{path}: I/O error: {e}")))?;
    match serde_json::from_str(&text) {
        Ok(doc) => Ok((text, doc)),
        Err(e) => {
            // The parser reports byte offsets; surface the line instead.
            let msg = e.to_string();
            let line = msg
                .rfind("byte ")
                .and_then(|i| {
                    msg[i + 5..]
                        .chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                        .parse::<usize>()
                        .ok()
                })
                .map_or(1, |b| byte_line(&text, b));
            Err(ArgError::new(format!("{path}: line {line}: {msg}")))
        }
    }
}

/// Map a [`vc_obs::DiffError`] onto the offending file and line.
fn locate_diff_error(err: vc_obs::DiffError, base: (&str, &str), cand: (&str, &str)) -> ArgError {
    use vc_obs::diff::Side;
    let side_file = |s: Side| match s {
        Side::Baseline => base,
        Side::Candidate => cand,
    };
    match &err {
        vc_obs::DiffError::MissingManifest(side) => {
            let (path, _) = side_file(*side);
            ArgError::new(format!("{path}: line 1: {err}"))
        }
        vc_obs::DiffError::Manifest(side, _) => {
            let (path, text) = side_file(*side);
            ArgError::new(format!(
                "{path}: line {}: {err}",
                line_of(text, "\"manifest\"")
            ))
        }
        vc_obs::DiffError::Incomparable { field, .. } => {
            let (path, text) = cand;
            ArgError::new(format!(
                "{path}: line {}: {err}",
                manifest_field_line(text, field)
            ))
        }
    }
}

/// Options shared by `diff` and `compare`.
const DIFF_OPTIONS: &[&str] = &[
    "json",
    "fail-on-regress",
    "tolerance-pct",
    "top",
    "seeds",
    "seed",
    "config-a",
    "config-b",
];

/// `affinity-vc diff` — align two recorded run documents, classify
/// every delta, and attribute the makespan delta to critical-path
/// categories and gating links. Paired mode (`--config-a`/`--config-b`
/// [`--seeds N`]) re-runs both configs over common seeds instead.
pub fn diff(p: &Parsed, files: &[String]) -> Result<String, ArgError> {
    p.ensure_known(DIFF_OPTIONS)?;
    let opts = DiffOptions {
        tolerance_pct: p.num_or("tolerance-pct", 0.0f64)?,
        top: p.num_or("top", 5usize)?,
    };
    if opts.tolerance_pct < 0.0 {
        return Err(ArgError::new("--tolerance-pct must be non-negative"));
    }
    let paired = !p.str_or("config-a", "").is_empty()
        || !p.str_or("config-b", "").is_empty()
        || !p.str_or("seeds", "").is_empty();
    if paired {
        if !files.is_empty() {
            return Err(ArgError::new(
                "paired mode re-runs both configs itself; drop the file operands",
            ));
        }
        return diff_paired(p, &opts, 5);
    }
    let [baseline_path, candidate_path] = files else {
        return Err(ArgError::new(
            "diff compares exactly two run documents: \
             `affinity-vc diff <baseline.json> <candidate.json>` (files written by \
             `simulate --metrics-out`), or paired mode via --config-a/--config-b [--seeds N]",
        ));
    };
    let (base_text, base_doc) = load_run_doc(baseline_path)?;
    let (cand_text, cand_doc) = load_run_doc(candidate_path)?;
    let report = vc_obs::diff(&base_doc, &cand_doc, &opts).map_err(|e| {
        locate_diff_error(e, (baseline_path, &base_text), (candidate_path, &cand_text))
    })?;
    let warnings = vc_obs::diff::comparability_warnings(&report.baseline, &report.candidate);

    let gate = p.switch("fail-on-regress");
    if gate && report.regressed() > 0 {
        let names = report.regressed_names();
        return Err(ArgError::new(format!(
            "diff gate: FAIL — {} regression(s): {}",
            names.len(),
            names.join(", ")
        )));
    }
    if p.switch("json") {
        let serde_json::Value::Object(mut entries) = report.to_json() else {
            return Err(ArgError::new("internal: diff report is not an object"));
        };
        entries.push((
            "warnings".to_string(),
            serde_json::Value::Array(
                warnings
                    .iter()
                    .cloned()
                    .map(serde_json::Value::Str)
                    .collect(),
            ),
        ));
        if gate {
            entries.push((
                "gate".to_string(),
                serde_json::Value::Str("pass".to_string()),
            ));
        }
        return Ok(serde_json::Value::Object(entries).to_string());
    }
    let mut out = render_diff(&report, &warnings);
    if gate {
        out.push_str("diff gate: PASS — no regressions\n");
    }
    Ok(out)
}

/// The human-readable diff table plus the ranked explanation section.
fn render_diff(report: &DiffReport, warnings: &[String]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "diff — baseline `{}` seed {} vs candidate `{}` seed {}\n",
        report.baseline.policy,
        report.baseline.seed,
        report.candidate.policy,
        report.candidate.seed,
    ));
    for w in warnings {
        out.push_str(&format!("  warning: {w}\n"));
    }
    out.push_str(&format!(
        "  compared {} metric(s): {} changed, {} improved, {} regressed\n",
        report.compared,
        report.changed(),
        report.improved(),
        report.regressed(),
    ));
    let scalar_rows: Vec<&vc_obs::diff::Delta> = report
        .counters
        .iter()
        .chain(&report.gauges)
        .chain(&report.histograms)
        .chain(&report.alerts)
        .chain(&report.makespan)
        .collect();
    if !scalar_rows.is_empty() || !report.series.is_empty() || !report.links.is_empty() {
        out.push_str(&format!(
            "\n  {:<38} {:>15} {:>15}  verdict\n",
            "metric", "baseline", "candidate"
        ));
    }
    for d in &scalar_rows {
        out.push_str(&format!(
            "  {:<38} {:>15} {:>15}  {}{}\n",
            d.name,
            fmt_ts_val(d.baseline),
            fmt_ts_val(d.candidate),
            d.verdict.label(),
            if d.advisory { " (advisory)" } else { "" },
        ));
    }
    for s in &report.series {
        out.push_str(&format!(
            "  {:<38} {:>15} {:>15}  {} (mean, {}/{} window(s) changed)\n",
            s.name,
            fmt_ts_val(s.mean_baseline),
            fmt_ts_val(s.mean_candidate),
            s.verdict.label(),
            s.changed_windows,
            s.windows,
        ));
    }
    for l in &report.links {
        out.push_str(&format!(
            "  {:<38} {:>15} {:>15}  {} (bytes)\n",
            format!("net.link.{}", l.link),
            l.bytes_baseline,
            l.bytes_candidate,
            l.verdict.label(),
        ));
    }
    let expl = report.explanation();
    out.push_str(&format!(
        "\nexplanation — makespan delta {:+.3}s\n",
        expl.makespan_delta_us as f64 / 1e6
    ));
    if expl.top_categories.is_empty() && expl.top_links.is_empty() && expl.top_gating.is_empty() {
        out.push_str("  nothing moved; the runs are attribution-identical\n");
    }
    for c in &expl.top_categories {
        out.push_str(&format!(
            "  category {:<26} {:+.3}s\n",
            c.category,
            c.delta_us() as f64 / 1e6
        ));
    }
    for l in &expl.top_links {
        out.push_str(&format!(
            "  link     {:<26} {:+} B (peak util {:.2} -> {:.2})\n",
            l.link,
            l.bytes_delta(),
            l.peak_util_baseline,
            l.peak_util_candidate,
        ));
    }
    for g in &expl.top_gating {
        out.push_str(&format!(
            "  gating   {:<26} {} -> {} job(s)\n",
            g.name, g.baseline, g.candidate
        ));
    }
    for a in &expl.top_alerts {
        out.push_str(&format!(
            "  alert    {:<26} {} -> {}\n",
            a.name,
            fmt_ts_val(a.baseline),
            fmt_ts_val(a.candidate)
        ));
    }
    out
}

/// `affinity-vc compare` — the paired multi-seed A/B front door:
/// `diff --config-a/--config-b` with `--seeds` defaulting to 5.
pub fn compare(p: &Parsed, files: &[String]) -> Result<String, ArgError> {
    p.ensure_known(DIFF_OPTIONS)?;
    if !files.is_empty() {
        return Err(ArgError::new(
            "compare re-runs both configs itself; it takes no file operands",
        ));
    }
    let opts = DiffOptions {
        tolerance_pct: p.num_or("tolerance-pct", 0.0f64)?,
        top: p.num_or("top", 5usize)?,
    };
    if opts.tolerance_pct < 0.0 {
        return Err(ArgError::new("--tolerance-pct must be non-negative"));
    }
    diff_paired(p, &opts, 5)
}

/// Metrics the paired mode summarises, with their goodness direction
/// (`true` = lower is better).
const PAIRED_METRICS: &[(&str, bool)] = &[
    ("attribution.makespan_us", true),
    ("cloudsim.served", false),
    ("cloudsim.refused", true),
    ("cloudsim.wait_us.sum", true),
    ("placement.dc.sum", true),
    ("mr.shuffle.node_local_bytes", false),
    ("mr.shuffle.remote_bytes", true),
    ("net.rack_uplink.bytes", true),
];

/// Read one paired-mode metric out of a run document.
fn paired_metric(doc: &serde_json::Value, name: &str) -> f64 {
    match name {
        "attribution.makespan_us" => doc
            .get("attribution")
            .and_then(|a| a.get("jobs"))
            .and_then(serde_json::Value::as_array)
            .map(|jobs| {
                jobs.iter()
                    .filter_map(|j| j.get("makespan_us").and_then(serde_json::Value::as_u64))
                    .sum::<u64>() as f64
            })
            .unwrap_or(0.0),
        "net.rack_uplink.bytes" => doc
            .get("counters")
            .and_then(serde_json::Value::as_object)
            .map(|counters| {
                counters
                    .iter()
                    .filter(|(k, _)| k.starts_with("net.link.rack") && k.ends_with(".up.bytes"))
                    .filter_map(|(_, v)| v.as_f64())
                    .sum()
            })
            .unwrap_or(0.0),
        _ => {
            if let Some(hist) = name.strip_suffix(".sum") {
                if let Some(v) = doc
                    .get("histograms")
                    .and_then(|h| h.get(hist))
                    .and_then(|h| h.get("sum"))
                    .and_then(serde_json::Value::as_f64)
                {
                    return v;
                }
            }
            doc.get("counters")
                .and_then(|c| c.get(name))
                .and_then(serde_json::Value::as_f64)
                .unwrap_or(0.0)
        }
    }
}

/// One summarised metric of a paired comparison.
struct PairedRow {
    name: &'static str,
    lower_better: bool,
    median_ratio: Option<f64>,
    a_wins: usize,
    b_wins: usize,
    ties: usize,
}

/// Paired multi-seed mode: re-run `--config-a` and `--config-b`
/// in-process over `--seeds` common seeds and report, per metric, the
/// median B/A ratio plus sign-test-style win counts.
fn diff_paired(p: &Parsed, opts: &DiffOptions, default_seeds: usize) -> Result<String, ArgError> {
    if p.switch("fail-on-regress") {
        return Err(ArgError::new(
            "--fail-on-regress applies to the two-file mode; paired mode reports ratios",
        ));
    }
    let seeds = p.num_or("seeds", default_seeds)?;
    if seeds == 0 {
        return Err(ArgError::new("--seeds must be positive"));
    }
    let config_a = p.required("config-a")?;
    let config_b = p.required("config-b")?;
    let base_seed = p.num_or("seed", 0u64)?;
    let parse_config = |label: &str, s: &str| -> Result<Parsed, ArgError> {
        let args: Vec<String> = s.split_whitespace().map(str::to_string).collect();
        let parsed = Parsed::parse(&args).map_err(|e| ArgError::new(format!("--{label}: {e}")))?;
        for banned in [
            "seed",
            "trace-out",
            "metrics-out",
            "prom-out",
            "series-out",
            "stream-out",
            "save-trace",
        ] {
            if !parsed.str_or(banned, "").is_empty() {
                return Err(ArgError::new(format!(
                    "--{label}: paired mode drives seeds and captures runs in-process; \
                     drop --{banned} from the config string"
                )));
            }
        }
        Ok(parsed)
    };
    let pa = parse_config("config-a", config_a)?;
    let pb = parse_config("config-b", config_b)?;

    let mut pairs: Vec<(serde_json::Value, serde_json::Value)> = Vec::new();
    for i in 0..seeds as u64 {
        let seed = base_seed + i;
        let (_, doc_a) = simulate_impl(&pa, Some(seed), true)?;
        let (_, doc_b) = simulate_impl(&pb, Some(seed), true)?;
        let (Some(a), Some(b)) = (doc_a, doc_b) else {
            return Err(ArgError::new("internal: paired run produced no document"));
        };
        pairs.push((a, b));
    }
    // The first pair vouches for comparability (topology, window,
    // schema) and supplies the soft warnings; later seeds share both
    // configs, so they cannot disagree differently.
    let first_report = vc_obs::diff(&pairs[0].0, &pairs[0].1, opts)
        .map_err(|e| ArgError::new(format!("paired configs are not comparable: {e}")))?;
    let warnings =
        vc_obs::diff::comparability_warnings(&first_report.baseline, &first_report.candidate);

    fn median(values: &mut [f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        Some(if n % 2 == 1 {
            values[n / 2]
        } else {
            (values[n / 2 - 1] + values[n / 2]) / 2.0
        })
    }

    let mut rows: Vec<PairedRow> = Vec::new();
    for &(name, lower_better) in PAIRED_METRICS {
        let mut ratios: Vec<f64> = Vec::new();
        let (mut a_wins, mut b_wins, mut ties) = (0usize, 0usize, 0usize);
        let mut any_nonzero = false;
        for (a, b) in &pairs {
            let va = paired_metric(a, name);
            let vb = paired_metric(b, name);
            any_nonzero |= va != 0.0 || vb != 0.0;
            if va > 0.0 {
                ratios.push(vb / va);
            }
            if va == vb {
                ties += 1;
            } else if if lower_better { vb < va } else { vb > va } {
                b_wins += 1;
            } else {
                a_wins += 1;
            }
        }
        if !any_nonzero {
            continue;
        }
        rows.push(PairedRow {
            name,
            lower_better,
            median_ratio: median(&mut ratios),
            a_wins,
            b_wins,
            ties,
        });
    }

    if p.switch("json") {
        let metric_objs: Vec<serde_json::Value> = rows
            .iter()
            .map(|r| {
                serde_json::Value::Object(vec![
                    (
                        "metric".to_string(),
                        serde_json::Value::Str(r.name.to_string()),
                    ),
                    (
                        "direction".to_string(),
                        serde_json::Value::Str(
                            if r.lower_better {
                                "lower-better"
                            } else {
                                "higher-better"
                            }
                            .to_string(),
                        ),
                    ),
                    (
                        "median_ratio".to_string(),
                        match r.median_ratio {
                            Some(m) => serde_json::Value::F64(m),
                            None => serde_json::Value::Null,
                        },
                    ),
                    (
                        "b_wins".to_string(),
                        serde_json::Value::U64(r.b_wins as u64),
                    ),
                    (
                        "a_wins".to_string(),
                        serde_json::Value::U64(r.a_wins as u64),
                    ),
                    ("ties".to_string(), serde_json::Value::U64(r.ties as u64)),
                ])
            })
            .collect();
        return Ok(serde_json::Value::Object(vec![
            ("seeds".to_string(), serde_json::Value::U64(seeds as u64)),
            ("seed_start".to_string(), serde_json::Value::U64(base_seed)),
            (
                "config_a".to_string(),
                serde_json::Value::Str(config_a.to_string()),
            ),
            (
                "config_b".to_string(),
                serde_json::Value::Str(config_b.to_string()),
            ),
            (
                "warnings".to_string(),
                serde_json::Value::Array(
                    warnings
                        .iter()
                        .cloned()
                        .map(serde_json::Value::Str)
                        .collect(),
                ),
            ),
            ("metrics".to_string(), serde_json::Value::Array(metric_objs)),
        ])
        .to_string());
    }

    let mut out = format!(
        "paired diff — {seeds} seed(s) starting at {base_seed}\n  A: `{config_a}`\n  B: `{config_b}`\n"
    );
    for w in &warnings {
        out.push_str(&format!("  warning: {w}\n"));
    }
    out.push_str(&format!(
        "\n  {:<30} {:>12} {:>7} {:>7} {:>5}\n",
        "metric", "median(B/A)", "B-wins", "A-wins", "ties"
    ));
    for r in &rows {
        let m = r
            .median_ratio
            .map_or_else(|| "-".to_string(), |m| format!("{m:.3}"));
        out.push_str(&format!(
            "  {:<30} {:>12} {:>7} {:>7} {:>5}\n",
            r.name, m, r.b_wins, r.a_wins, r.ties
        ));
    }
    Ok(out)
}

/// One `u64` attribute of a dumped audit event, defaulting to 0.
fn event_u64(e: &vc_obs::critical_path::DumpEvent, key: &str) -> u64 {
    e.attr(key).and_then(serde_json::Value::as_u64).unwrap_or(0)
}

/// One link's telemetry, reassembled from the `net.link.<name>.*`
/// entries of a metrics snapshot. In queue runs the counters sum (and
/// `peak_util` maxes) over every job that crossed the link.
#[derive(Debug, Default)]
struct LinkRow {
    name: String,
    bytes: u64,
    shuffle_bytes: u64,
    busy_us: u64,
    binding_events: u64,
    peak_util: f64,
}

/// Parse every `net.link.*` counter/gauge in a metrics snapshot back
/// into per-link rows, keyed and sorted by link name.
fn collect_link_rows(metrics: &serde_json::Value) -> Vec<LinkRow> {
    use std::collections::BTreeMap;
    let mut rows: BTreeMap<String, LinkRow> = BTreeMap::new();
    fn row<'a>(rows: &'a mut BTreeMap<String, LinkRow>, link: &str) -> &'a mut LinkRow {
        rows.entry(link.to_string()).or_insert_with(|| LinkRow {
            name: link.to_string(),
            ..LinkRow::default()
        })
    }
    if let Some(counters) = metrics
        .get("counters")
        .and_then(serde_json::Value::as_object)
    {
        for (key, value) in counters {
            let Some(rest) = key.strip_prefix("net.link.") else {
                continue;
            };
            let v = value.as_u64().unwrap_or(0);
            // `.shuffle_bytes` must be tested before `.bytes`: both are
            // suffixes of the former.
            if let Some(link) = rest.strip_suffix(".shuffle_bytes") {
                row(&mut rows, link).shuffle_bytes = v;
            } else if let Some(link) = rest.strip_suffix(".bytes") {
                row(&mut rows, link).bytes = v;
            } else if let Some(link) = rest.strip_suffix(".busy_us") {
                row(&mut rows, link).busy_us = v;
            } else if let Some(link) = rest.strip_suffix(".binding_events") {
                row(&mut rows, link).binding_events = v;
            }
        }
    }
    if let Some(gauges) = metrics.get("gauges").and_then(serde_json::Value::as_object) {
        for (key, value) in gauges {
            if let Some(link) = key
                .strip_prefix("net.link.")
                .and_then(|rest| rest.strip_suffix(".peak_util"))
            {
                row(&mut rows, link).peak_util = value.as_f64().unwrap_or(0.0);
            }
        }
    }
    rows.into_values().collect()
}

/// The `--network` hot-spot summary: per-rack uplink peaks, top-K
/// congested links, the shuffle-byte locality split, and the exactness
/// cross-check between link-level and engine-level shuffle accounting.
fn network_summary(metrics: &serde_json::Value) -> (serde_json::Value, String) {
    let links = collect_link_rows(metrics);
    let counter = |name: &str| -> u64 {
        metrics
            .get("counters")
            .and_then(serde_json::Value::as_object)
            .and_then(|entries| entries.iter().find(|(k, _)| k == name))
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or(0)
    };

    let uplinks: Vec<&LinkRow> = links
        .iter()
        .filter(|l| l.name.starts_with("rack") && l.name.ends_with(".up"))
        .collect();
    let uplink_peak = uplinks.iter().map(|l| l.peak_util).fold(0.0, f64::max);
    let uplink_mean_peak = if uplinks.is_empty() {
        0.0
    } else {
        uplinks.iter().map(|l| l.peak_util).sum::<f64>() / uplinks.len() as f64
    };
    let uplink_bytes: u64 = uplinks.iter().map(|l| l.bytes).sum();
    let uplink_shuffle_bytes: u64 = uplinks.iter().map(|l| l.shuffle_bytes).sum();

    let mut congested: Vec<&LinkRow> = links.iter().collect();
    congested.sort_by(|a, b| {
        b.peak_util
            .total_cmp(&a.peak_util)
            .then_with(|| b.bytes.cmp(&a.bytes))
            .then_with(|| a.name.cmp(&b.name))
    });
    congested.truncate(5);

    // Shuffle locality split as the engine counted it, fetch by fetch.
    let node_local = counter("mr.shuffle.node_local_bytes");
    let rack_local = counter("mr.shuffle.rack_local_bytes");
    let cross_rack = counter("mr.shuffle.remote_bytes");

    // Exactness cross-check: every cross-node shuffle byte enters its
    // destination node exactly once, and node-local shuffle crosses no
    // link at all, so the node-rx shuffle integrals must equal the
    // engine's rack-local + cross-rack total *exactly* (both are integer
    // byte counts attributed at flow completion, not rate integrals).
    let link_rx_shuffle: u64 = links
        .iter()
        .filter(|l| l.name.starts_with("node") && l.name.ends_with(".rx"))
        .map(|l| l.shuffle_bytes)
        .sum();
    let engine_cross_node = rack_local + cross_rack;
    let matches = link_rx_shuffle == engine_cross_node;

    let link_objs: Vec<serde_json::Value> = links
        .iter()
        .map(|l| {
            serde_json::json!({
                "link": l.name.as_str(),
                "bytes": l.bytes,
                "shuffle_bytes": l.shuffle_bytes,
                "busy_us": l.busy_us,
                "binding_events": l.binding_events,
                "peak_util": l.peak_util,
            })
        })
        .collect();
    let congested_objs: Vec<serde_json::Value> = congested
        .iter()
        .map(|l| serde_json::json!({"link": l.name.as_str(), "peak_util": l.peak_util}))
        .collect();
    let json = serde_json::json!({
        "links": link_objs,
        "rack_uplinks": {
            "count": uplinks.len() as u64,
            "peak_util": uplink_peak,
            "mean_peak_util": uplink_mean_peak,
            "bytes": uplink_bytes,
            "shuffle_bytes": uplink_shuffle_bytes,
        },
        "top_congested": congested_objs,
        "shuffle_split": {
            "node_local_bytes": node_local,
            "rack_local_bytes": rack_local,
            "cross_rack_bytes": cross_rack,
        },
        "consistency": {
            "link_rx_shuffle_bytes": link_rx_shuffle,
            "engine_cross_node_shuffle_bytes": engine_cross_node,
            "shuffle_rx_matches_engine": matches,
        },
    });

    let mut text = String::new();
    text.push_str(&format!(
        "\nnetwork — {} link(s) with traffic\n",
        links.len()
    ));
    text.push_str(&format!(
        "  rack uplinks ({}): peak util {:.2}, mean peak {:.2}, {} shuffle B of {} B total\n",
        uplinks.len(),
        uplink_peak,
        uplink_mean_peak,
        uplink_shuffle_bytes,
        uplink_bytes,
    ));
    let total_shuffle = node_local + rack_local + cross_rack;
    let cross_pct = if total_shuffle > 0 {
        100.0 * cross_rack as f64 / total_shuffle as f64
    } else {
        0.0
    };
    text.push_str(&format!(
        "  shuffle split: node-local {node_local} B / in-rack {rack_local} B / \
         cross-rack {cross_rack} B ({cross_pct:.0}% cross-rack)\n"
    ));
    if !congested.is_empty() {
        text.push_str("  top congested links:\n");
        for l in &congested {
            text.push_str(&format!(
                "    {:<14} peak {:.2}  busy {:>8.3}s  {:>14} B  binding {}\n",
                l.name,
                l.peak_util,
                l.busy_us as f64 / 1e6,
                l.bytes,
                l.binding_events,
            ));
        }
    }
    text.push_str(&format!(
        "  consistency: link node-rx shuffle {} B {} engine cross-node shuffle {} B\n",
        link_rx_shuffle,
        if matches { "==" } else { "!=" },
        engine_cross_node,
    ));
    (json, text)
}

/// One counter from a metrics-snapshot JSON document, defaulting to 0.
fn snap_counter(metrics: &serde_json::Value, name: &str) -> u64 {
    metrics
        .get("counters")
        .and_then(serde_json::Value::as_object)
        .and_then(|entries| entries.iter().find(|(k, _)| k == name))
        .and_then(|(_, v)| v.as_u64())
        .unwrap_or(0)
}

/// One gauge from a metrics-snapshot JSON document, if present.
fn snap_gauge(metrics: &serde_json::Value, name: &str) -> Option<f64> {
    metrics
        .get("gauges")
        .and_then(serde_json::Value::as_object)
        .and_then(|entries| entries.iter().find(|(k, _)| k == name))
        .and_then(|(_, v)| v.as_f64())
}

/// The `--perf` self-profile summary: where the *simulator's* wall-clock
/// went (by `prof.phase.*`), fair-share solver effort, DES event volume,
/// and peak RSS. The exclusive breakdown tiles the total exactly by
/// construction: `serve` and `des_pop` are disjoint slices of
/// `cloudsim_run`, `mr_service` is the slice of `serve` inside the
/// MapReduce engine, and `other` is the remainder. A standalone
/// `simulate-job` run has no queue loop; its total is `mr_job`.
fn perf_summary(metrics: &serde_json::Value) -> (serde_json::Value, String) {
    let phase_wall = |name: &str| snap_counter(metrics, &format!("prof.phase.{name}.wall_us"));
    let phase_calls = |name: &str| snap_counter(metrics, &format!("prof.phase.{name}.calls"));

    let run_wall = phase_wall("cloudsim_run");
    let serve = phase_wall("serve");
    let mr_service = phase_wall("mr_service");
    let des_pop = phase_wall("des_pop");
    let standalone = phase_calls("cloudsim_run") == 0;
    let (total, total_phase) = if standalone {
        (phase_wall("mr_job"), "mr_job")
    } else {
        (run_wall, "cloudsim_run")
    };

    // Exclusive components. Saturating arithmetic keeps degenerate and
    // partially-profiled snapshots at exact zeros instead of underflowing.
    let breakdown: Vec<(&str, u64)> = if standalone {
        vec![("mapreduce", total), ("other", 0)]
    } else {
        vec![
            ("placement/queue", serve.saturating_sub(mr_service)),
            ("mapreduce", mr_service),
            ("des-pop", des_pop),
            ("other", total.saturating_sub(serve).saturating_sub(des_pop)),
        ]
    };

    let phases: Vec<serde_json::Value> = vc_obs::prof::PHASES
        .iter()
        .filter(|ph| phase_calls(ph.name) > 0)
        .map(|ph| {
            serde_json::json!({
                "phase": ph.name,
                "calls": phase_calls(ph.name),
                "wall_us": phase_wall(ph.name),
            })
        })
        .collect();
    let num_phases = phases.len();

    let solves = snap_counter(metrics, "prof.solver.solves");
    let flows = snap_counter(metrics, "prof.solver.flows");
    let iterations = snap_counter(metrics, "prof.solver.iterations");
    let links_touched = snap_counter(metrics, "prof.solver.links_touched");
    let avg_flows = if solves > 0 {
        flows as f64 / solves as f64
    } else {
        0.0
    };
    let avg_iters = if solves > 0 {
        iterations as f64 / solves as f64
    } else {
        0.0
    };
    let peak_flows = snap_gauge(metrics, "prof.solver.peak_flows").unwrap_or(0.0);
    let events = snap_counter(metrics, "des.events_processed");
    let peak_rss_kb = snap_gauge(metrics, "prof.rss_peak_kb");

    let pct = |us: u64| -> f64 {
        if total > 0 {
            100.0 * us as f64 / total as f64
        } else {
            0.0
        }
    };
    let breakdown_objs: Vec<serde_json::Value> = breakdown
        .iter()
        .map(|(name, us)| serde_json::json!({"component": *name, "wall_us": *us, "pct": pct(*us)}))
        .collect();
    let json = serde_json::json!({
        "total_wall_us": total,
        "total_phase": total_phase,
        "breakdown": breakdown_objs,
        "phases": phases,
        "solver": {
            "solves": solves,
            "flows": flows,
            "iterations": iterations,
            "links_touched": links_touched,
            "completion_batches": snap_counter(metrics, "prof.solver.completion_batches"),
            "batch_flows": snap_counter(metrics, "prof.solver.batch_flows"),
            "flows_skipped": snap_counter(metrics, "prof.solver.flows_skipped"),
            "wall_us": snap_counter(metrics, "prof.solver.wall_us"),
            "avg_flows_per_solve": avg_flows,
            "avg_iterations_per_solve": avg_iters,
            "peak_flows": peak_flows,
            "peak_iterations": snap_gauge(metrics, "prof.solver.peak_iterations").unwrap_or(0.0),
        },
        "des": { "events_processed": events },
        "peak_rss_kb": peak_rss_kb,
    });

    let mut text = String::new();
    text.push_str(&format!(
        "\nperf — simulator self-profile ({num_phases} phase(s) recorded)\n"
    ));
    text.push_str(&format!(
        "  total wall-clock: {:.3}s ({total_phase})\n",
        total as f64 / 1e6
    ));
    for (name, us) in &breakdown {
        text.push_str(&format!(
            "    {:<16} {:>9.3}s {:>5.1}%\n",
            name,
            *us as f64 / 1e6,
            pct(*us),
        ));
    }
    let flows_skipped = snap_counter(metrics, "prof.solver.flows_skipped");
    text.push_str(&format!(
        "  solver: {solves} solve(s), {flows} flow(s) (avg {avg_flows:.1}/solve, peak {peak_flows:.0}), \
         {iterations} iteration(s), {links_touched} link(s) touched, {flows_skipped} flow(s) skipped\n"
    ));
    text.push_str(&format!("  des: {events} event(s) processed\n"));
    if let Some(kb) = peak_rss_kb {
        text.push_str(&format!("  peak RSS: {:.1} MB\n", kb / 1024.0));
    }
    (json, text)
}

/// `affinity-vc report` — analyse a trace written by `--trace-out`:
/// per-job critical-path attribution (where did the makespan go), the
/// placement decision audit (seed-scan work, bound gaps, Theorem-2
/// exchanges), and optionally the headline placement counters from a
/// `--metrics-out` snapshot.
pub fn report(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&[
        "trace",
        "stream",
        "metrics",
        "json",
        "network",
        "perf",
        "timeline",
        "series-out",
        "health",
        "fail-on-alert",
    ])?;
    // Parsed up front so a bad severity name fails before any file I/O.
    let fail_on = match p.str_or("fail-on-alert", "") {
        "" => None,
        s => Some(Severity::parse(s).ok_or_else(|| {
            ArgError::new(format!(
                "--fail-on-alert {s}: expected info, warn or critical"
            ))
        })?),
    };
    let metrics: Option<serde_json::Value> = match p.str_or("metrics", "") {
        "" => None,
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError::new(format!("--metrics {path}: I/O error: {e}")))?;
            Some(
                serde_json::from_str(&text)
                    .map_err(|e| ArgError::new(format!("--metrics {path}: {e}")))?,
            )
        }
    };

    // `--perf` only needs a metrics snapshot, so the trace input becomes
    // optional when it is the sole request; every other mode requires
    // either --trace (a Chrome document) or --stream (a JSONL file from
    // --stream-out, replayed into the same document shape).
    let trace_path = p.str_or("trace", "");
    let stream_path = p.str_or("stream", "");
    if !trace_path.is_empty() && !stream_path.is_empty() {
        return Err(ArgError::new(
            "--trace and --stream both name a trace input; pass exactly one",
        ));
    }
    let doc: Option<serde_json::Value> = if !stream_path.is_empty() {
        let text = std::fs::read_to_string(stream_path)
            .map_err(|e| ArgError::new(format!("--stream {stream_path}: I/O error: {e}")))?;
        let m = vc_obs::replay_jsonl(&text)
            .map_err(|e| ArgError::new(format!("--stream {stream_path}: {e}")))?;
        Some(vc_obs::trace::chrome_trace_parts(
            &m.spans,
            &m.events,
            &m.track_names,
            &m.counter_series,
        ))
    } else if !trace_path.is_empty() {
        let text = std::fs::read_to_string(trace_path)
            .map_err(|e| ArgError::new(format!("--trace {trace_path}: I/O error: {e}")))?;
        Some(
            serde_json::from_str(&text)
                .map_err(|e| ArgError::new(format!("--trace {trace_path}: {e}")))?,
        )
    } else {
        if !(p.switch("perf") && metrics.is_some()) {
            return Err(ArgError::new(
                "missing required option --trace <FILE> (a file written by --trace-out) \
                 or --stream <FILE> (a JSONL file written by --stream-out); \
                 only `report --perf --metrics <FILE>` works without one",
            ));
        }
        None
    };
    let input_label = if stream_path.is_empty() {
        format!("--trace {trace_path}")
    } else {
        format!("--stream {stream_path}")
    };
    let dump = match &doc {
        Some(d) => TraceDump::from_chrome_value(d)
            .map_err(|e| ArgError::new(format!("{input_label}: {e}")))?,
        None => TraceDump::default(),
    };
    let jobs = vc_obs::analyze(&dump);

    // `--timeline` renders the windowed `ts.*` series; `--series-out`
    // re-exports them (CSV/JSONL by extension) from either input kind.
    let series_out = p.str_or("series-out", "");
    let timeline: Option<TimeSeriesSet> = if p.switch("timeline") || !series_out.is_empty() {
        let d = doc
            .as_ref()
            .ok_or_else(|| ArgError::new("--timeline needs a trace input (--trace or --stream)"))?;
        Some(
            TimeSeriesSet::from_chrome_value(d)
                .map_err(|e| ArgError::new(format!("{input_label}: {e}")))?,
        )
    } else {
        None
    };
    if let (path, Some(set)) = (series_out, &timeline) {
        if !path.is_empty() {
            let text = if path.ends_with(".csv") {
                set.to_csv()
            } else {
                set.to_jsonl()
            };
            std::fs::write(path, text)
                .map_err(|e| ArgError::new(format!("--series-out {path}: {e}")))?;
        }
    }

    let network = if p.switch("network") {
        let metrics = metrics.as_ref().ok_or_else(|| {
            ArgError::new("--network needs --metrics <FILE> (a snapshot written by --metrics-out)")
        })?;
        Some(network_summary(metrics))
    } else {
        None
    };
    let perf = if p.switch("perf") {
        let metrics = metrics.as_ref().ok_or_else(|| {
            ArgError::new("--perf needs --metrics <FILE> (a snapshot written by --metrics-out)")
        })?;
        Some(perf_summary(metrics))
    } else {
        None
    };

    let scan_audits: Vec<&vc_obs::critical_path::DumpEvent> = dump
        .events
        .iter()
        .filter(|e| e.name == "placement.scan_audit")
        .collect();
    let exchange_audits: Vec<&vc_obs::critical_path::DumpEvent> = dump
        .events
        .iter()
        .filter(|e| e.name == "placement.exchange_audit")
        .collect();

    // `--health` summarises the watchdog's `alert.*` events (plus the
    // offline attribution-tiling audit over the analysed jobs);
    // `--fail-on-alert <severity>` implies it and gates the exit code.
    let health: Option<Vec<HealthRow>> = if p.switch("health") || fail_on.is_some() {
        if doc.is_none() {
            return Err(ArgError::new(
                "--health needs a trace input (--trace or --stream)",
            ));
        }
        Some(health_summary(&dump, &jobs))
    } else {
        None
    };
    if let (Some(threshold), Some(rows)) = (fail_on, &health) {
        let tripped: Vec<&HealthRow> = rows.iter().filter(|r| r.severity >= threshold).collect();
        if !tripped.is_empty() {
            let total: u64 = tripped.iter().map(|r| r.count).sum();
            let rules: Vec<String> = tripped
                .iter()
                .map(|r| format!("{} ({}, x{})", r.rule, r.severity, r.count))
                .collect();
            return Err(ArgError::new(format!(
                "health gate: FAIL — {total} alert(s) at or above {threshold}: {}",
                rules.join(", ")
            )));
        }
    }

    if p.switch("json") {
        let event_obj = |e: &vc_obs::critical_path::DumpEvent| {
            let mut entries = vec![("t_us".to_string(), serde_json::Value::U64(e.t_us))];
            entries.extend(e.attrs.iter().cloned());
            serde_json::Value::Object(entries)
        };
        let mut entries = vec![
            (
                "jobs".to_string(),
                serde_json::Value::Array(
                    jobs.iter().map(vc_obs::JobAttribution::to_json).collect(),
                ),
            ),
            (
                "placement".to_string(),
                serde_json::Value::Object(vec![
                    (
                        "scan_audits".to_string(),
                        serde_json::Value::Array(
                            scan_audits.iter().map(|e| event_obj(e)).collect(),
                        ),
                    ),
                    (
                        "exchange_audits".to_string(),
                        serde_json::Value::Array(
                            exchange_audits.iter().map(|e| event_obj(e)).collect(),
                        ),
                    ),
                ]),
            ),
            (
                "metrics".to_string(),
                metrics.unwrap_or(serde_json::Value::Null),
            ),
        ];
        if let Some((net_json, _)) = &network {
            entries.push(("network".to_string(), net_json.clone()));
        }
        if let Some((perf_json, _)) = &perf {
            entries.push(("perf".to_string(), perf_json.clone()));
        }
        if let Some(set) = &timeline {
            let series_objs: Vec<(String, serde_json::Value)> = set
                .series
                .iter()
                .map(|(name, points)| {
                    let rows: Vec<serde_json::Value> = points
                        .iter()
                        .map(|&(t, v)| {
                            serde_json::Value::Array(vec![
                                serde_json::Value::U64(t),
                                serde_json::Value::F64(v),
                            ])
                        })
                        .collect();
                    (name.clone(), serde_json::Value::Array(rows))
                })
                .collect();
            entries.push((
                "timeline".to_string(),
                serde_json::Value::Object(vec![
                    (
                        "window_count".to_string(),
                        serde_json::Value::U64(set.window_count() as u64),
                    ),
                    ("series".to_string(), serde_json::Value::Object(series_objs)),
                ]),
            ));
        }
        if let Some(rows) = &health {
            let total: u64 = rows.iter().map(|r| r.count).sum();
            let mut health_entries = vec![
                ("total".to_string(), serde_json::Value::U64(total)),
                (
                    "alerts".to_string(),
                    serde_json::Value::Array(rows.iter().map(HealthRow::to_json).collect()),
                ),
            ];
            if fail_on.is_some() {
                health_entries.push((
                    "gate".to_string(),
                    serde_json::Value::Str("pass".to_string()),
                ));
            }
            entries.push((
                "health".to_string(),
                serde_json::Value::Object(health_entries),
            ));
        }
        return Ok(serde_json::Value::Object(entries).to_string());
    }

    let mut out = String::new();
    out.push_str(&format!(
        "critical-path attribution — {} job(s)\n",
        jobs.len()
    ));
    if !jobs.is_empty() {
        // Abbreviated category headers so the table stays under 100 cols;
        // the full names are in the JSON output and docs/metrics-schema.md.
        let short = |cat: vc_obs::Category| match cat {
            vc_obs::Category::Map => "map",
            vc_obs::Category::StragglerSlack => "straggler",
            vc_obs::Category::ShuffleSerialisation => "shuf-ser",
            vc_obs::Category::ShuffleNetworkWait => "shuf-net",
            vc_obs::Category::Reduce => "reduce",
            vc_obs::Category::SchedulerWait => "sched",
        };
        out.push_str(&format!(
            "{:>6} {:>6} {:>10} {:>10}",
            "track", "dc", "start_s", "makespan_s"
        ));
        for cat in vc_obs::CATEGORIES {
            out.push_str(&format!(" {:>10}", short(cat)));
        }
        out.push('\n');
        for job in &jobs {
            let makespan = job.makespan_us();
            out.push_str(&format!(
                "{:>6} {:>6} {:>10.2} {:>10.2}",
                job.track,
                job.distance
                    .map_or_else(|| "-".to_string(), |d| d.to_string()),
                job.start_us as f64 / 1e6,
                makespan as f64 / 1e6,
            ));
            for cat in vc_obs::CATEGORIES {
                let us = job.total_us(cat);
                let pct = if makespan > 0 {
                    100.0 * us as f64 / makespan as f64
                } else {
                    0.0
                };
                out.push_str(&format!(" {pct:>9.1}%"));
            }
            out.push('\n');
        }
    }

    out.push_str(&format!(
        "\nplacement — {} decision(s), {} exchange batch(es)\n",
        scan_audits.len(),
        exchange_audits.len()
    ));
    if !scan_audits.is_empty() {
        let sum = |key: &str| -> u64 { scan_audits.iter().map(|e| event_u64(e, key)).sum() };
        let gap_total = sum("bound_gap");
        out.push_str(&format!(
            "  seeds: {} total — {} scanned, {} pruned, {} aborted, {} tied; \
             mean bound gap {:.2}\n",
            sum("seeds_total"),
            sum("seeds_scanned"),
            sum("seeds_pruned"),
            sum("seeds_aborted"),
            sum("seeds_tied"),
            gap_total as f64 / scan_audits.len() as f64,
        ));
    }
    if !exchange_audits.is_empty() {
        let sum = |key: &str| -> u64 { exchange_audits.iter().map(|e| event_u64(e, key)).sum() };
        out.push_str(&format!(
            "  exchanges: {} swaps over {} passes, distance saved {} ({} → {})\n",
            sum("swaps"),
            sum("passes"),
            sum("saved"),
            sum("online_distance"),
            sum("optimized_distance"),
        ));
    }

    if let Some(metrics) = &metrics {
        if let Some(counters) = metrics
            .get("counters")
            .and_then(serde_json::Value::as_object)
        {
            let placement: Vec<_> = counters
                .iter()
                .filter(|(k, _)| k.starts_with("placement."))
                .collect();
            if !placement.is_empty() {
                out.push_str("\ncounters (--metrics):\n");
                for (k, v) in placement {
                    out.push_str(&format!("  {k} = {v}\n"));
                }
            }
        }
    }
    if let Some((_, net_text)) = &network {
        out.push_str(net_text);
    }
    if let Some((_, perf_text)) = &perf {
        out.push_str(perf_text);
    }
    if let Some(set) = &timeline {
        out.push_str(&render_timeline(set));
    }
    if let Some(rows) = &health {
        out.push_str(&render_health(rows));
        if let Some(threshold) = fail_on {
            out.push_str(&format!(
                "health gate: PASS — no alerts at or above {threshold}\n"
            ));
        }
    }
    Ok(out)
}

/// One rule's aggregated alert history from a `--health` report: how
/// often it fired, when, and the worst window it pointed at.
struct HealthRow {
    rule: String,
    severity: Severity,
    subsystem: String,
    count: u64,
    first_us: u64,
    last_us: u64,
    /// `(value, window_edge_us)` of the highest-valued alert, when the
    /// rule attaches a numeric `value` (detector rules always do).
    worst: Option<(f64, u64)>,
}

impl HealthRow {
    fn to_json(&self) -> serde_json::Value {
        let mut entries = vec![
            (
                "rule".to_string(),
                serde_json::Value::Str(self.rule.clone()),
            ),
            (
                "severity".to_string(),
                serde_json::Value::Str(self.severity.to_string()),
            ),
            (
                "subsystem".to_string(),
                serde_json::Value::Str(self.subsystem.clone()),
            ),
            ("count".to_string(), serde_json::Value::U64(self.count)),
            (
                "first_t_us".to_string(),
                serde_json::Value::U64(self.first_us),
            ),
            (
                "last_t_us".to_string(),
                serde_json::Value::U64(self.last_us),
            ),
        ];
        if let Some((value, edge)) = self.worst {
            entries.push(("worst_value".to_string(), serde_json::Value::F64(value)));
            entries.push((
                "worst_window_edge_us".to_string(),
                serde_json::Value::U64(edge),
            ));
        }
        serde_json::Value::Object(entries)
    }
}

/// Group the trace's `alert.*` events by rule and append the offline
/// attribution-tiling audit: each analysed job's critical path must
/// tile its makespan exactly (1 µs rounding tolerance), the one
/// invariant that can only be checked after analysis.
fn health_summary(dump: &TraceDump, jobs: &[vc_obs::JobAttribution]) -> Vec<HealthRow> {
    let mut rows: Vec<HealthRow> = Vec::new();
    for e in dump
        .events
        .iter()
        .filter(|e| e.name.starts_with(ALERT_PREFIX))
    {
        let attr_str = |key: &str| {
            e.attr(key)
                .and_then(serde_json::Value::as_str)
                .unwrap_or("?")
                .to_string()
        };
        let rule = match e.attr("rule").and_then(serde_json::Value::as_str) {
            Some(r) => r.to_string(),
            None => e
                .name
                .strip_prefix(ALERT_PREFIX)
                .unwrap_or(&e.name)
                .to_string(),
        };
        let severity = e
            .attr("severity")
            .and_then(serde_json::Value::as_str)
            .and_then(Severity::parse)
            .unwrap_or(Severity::Warn);
        let value = e.attr("value").and_then(serde_json::Value::as_f64);
        let edge = e
            .attr("window_edge_us")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(e.t_us);
        match rows.iter_mut().find(|r| r.rule == rule) {
            Some(row) => {
                row.count += 1;
                row.first_us = row.first_us.min(e.t_us);
                row.last_us = row.last_us.max(e.t_us);
                if let Some(v) = value {
                    let better = match row.worst {
                        Some((w, _)) => v > w,
                        None => true,
                    };
                    if better {
                        row.worst = Some((v, edge));
                    }
                }
            }
            None => rows.push(HealthRow {
                rule,
                severity,
                subsystem: attr_str("subsystem"),
                count: 1,
                first_us: e.t_us,
                last_us: e.t_us,
                worst: value.map(|v| (v, edge)),
            }),
        }
    }

    let mut tiling: Option<HealthRow> = None;
    for job in jobs {
        let gap = job.makespan_us().abs_diff(job.attributed_us());
        if gap <= 1 {
            continue;
        }
        let row = tiling.get_or_insert_with(|| HealthRow {
            rule: "attribution_tiling".to_string(),
            severity: Severity::Critical,
            subsystem: "obs".to_string(),
            count: 0,
            first_us: job.start_us,
            last_us: job.start_us,
            worst: None,
        });
        row.count += 1;
        row.first_us = row.first_us.min(job.start_us);
        row.last_us = row.last_us.max(job.start_us);
        let better = match row.worst {
            Some((w, _)) => gap as f64 > w,
            None => true,
        };
        if better {
            row.worst = Some((gap as f64, job.end_us));
        }
    }
    rows.extend(tiling);

    // Severest and loudest first.
    rows.sort_by(|a, b| b.severity.cmp(&a.severity).then(b.count.cmp(&a.count)));
    rows
}

/// The `report --health` table: one row per alert rule, worst-window
/// pointer in the last column.
fn render_health(rows: &[HealthRow]) -> String {
    let mut out = String::new();
    let total: u64 = rows.iter().map(|r| r.count).sum();
    out.push_str(&format!(
        "\nhealth — {} alert(s) across {} rule(s)\n",
        total,
        rows.len()
    ));
    if rows.is_empty() {
        out.push_str("  no alerts; every audited invariant and detector stayed quiet\n");
        return out;
    }
    out.push_str(&format!(
        "{:>24} {:>8} {:>10} {:>6} {:>9} {:>9}  {}\n",
        "rule", "severity", "subsystem", "count", "first_s", "last_s", "worst"
    ));
    for r in rows {
        let worst = r
            .worst
            .map(|(v, edge)| format!("{} @ {:.2}s", fmt_ts_val(v), edge as f64 / 1e6))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:>24} {:>8} {:>10} {:>6} {:>9.2} {:>9.2}  {}\n",
            r.rule,
            r.severity,
            r.subsystem,
            r.count,
            r.first_us as f64 / 1e6,
            r.last_us as f64 / 1e6,
            worst,
        ));
    }
    out
}

/// One timeline cell: integers render bare, everything else at four
/// decimal places so fill/frag/util fractions stay readable.
fn fmt_ts_val(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// The `report --timeline` table: one row per window edge (shown in
/// seconds), one column per `ts.*` series with the prefix stripped,
/// `-` where a series has no sample at that edge.
fn render_timeline(set: &TimeSeriesSet) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\ntimeline — {} window(s), {} series\n",
        set.window_count(),
        set.series.len()
    ));
    if set.is_empty() {
        out.push_str("  (no ts.* samples; run simulate with --window-us <N>)\n");
        return out;
    }
    let edges = set.edges();
    let names: Vec<&String> = set.series.keys().collect();
    // Pre-render every cell so column widths can be computed.
    let headers: Vec<&str> = names
        .iter()
        .map(|n| n.strip_prefix(TS_PREFIX).unwrap_or(n))
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(edges.len());
    for &edge in &edges {
        let mut row = vec![format!("{:.2}", edge as f64 / 1e6)];
        for name in &names {
            let points = &set.series[*name];
            let cell = points
                .binary_search_by_key(&edge, |&(t, _)| t)
                .map(|pos| fmt_ts_val(points[pos].1))
                .unwrap_or_else(|_| "-".to_string());
            row.push(cell);
        }
        rows.push(row);
    }
    let mut widths: Vec<usize> = std::iter::once("t_s")
        .chain(headers.iter().copied())
        .map(str::len)
        .collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    out.push_str(&format!("  {:>w$}", "t_s", w = widths[0]));
    for (h, w) in headers.iter().zip(&widths[1..]) {
        out.push_str(&format!(" {h:>w$}", w = *w));
    }
    out.push('\n');
    for row in &rows {
        out.push_str("  ");
        for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{cell:>w$}", w = *w));
        }
        out.push('\n');
    }
    out
}

/// Load a perf JSON document for `profile`: either a full
/// `report --perf --json` output (the `perf` key is extracted) or a bare
/// perf object as saved from it.
fn load_perf(path: &str) -> Result<(serde_json::Value, Option<RunManifest>), ArgError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError::new(format!("{path}: I/O error: {e}")))?;
    let doc: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| ArgError::new(format!("{path}: {e}")))?;
    // Full `report --json` documents embed the metrics snapshot, which
    // carries the run manifest; surface it so `profile` can warn when
    // the two perf snapshots come from different runs.
    let manifest = doc
        .get("metrics")
        .and_then(|m| m.get(MANIFEST_KEY))
        .or_else(|| doc.get(MANIFEST_KEY))
        .and_then(|v| RunManifest::from_json(v).ok());
    let perf = doc.get("perf").cloned().unwrap_or(doc);
    if perf.get("solver").is_none() {
        return Err(ArgError::new(format!(
            "{path}: not a perf document (no `solver` key; write one with \
             `report --perf --json --metrics <FILE>`)"
        )));
    }
    Ok((perf, manifest))
}

/// One gated metric: dotted path into a perf document plus how to gate it.
struct PerfMetric {
    name: &'static str,
    /// Deterministic effort counters gate with `--max-regress-pct`;
    /// wall-clock metrics gate with `--max-wall-regress-pct` (advisory
    /// when that is unset).
    wall: bool,
}

/// Read a gated metric out of a perf document.
fn perf_metric(doc: &serde_json::Value, name: &str) -> u64 {
    let mut cur = doc;
    for seg in name.split('.') {
        match cur.get(seg) {
            Some(v) => cur = v,
            None => return 0,
        }
    }
    cur.as_u64().unwrap_or(0)
}

/// `affinity-vc profile` — diff two perf snapshots and fail (exit code 1)
/// on regressions beyond the configured thresholds. Deterministic effort
/// counters (solver solves/flows/iterations/links, DES events, phase
/// call counts) gate with `--max-regress-pct` (default 10); wall-clock
/// metrics are advisory unless `--max-wall-regress-pct` is given.
pub fn profile(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&[
        "current",
        "baseline",
        "max-regress-pct",
        "max-wall-regress-pct",
        "json",
    ])?;
    let (current, current_manifest) = load_perf(p.required("current")?)?;
    let (baseline, baseline_manifest) = load_perf(p.required("baseline")?)?;
    let max_regress = p.num_or("max-regress-pct", 10.0f64)?;
    let max_wall = p.num_or("max-wall-regress-pct", -1.0f64)?;
    if max_regress < 0.0 {
        return Err(ArgError::new("--max-regress-pct must be non-negative"));
    }

    // When both snapshots carry a run manifest, flag apples-to-oranges
    // comparisons before the effort-counter diff can mislead anyone.
    let mut warnings: Vec<String> = Vec::new();
    if let (Some(cur_m), Some(base_m)) = (&current_manifest, &baseline_manifest) {
        if !cur_m.same_config(base_m) {
            warnings.push(format!(
                "runs use different configurations (baseline `{}`, current `{}`); \
                 effort counters are not directly comparable",
                base_m.command, cur_m.command
            ));
        } else if cur_m.seed != base_m.seed {
            warnings.push(format!(
                "runs use different seeds (baseline {}, current {}); \
                 deterministic counters may differ for seed reasons alone",
                base_m.seed, cur_m.seed
            ));
        }
    }

    let mut metrics: Vec<PerfMetric> = vec![
        PerfMetric {
            name: "solver.solves",
            wall: false,
        },
        PerfMetric {
            name: "solver.flows",
            wall: false,
        },
        PerfMetric {
            name: "solver.iterations",
            wall: false,
        },
        PerfMetric {
            name: "solver.links_touched",
            wall: false,
        },
        PerfMetric {
            name: "solver.completion_batches",
            wall: false,
        },
        PerfMetric {
            name: "des.events_processed",
            wall: false,
        },
        PerfMetric {
            name: "total_wall_us",
            wall: true,
        },
        PerfMetric {
            name: "solver.wall_us",
            wall: true,
        },
    ];
    // Phase call counts are deterministic too (one serve per event, one
    // seed scan per placement solve, ...).
    for ph in vc_obs::prof::PHASES {
        metrics.push(PerfMetric {
            name: Box::leak(format!("phases_calls.{}", ph.name).into_boxed_str()),
            wall: false,
        });
    }
    // `phases` is an array in the document; index it by name once.
    let phase_calls = |doc: &serde_json::Value, name: &str| -> u64 {
        doc.get("phases")
            .and_then(serde_json::Value::as_array)
            .and_then(|phases| {
                phases
                    .iter()
                    .find(|ph| ph.get("phase").and_then(serde_json::Value::as_str) == Some(name))
            })
            .and_then(|ph| ph.get("calls"))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0)
    };
    let read = |doc: &serde_json::Value, name: &str| -> u64 {
        match name.strip_prefix("phases_calls.") {
            Some(phase) => phase_calls(doc, phase),
            None => perf_metric(doc, name),
        }
    };

    let mut rows: Vec<serde_json::Value> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut text = String::from("perf comparison (current vs baseline):\n");
    for w in &warnings {
        text.push_str(&format!("  warning: {w}\n"));
    }
    for m in &metrics {
        let cur = read(&current, m.name);
        let base = read(&baseline, m.name);
        if cur == 0 && base == 0 {
            continue;
        }
        let delta_pct = if base > 0 {
            100.0 * (cur as f64 - base as f64) / base as f64
        } else {
            f64::INFINITY
        };
        let threshold = if m.wall { max_wall } else { max_regress };
        let gated = !m.wall || max_wall >= 0.0;
        let status = if base == 0 {
            "new" // no baseline: informational, never gates
        } else if gated && delta_pct > threshold {
            failures.push(format!(
                "{} regressed {:.1}% ({} -> {}, limit {:.1}%)",
                m.name, delta_pct, base, cur, threshold
            ));
            "FAIL"
        } else if !gated {
            "info"
        } else {
            "ok"
        };
        let shown_delta = if base > 0 { delta_pct } else { 0.0 };
        text.push_str(&format!(
            "  {:<28} {:>12} -> {:>12}  {:>+8.1}%  {}\n",
            m.name, base, cur, shown_delta, status
        ));
        rows.push(serde_json::json!({
            "metric": m.name,
            "baseline": base,
            "current": cur,
            "delta_pct": shown_delta,
            "wall": m.wall,
            "status": status,
        }));
    }

    if failures.is_empty() {
        let verdict = format!(
            "perf gate: PASS ({} metric(s) within {max_regress:.1}%)",
            rows.len()
        );
        if p.switch("json") {
            return Ok(serde_json::Value::Object(vec![
                (
                    "verdict".to_string(),
                    serde_json::Value::Str("PASS".to_string()),
                ),
                (
                    "max_regress_pct".to_string(),
                    serde_json::Value::F64(max_regress),
                ),
                (
                    "warnings".to_string(),
                    serde_json::Value::Array(
                        warnings
                            .iter()
                            .cloned()
                            .map(serde_json::Value::Str)
                            .collect(),
                    ),
                ),
                ("metrics".to_string(), serde_json::Value::Array(rows)),
            ])
            .to_string());
        }
        Ok(format!("{text}{verdict}\n"))
    } else {
        // Returned as an error so the process exits non-zero — that is
        // the CI gate. The verdict line stays greppable on stderr.
        let mut msg = format!("perf gate: FAIL ({} regression(s))\n", failures.len());
        for f in &failures {
            msg.push_str(&format!("  {f}\n"));
        }
        msg.push_str(&text);
        Err(ArgError::new(msg))
    }
}

/// `affinity-vc derive-distance`
pub fn derive_distance(p: &Parsed) -> Result<String, ArgError> {
    p.ensure_known(&["racks", "nodes", "unit-us", "json"])?;
    let racks = p.num_or("racks", 3usize)?;
    let nodes = p.num_or("nodes", 10usize)?;
    let unit = p.num_or("unit-us", 100u64)?;
    if racks == 0 || nodes == 0 || unit == 0 {
        return Err(ArgError::new(
            "--racks, --nodes and --unit-us must be positive",
        ));
    }
    let topo = generate::uniform(racks, nodes, DistanceTiers::paper_experiment());
    let matrix = vc_netsim::measure::derive_distance_matrix(
        &topo,
        &NetworkParams::default(),
        SimTime::from_micros(unit),
    );
    if p.switch("json") {
        let rows: Vec<Vec<u32>> = (0..topo.num_nodes())
            .map(|i| matrix.row(NodeId::from_index(i)).to_vec())
            .collect();
        return Ok(serde_json::json!({ "unit_us": unit, "matrix": rows }).to_string());
    }
    let mut out = format!(
        "distance matrix from measured latency ({} nodes, unit {unit}µs):\n",
        topo.num_nodes()
    );
    for i in 0..topo.num_nodes() {
        let row: Vec<String> = matrix
            .row(NodeId::from_index(i))
            .iter()
            .map(u32::to_string)
            .collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    Ok(out)
}
