//! `affinity-vc` binary: parse, dispatch, print.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match vc_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
