//! The `affinity-vc` command-line tool.
//!
//! Thin, dependency-free argument handling over the workspace crates.
//! All commands are pure functions from arguments to an output string
//! ([`run`]), which keeps the whole surface unit-testable; `main.rs` only
//! prints the result or the error.
//!
//! ```text
//! affinity-vc place          --request 2,4,1 [--racks 3] [--nodes 10] ...
//! affinity-vc simulate-job   --spread 2,10,0 [--workload wordcount] ...
//! affinity-vc simulate-queue --requests 20 [--policy online] ...
//! affinity-vc simulate       --requests 10 [--service mapreduce] ...
//! affinity-vc derive-distance [--racks 3] [--nodes 10] [--unit-us 100]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{ArgError, Parsed};

/// Entry point: dispatch `argv[1..]` to a subcommand and return its
/// output text.
pub fn run(argv: &[String]) -> Result<String, ArgError> {
    let Some((command, rest)) = argv.split_first() else {
        return Ok(usage());
    };
    // `diff`/`compare` take file operands, so they parse positionals.
    if command == "diff" || command == "compare" {
        let (parsed, files) = Parsed::parse_with_positionals(rest)?;
        return if command == "diff" {
            commands::diff(&parsed, &files)
        } else {
            commands::compare(&parsed, &files)
        };
    }
    let parsed = Parsed::parse(rest)?;
    match command.as_str() {
        "place" => commands::place(&parsed),
        "simulate-job" => commands::simulate_job(&parsed),
        "simulate-queue" => commands::simulate_queue(&parsed),
        "simulate" | "run" => commands::simulate(&parsed),
        "report" => commands::report(&parsed),
        "profile" => commands::profile(&parsed),
        "derive-distance" => commands::derive_distance(&parsed),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(ArgError::new(format!(
            "unknown command `{other}` — try `affinity-vc help`"
        ))),
    }
}

/// The top-level help text.
pub fn usage() -> String {
    "\
affinity-vc — affinity-aware virtual cluster optimization (CLUSTER 2012)

USAGE:
    affinity-vc <COMMAND> [OPTIONS]

COMMANDS:
    place             place one VM request on a simulated cloud
    simulate-job      run a MapReduce job on a virtual cluster
    simulate-queue    run a request-queue simulation
    simulate          end-to-end: queue + placement + MapReduce (alias: run)
    report            analyse a recorded trace: critical path + placement audit
    diff              compare two recorded runs: metric deltas + attribution
    compare           paired multi-seed A/B re-run of two configs
    profile           compare two perf snapshots; fail on regressions
    derive-distance   derive a distance matrix from network latencies
    help              show this text

COMMON OPTIONS:
    --racks <N>            racks in the cloud            [default: 3]
    --nodes <N>            nodes per rack                [default: 10]
    --capacity <N>         instances per (node, type)    [default: 2]
    --seed <N>             RNG seed                      [default: 0]
    --json                 emit JSON instead of text

PLACE OPTIONS:
    --request a,b,c        VM counts per type (required)
    --policy <P>           online|exact|ilp|first-fit|best-fit|spread|random
                           [default: online]
    --placement-threads <N> seed-scan workers (0 = auto)  [default: 1]

SIMULATE-JOB OPTIONS:
    --spread a,b,c         VMs on master, same rack, cross rack [default: 2,10,0]
    --workload <W>         wordcount|wordcount-nocombine|terasort|grep
                           [default: wordcount]
    --maps <N>             map tasks                     [default: 32]
    --reducers <N>         reduce tasks                  [default: 1]
    --speculative          enable speculative execution
    --straggler-prob <F>   straggler probability         [default: 0]

SIMULATE-QUEUE OPTIONS:
    --requests <N>         request count                 [default: 20]
    --rate <F>             arrivals per second           [default: 0.5]
    --policy <P>           online|global|spread|first-fit|best-fit|random
                           [default: online]
    --trace <FILE>         replay a saved JSON trace instead of generating
    --save-trace <FILE>    save the generated trace for later replay
    --placement-threads <N> seed-scan workers (0 = auto)  [default: 1]

SIMULATE OPTIONS:
    --requests/--rate/--policy as simulate-queue  [default policy: global]
    --service <S>          trace|mapreduce               [default: mapreduce]
    --workload/--maps/--reducers as simulate-job (mapreduce service)

OBSERVABILITY (simulate, simulate-job, simulate-queue):
    --trace-out <FILE>     write a Chrome/Perfetto trace-event timeline
    --metrics-out <FILE>   write a metrics snapshot (.csv for CSV, else JSON)
    --prom-out <FILE>      write the snapshot in Prometheus text exposition
                           (windowed ts.* samples labelled when --window-us set)
    --stream-out <FILE>    record through the bounded-memory streaming
                           recorder into a JSONL file (replay with
                           `report --stream`); RSS stays flat however long
                           the run is
    --window-us <N>        sample ts.* cloud-health series every N µs of
                           sim time (simulate, simulate-queue)
    --series-out <FILE>    export the windowed series (.csv wide table,
                           else JSONL); needs --window-us

HEALTH WATCHDOG (simulate, simulate-queue):
    --health               audit conservation invariants during the run and
                           run the anomaly detectors over the ts.* windows
                           (detectors need --window-us); alerts appear as
                           alert.* events in the trace/stream and as
                           alert_total{severity,rule} in --prom-out
    --health-audit-events <N>   audit invariants every N DES events, 0 =
                           end-of-run only              [default: 64]
    --health-uplink-util <F>    uplink-saturation threshold  [default: 0.9]
    --health-uplink-windows <N> consecutive saturated windows [default: 2]
    --health-frag-windows <N>   consecutive rising-frag windows [default: 3]
    --health-queue-windows <N>  consecutive stagnant windows  [default: 2]
                           (any --health-* flag implies --health)

REPORT OPTIONS:
    --trace <FILE>         trace written by --trace-out (this or --stream is
                           required, except `report --perf --metrics <FILE>`)
    --stream <FILE>        JSONL stream written by --stream-out, replayed
                           into the same report
    --metrics <FILE>       metrics JSON written by --metrics-out (optional)
    --network              add the link-level hot-spot summary (needs --metrics):
                           per-link bytes/peak-utilization, rack-uplink peaks,
                           top congested links, shuffle locality split
    --perf                 add the simulator self-profile (needs --metrics):
                           phase wall-clock breakdown, fair-share solver
                           effort, peak RSS
    --timeline             add the windowed ts.* time-series table (from a
                           run recorded with --window-us)
    --series-out <FILE>    re-export the ts.* series from the trace input
    --health               summarise alert.* events by rule: severity,
                           subsystem, count, first/last sim-time, worst
                           window; also audits critical-path tiling offline
    --fail-on-alert <S>    exit 1 (`health gate: FAIL`) if any alert at or
                           above severity S (info|warn|critical) fired;
                           implies --health
    --json                 emit the full report as JSON

DIFF OPTIONS:
    affinity-vc diff <BASELINE.json> <CANDIDATE.json>
                           run documents written by `simulate --metrics-out`;
                           both must carry a run manifest and agree on
                           schema, --window-us and topology
    --tolerance-pct <F>    treat relative deltas below this as neutral for
                           non-deterministic metrics       [default: 0]
    --top <N>              rows in the explanation section  [default: 5]
    --fail-on-regress      exit 1 (`diff gate: FAIL`) if any non-advisory
                           metric regressed; prints `diff gate: PASS`
                           otherwise
    --json                 emit the full diff report as JSON
  Paired mode (also the `compare` command):
    --config-a <ARGS>      quoted simulate flags for side A (e.g. '--policy global')
    --config-b <ARGS>      quoted simulate flags for side B
    --seeds <N>            common seeds to re-run per side  [default: 5]
    --seed <N>             first seed                       [default: 0]

PROFILE OPTIONS:
    --current <FILE>       perf JSON to check (from `report --perf --json`)
    --baseline <FILE>      perf JSON to compare against
    --max-regress-pct <F>  fail if a deterministic effort counter grows by
                           more than this percentage        [default: 10]
    --max-wall-regress-pct <F>  also gate wall-clock metrics (off when
                           negative)                        [default: -1]
    --json                 emit the comparison as JSON
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, ArgError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    #[test]
    fn no_args_prints_usage() {
        let out = call(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn help_prints_usage() {
        for h in ["help", "--help", "-h"] {
            assert!(call(&[h]).unwrap().contains("COMMANDS"));
        }
    }

    #[test]
    fn unknown_command_errors() {
        let err = call(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn place_text_output() {
        let out = call(&["place", "--request", "2,4,1"]).unwrap();
        assert!(out.contains("distance"), "{out}");
        assert!(out.contains("centre"), "{out}");
    }

    #[test]
    fn place_json_output() {
        let out = call(&["place", "--request", "1,0,0", "--json"]).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["request"], serde_json::json!([1, 0, 0]));
        assert!(v["distance"].is_u64());
    }

    #[test]
    fn place_rejects_zero_request() {
        let err = call(&["place", "--request", "0,0,0"]).unwrap_err();
        assert!(err.to_string().contains("at least one VM"));
    }

    #[test]
    fn place_requires_request() {
        let err = call(&["place"]).unwrap_err();
        assert!(err.to_string().contains("--request"));
    }

    #[test]
    fn place_all_policies() {
        for p in [
            "online",
            "exact",
            "ilp",
            "first-fit",
            "best-fit",
            "spread",
            "random",
        ] {
            let out = call(&["place", "--request", "2,1,0", "--policy", p]).unwrap();
            assert!(out.contains("distance"), "{p}: {out}");
        }
    }

    #[test]
    fn place_bad_policy_errors() {
        let err = call(&["place", "--request", "1,0,0", "--policy", "nope"]).unwrap_err();
        assert!(err.to_string().contains("policy"));
    }

    #[test]
    fn simulate_job_runs() {
        let out = call(&["simulate-job", "--maps", "8", "--spread", "1,3,0"]).unwrap();
        assert!(out.contains("runtime"), "{out}");
        assert!(out.contains("data-local"), "{out}");
    }

    #[test]
    fn simulate_job_json() {
        let out = call(&[
            "simulate-job",
            "--maps",
            "4",
            "--json",
            "--workload",
            "grep",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["num_maps"], serde_json::json!(4));
    }

    #[test]
    fn simulate_queue_runs() {
        let out = call(&["simulate-queue", "--requests", "5", "--policy", "global"]).unwrap();
        assert!(out.contains("served"), "{out}");
    }

    #[test]
    fn placement_threads_do_not_change_results() {
        // The parallel seed scan is bit-identical to the sequential one,
        // so thread count must never alter any command's output.
        for threads in ["0", "2", "4"] {
            let base = call(&["place", "--request", "3,2,1", "--json"]).unwrap();
            let multi = call(&[
                "place",
                "--request",
                "3,2,1",
                "--json",
                "--placement-threads",
                threads,
            ])
            .unwrap();
            assert_eq!(base, multi, "--placement-threads {threads} changed place");
        }
        let base = call(&[
            "simulate-queue",
            "--requests",
            "8",
            "--policy",
            "global",
            "--json",
        ])
        .unwrap();
        let multi = call(&[
            "simulate-queue",
            "--requests",
            "8",
            "--policy",
            "global",
            "--json",
            "--placement-threads",
            "3",
        ])
        .unwrap();
        assert_eq!(base, multi, "--placement-threads changed simulate-queue");
    }

    #[test]
    fn placement_threads_rejects_garbage() {
        let err =
            call(&["place", "--request", "1,0,0", "--placement-threads", "lots"]).unwrap_err();
        assert!(err.to_string().contains("placement-threads"));
    }

    #[test]
    fn derive_distance_matrix_shape() {
        let out = call(&["derive-distance", "--racks", "2", "--nodes", "2"]).unwrap();
        // 4 matrix rows plus a header line.
        assert_eq!(out.lines().count(), 5, "{out}");
    }

    #[test]
    fn bad_number_errors() {
        let err = call(&["place", "--request", "1,0,0", "--seed", "abc"]).unwrap_err();
        assert!(err.to_string().contains("seed"));
    }

    #[test]
    fn unknown_flag_errors() {
        let err = call(&["place", "--request", "1,0,0", "--bogus", "1"]).unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }
}

#[cfg(test)]
mod trace_cli_tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, ArgError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    #[test]
    fn save_then_replay_trace() {
        let path = std::env::temp_dir().join("affinity_vc_cli_trace.json");
        let path_s = path.to_str().unwrap();
        let first = call(&["simulate-queue", "--requests", "5", "--save-trace", path_s]).unwrap();
        let replay = call(&["simulate-queue", "--trace", path_s]).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            first, replay,
            "replaying the saved trace must reproduce the run"
        );
    }

    #[test]
    fn missing_trace_file_errors() {
        let err = call(&["simulate-queue", "--trace", "/no/such/file.json"]).unwrap_err();
        assert!(err.to_string().contains("I/O"));
    }
}

#[cfg(test)]
mod obs_cli_tests {
    use super::*;
    use serde_json::Value;

    fn call(args: &[&str]) -> Result<String, ArgError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    fn tmp(name: &str) -> (std::path::PathBuf, String) {
        let path = std::env::temp_dir().join(name);
        let s = path.to_str().unwrap().to_string();
        (path, s)
    }

    fn read_json(path: &std::path::Path) -> Value {
        let text = std::fs::read_to_string(path).expect("output file written");
        serde_json::from_str(&text).expect("valid JSON")
    }

    #[test]
    fn simulate_end_to_end_writes_trace_and_metrics() {
        let (tp, tps) = tmp("affinity_vc_e2e_trace.json");
        let (mp, mps) = tmp("affinity_vc_e2e_metrics.json");
        let out = call(&[
            "simulate",
            "--requests",
            "4",
            "--maps",
            "4",
            "--trace-out",
            &tps,
            "--metrics-out",
            &mps,
        ])
        .unwrap();
        assert!(out.contains("served"), "{out}");
        assert!(out.contains("spans"), "{out}");

        let trace = read_json(&tp);
        let metrics = read_json(&mp);
        std::fs::remove_file(&tp).ok();
        std::fs::remove_file(&mp).ok();

        let events = trace["traceEvents"].as_array().expect("traceEvents array");
        let span_names: Vec<&str> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .filter_map(|e| e["name"].as_str())
            .collect();
        for required in ["request", "job", "map", "shuffle", "reduce"] {
            assert!(span_names.contains(&required), "missing {required} span");
        }
        let map_span = events
            .iter()
            .find(|e| e["ph"].as_str() == Some("X") && e["name"].as_str() == Some("map"))
            .unwrap();
        let locality = map_span["args"]["locality"].as_str().unwrap();
        assert!(["node_local", "rack_local", "remote"].contains(&locality));

        // Metrics snapshot: placement DC(C) and queue-depth histograms.
        assert!(metrics["histograms"]["placement.dc"]["count"].as_u64() > Some(0));
        assert!(metrics["histograms"]["cloudsim.queue_depth"].is_object());
        assert!(metrics["counters"]["des.events_processed"].as_u64() > Some(0));
    }

    #[test]
    fn run_is_an_alias_for_simulate() {
        let a = call(&["simulate", "--requests", "3", "--service", "trace"]).unwrap();
        let b = call(&["run", "--requests", "3", "--service", "trace"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn simulate_job_trace_out_has_vm_tracks() {
        let (tp, tps) = tmp("affinity_vc_job_trace.json");
        call(&[
            "simulate-job",
            "--maps",
            "4",
            "--spread",
            "1,3,0",
            "--trace-out",
            &tps,
        ])
        .unwrap();
        let trace = read_json(&tp);
        std::fs::remove_file(&tp).ok();
        let events = trace["traceEvents"].as_array().unwrap();
        let vm_track = events.iter().any(|e| {
            e["ph"].as_str() == Some("M")
                && e["name"].as_str() == Some("thread_name")
                && e["args"]["name"]
                    .as_str()
                    .is_some_and(|n| n.starts_with("vm"))
        });
        assert!(vm_track, "expected a vm* thread_name metadata event");
    }

    #[test]
    fn simulate_queue_metrics_out_csv() {
        let (mp, mps) = tmp("affinity_vc_queue_metrics.csv");
        call(&[
            "simulate-queue",
            "--requests",
            "5",
            "--policy",
            "global",
            "--metrics-out",
            &mps,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&mp).unwrap();
        std::fs::remove_file(&mp).ok();
        assert!(text.starts_with("kind,name,field,value"), "{text}");
        assert!(text.contains("cloudsim.queue_depth"), "{text}");
    }

    #[test]
    fn simulate_rejects_unknown_service() {
        let err = call(&["simulate", "--service", "magic"]).unwrap_err();
        assert!(err.to_string().contains("service"));
    }

    #[test]
    fn report_requires_trace() {
        let err = call(&["report"]).unwrap_err();
        assert!(err.to_string().contains("--trace"), "{err}");
    }

    #[test]
    fn report_attribution_sums_to_makespan() {
        // Acceptance check: on a WordCount end-to-end run, every job's
        // category attribution must tile its makespan exactly.
        let (tp, tps) = tmp("affinity_vc_report_trace.json");
        call(&[
            "simulate",
            "--requests",
            "3",
            "--maps",
            "4",
            "--workload",
            "wordcount",
            "--trace-out",
            &tps,
        ])
        .unwrap();
        let out = call(&["report", "--trace", &tps, "--json"]).unwrap();
        std::fs::remove_file(&tp).ok();
        let v: Value = serde_json::from_str(&out).unwrap();
        let jobs = v["jobs"].as_array().unwrap();
        assert!(!jobs.is_empty(), "no jobs in report");
        for job in jobs {
            let makespan = job["makespan_us"].as_u64().unwrap();
            let cats = job["categories_us"].as_object().unwrap();
            let total: u64 = cats.iter().map(|(_, v)| v.as_u64().unwrap()).sum();
            assert!(
                total.abs_diff(makespan) <= 1,
                "attribution {total} != makespan {makespan}"
            );
        }
        assert!(
            !v["placement"]["scan_audits"].as_array().unwrap().is_empty(),
            "expected scan audits in report"
        );
    }

    #[test]
    fn report_text_table_with_metrics() {
        let (tp, tps) = tmp("affinity_vc_report_t2.json");
        let (mp, mps) = tmp("affinity_vc_report_m2.json");
        call(&[
            "simulate",
            "--requests",
            "3",
            "--maps",
            "4",
            "--placement-threads",
            "2",
            "--trace-out",
            &tps,
            "--metrics-out",
            &mps,
        ])
        .unwrap();
        let out = call(&["report", "--trace", &tps, "--metrics", &mps]).unwrap();
        std::fs::remove_file(&tp).ok();
        std::fs::remove_file(&mp).ok();
        assert!(out.contains("critical-path attribution"), "{out}");
        assert!(out.contains("makespan_s"), "{out}");
        assert!(out.contains("placement —"), "{out}");
        assert!(out.contains("seeds:"), "{out}");
        assert!(out.contains("placement.seeds_scanned"), "{out}");
    }

    #[test]
    fn sharded_threads_match_sequential_artifacts() {
        // --placement-threads selects the ShardedRecorder; the merged
        // trace must carry the same deterministic placement telemetry as
        // the single-threaded MemRecorder run.
        let (t1, t1s) = tmp("affinity_vc_shard_t1.json");
        let (t2, t2s) = tmp("affinity_vc_shard_t2.json");
        let base = call(&[
            "simulate-queue",
            "--requests",
            "6",
            "--policy",
            "global",
            "--json",
            "--trace-out",
            &t1s,
        ])
        .unwrap();
        let multi = call(&[
            "simulate-queue",
            "--requests",
            "6",
            "--policy",
            "global",
            "--json",
            "--placement-threads",
            "0",
            "--trace-out",
            &t2s,
        ])
        .unwrap();
        assert_eq!(base, multi, "results must not depend on the recorder");
        let (a, b) = (read_json(&t1), read_json(&t2));
        std::fs::remove_file(&t1).ok();
        std::fs::remove_file(&t2).ok();
        // Deterministic placement events agree between recorders.
        let placed = |doc: &Value| -> Vec<String> {
            let mut v: Vec<String> = doc["traceEvents"]
                .as_array()
                .unwrap()
                .iter()
                .filter(|e| {
                    e["ph"].as_str() == Some("i")
                        && matches!(
                            e["name"].as_str(),
                            Some("placement.request_placed" | "placement.exchange_audit")
                        )
                })
                .map(|e| format!("{} {} {}", e["name"], e["ts"], e["args"]))
                .collect();
            v.sort();
            v
        };
        assert_eq!(placed(&a), placed(&b));
    }

    #[test]
    fn report_network_requires_metrics() {
        let (tp, tps) = tmp("affinity_vc_net_nometrics_trace.json");
        call(&[
            "simulate",
            "--requests",
            "2",
            "--maps",
            "4",
            "--trace-out",
            &tps,
        ])
        .unwrap();
        let err = call(&["report", "--trace", &tps, "--network"]).unwrap_err();
        std::fs::remove_file(&tp).ok();
        assert!(err.to_string().contains("--metrics"), "{err}");
    }

    #[test]
    fn report_network_links_match_engine_shuffle_bytes() {
        // Acceptance check: the per-link shuffle-byte integrals must
        // equal the engine's own shuffle accounting EXACTLY — every
        // cross-node shuffle byte enters its destination node once, and
        // node-local shuffle crosses no link.
        let (tp, tps) = tmp("affinity_vc_net_trace.json");
        let (mp, mps) = tmp("affinity_vc_net_metrics.json");
        call(&[
            "simulate",
            "--requests",
            "4",
            "--maps",
            "6",
            "--reducers",
            "2",
            "--trace-out",
            &tps,
            "--metrics-out",
            &mps,
        ])
        .unwrap();
        let metrics = read_json(&mp);
        let out = call(&["report", "--trace", &tps, "--metrics", &mps, "--network"]).unwrap();
        let json_out = call(&[
            "report",
            "--trace",
            &tps,
            "--metrics",
            &mps,
            "--network",
            "--json",
        ])
        .unwrap();
        std::fs::remove_file(&tp).ok();
        std::fs::remove_file(&mp).ok();

        assert!(out.contains("network —"), "{out}");
        assert!(out.contains("rack uplinks"), "{out}");
        assert!(out.contains("top congested links"), "{out}");

        let v: Value = serde_json::from_str(&json_out).unwrap();
        let consistency = &v["network"]["consistency"];
        // Independent recomputation from the raw snapshot: Σ node-rx
        // link shuffle bytes vs the engine's fetch-by-fetch counters.
        let counters = metrics["counters"].as_object().unwrap();
        let rx_sum: u64 = counters
            .iter()
            .filter(|(k, _)| k.starts_with("net.link.node") && k.ends_with(".rx.shuffle_bytes"))
            .map(|(_, v)| v.as_u64().unwrap())
            .sum();
        let engine: u64 = counters
            .iter()
            .filter(|(k, _)| k == "mr.shuffle.rack_local_bytes" || k == "mr.shuffle.remote_bytes")
            .map(|(_, v)| v.as_u64().unwrap())
            .sum();
        assert!(rx_sum > 0, "expected cross-node shuffle traffic");
        assert_eq!(rx_sum, engine, "link vs engine shuffle bytes diverge");
        assert_eq!(consistency["link_rx_shuffle_bytes"].as_u64(), Some(rx_sum));
        assert_eq!(
            consistency["shuffle_rx_matches_engine"],
            Value::Bool(true),
            "{json_out}"
        );
        // Hot-spot summary fields present and sane.
        let uplinks = &v["network"]["rack_uplinks"];
        assert!(uplinks["peak_util"].as_f64().unwrap() >= 0.0);
        assert!(!v["network"]["top_congested"].as_array().unwrap().is_empty());
    }

    #[test]
    fn simulate_prom_out_is_text_exposition() {
        let (pp, pps) = tmp("affinity_vc_prom.prom");
        call(&[
            "simulate",
            "--requests",
            "3",
            "--maps",
            "4",
            "--prom-out",
            &pps,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&pp).unwrap();
        std::fs::remove_file(&pp).ok();
        // Prometheus text exposition 0.0.4: TYPE headers, sanitized
        // names, one sample per line.
        assert!(
            text.contains("# TYPE des_events_processed counter"),
            "{text}"
        );
        assert!(text.contains("# TYPE prof_phase_cloudsim_run_calls counter"));
        assert!(text.contains("prof_phase_cloudsim_run_calls 1"));
        assert!(text.contains("# TYPE prof_solver_solves counter"));
        assert!(text.contains("# TYPE prof_rss_peak_kb gauge"));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            let (name, value) = (parts.next().unwrap(), parts.next().unwrap());
            // Label values may contain arbitrary characters; the bare
            // metric name before any label set must be sanitized.
            let bare = name.split('{').next().unwrap();
            assert!(
                bare.chars().all(|c| c.is_ascii_alphanumeric()
                    || c == '_'
                    || c == ':'
                    || c == '+'
                    || c == '.'
                    || c == '-'),
                "unsanitized name {name}"
            );
            assert!(value.parse::<f64>().is_ok() || value == "+Inf", "{line}");
        }
    }

    #[test]
    fn report_perf_phases_tile_total() {
        // Acceptance check: the --perf breakdown must tile the total
        // simulator wall-clock (within 5% — exact by construction here).
        let (mp, mps) = tmp("affinity_vc_perf_tile_metrics.json");
        call(&[
            "simulate",
            "--requests",
            "5",
            "--maps",
            "6",
            "--metrics-out",
            &mps,
        ])
        .unwrap();
        let out = call(&["report", "--perf", "--metrics", &mps, "--json"]).unwrap();
        std::fs::remove_file(&mp).ok();
        let v: Value = serde_json::from_str(&out).unwrap();
        let perf = &v["perf"];
        let total = perf["total_wall_us"].as_u64().unwrap();
        assert!(total > 0, "{out}");
        let sum: u64 = perf["breakdown"]
            .as_array()
            .unwrap()
            .iter()
            .map(|row| row["wall_us"].as_u64().unwrap())
            .sum();
        assert!(
            (sum as f64 - total as f64).abs() <= total as f64 * 0.05,
            "breakdown {sum} vs total {total}"
        );
        // Solver effort counters present and consistent.
        let solver = &perf["solver"];
        assert!(solver["solves"].as_u64().unwrap() > 0);
        assert!(solver["flows"].as_u64().unwrap() >= solver["solves"].as_u64().unwrap());
        assert!(solver["iterations"].as_u64().is_some());
        assert!(solver["links_touched"].as_u64().is_some());
        // Phase table covers the whole taxonomy actually exercised.
        let phases: Vec<&str> = perf["phases"]
            .as_array()
            .unwrap()
            .iter()
            .map(|p| p["phase"].as_str().unwrap())
            .collect();
        for required in ["cloudsim_run", "serve", "mr_service", "des_pop", "mr_job"] {
            assert!(phases.contains(&required), "missing phase {required}");
        }
    }

    #[test]
    fn report_perf_requires_metrics() {
        let err = call(&["report", "--perf"]).unwrap_err();
        assert!(err.to_string().contains("--metrics"), "{err}");
    }

    #[test]
    fn observability_flags_do_not_change_results() {
        let (mp, mps) = tmp("affinity_vc_parity_metrics.json");
        let plain = call(&["simulate-queue", "--requests", "6", "--json"]).unwrap();
        let recorded = call(&[
            "simulate-queue",
            "--requests",
            "6",
            "--json",
            "--metrics-out",
            &mps,
        ])
        .unwrap();
        std::fs::remove_file(&mp).ok();
        assert_eq!(plain, recorded, "recording must not perturb the simulation");
    }

    #[test]
    fn series_out_requires_window() {
        let (_, sps) = tmp("affinity_vc_no_window.csv");
        let err = call(&["simulate", "--requests", "2", "--series-out", &sps]).unwrap_err();
        assert!(err.to_string().contains("--window-us"), "{err}");
    }

    #[test]
    fn simulate_series_out_csv_is_windowed_and_monotone() {
        let (sp, sps) = tmp("affinity_vc_series.csv");
        call(&[
            "simulate",
            "--requests",
            "6",
            "--maps",
            "4",
            "--window-us",
            "5000000",
            "--series-out",
            &sps,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&sp).unwrap();
        std::fs::remove_file(&sp).ok();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("t_us,"), "{header}");
        assert!(header.contains("ts.cloud.fill"), "{header}");
        assert!(header.contains("ts.queue.depth"), "{header}");
        assert!(header.contains("ts.net.rack_up_util"), "{header}");
        let edges: Vec<u64> = lines
            .map(|l| l.split(',').next().unwrap().parse().unwrap())
            .collect();
        assert!(edges.len() >= 2, "expected several windows: {text}");
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "{edges:?}");
        // Every full edge is a multiple of the window width.
        for &e in &edges[..edges.len() - 1] {
            assert_eq!(e % 5_000_000, 0, "unaligned full edge {e}");
        }
    }

    #[test]
    fn stream_out_does_not_change_results_and_report_replays_it() {
        // The bounded-memory streaming recorder must be invisible to the
        // simulation and its flushed JSONL must reproduce the exact same
        // report as an in-memory trace of the same run.
        let (tp, tps) = tmp("affinity_vc_stream_cmp_trace.json");
        let (sp, sps) = tmp("affinity_vc_stream_cmp.jsonl");
        fn args<'a>(extra: &[&'a str]) -> Vec<&'a str> {
            let mut v = vec![
                "simulate",
                "--requests",
                "5",
                "--maps",
                "4",
                "--window-us",
                "5000000",
                "--json",
            ];
            v.extend_from_slice(extra);
            v
        }
        let plain = call(&args(&["--trace-out", &tps])).unwrap();
        let streamed = call(&args(&["--stream-out", &sps])).unwrap();
        assert_eq!(plain, streamed, "streaming must not perturb the run");

        let from_trace = call(&["report", "--trace", &tps, "--timeline", "--json"]).unwrap();
        let from_stream = call(&["report", "--stream", &sps, "--timeline", "--json"]).unwrap();
        std::fs::remove_file(&tp).ok();
        std::fs::remove_file(&sp).ok();
        let a: Value = serde_json::from_str(&from_trace).unwrap();
        let b: Value = serde_json::from_str(&from_stream).unwrap();
        assert_eq!(a["timeline"], b["timeline"], "windowed values must match");
        assert!(
            a["timeline"]["window_count"].as_u64().unwrap() >= 2,
            "{from_trace}"
        );
        assert_eq!(a["jobs"], b["jobs"], "critical-path view must match");
    }

    #[test]
    fn report_timeline_renders_table() {
        let (sp, sps) = tmp("affinity_vc_timeline.jsonl");
        call(&[
            "simulate",
            "--requests",
            "4",
            "--maps",
            "4",
            "--window-us",
            "5000000",
            "--stream-out",
            &sps,
        ])
        .unwrap();
        let out = call(&["report", "--stream", &sps, "--timeline"]).unwrap();
        std::fs::remove_file(&sp).ok();
        assert!(out.contains("timeline —"), "{out}");
        assert!(out.contains("t_s"), "{out}");
        assert!(out.contains("cloud.fill"), "{out}");
        assert!(out.contains("queue.depth"), "{out}");
    }

    #[test]
    fn report_rejects_both_trace_and_stream() {
        let err = call(&["report", "--trace", "a.json", "--stream", "b.jsonl"]).unwrap_err();
        assert!(err.to_string().contains("exactly one"), "{err}");
    }

    #[test]
    fn prom_out_window_labels_when_sampling() {
        let (pp, pps) = tmp("affinity_vc_prom_windowed.prom");
        call(&[
            "simulate",
            "--requests",
            "4",
            "--maps",
            "4",
            "--window-us",
            "5000000",
            "--prom-out",
            &pps,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&pp).unwrap();
        std::fs::remove_file(&pp).ok();
        assert!(text.contains("window=\""), "{text}");
        assert!(text.contains("ts_cloud_fill"), "{text}");
    }

    /// A two-slot cloud trace with a 600 s hog and short jobs piling up
    /// behind it — the queue rises window after window with nothing
    /// served, so the `queue_stagnation` detector must fire. Saved as a
    /// replayable request trace for `simulate-queue --trace`.
    fn write_stagnation_trace(path: &str) {
        use vc_cloudsim::CloudRequest;
        use vc_des::SimTime;
        use vc_model::Request;
        let mut requests = vec![CloudRequest {
            id: 0,
            request: Request::from_counts(vec![2, 0, 0]),
            arrival: SimTime::ZERO,
            service_time: SimTime::from_secs(600),
        }];
        for i in 1..=10u64 {
            requests.push(CloudRequest {
                id: i,
                request: Request::from_counts(vec![1, 0, 0]),
                arrival: SimTime::from_secs(3 * i),
                service_time: SimTime::from_secs(2),
            });
        }
        vc_cloudsim::trace::save(&requests, path).unwrap();
    }

    fn stagnation_run(trace_path: &str, extra: &[&str]) -> Result<String, ArgError> {
        let mut args = vec![
            "simulate-queue",
            "--racks",
            "1",
            "--nodes",
            "2",
            "--capacity",
            "1",
            "--trace",
            trace_path,
            "--health",
            "--window-us",
            "5000000",
        ];
        args.extend_from_slice(extra);
        call(&args)
    }

    #[test]
    fn report_health_summarises_alerts_and_gates_exit() {
        let (rp, rps) = tmp("affinity_vc_health_reqs.json");
        let (tp, tps) = tmp("affinity_vc_health_trace.json");
        let (pp, pps) = tmp("affinity_vc_health.prom");
        write_stagnation_trace(&rps);
        let out = stagnation_run(&rps, &["--trace-out", &tps, "--prom-out", &pps]).unwrap();
        assert!(out.contains("served"), "{out}");

        // The watchdog's counters export as one labelled family.
        let prom = std::fs::read_to_string(&pp).unwrap();
        assert!(
            prom.contains("alert_total{severity=\"warn\",rule=\"queue_stagnation\"}"),
            "{prom}"
        );

        let table = call(&["report", "--trace", &tps, "--health"]).unwrap();
        assert!(table.contains("health —"), "{table}");
        assert!(table.contains("queue_stagnation"), "{table}");
        assert!(table.contains("warn"), "{table}");

        let json: Value = serde_json::from_str(
            &call(&["report", "--trace", &tps, "--health", "--json"]).unwrap(),
        )
        .unwrap();
        assert!(json["health"]["total"].as_u64().unwrap() >= 1, "{json:?}");
        let alerts = json["health"]["alerts"].as_array().unwrap();
        let stag = alerts
            .iter()
            .find(|a| a["rule"].as_str() == Some("queue_stagnation"))
            .expect("queue_stagnation row");
        assert_eq!(stag["severity"].as_str(), Some("warn"));
        assert_eq!(stag["subsystem"].as_str(), Some("cloudsim"));
        assert!(stag["count"].as_u64().unwrap() >= 1);
        assert!(stag["last_t_us"].as_u64() >= stag["first_t_us"].as_u64());
        assert!(stag["worst_window_edge_us"].as_u64().unwrap() > 0);

        // Gate trips at warn (a warn alert fired), passes at critical.
        let err = call(&["report", "--trace", &tps, "--fail-on-alert", "warn"]).unwrap_err();
        assert!(err.to_string().contains("health gate: FAIL"), "{err}");
        assert!(err.to_string().contains("queue_stagnation"), "{err}");
        let pass = call(&["report", "--trace", &tps, "--fail-on-alert", "critical"]).unwrap();
        assert!(pass.contains("health gate: PASS"), "{pass}");

        std::fs::remove_file(&rp).ok();
        std::fs::remove_file(&tp).ok();
        std::fs::remove_file(&pp).ok();
    }

    #[test]
    fn alerts_replay_through_the_stream() {
        let (rp, rps) = tmp("affinity_vc_health_stream_reqs.json");
        let (sp, sps) = tmp("affinity_vc_health_stream.jsonl");
        write_stagnation_trace(&rps);
        stagnation_run(&rps, &["--stream-out", &sps]).unwrap();
        let json: Value = serde_json::from_str(
            &call(&["report", "--stream", &sps, "--health", "--json"]).unwrap(),
        )
        .unwrap();
        let alerts = json["health"]["alerts"].as_array().unwrap();
        assert!(
            alerts
                .iter()
                .any(|a| a["rule"].as_str() == Some("queue_stagnation")),
            "{json:?}"
        );
        std::fs::remove_file(&rp).ok();
        std::fs::remove_file(&sp).ok();
    }

    #[test]
    fn healthy_run_reports_clean_and_passes_gate() {
        let (sp, sps) = tmp("affinity_vc_healthy.jsonl");
        call(&[
            "simulate",
            "--requests",
            "3",
            "--maps",
            "2",
            "--health",
            "--window-us",
            "5000000",
            "--stream-out",
            &sps,
        ])
        .unwrap();
        let json: Value = serde_json::from_str(
            &call(&["report", "--stream", &sps, "--health", "--json"]).unwrap(),
        )
        .unwrap();
        assert_eq!(json["health"]["total"].as_u64(), Some(0), "{json:?}");
        assert_eq!(json["health"]["alerts"].as_array().map(Vec::len), Some(0));
        // `--fail-on-alert` at the strictest level still passes.
        let out = call(&["report", "--stream", &sps, "--fail-on-alert", "info"]).unwrap();
        assert!(out.contains("health gate: PASS"), "{out}");
        std::fs::remove_file(&sp).ok();
    }

    #[test]
    fn health_gate_rejects_unknown_severity_and_needs_trace() {
        let err = call(&["report", "--fail-on-alert", "fatal"]).unwrap_err();
        assert!(err.to_string().contains("info, warn or critical"), "{err}");
        let err = call(&["report", "--health"]).unwrap_err();
        assert!(err.to_string().contains("--trace"), "{err}");
    }

    #[test]
    fn report_series_out_round_trips_deltas_across_formats() {
        let (tp, tps) = tmp("affinity_vc_delta_trace.json");
        let (cp, cps) = tmp("affinity_vc_delta.csv");
        let (jp, jps) = tmp("affinity_vc_delta.jsonl");
        let sim: Value = serde_json::from_str(
            &call(&[
                "simulate",
                "--requests",
                "5",
                "--maps",
                "4",
                "--json",
                "--window-us",
                "5000000",
                "--trace-out",
                &tps,
            ])
            .unwrap(),
        )
        .unwrap();
        call(&[
            "report",
            "--trace",
            &tps,
            "--timeline",
            "--series-out",
            &cps,
        ])
        .unwrap();
        call(&[
            "report",
            "--trace",
            &tps,
            "--timeline",
            "--series-out",
            &jps,
        ])
        .unwrap();
        let csv = std::fs::read_to_string(&cp).unwrap();
        let jsonl = std::fs::read_to_string(&jp).unwrap();
        std::fs::remove_file(&tp).ok();
        std::fs::remove_file(&cp).ok();
        std::fs::remove_file(&jp).ok();

        type Series = std::collections::BTreeMap<String, Vec<(u64, f64)>>;
        let mut from_csv = Series::new();
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        for name in ["ts.served.delta", "ts.refused.delta"] {
            assert!(header.contains(&name), "{csv}");
        }
        for line in lines {
            let cells: Vec<&str> = line.split(',').collect();
            let t: u64 = cells[0].parse().unwrap();
            for (i, cell) in cells.iter().enumerate().skip(1) {
                if !cell.is_empty() {
                    from_csv
                        .entry(header[i].to_string())
                        .or_default()
                        .push((t, cell.parse().unwrap()));
                }
            }
        }
        let mut from_jsonl = Series::new();
        for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
            let v: Value = serde_json::from_str(line).unwrap();
            let t = v["t_us"].as_u64().unwrap();
            let Value::Object(entries) = &v else {
                panic!("JSONL row is not an object: {line}");
            };
            for (k, val) in entries {
                if k != "t_us" {
                    from_jsonl
                        .entry(k.clone())
                        .or_default()
                        .push((t, val.as_f64().unwrap()));
                }
            }
        }
        // Identical series (names, edges, values) in both formats.
        assert_eq!(from_csv, from_jsonl);
        // The deltas account for every outcome of the run exactly.
        let sum = |name: &str| -> f64 { from_csv[name].iter().map(|&(_, v)| v).sum() };
        assert_eq!(
            sum("ts.served.delta") as u64,
            sim["served"].as_u64().unwrap()
        );
        assert_eq!(
            sum("ts.refused.delta") as u64,
            sim["refused"].as_u64().unwrap()
        );
    }
}

#[cfg(test)]
mod diff_cli_tests {
    use super::*;
    use serde_json::Value;

    fn call(args: &[&str]) -> Result<String, ArgError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    fn tmp(name: &str) -> (std::path::PathBuf, String) {
        let path = std::env::temp_dir().join(name);
        let s = path.to_str().unwrap().to_string();
        (path, s)
    }

    /// Record one simulate run document to `name` and return its path.
    fn record_run(name: &str, extra: &[&str]) -> (std::path::PathBuf, String) {
        let (path, s) = tmp(name);
        let mut args = vec![
            "simulate",
            "--requests",
            "5",
            "--maps",
            "4",
            "--seed",
            "11",
            "--window-us",
            "200000000",
            "--metrics-out",
            &s,
        ];
        args.extend_from_slice(extra);
        call(&args).unwrap();
        (path, s)
    }

    #[test]
    fn metrics_out_embeds_manifest_and_attribution() {
        let (path, s) = record_run("affinity_vc_diff_manifest.json", &[]);
        let text = std::fs::read_to_string(&path).unwrap();
        let doc: Value = serde_json::from_str(&text).unwrap();
        let manifest = doc.get("manifest").expect("manifest embedded");
        assert_eq!(
            manifest.get("command").and_then(Value::as_str),
            Some("simulate")
        );
        assert_eq!(manifest.get("seed").and_then(Value::as_u64), Some(11));
        assert!(manifest.get("topology_digest").is_some());
        assert!(doc.get("attribution").and_then(|a| a.get("jobs")).is_some());
        assert!(doc
            .get("timeseries")
            .and_then(|t| t.get("window_us"))
            .is_some());
        let _ = s;
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn self_diff_reports_zero_regressions_and_gate_passes() {
        let (path, s) = record_run("affinity_vc_diff_self.json", &[]);
        let out = call(&["diff", &s, &s, "--fail-on-regress", "--json"]).unwrap();
        let doc: Value = serde_json::from_str(&out).unwrap();
        let summary = doc.get("summary").expect("summary");
        assert_eq!(summary.get("regressed").and_then(Value::as_u64), Some(0));
        assert_eq!(summary.get("improved").and_then(Value::as_u64), Some(0));
        assert_eq!(doc.get("gate").and_then(Value::as_str), Some("pass"));
        let text = call(&["diff", &s, &s, "--fail-on-regress"]).unwrap();
        assert!(text.contains("diff gate: PASS"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn affinity_vs_spread_attributes_shuffle_network_and_uplinks() {
        let (bp, bs) = record_run("affinity_vc_diff_aff.json", &[]);
        let (cp, cs) = record_run("affinity_vc_diff_spread.json", &["--policy", "spread"]);
        let out = call(&["diff", &bs, &cs, "--json"]).unwrap();
        let doc: Value = serde_json::from_str(&out).unwrap();
        let expl = doc.get("explanation").expect("explanation section");
        let categories: Vec<&str> = expl["top_categories"]
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|c| c.get("category").and_then(Value::as_str))
            .collect();
        assert!(
            categories.contains(&"shuffle-network-wait"),
            "categories: {categories:?}"
        );
        let links: Vec<&str> = expl["top_links"]
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|l| l.get("link").and_then(Value::as_str))
            .collect();
        assert!(
            links
                .iter()
                .any(|l| l.starts_with("rack") && l.ends_with(".up")),
            "links: {links:?}"
        );
        // Spread placement pushes shuffle traffic onto the rack uplinks.
        let regressed_links: Vec<&str> = doc["links"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|l| l["verdict"].as_str() == Some("regressed"))
            .filter_map(|l| l["link"].as_str())
            .collect();
        assert!(
            regressed_links.iter().any(|n| n.starts_with("rack")),
            "regressed links: {regressed_links:?}"
        );
        let err = call(&["diff", &bs, &cs, "--fail-on-regress"]).unwrap_err();
        assert!(err.to_string().contains("diff gate: FAIL"), "{err}");
        std::fs::remove_file(bp).ok();
        std::fs::remove_file(cp).ok();
    }

    #[test]
    fn window_mismatch_is_located_by_line() {
        let (bp, bs) = record_run("affinity_vc_diff_w1.json", &[]);
        let (cp, cs) = tmp("affinity_vc_diff_w2.json");
        call(&[
            "simulate",
            "--requests",
            "5",
            "--maps",
            "4",
            "--seed",
            "11",
            "--window-us",
            "100000000",
            "--metrics-out",
            &cs,
        ])
        .unwrap();
        let err = call(&["diff", &bs, &cs]).unwrap_err().to_string();
        assert!(err.contains("window_us"), "{err}");
        assert!(err.contains("line "), "{err}");
        assert!(err.contains("not comparable"), "{err}");
        std::fs::remove_file(bp).ok();
        std::fs::remove_file(cp).ok();
    }

    #[test]
    fn missing_manifest_names_file_and_line_one() {
        let (path, s) = tmp("affinity_vc_diff_nomanifest.json");
        std::fs::write(&path, "{\"counters\": {}}\n").unwrap();
        let err = call(&["diff", &s, &s]).unwrap_err().to_string();
        assert!(err.contains("manifest"), "{err}");
        assert!(err.contains("line 1"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn paired_mode_reports_median_ratios() {
        let out = call(&[
            "diff",
            "--config-a",
            "--requests 4 --maps 4",
            "--config-b",
            "--requests 4 --maps 4 --policy spread",
            "--seeds",
            "3",
            "--json",
        ])
        .unwrap();
        let doc: Value = serde_json::from_str(&out).unwrap();
        assert_eq!(doc["seeds"].as_u64(), Some(3));
        let metrics = doc["metrics"].as_array().unwrap();
        let makespan = metrics
            .iter()
            .find(|m| m["metric"].as_str() == Some("attribution.makespan_us"))
            .expect("makespan row");
        assert!(makespan["median_ratio"].as_f64().unwrap() > 0.0);
        let wins = makespan["a_wins"].as_u64().unwrap()
            + makespan["b_wins"].as_u64().unwrap()
            + makespan["ties"].as_u64().unwrap();
        assert_eq!(wins, 3, "each seed contributes one paired outcome");
    }

    #[test]
    fn paired_mode_rejects_files_and_io_flags() {
        let err = call(&["diff", "a.json", "b.json", "--seeds", "2"]).unwrap_err();
        assert!(err.to_string().contains("paired mode"), "{err}");
        let err = call(&[
            "diff",
            "--config-a",
            "--requests 2 --metrics-out x.json",
            "--config-b",
            "--requests 2",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--metrics-out"), "{err}");
    }

    #[test]
    fn profile_warns_on_mismatched_run_manifests() {
        let (mp_a, ms_a) = tmp("affinity_vc_prof_a_metrics.json");
        let (mp_b, ms_b) = tmp("affinity_vc_prof_b_metrics.json");
        call(&[
            "simulate",
            "--requests",
            "4",
            "--seed",
            "1",
            "--metrics-out",
            &ms_a,
        ])
        .unwrap();
        call(&[
            "simulate",
            "--requests",
            "4",
            "--seed",
            "2",
            "--metrics-out",
            &ms_b,
        ])
        .unwrap();
        let (pp_a, ps_a) = tmp("affinity_vc_prof_a_perf.json");
        let (pp_b, ps_b) = tmp("affinity_vc_prof_b_perf.json");
        let perf_a = call(&["report", "--perf", "--json", "--metrics", &ms_a]).unwrap();
        let perf_b = call(&["report", "--perf", "--json", "--metrics", &ms_b]).unwrap();
        std::fs::write(&pp_a, perf_a).unwrap();
        std::fs::write(&pp_b, perf_b).unwrap();
        // Different seeds: profile still runs but warns.
        let out = call(&[
            "profile",
            "--current",
            &ps_a,
            "--baseline",
            &ps_b,
            "--max-regress-pct",
            "100000",
        ])
        .unwrap();
        assert!(out.contains("warning:"), "{out}");
        assert!(out.contains("different seeds"), "{out}");
        // Same file on both sides: no warning.
        let out = call(&["profile", "--current", &ps_a, "--baseline", &ps_a]).unwrap();
        assert!(!out.contains("warning:"), "{out}");
        for p in [mp_a, mp_b, pp_a, pp_b] {
            std::fs::remove_file(p).ok();
        }
    }
}
