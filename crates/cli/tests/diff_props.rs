//! Property tests for `vc diff` and the run manifest.
//!
//! Two invariants hold for *any* simulate configuration:
//!
//! 1. **Self-diff identity** — diffing a run document against itself
//!    reports zero improved and zero regressed metrics, and the gate
//!    passes.
//! 2. **Manifest stability** — re-running the same configuration with
//!    the same seed produces the same manifest digest (the manifest
//!    captures only deterministic inputs), and diffing the two runs
//!    finds no deterministic-counter deltas.

use proptest::prelude::*;
use serde_json::Value;

fn call(args: &[&str]) -> Result<String, vc_cli::ArgError> {
    let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    vc_cli::run(&v)
}

/// Unique temp path per test case so parallel cases don't collide.
fn tmp(tag: &str, case: u64) -> (std::path::PathBuf, String) {
    let path = std::env::temp_dir().join(format!("affinity_vc_diff_prop_{tag}_{case}.json"));
    let s = path.to_str().unwrap().to_string();
    (path, s)
}

/// Record one simulate run document and return the parsed JSON.
fn record(path: &str, requests: usize, seed: u64, maps: usize, policy: &str, window_s: u64) {
    let requests = requests.to_string();
    let seed_s = seed.to_string();
    let maps = maps.to_string();
    let window_us = (window_s * 1_000_000_000).to_string();
    let mut args = vec![
        "simulate",
        "--requests",
        &requests,
        "--seed",
        &seed_s,
        "--maps",
        &maps,
        "--policy",
        policy,
        "--metrics-out",
        path,
    ];
    if window_s > 0 {
        args.extend_from_slice(&["--window-us", &window_us]);
    }
    call(&args).unwrap();
}

fn read_doc(path: &std::path::Path) -> Value {
    let text = std::fs::read_to_string(path).expect("run document written");
    serde_json::from_str(&text).expect("valid JSON")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `vc diff run.json run.json` is the identity: nothing improves,
    /// nothing regresses, the gate passes.
    #[test]
    fn self_diff_is_identity(
        requests in 2usize..8,
        seed in any::<u64>(),
        maps in 2usize..8,
        spread in any::<bool>(),
        window_s in 0u64..3,
    ) {
        let case = seed.wrapping_mul(31).wrapping_add(requests as u64);
        let (path, s) = tmp("self", case);
        let policy = if spread { "spread" } else { "global" };
        record(&s, requests, seed, maps, policy, window_s);
        let out = call(&["diff", &s, &s, "--fail-on-regress", "--json"]).unwrap();
        std::fs::remove_file(&path).ok();
        let doc: Value = serde_json::from_str(&out).unwrap();
        prop_assert_eq!(doc["summary"]["improved"].as_u64(), Some(0));
        prop_assert_eq!(doc["summary"]["regressed"].as_u64(), Some(0));
        prop_assert_eq!(doc["gate"].as_str(), Some("pass"));
        // The explanation has nothing to explain.
        prop_assert_eq!(doc["explanation"]["makespan_delta_us"].as_i64(), Some(0));
    }

    /// Same config + same seed re-run: identical manifest digest and no
    /// deterministic-counter deltas (only advisory wall-clock metrics
    /// may move between the two processes).
    #[test]
    fn manifest_digest_stable_across_reruns(
        requests in 2usize..8,
        seed in any::<u64>(),
        maps in 2usize..8,
    ) {
        let case = seed.wrapping_mul(37).wrapping_add(maps as u64);
        let (pa, sa) = tmp("rerun_a", case);
        let (pb, sb) = tmp("rerun_b", case);
        record(&sa, requests, seed, maps, "global", 0);
        record(&sb, requests, seed, maps, "global", 0);
        let da = read_doc(&pa);
        let db = read_doc(&pb);
        prop_assert_eq!(
            da["manifest"]["digest"].as_str().unwrap(),
            db["manifest"]["digest"].as_str().unwrap()
        );
        let out = call(&["diff", &sa, &sb, "--json"]).unwrap();
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
        let doc: Value = serde_json::from_str(&out).unwrap();
        // Every non-advisory delta must be an exact match.
        for section in ["counters", "gauges", "histograms", "alerts"] {
            for d in doc[section].as_array().unwrap() {
                if matches!(d["advisory"], Value::Bool(true)) {
                    continue;
                }
                prop_assert_eq!(
                    d["verdict"].as_str(),
                    Some("neutral"),
                    "deterministic metric {} drifted across re-runs",
                    d["name"].as_str().unwrap_or("?")
                );
                prop_assert!(
                    (d["baseline"].as_f64().unwrap() - d["candidate"].as_f64().unwrap()).abs()
                        == 0.0
                );
            }
        }
        prop_assert_eq!(doc["summary"]["regressed"].as_u64(), Some(0));
    }
}
