//! Process-level tests: exit codes and stderr for failure paths, and
//! degenerate-run behaviour of `report --network` / `report --perf`.
//!
//! These spawn the real `affinity-vc` binary so they exercise exactly
//! what CI and shell scripts observe: exit status plus stream contents.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_affinity-vc"))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary spawns")
}

fn tmp(name: &str) -> (PathBuf, String) {
    let path = std::env::temp_dir().join(name);
    let s = path.to_str().unwrap().to_string();
    (path, s)
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn malformed_trace_file_exits_nonzero_with_context() {
    let (path, path_s) = tmp("affinity_vc_malformed_trace.json");
    std::fs::write(&path, "{ this is not json").unwrap();
    let out = run(&["report", "--trace", &path_s]);
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success(), "malformed trace must fail");
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.starts_with("error:"), "{err}");
    assert!(err.contains(&path_s), "error must name the file: {err}");
}

#[test]
fn trace_with_wrong_shape_exits_nonzero() {
    // Valid JSON, but not a chrome trace document.
    let (path, path_s) = tmp("affinity_vc_wrongshape_trace.json");
    std::fs::write(&path, r#"{"hello": [1, 2, 3]}"#).unwrap();
    let out = run(&["report", "--trace", &path_s]);
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
    assert!(stderr(&out).contains(&path_s));
}

#[test]
fn missing_trace_file_exits_nonzero() {
    let out = run(&["report", "--trace", "/no/such/dir/trace.json"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("I/O error"), "{}", stderr(&out));
}

#[test]
fn corrupt_stream_line_exits_nonzero_with_line_number() {
    // A stream with a syntactically broken line must fail the replay
    // and name both the file and the offending line.
    let (path, path_s) = tmp("affinity_vc_corrupt_stream.jsonl");
    std::fs::write(
        &path,
        "{\"o\":\"c\",\"n\":\"a\",\"d\":1,\"t\":0,\"q\":1}\nnot json at all\n",
    )
    .unwrap();
    let out = run(&["report", "--stream", &path_s]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.starts_with("error:"), "{err}");
    assert!(err.contains(&path_s), "error must name the file: {err}");
    assert!(err.contains("line 2"), "error must name the line: {err}");
}

#[test]
fn truncated_stream_exits_nonzero() {
    // Simulate a crash mid-write: record a real stream, then chop the
    // last line in half. The replay must reject it, not silently drop it.
    let (sp, sps) = tmp("affinity_vc_truncated_stream.jsonl");
    let sim = run(&[
        "simulate",
        "--requests",
        "3",
        "--maps",
        "4",
        "--stream-out",
        &sps,
    ]);
    assert!(sim.status.success(), "{}", stderr(&sim));
    let text = std::fs::read_to_string(&sp).unwrap();
    let trimmed = text.trim_end();
    let cut = trimmed.len() - trimmed.lines().last().unwrap().len() / 2;
    std::fs::write(&sp, &trimmed[..cut]).unwrap();
    let out = run(&["report", "--stream", &sps]);
    std::fs::remove_file(&sp).ok();
    assert_eq!(out.status.code(), Some(1), "truncated stream must fail");
    let err = stderr(&out);
    assert!(err.contains(&sps), "error must name the file: {err}");
}

#[test]
fn missing_stream_file_exits_nonzero() {
    let out = run(&["report", "--stream", "/no/such/dir/run.jsonl"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("I/O error"), "{err}");
    assert!(err.contains("/no/such/dir/run.jsonl"), "{err}");
}

#[test]
fn profile_gate_pass_exits_zero_and_fail_exits_one() {
    // Produce two perf snapshots of different-sized runs; comparing a
    // snapshot against itself passes, against the smaller one fails.
    let (mp_a, mps_a) = tmp("affinity_vc_gate_small.json");
    let (mp_b, mps_b) = tmp("affinity_vc_gate_big.json");
    let (pp_a, pps_a) = tmp("affinity_vc_gate_small_perf.json");
    let (pp_b, pps_b) = tmp("affinity_vc_gate_big_perf.json");

    let sim = run(&[
        "simulate",
        "--requests",
        "3",
        "--maps",
        "4",
        "--metrics-out",
        &mps_a,
    ]);
    assert!(sim.status.success(), "{}", stderr(&sim));
    let sim = run(&[
        "simulate",
        "--requests",
        "6",
        "--maps",
        "8",
        "--metrics-out",
        &mps_b,
    ]);
    assert!(sim.status.success(), "{}", stderr(&sim));

    for (metrics, perf) in [(&mps_a, &pps_a), (&mps_b, &pps_b)] {
        let rep = run(&["report", "--perf", "--metrics", metrics, "--json"]);
        assert!(rep.status.success(), "{}", stderr(&rep));
        std::fs::write(perf, stdout(&rep)).unwrap();
    }

    let pass = run(&["profile", "--current", &pps_a, "--baseline", &pps_a]);
    assert_eq!(pass.status.code(), Some(0), "{}", stderr(&pass));
    assert!(
        stdout(&pass).contains("perf gate: PASS"),
        "{}",
        stdout(&pass)
    );

    let fail = run(&["profile", "--current", &pps_b, "--baseline", &pps_a]);
    assert_eq!(fail.status.code(), Some(1), "self vs smaller must regress");
    let err = stderr(&fail);
    assert!(err.contains("perf gate: FAIL"), "{err}");
    assert!(err.contains("solver.solves"), "{err}");

    // A generous threshold turns the same comparison into a pass.
    let relaxed = run(&[
        "profile",
        "--current",
        &pps_b,
        "--baseline",
        &pps_a,
        "--max-regress-pct",
        "1000",
    ]);
    assert_eq!(relaxed.status.code(), Some(0), "{}", stderr(&relaxed));

    for p in [&mp_a, &mp_b, &pp_a, &pp_b] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn profile_rejects_non_perf_document() {
    let (path, path_s) = tmp("affinity_vc_not_perf.json");
    std::fs::write(&path, r#"{"counters": {}}"#).unwrap();
    let out = run(&["profile", "--current", &path_s, "--baseline", &path_s]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("not a perf document"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn report_network_and_perf_on_zero_flow_run() {
    // `--service trace` runs no MapReduce jobs: zero flows, zero link
    // traffic. Both summaries must render without panicking and report
    // exact zeros.
    let (tp, tps) = tmp("affinity_vc_deg_trace.json");
    let (mp, mps) = tmp("affinity_vc_deg_metrics.json");
    let sim = run(&[
        "simulate",
        "--requests",
        "2",
        "--service",
        "trace",
        "--trace-out",
        &tps,
        "--metrics-out",
        &mps,
    ]);
    assert!(sim.status.success(), "{}", stderr(&sim));

    let out = run(&[
        "report",
        "--trace",
        &tps,
        "--metrics",
        &mps,
        "--network",
        "--perf",
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(v["network"]["links"].as_array().map(Vec::len), Some(0));
    assert_eq!(
        v["network"]["top_congested"].as_array().map(Vec::len),
        Some(0)
    );
    assert_eq!(v["perf"]["solver"]["solves"].as_u64(), Some(0));
    assert_eq!(v["perf"]["solver"]["flows"].as_u64(), Some(0));
    // Zero-flow runs still tile: breakdown sums to the recorded total.
    let total = v["perf"]["total_wall_us"].as_u64().unwrap();
    let sum: u64 = v["perf"]["breakdown"]
        .as_array()
        .unwrap()
        .iter()
        .map(|row| row["wall_us"].as_u64().unwrap())
        .sum();
    assert_eq!(sum, total, "breakdown must tile the total exactly");

    let text = run(&[
        "report",
        "--trace",
        &tps,
        "--metrics",
        &mps,
        "--network",
        "--perf",
    ]);
    std::fs::remove_file(&tp).ok();
    std::fs::remove_file(&mp).ok();
    assert!(text.status.success(), "{}", stderr(&text));
    let body = stdout(&text);
    assert!(body.contains("network — 0 link(s) with traffic"), "{body}");
    assert!(body.contains("0 solve(s)"), "{body}");
}

#[test]
fn report_network_and_perf_on_single_node_placement() {
    // One node: every map is node-local and shuffle crosses no link, so
    // the network section is empty even though the solver did run.
    let (tp, tps) = tmp("affinity_vc_deg1_trace.json");
    let (mp, mps) = tmp("affinity_vc_deg1_metrics.json");
    let sim = run(&[
        "simulate",
        "--requests",
        "2",
        "--racks",
        "1",
        "--nodes",
        "1",
        "--capacity",
        "8",
        "--maps",
        "2",
        "--trace-out",
        &tps,
        "--metrics-out",
        &mps,
    ]);
    assert!(sim.status.success(), "{}", stderr(&sim));
    let out = run(&[
        "report",
        "--trace",
        &tps,
        "--metrics",
        &mps,
        "--network",
        "--perf",
        "--json",
    ]);
    std::fs::remove_file(&tp).ok();
    std::fs::remove_file(&mp).ok();
    assert!(out.status.success(), "{}", stderr(&out));
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(v["network"]["links"].as_array().map(Vec::len), Some(0));
    assert!(v["perf"]["solver"]["solves"].as_u64().unwrap() > 0);
    assert_eq!(v["perf"]["solver"]["links_touched"].as_u64(), Some(0));
}

#[test]
fn diff_missing_manifest_exits_one_with_line() {
    let (path, path_s) = tmp("affinity_vc_diff_nomani.json");
    std::fs::write(&path, "{\"counters\": {}}\n").unwrap();
    let out = run(&["diff", &path_s, &path_s]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.starts_with("error:"), "{err}");
    assert!(err.contains("manifest"), "{err}");
    assert!(err.contains("line 1"), "{err}");
}

#[test]
fn diff_corrupt_json_exits_one_naming_file_and_line() {
    let (path, path_s) = tmp("affinity_vc_diff_corrupt.json");
    std::fs::write(&path, "{\"counters\": {},\n  broken\n}\n").unwrap();
    let out = run(&["diff", &path_s, &path_s]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains(&path_s), "error must name the file: {err}");
    assert!(err.contains("line "), "error must name the line: {err}");
}

#[test]
fn diff_topology_mismatch_exits_one_with_field_and_line() {
    // Same seed, different cloud shape: the runs are not comparable and
    // the refusal must name the differing manifest field with a line.
    let (bp, bps) = tmp("affinity_vc_diff_topo_a.json");
    let (cp, cps) = tmp("affinity_vc_diff_topo_b.json");
    for (racks, path) in [("3", &bps), ("2", &cps)] {
        let sim = run(&[
            "simulate",
            "--requests",
            "3",
            "--maps",
            "4",
            "--racks",
            racks,
            "--metrics-out",
            path,
        ]);
        assert!(sim.status.success(), "{}", stderr(&sim));
    }
    let out = run(&["diff", &bps, &cps]);
    std::fs::remove_file(&bp).ok();
    std::fs::remove_file(&cp).ok();
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("topology_digest"), "{err}");
    assert!(err.contains("line "), "{err}");
    assert!(err.contains("not comparable"), "{err}");
}

#[test]
fn diff_gate_trips_on_regression_with_greppable_verdict() {
    let (bp, bps) = tmp("affinity_vc_diff_gate_a.json");
    let (cp, cps) = tmp("affinity_vc_diff_gate_b.json");
    for (policy, path) in [("global", &bps), ("spread", &cps)] {
        let sim = run(&[
            "simulate",
            "--requests",
            "5",
            "--maps",
            "4",
            "--seed",
            "7",
            "--policy",
            policy,
            "--metrics-out",
            path,
        ]);
        assert!(sim.status.success(), "{}", stderr(&sim));
    }
    // Identity passes the gate...
    let ok = run(&["diff", &bps, &bps, "--fail-on-regress"]);
    assert_eq!(ok.status.code(), Some(0), "{}", stderr(&ok));
    assert!(stdout(&ok).contains("diff gate: PASS"), "{}", stdout(&ok));
    // ...and the degraded placement trips it.
    let out = run(&["diff", &bps, &cps, "--fail-on-regress"]);
    std::fs::remove_file(&bp).ok();
    std::fs::remove_file(&cp).ok();
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("diff gate: FAIL"), "{err}");
    assert!(err.contains("regression"), "{err}");
}
