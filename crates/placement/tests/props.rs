//! Property tests at paper scale (30 nodes): solver dominance, exchange
//! soundness, migration invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use vc_model::workload::{random_capacity, RequestProfile};
use vc_model::{ClusterState, Request, VmCatalog};
use vc_placement::distance::{cluster_distance, distance_with_center};
use vc_placement::online::ScanConfig;
use vc_placement::{baselines, exact, global, migration, online, PlacementPolicy};
use vc_topology::{generate, DistanceTiers};

fn paper_state(seed: u64) -> ClusterState {
    let topo = Arc::new(generate::paper_simulation());
    let catalog = Arc::new(VmCatalog::ec2_table1());
    let mut rng = StdRng::seed_from_u64(seed);
    let capacity = random_capacity(&topo, &catalog, 3, &mut rng);
    ClusterState::new(topo, catalog, capacity)
}

fn request() -> impl Strategy<Value = Request> {
    proptest::collection::vec(0u32..7, 3).prop_map(Request::from_counts)
}

/// A cloud over an arbitrary (possibly lopsided) rack layout with random
/// per-cell capacities — exercises the seed scan's pruning bounds on
/// shapes the paper topology never produces.
fn random_state(rack_sizes: &[usize], cap_seed: u64) -> ClusterState {
    let topo = Arc::new(generate::heterogeneous(
        rack_sizes,
        DistanceTiers::paper_experiment(),
    ));
    let catalog = Arc::new(VmCatalog::ec2_table1());
    let mut rng = StdRng::seed_from_u64(cap_seed);
    let capacity = random_capacity(&topo, &catalog, 3, &mut rng);
    ClusterState::new(topo, catalog, capacity)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// At paper scale: heuristic ≥ exact, all baselines ≥ exact, and every
    /// produced allocation is feasible and complete.
    #[test]
    fn exact_lower_bounds_everything(seed in 0u64..500, req in request()) {
        prop_assume!(!req.is_zero());
        let state = paper_state(seed);
        prop_assume!(state.can_satisfy(&req));
        let opt = exact::solve(&req, &state).unwrap();
        let (d_opt, _) = cluster_distance(opt.matrix(), state.topology());
        let mut rng = StdRng::seed_from_u64(seed);
        let policies: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(online::OnlineHeuristic),
            Box::new(baselines::FirstFit),
            Box::new(baselines::BestFit),
            Box::new(baselines::Spread),
            Box::new(baselines::RandomPlacement),
        ];
        for p in policies {
            let a = p.place(&req, &state, &mut rng).unwrap();
            prop_assert!(a.satisfies(&req), "{}", p.name());
            prop_assert!(a.matrix().le(state.remaining()), "{}", p.name());
            let (d, _) = cluster_distance(a.matrix(), state.topology());
            prop_assert!(d >= d_opt, "{} beat the optimum: {d} < {d_opt}", p.name());
        }
    }

    /// Serving a queue then repairing a random failure keeps the cloud's
    /// books balanced.
    #[test]
    fn failure_repair_conserves_accounting(seed in 0u64..200, failed_node in 0u32..30) {
        let mut state = paper_state(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 77);
        let req = RequestProfile::standard().sample(3, &mut rng);
        prop_assume!(state.can_satisfy(&req));
        let mut alloc = online::place(&req, &state).unwrap();
        state.allocate(&alloc).unwrap();

        let failed = vc_topology::NodeId(failed_node);
        let _aggregate_lost = state.fail_node(failed);
        match migration::repair(&mut alloc, failed, &mut state) {
            Ok(report) => {
                prop_assert!(alloc.satisfies(&req));
                prop_assert_eq!(alloc.matrix().node_total(failed), 0);
                prop_assert_eq!(
                    report.distance_after,
                    distance_with_center(alloc.matrix(), state.topology(), alloc.center())
                );
                // Releasing the repaired allocation empties the cloud.
                state.release(&alloc).unwrap();
                prop_assert!(state.used().is_zero());
            }
            Err(_) => {
                // No capacity: allocation is degraded but consistent, and
                // the surviving VMs can still be released.
                prop_assert_eq!(alloc.matrix().node_total(failed), 0);
                state.release(&alloc).unwrap();
                prop_assert!(state.used().is_zero());
            }
        }
    }

    /// The Theorem-2 pass is idempotent: running `place_queue` and then
    /// re-applying `suboptimize` to the result finds nothing further.
    #[test]
    fn exchange_pass_reaches_fixpoint(seed in 0u64..200) {
        let state = paper_state(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let queue = RequestProfile::small().sample_many(3, 6, &mut rng);
        let mut placed =
            global::place_queue(&queue, &state, global::Admission::FifoBlocking).unwrap();
        let topo = state.topology();
        let mut allocations: Vec<&mut vc_model::Allocation> =
            placed.served.iter_mut().map(|(_, a)| a).collect();
        let extra = global::suboptimize(&mut allocations, topo);
        prop_assert_eq!(extra, 0, "place_queue must already be at the exchange fixpoint");
    }

    /// Pruning and parallelism are pure accelerations: on arbitrary
    /// topologies, every [`ScanConfig`] returns the *bit-identical*
    /// allocation (matrix, centre, distance) — or the same error — as the
    /// exhaustive sequential scan.
    #[test]
    fn scan_configs_bit_identical(
        rack_sizes in proptest::collection::vec(1usize..6, 1..5),
        cap_seed in 0u64..500,
        req in request(),
    ) {
        prop_assume!(!req.is_zero());
        let state = random_state(&rack_sizes, cap_seed);
        let baseline = online::place_with(&req, &state, ScanConfig::sequential_baseline());
        for scan in [
            ScanConfig::pruned(),
            ScanConfig::pruned_parallel(2),
            ScanConfig::pruned_parallel(0),
            ScanConfig { prune: false, parallelism: online::Parallelism::Threads(3) },
        ] {
            let got = online::place_with(&req, &state, scan);
            match (&baseline, &got) {
                (Ok((a, _)), Ok((b, _))) => {
                    prop_assert_eq!(a.center(), b.center(), "centre differs under {:?}", scan);
                    prop_assert!(a.matrix() == b.matrix(), "matrix differs under {:?}", scan);
                    let topo = state.topology();
                    prop_assert_eq!(
                        distance_with_center(a.matrix(), topo, a.center()),
                        distance_with_center(b.matrix(), topo, b.center()),
                    );
                }
                (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                _ => prop_assert!(false, "ok/err disagreement under {:?}", scan),
            }
        }
    }

    /// `place_queue` outcomes — who is served (and how), who is deferred,
    /// who is rejected — never depend on the scan configuration.
    #[test]
    fn queue_outcome_invariant_under_scan_config(seed in 0u64..200, batch in 2usize..8) {
        let state = paper_state(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51);
        let queue = RequestProfile::standard().sample_many(3, batch, &mut rng);
        for admission in [global::Admission::FifoBlocking, global::Admission::FifoSkipping] {
            let base = global::place_queue_with(
                &queue, &state, admission, ScanConfig::sequential_baseline(),
            ).unwrap();
            for scan in [ScanConfig::pruned(), ScanConfig::pruned_parallel(2)] {
                let got = global::place_queue_with(&queue, &state, admission, scan).unwrap();
                prop_assert_eq!(&base.deferred, &got.deferred, "{:?}", scan);
                prop_assert_eq!(&base.rejected, &got.rejected, "{:?}", scan);
                prop_assert_eq!(base.served.len(), got.served.len(), "{:?}", scan);
                for ((bi, ba), (gi, ga)) in base.served.iter().zip(got.served.iter()) {
                    prop_assert_eq!(bi, gi);
                    prop_assert_eq!(ba.center(), ga.center());
                    prop_assert!(ba.matrix() == ga.matrix(), "served matrix differs under {:?}", scan);
                }
                prop_assert_eq!(base.online_distance, got.online_distance);
                prop_assert_eq!(base.optimized_distance, got.optimized_distance);
            }
        }
    }

    /// Rebalancing with a huge budget is idempotent and never hurts.
    #[test]
    fn rebalance_monotone_and_idempotent(seed in 0u64..200) {
        let mut state = paper_state(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 9);
        let blocker_req = RequestProfile::standard().sample(3, &mut rng);
        prop_assume!(state.can_satisfy(&blocker_req));
        let blocker = online::place(&blocker_req, &state).unwrap();
        state.allocate(&blocker).unwrap();
        let req = RequestProfile::standard().sample(3, &mut rng);
        prop_assume!(state.can_satisfy(&req));
        let mut alloc = online::place(&req, &state).unwrap();
        state.allocate(&alloc).unwrap();
        state.release(&blocker).unwrap();

        let first = migration::rebalance(&mut alloc, &mut state, 64);
        prop_assert!(first.distance_after <= first.distance_before);
        prop_assert!(alloc.satisfies(&req));
        let second = migration::rebalance(&mut alloc, &mut state, 64);
        prop_assert_eq!(second.moves.len(), 0, "second pass must be a no-op");
    }
}
