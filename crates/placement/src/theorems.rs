//! The paper's Theorems 1 and 2 as checkable predicates.
//!
//! These functions compute both sides of each theorem's inequality so
//! property tests (and curious users) can verify the claims on arbitrary
//! topologies and allocations, rather than trusting the proofs.

use crate::distance::distance_with_center;
use vc_model::{ResourceMatrix, VmTypeId};
use vc_topology::{NodeId, Topology};

/// **Theorem 1** (paper §IV-A): with a fixed centre `N_x`, moving one VM
/// of type `r` from node `N_q` to node `N_p` changes the cluster distance
/// by exactly `D[x][p] − D[x][q]`; in particular it *decreases* whenever
/// `p` is nearer the centre than `q`.
///
/// Returns `(before, after)` distances, both measured from `center`.
///
/// # Panics
/// Panics if the matrix holds no type-`r` VM on `from` to move.
pub fn theorem1_move(
    matrix: &ResourceMatrix,
    topo: &Topology,
    center: NodeId,
    from: NodeId,
    to: NodeId,
    ty: VmTypeId,
) -> (u64, u64) {
    assert!(matrix.get(from, ty) > 0, "no VM of {ty} on {from} to move");
    let before = distance_with_center(matrix, topo, center);
    let mut moved = matrix.clone();
    moved.sub(from, ty, 1);
    moved.add(to, ty, 1);
    let after = distance_with_center(&moved, topo, center);
    (before, after)
}

/// The exact delta Theorem 1 predicts for [`theorem1_move`]:
/// `after − before = D[x][to] − D[x][from]`.
pub fn theorem1_predicted_delta(topo: &Topology, center: NodeId, from: NodeId, to: NodeId) -> i64 {
    i64::from(topo.distance(center, to)) - i64::from(topo.distance(center, from))
}

/// **Theorem 2** (paper §IV-B): for clusters centred at `N_x` and `N_y`
/// exchanging a VM via node `N_k`, the summed distance drops by
/// `D[x][y] + D[y][k] − D[x][k]`, which is positive exactly when the
/// triangle `x, y, k` satisfies the strict inequality.
///
/// Returns that predicted gain (possibly negative — the exchange would
/// then hurt).
pub fn theorem2_predicted_gain(topo: &Topology, x: NodeId, y: NodeId, k: NodeId) -> i64 {
    i64::from(topo.distance(x, y)) + i64::from(topo.distance(y, k)) - i64::from(topo.distance(x, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_topology::{generate, DistanceTiers};

    fn topo() -> Topology {
        generate::heterogeneous(&[2, 2], DistanceTiers::paper_experiment())
    }

    #[test]
    fn theorem1_exact_delta() {
        let t = topo();
        let mut m = ResourceMatrix::zeros(4, 1);
        m.set(NodeId(3), VmTypeId(0), 1);
        m.set(NodeId(0), VmTypeId(0), 2);
        // move the stray VM from node 3 (cross rack, d=2) to node 1 (same rack, d=1)
        let (before, after) = theorem1_move(&m, &t, NodeId(0), NodeId(3), NodeId(1), VmTypeId(0));
        assert_eq!(after as i64 - before as i64, -1);
        assert_eq!(
            theorem1_predicted_delta(&t, NodeId(0), NodeId(3), NodeId(1)),
            -1
        );
    }

    #[test]
    fn theorem1_moving_away_increases() {
        let t = topo();
        let mut m = ResourceMatrix::zeros(4, 1);
        m.set(NodeId(1), VmTypeId(0), 1);
        let (before, after) = theorem1_move(&m, &t, NodeId(0), NodeId(1), NodeId(2), VmTypeId(0));
        assert!(after > before);
    }

    #[test]
    fn theorem2_gain_on_tiers() {
        let t = topo();
        // x=0, y=2 (cross rack), k=1 (same rack as x): gain = 2 + 2 - 1 = 3.
        assert_eq!(
            theorem2_predicted_gain(&t, NodeId(0), NodeId(2), NodeId(1)),
            3
        );
        // degenerate: k == x -> gain = d_xy + d_yx - 0 = 4 > 0
        assert_eq!(
            theorem2_predicted_gain(&t, NodeId(0), NodeId(2), NodeId(0)),
            4
        );
    }

    #[test]
    #[should_panic(expected = "no VM")]
    fn theorem1_requires_a_vm_to_move() {
        let t = topo();
        let m = ResourceMatrix::zeros(4, 1);
        let _ = theorem1_move(&m, &t, NodeId(0), NodeId(1), NodeId(2), VmTypeId(0));
    }
}
