//! The placement-strategy interface shared by all solvers and baselines.

use std::fmt;
use vc_model::{Allocation, ClusterState, Request};

/// Why a placement attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The request's type vector does not match the catalogue shape — it
    /// can never be admitted *or* served, so queues must reject it
    /// immediately instead of waiting for capacity that will never help.
    Malformed {
        /// Type count the cloud's catalogue defines.
        expected: usize,
        /// Type count the request carried.
        got: usize,
    },
    /// The request exceeds the cloud's *total* capacity `M` and can never
    /// be served — the paper refuses such requests outright.
    Refused {
        /// The offending request.
        request: Request,
    },
    /// The request exceeds the *currently available* resources `A` — the
    /// paper queues such requests until allocations are released.
    Unsatisfiable {
        /// The offending request.
        request: Request,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Malformed { expected, got } => {
                write!(
                    f,
                    "request has {got} VM types but the catalogue defines {expected} (rejected)"
                )
            }
            Self::Refused { request } => {
                write!(
                    f,
                    "request {request} exceeds total cloud capacity (refused)"
                )
            }
            Self::Unsatisfiable { request } => {
                write!(
                    f,
                    "request {request} exceeds current availability (queue it)"
                )
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Validate the paper's two admission conditions (§II): refuse requests
/// beyond total capacity, defer requests beyond current availability.
pub(crate) fn check_admissible(
    request: &Request,
    state: &ClusterState,
) -> Result<(), PlacementError> {
    if request.num_types() != state.num_types() {
        return Err(PlacementError::Malformed {
            expected: state.num_types(),
            got: request.num_types(),
        });
    }
    if !state.fits_capacity(request) {
        return Err(PlacementError::Refused {
            request: request.clone(),
        });
    }
    if !state.can_satisfy(request) {
        return Err(PlacementError::Unsatisfiable {
            request: request.clone(),
        });
    }
    Ok(())
}

/// A VM-placement strategy: given a request and the current cloud state,
/// produce an [`Allocation`] (matrix + central node) without mutating the
/// state — committing via [`ClusterState::allocate`] is the caller's job.
///
/// Implementations must return allocations that
/// * satisfy the request exactly (`Σ_i C_ij = R_j`), and
/// * respect remaining capacity (`C_ij ≤ L_ij`).
///
/// The `rng` parameter feeds stochastic baselines; deterministic policies
/// ignore it.
pub trait PlacementPolicy {
    /// Stable identifier used in experiment output.
    fn name(&self) -> &'static str;

    /// Compute an allocation for `request` against `state`.
    fn place(
        &self,
        request: &Request,
        state: &ClusterState,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Allocation, PlacementError>;

    /// [`place`](Self::place) with an observability hook: policies that
    /// produce decision telemetry (seed-scan counters, audits) emit it
    /// through `rec`, stamping events with simulation time `t_us`. The
    /// default ignores the recorder, so baselines stay untouched.
    fn place_recorded(
        &self,
        request: &Request,
        state: &ClusterState,
        rng: &mut dyn rand::RngCore,
        rec: &dyn vc_obs::Recorder,
        t_us: u64,
    ) -> Result<Allocation, PlacementError> {
        let _ = (rec, t_us);
        self.place(request, state, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vc_model::{ResourceMatrix, VmCatalog};
    use vc_topology::{generate, DistanceTiers};

    fn state() -> ClusterState {
        let topo = Arc::new(generate::uniform(1, 2, DistanceTiers::default()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        ClusterState::new(
            topo,
            cat,
            ResourceMatrix::from_rows(&[vec![1, 1, 1], vec![1, 1, 1]]),
        )
    }

    #[test]
    fn admissible_ok() {
        let s = state();
        assert!(check_admissible(&Request::from_counts(vec![2, 0, 0]), &s).is_ok());
    }

    #[test]
    fn over_capacity_refused() {
        let s = state();
        let err = check_admissible(&Request::from_counts(vec![3, 0, 0]), &s).unwrap_err();
        assert!(matches!(err, PlacementError::Refused { .. }));
        assert!(err.to_string().contains("refused"));
    }

    #[test]
    fn over_availability_unsatisfiable() {
        let mut s = state();
        let a = vc_model::Allocation::new(
            ResourceMatrix::from_rows(&[vec![1, 0, 0], vec![1, 0, 0]]),
            vc_topology::NodeId(0),
        );
        s.allocate(&a).unwrap();
        let err = check_admissible(&Request::from_counts(vec![1, 0, 0]), &s).unwrap_err();
        assert!(matches!(err, PlacementError::Unsatisfiable { .. }));
        assert!(err.to_string().contains("queue"));
    }
}
