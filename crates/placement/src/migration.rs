//! VM migration: failure repair and affinity-driven rebalancing.
//!
//! The paper defers dynamic topologies to future work (§VII: "how to
//! compute \[distance\] values when some VMs are down or reconfigured is
//! critical for the VM placement policy") and cites affinity-aware VM
//! *migration* as the complementary mechanism. This module provides both
//! halves:
//!
//! * [`repair`] — after a node failure removed some of a cluster's VMs
//!   (see `ClusterState::fail_node`), re-provision the lost VMs on the
//!   surviving capacity, nearest-to-centre first (Theorem 1), re-centring
//!   if that now yields a shorter cluster;
//! * [`rebalance`] — opportunistically migrate VMs of a live cluster onto
//!   closer nodes when capacity has freed up, bounded by a migration
//!   budget (each move costs a VM copy in practice, so callers cap it).

use crate::distance::{cluster_distance, distance_with_center};
use crate::policy::PlacementError;
use vc_model::{Allocation, ClusterState, VmTypeId};
use vc_topology::NodeId;

/// One VM relocation: `count` instances of `vm_type` move `from → to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Move {
    /// The VM type being moved.
    pub vm_type: VmTypeId,
    /// Source node (the failed node for repairs).
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Number of instances.
    pub count: u32,
}

/// Outcome of a repair or rebalance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// The moves performed, in application order.
    pub moves: Vec<Move>,
    /// Cluster distance before (measured at the old centre).
    pub distance_before: u64,
    /// Cluster distance after (measured at the new centre).
    pub distance_after: u64,
    /// The cluster's centre after the operation.
    pub center: NodeId,
}

/// Repair `allocation` after node `failed` went down.
///
/// The caller must already have called
/// [`ClusterState::fail_node`](vc_model::ClusterState::fail_node) (so the
/// state no longer counts the lost VMs or the node's capacity). The VMs
/// *this* allocation lost are derived from its own matrix — a failed node
/// may host several tenants, each repaired independently. On success the
/// replacement VMs are committed to `state`, `allocation` is updated
/// (lost VMs removed, replacements added, centre re-optimised), and the
/// report lists the moves.
///
/// Fails with [`PlacementError::Unsatisfiable`] if the surviving capacity
/// cannot host the lost VMs; the allocation then keeps the surviving VMs
/// only (degraded but consistent).
pub fn repair(
    allocation: &mut Allocation,
    failed: NodeId,
    state: &mut ClusterState,
) -> Result<MigrationReport, PlacementError> {
    let distance_before =
        distance_with_center(allocation.matrix(), state.topology(), allocation.center());

    // This allocation's share of the node's losses.
    let lost = allocation.matrix().row_request(failed);
    let lost = &lost;

    // Drop the lost VMs from the allocation's book-keeping.
    for (ty, count) in lost.nonzero() {
        allocation.matrix_mut().sub(failed, ty, count);
    }
    if lost.is_zero() {
        let (d, k) = cluster_distance(allocation.matrix(), state.topology());
        return Ok(MigrationReport {
            moves: vec![],
            distance_before,
            distance_after: d,
            center: k,
        });
    }

    if !state.can_satisfy(lost) {
        return Err(PlacementError::Unsatisfiable {
            request: lost.clone(),
        });
    }

    // Greedy nearest-first fill around the surviving cluster's best centre
    // (Theorem 1), trying every candidate centre like the exact solver.
    let remaining = state.remaining();
    let topo = state.topology();
    let mut best: Option<(u64, Vec<Move>, NodeId)> = None;
    for center in topo.node_ids() {
        let mut trial = allocation.matrix().clone();
        let mut moves = Vec::new();
        let mut feasible = true;
        for (ty, count) in lost.nonzero() {
            let mut need = count;
            for &node in &topo.nodes_by_distance(center) {
                if need == 0 {
                    break;
                }
                let free = remaining.get(node, ty);
                let take = need.min(free);
                if take > 0 {
                    trial.add(node, ty, take);
                    moves.push(Move {
                        vm_type: ty,
                        from: failed,
                        to: node,
                        count: take,
                    });
                    need -= take;
                }
            }
            if need > 0 {
                feasible = false;
                break;
            }
        }
        if !feasible {
            continue;
        }
        let d = distance_with_center(&trial, topo, center);
        if best.as_ref().is_none_or(|(bd, _, _)| d < *bd) {
            best = Some((d, moves, center));
        }
    }
    let (distance_after, moves, center) = best.ok_or_else(|| PlacementError::Unsatisfiable {
        request: lost.clone(),
    })?;

    // Commit: add the replacement VMs to both the allocation and the state.
    let mut delta = vc_model::ResourceMatrix::zeros(
        allocation.matrix().num_nodes(),
        allocation.matrix().num_types(),
    );
    for m in &moves {
        allocation.matrix_mut().add(m.to, m.vm_type, m.count);
        delta.add(m.to, m.vm_type, m.count);
    }
    state
        .allocate(&Allocation::new(delta, center))
        .expect("repair fill respects remaining capacity");
    allocation.set_center(center);

    Ok(MigrationReport {
        moves,
        distance_before,
        distance_after,
        center,
    })
}

/// Migrate VMs of a live cluster onto strictly closer nodes while free
/// capacity allows, performing at most `max_moves` single-VM moves.
///
/// Each step moves one VM from the occupied node farthest from the centre
/// to the free slot nearest the centre, if that strictly reduces the
/// fixed-centre distance (Theorem 1 guarantees the delta is exactly
/// `D[x][to] − D[x][from]`). The state is updated transactionally per
/// move; the centre is re-optimised at the end.
pub fn rebalance(
    allocation: &mut Allocation,
    state: &mut ClusterState,
    max_moves: u32,
) -> MigrationReport {
    let topo = state.topology_arc();
    let center = allocation.center();
    let distance_before = distance_with_center(allocation.matrix(), &topo, center);
    let mut moves = Vec::new();

    for _ in 0..max_moves {
        let remaining = state.remaining();
        // Candidate: (gain, from, to, ty) with the largest positive gain.
        let mut best: Option<(u32, NodeId, NodeId, VmTypeId)> = None;
        for from in allocation.matrix().occupied_nodes() {
            let d_from = topo.distance(center, from);
            for to in topo.node_ids() {
                let d_to = topo.distance(center, to);
                if d_to >= d_from {
                    continue;
                }
                for j in 0..state.num_types() {
                    let ty = VmTypeId::from_index(j);
                    if allocation.matrix().get(from, ty) > 0 && remaining.get(to, ty) > 0 {
                        let gain = d_from - d_to;
                        if best.is_none_or(|(bg, _, _, _)| gain > bg) {
                            best = Some((gain, from, to, ty));
                        }
                    }
                }
            }
        }
        let Some((_, from, to, ty)) = best else { break };
        // Apply to the state: free `from`, occupy `to`.
        let n = allocation.matrix().num_nodes();
        let m = allocation.matrix().num_types();
        let mut release = vc_model::ResourceMatrix::zeros(n, m);
        release.add(from, ty, 1);
        state
            .release(&Allocation::new(release, center))
            .expect("migrating VM exists in the state");
        let mut acquire = vc_model::ResourceMatrix::zeros(n, m);
        acquire.add(to, ty, 1);
        state
            .allocate(&Allocation::new(acquire, center))
            .expect("destination slot was free");
        allocation.matrix_mut().sub(from, ty, 1);
        allocation.matrix_mut().add(to, ty, 1);
        moves.push(Move {
            vm_type: ty,
            from,
            to,
            count: 1,
        });
    }

    let (distance_after, new_center) = cluster_distance(allocation.matrix(), &topo);
    allocation.set_center(new_center);
    MigrationReport {
        moves,
        distance_before,
        distance_after,
        center: new_center,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online;
    use std::sync::Arc;
    use vc_model::{Request, ResourceMatrix, VmCatalog};
    use vc_topology::{generate, DistanceTiers};

    fn state(per_node: u32) -> ClusterState {
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        ClusterState::uniform_capacity(topo, cat, per_node)
    }

    #[test]
    fn repair_replaces_lost_vms() {
        let mut s = state(2);
        let req = Request::from_counts(vec![4, 0, 0]);
        let mut alloc = online::place(&req, &s).unwrap();
        s.allocate(&alloc).unwrap();

        let failed = alloc.matrix().occupied_nodes()[0];
        let lost = s.fail_node(failed);
        assert!(!lost.is_zero());
        let report = repair(&mut alloc, failed, &mut s).unwrap();

        assert!(
            alloc.satisfies(&req),
            "repaired cluster serves the full request"
        );
        assert_eq!(alloc.matrix().node_total(failed), 0);
        assert!(!report.moves.is_empty());
        // Every move sourced at the failed node.
        assert!(report.moves.iter().all(|m| m.from == failed));
        // State consistency: releasing everything still works.
        s.release(&alloc).unwrap();
        assert_eq!(s.used().total(), 0);
    }

    #[test]
    fn repair_fails_when_no_capacity() {
        let mut s = state(1);
        // Fill the entire cloud.
        let all = Request::from_counts(vec![6, 6, 6]);
        let mut alloc = online::place(&all, &s).unwrap();
        s.allocate(&alloc).unwrap();
        let failed = vc_topology::NodeId(0);
        let _lost = s.fail_node(failed);
        let err = repair(&mut alloc, failed, &mut s).unwrap_err();
        assert!(matches!(err, PlacementError::Unsatisfiable { .. }));
        // Degraded but consistent: surviving VMs remain tracked.
        assert_eq!(alloc.matrix().node_total(failed), 0);
    }

    #[test]
    fn repair_with_no_losses_is_noop() {
        let mut s = state(2);
        let req = Request::from_counts(vec![2, 0, 0]);
        let mut alloc = online::place(&req, &s).unwrap();
        s.allocate(&alloc).unwrap();
        // Fail an unused node.
        let unused = s
            .topology()
            .node_ids()
            .find(|&n| alloc.matrix().node_total(n) == 0)
            .unwrap();
        let lost = s.fail_node(unused);
        assert!(lost.is_zero());
        let report = repair(&mut alloc, unused, &mut s).unwrap();
        assert!(report.moves.is_empty());
        assert!(alloc.satisfies(&req));
    }

    /// A blocker holding `N1`, `N4`, `N5` forces a 3-VM request to
    /// straddle racks (`N0`, `N2` + one rack-1 node); when the blocker
    /// leaves, the stray VM can migrate into the freed same-rack slot.
    fn churn_scenario() -> (ClusterState, Allocation, Allocation, Request) {
        let mut s = state(1);
        let mut blocker_m = ResourceMatrix::zeros(6, 3);
        for node in [1u32, 4, 5] {
            blocker_m.set(vc_topology::NodeId(node), VmTypeId(0), 1);
        }
        let blocker = Allocation::new(blocker_m, vc_topology::NodeId(1));
        s.allocate(&blocker).unwrap();
        let req = Request::from_counts(vec![3, 0, 0]);
        let tenant = online::place(&req, &s).unwrap();
        s.allocate(&tenant).unwrap();
        (s, blocker, tenant, req)
    }

    #[test]
    fn rebalance_tightens_after_churn() {
        let (mut s, blocker, mut tenant, req) = churn_scenario();
        let before = distance_with_center(tenant.matrix(), s.topology(), tenant.center());
        assert!(
            before > 2,
            "tenant must straddle racks initially (got {before})"
        );

        s.release(&blocker).unwrap();
        let report = rebalance(&mut tenant, &mut s, 16);
        assert!(tenant.satisfies(&req));
        assert_eq!(report.distance_before, before);
        assert!(
            report.distance_after < before,
            "freed same-rack slot must attract the stray VM ({report:?})"
        );
        assert!(!report.moves.is_empty());
        // State still consistent.
        s.release(&tenant).unwrap();
        assert_eq!(s.used().total(), 0);
    }

    #[test]
    fn rebalance_respects_move_budget() {
        let (mut s, blocker, mut tenant, _) = churn_scenario();
        s.release(&blocker).unwrap();
        let report = rebalance(&mut tenant, &mut s, 1);
        assert!(report.moves.len() <= 1);
    }

    #[test]
    fn rebalance_on_optimal_cluster_is_noop() {
        let mut s = state(2);
        let req = Request::from_counts(vec![2, 1, 0]);
        let mut alloc = crate::exact::solve(&req, &s).unwrap();
        s.allocate(&alloc).unwrap();
        let report = rebalance(&mut alloc, &mut s, 8);
        assert_eq!(report.distance_before, report.distance_after);
    }

    #[test]
    fn repair_prefers_nearby_replacements() {
        let mut s = state(1);
        // Cluster of 3 in rack 0 (nodes 0,1,2), fail node 2; node capacity
        // exists in both racks — repair should stay in rack 0 if possible.
        let req = Request::from_counts(vec![3, 0, 0]);
        let mut alloc = online::place(&req, &s).unwrap();
        s.allocate(&alloc).unwrap();
        let failed = alloc.matrix().occupied_nodes()[2];
        let _lost = s.fail_node(failed);
        let report = repair(&mut alloc, failed, &mut s).unwrap();
        // The only spare type-0 slots are cross-rack (rack 0 is full), so
        // distance can only grow; but the report must be exact about it.
        assert_eq!(
            report.distance_after,
            distance_with_center(alloc.matrix(), s.topology(), alloc.center())
        );
        let _ = ResourceMatrix::zeros(1, 1);
    }
}

#[cfg(test)]
mod multi_tenant_tests {
    use super::*;
    use crate::online;
    use std::sync::Arc;
    use vc_model::{Request, VmCatalog};
    use vc_topology::{generate, DistanceTiers, NodeId};

    /// A failed node hosting VMs of *two* tenants: each allocation is
    /// repaired independently against its own losses.
    #[test]
    fn repair_handles_shared_failed_node() {
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        let mut s = ClusterState::uniform_capacity(topo, cat, 2);

        let req_a = Request::from_counts(vec![2, 0, 0]);
        let mut a = online::place(&req_a, &s).unwrap();
        s.allocate(&a).unwrap();
        let req_b = Request::from_counts(vec![0, 2, 0]);
        let mut b = online::place(&req_b, &s).unwrap();
        s.allocate(&b).unwrap();
        // Both compact onto node 0 (capacity 2 per type).
        assert!(a.matrix().node_total(NodeId(0)) > 0);
        assert!(b.matrix().node_total(NodeId(0)) > 0);

        let failed = NodeId(0);
        let aggregate = s.fail_node(failed);
        assert_eq!(aggregate.total_vms(), 4, "both tenants lost VMs");

        // Repair each tenant independently — no panic, both made whole.
        repair(&mut a, failed, &mut s).unwrap();
        repair(&mut b, failed, &mut s).unwrap();
        assert!(a.satisfies(&req_a));
        assert!(b.satisfies(&req_b));
        s.release(&a).unwrap();
        s.release(&b).unwrap();
        assert!(s.used().is_zero());
    }
}
