//! The paper's §III-B integer-programming formulation of the SD problem,
//! solved with the from-scratch [`vc_ilp`] MILP solver.
//!
//! The objective `Σ_i (Σ_j x_ij) · D_ik` couples the allocation to the
//! centre choice `k`; as in the paper's formulation the centre is an
//! explicit decision, which we realise by solving one ILP per candidate
//! centre and taking the best (the standard linearisation of the
//! `min_k` — `n` small transportation-like ILPs whose LP relaxations are
//! integral, so branch & bound typically terminates at the root node).

// Index-based loops mirror the textbook matrix formulations here.
#![allow(clippy::needless_range_loop)]

use crate::distance::distance_with_center;
use crate::policy::{check_admissible, PlacementError, PlacementPolicy};
use vc_ilp::{Cmp, Problem};
use vc_model::{Allocation, ClusterState, Request, ResourceMatrix, VmTypeId};
use vc_topology::NodeId;

/// Solve the SD problem by integer programming.
///
/// Semantically identical to [`crate::exact::solve`]; exists to mirror the
/// paper's formulation and to cross-validate the combinatorial solver.
pub fn solve(request: &Request, state: &ClusterState) -> Result<Allocation, PlacementError> {
    check_admissible(request, state)?;
    let topo = state.topology();
    let remaining = state.remaining();
    let n = state.num_nodes();
    let m = state.num_types();

    let mut best: Option<(u64, Allocation)> = None;
    for center in topo.node_ids() {
        // Build: minimise Σ_ij x_ij · D_{i,center}
        //        s.t.  Σ_i x_ij = R_j            ∀j
        //              0 ≤ x_ij ≤ L_ij           (as variable bounds)
        let mut problem = Problem::minimize();
        let mut vars = vec![vec![]; n];
        for i in 0..n {
            let node = NodeId::from_index(i);
            let dist = f64::from(topo.distance(node, center));
            for j in 0..m {
                let ty = VmTypeId::from_index(j);
                let ub = f64::from(remaining.get(node, ty).min(request.get(ty)));
                vars[i].push(problem.add_int_var(0.0, ub, dist));
            }
        }
        for j in 0..m {
            let terms: Vec<_> = (0..n).map(|i| (vars[i][j], 1.0)).collect();
            problem.add_constraint(
                terms,
                Cmp::Eq,
                f64::from(request.get(VmTypeId::from_index(j))),
            );
        }

        let solution = match problem.solve() {
            Ok(s) => s,
            Err(vc_ilp::SolveError::Infeasible) => continue,
            Err(e) => panic!("SD ILP solver failure for centre {center}: {e}"),
        };

        let mut matrix = ResourceMatrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                let v = solution.int_value(vars[i][j]);
                if v > 0 {
                    matrix.set(NodeId::from_index(i), VmTypeId::from_index(j), v as u32);
                }
            }
        }
        let d = distance_with_center(&matrix, topo, center);
        if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
            best = Some((d, Allocation::new(matrix, center)));
        }
    }

    best.map(|(_, a)| a)
        .ok_or_else(|| PlacementError::Unsatisfiable {
            request: request.clone(),
        })
}

/// Measure the greedy-vs-ILP optimality gap on one request: place it with
/// **Algorithm 1** (the online greedy) and with the exact ILP, and record
/// the distance difference on `rec` (`placement.ilp_gap` histogram plus a
/// `placement.gap_measured` event at `t_us`). Returns
/// `(greedy DC, ilp DC)`; the gap is their non-negative difference.
///
/// This runs `n` ILPs, so it is a diagnostic probe, not a hot-path hook —
/// call it from experiments or ablations, not inside the queue loop.
pub fn greedy_gap_recorded(
    request: &Request,
    state: &ClusterState,
    rec: &dyn vc_obs::Recorder,
    t_us: u64,
) -> Result<(u64, u64), PlacementError> {
    let topo = state.topology();
    let greedy = crate::online::place(request, state)?;
    let ilp = solve(request, state)?;
    let dg = distance_with_center(greedy.matrix(), topo, greedy.center());
    let di = distance_with_center(ilp.matrix(), topo, ilp.center());
    let gap = dg.saturating_sub(di);
    rec.histogram_record("placement.ilp_gap", gap);
    rec.event(
        "placement.gap_measured",
        t_us,
        None,
        &[
            ("greedy_dc", vc_obs::AttrValue::from(dg)),
            ("ilp_dc", vc_obs::AttrValue::from(di)),
            ("gap", vc_obs::AttrValue::from(gap)),
            (
                "greedy_center",
                vc_obs::AttrValue::from(u64::from(greedy.center().0)),
            ),
            (
                "ilp_center",
                vc_obs::AttrValue::from(u64::from(ilp.center().0)),
            ),
        ],
    );
    Ok((dg, di))
}

/// [`PlacementPolicy`] wrapper around the ILP solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct IlpSd;

impl PlacementPolicy for IlpSd {
    fn name(&self) -> &'static str {
        "ilp-sd"
    }

    fn place(
        &self,
        request: &Request,
        state: &ClusterState,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Allocation, PlacementError> {
        solve(request, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use std::sync::Arc;
    use vc_model::VmCatalog;
    use vc_topology::{generate, DistanceTiers};

    fn state(rows: &[Vec<u32>], racks: &[usize]) -> ClusterState {
        let topo = Arc::new(generate::heterogeneous(
            racks,
            DistanceTiers::paper_experiment(),
        ));
        let cat = Arc::new(VmCatalog::ec2_table1());
        ClusterState::new(topo, cat, ResourceMatrix::from_rows(rows))
    }

    #[test]
    fn ilp_matches_exact_solver() {
        let s = state(
            &[vec![2, 1, 0], vec![1, 0, 1], vec![0, 2, 1], vec![1, 1, 0]],
            &[2, 2],
        );
        for req in [
            Request::from_counts(vec![2, 1, 1]),
            Request::from_counts(vec![1, 0, 0]),
            Request::from_counts(vec![3, 3, 2]),
            Request::from_counts(vec![4, 4, 2]),
        ] {
            let i = solve(&req, &s).unwrap();
            let e = exact::solve(&req, &s).unwrap();
            let di = distance_with_center(i.matrix(), s.topology(), i.center());
            let de = distance_with_center(e.matrix(), s.topology(), e.center());
            assert_eq!(di, de, "ILP {di} != exact {de} for {req}");
            assert!(i.satisfies(&req));
            assert!(i.matrix().le(s.remaining()));
        }
    }

    #[test]
    fn unsatisfiable_propagates() {
        let s = state(&[vec![1, 0, 0], vec![0, 0, 0]], &[2]);
        assert!(matches!(
            solve(&Request::from_counts(vec![2, 0, 0]), &s),
            Err(PlacementError::Refused { .. })
        ));
    }

    #[test]
    fn policy_name() {
        assert_eq!(IlpSd.name(), "ilp-sd");
    }

    #[test]
    fn gap_probe_records_nonnegative_gap() {
        use vc_obs::MemRecorder;
        let s = state(
            &[vec![2, 1, 0], vec![1, 0, 1], vec![0, 2, 1], vec![1, 1, 0]],
            &[2, 2],
        );
        let rec = MemRecorder::new();
        let (dg, di) =
            greedy_gap_recorded(&Request::from_counts(vec![3, 2, 1]), &s, &rec, 7).unwrap();
        assert!(dg >= di, "greedy can never beat the exact optimum");
        let snap = rec.metrics();
        assert_eq!(snap.histograms["placement.ilp_gap"].count, 1);
        let events = rec.events();
        let e = events
            .iter()
            .find(|e| e.name == "placement.gap_measured")
            .unwrap();
        assert_eq!(e.t_us, 7);
        let gap = e
            .attrs
            .iter()
            .find(|(k, _)| *k == "gap")
            .and_then(|(_, v)| v.as_u64())
            .unwrap();
        assert_eq!(gap, dg - di);
    }
}
